//! Deterministic and allocation-light collections for the hot paths.
//!
//! # Deterministic hashing
//!
//! `std`'s default `RandomState` seeds every map differently, so iteration
//! order varies between processes (and between two maps in one process).
//! Protocol state machines in this workspace iterate their maps while
//! emitting messages, so that randomness would leak into event order and
//! break the reproducibility contract of the simulator — every run must be
//! bit-identical for a fixed scenario seed, sequential or parallel.
//!
//! [`DetHashMap`] / [`DetHashSet`] keep O(1) operations but hash with
//! [`DefaultHasher`]'s fixed keys: iteration order becomes a pure function of
//! the insertion sequence, identical across runs, threads and processes.
//! (Simulation inputs are not attacker-controlled, so hash-flooding
//! resistance is irrelevant here.)
//!
//! A word of caution when *replacing* one of these maps with a flat
//! `Vec`-indexed structure (the preferred hot-path layout): the change is
//! only output-preserving when nothing observes the map's iteration order.
//! Several golden digests pin protocol wire order bit-for-bit, and a
//! hash-ordered walk that feeds message emission (e.g. the gossip layer's
//! fresh-chunk grouping) is load-bearing; flatten only order-blind state.
//!
//! # Inline small vectors
//!
//! [`InlineVec`] is a bounded-inline vector for the short lists the
//! protocols shuffle around constantly — partner sets (fanout ≈ 7), chunk
//! batches, witness sets. Up to `N` elements live inside the struct with no
//! heap allocation; longer contents spill to an ordinary `Vec`.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

use serde::{Deserialize, Serialize, Value};

/// A `HashMap` whose iteration order is reproducible across runs.
pub type DetHashMap<K, V> = HashMap<K, V, BuildHasherDefault<DefaultHasher>>;

/// A `HashSet` whose iteration order is reproducible across runs.
pub type DetHashSet<T> = HashSet<T, BuildHasherDefault<DefaultHasher>>;

/// A fast multiply-rotate hasher (FxHash-style) with a fixed initial state.
///
/// Deterministic like [`DefaultHasher`]-with-fixed-keys but several times
/// cheaper per operation — `DefaultHasher` is SipHash, whose per-lookup cost
/// shows up when a map sits on the per-message hot path. Use the `Fast*`
/// aliases for bookkeeping maps whose iteration order is never observable in
/// outputs; maps whose (deterministic) walk order feeds message emission are
/// pinned by golden digests to `DetHashMap` and must stay there.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        // Firefox's hash-combining step: rotate, xor, multiply by a constant
        // derived from the golden ratio.
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }
    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }
    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }
    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// A deterministic, fast `HashMap` for hot-path bookkeeping whose iteration
/// order never reaches any output (see [`FxHasher`]).
pub type FastHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// Set counterpart of [`FastHashMap`].
pub type FastHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// A vector that stores up to `N` elements inline (no heap allocation) and
/// spills to a heap `Vec` beyond that.
///
/// Restricted to `T: Copy + Default` so the whole type stays safe code (the
/// inline buffer is a plain array, not uninitialized memory) — exactly the
/// id-sized element types the hot paths use.
#[derive(Clone)]
pub struct InlineVec<T: Copy + Default, const N: usize> {
    len: usize,
    inline: [T; N],
    spill: Vec<T>,
}

impl<T: Copy + Default, const N: usize> InlineVec<T, N> {
    /// Creates an empty vector.
    pub fn new() -> Self {
        InlineVec {
            len: 0,
            inline: [T::default(); N],
            spill: Vec::new(),
        }
    }

    /// Creates a vector holding a copy of `items`.
    pub fn from_slice(items: &[T]) -> Self {
        let mut v = InlineVec::new();
        v.extend_from_slice(items);
        v
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no elements are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        if self.len <= N {
            &self.inline[..self.len]
        } else {
            &self.spill
        }
    }

    /// Appends one element.
    pub fn push(&mut self, value: T) {
        if self.len < N {
            self.inline[self.len] = value;
        } else {
            if self.len == N {
                // First spill: move the inline prefix to the heap.
                self.spill.reserve(N + 1);
                self.spill.extend_from_slice(&self.inline);
            }
            self.spill.push(value);
        }
        self.len += 1;
    }

    /// Appends every element of `items`.
    pub fn extend_from_slice(&mut self, items: &[T]) {
        for &item in items {
            self.push(item);
        }
    }

    /// Appends `value` unless it is already present; returns true if it was
    /// inserted (set semantics, linear scan — meant for the short witness /
    /// receipt sets of the verification plane).
    pub fn insert_unique(&mut self, value: T) -> bool
    where
        T: PartialEq,
    {
        if self.as_slice().contains(&value) {
            return false;
        }
        self.push(value);
        true
    }

    /// Removes every element, keeping any spilled capacity.
    pub fn clear(&mut self) {
        self.len = 0;
        self.spill.clear();
    }

    /// Iterates over the elements.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.as_slice().iter()
    }
}

impl<T: Copy + Default, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        InlineVec::new()
    }
}

impl<T: Copy + Default, const N: usize> std::ops::Deref for InlineVec<T, N> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize, O: AsRef<[T]>> PartialEq<O>
    for InlineVec<T, N>
{
    fn eq(&self, other: &O) -> bool {
        self.as_slice() == other.as_ref()
    }
}

impl<T: Copy + Default + Eq, const N: usize> Eq for InlineVec<T, N> {}

impl<T: Copy + Default, const N: usize> AsRef<[T]> for InlineVec<T, N> {
    fn as_ref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + Default + std::fmt::Debug, const N: usize> std::fmt::Debug for InlineVec<T, N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl<T: Copy + Default, const N: usize> FromIterator<T> for InlineVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = InlineVec::new();
        for item in iter {
            v.push(item);
        }
        v
    }
}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl<T: Copy + Default + Serialize, const N: usize> Serialize for InlineVec<T, N> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Copy + Default, const N: usize> Deserialize for InlineVec<T, N> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_vec_stays_inline_up_to_capacity() {
        let mut v: InlineVec<u32, 4> = InlineVec::new();
        assert!(v.is_empty());
        for i in 0..4 {
            v.push(i);
        }
        assert_eq!(v.as_slice(), &[0, 1, 2, 3]);
        assert_eq!(v.len(), 4);
        // Up to N the spill vector is never touched (no heap allocation).
        assert_eq!(v.spill.capacity(), 0);
    }

    #[test]
    fn inline_vec_spills_transparently() {
        let mut v: InlineVec<u32, 4> = InlineVec::new();
        for i in 0..10 {
            v.push(i);
        }
        assert_eq!(v.len(), 10);
        assert_eq!(v.as_slice(), (0..10).collect::<Vec<_>>().as_slice());
        let from = InlineVec::<u32, 4>::from_slice(&(0..10).collect::<Vec<_>>());
        assert_eq!(v, from);
        v.clear();
        assert!(v.is_empty());
        assert_eq!(v.as_slice(), &[] as &[u32]);
    }

    #[test]
    fn inline_vec_set_semantics() {
        let mut v: InlineVec<u32, 2> = InlineVec::new();
        assert!(v.insert_unique(7));
        assert!(!v.insert_unique(7));
        assert!(v.insert_unique(8));
        assert!(v.insert_unique(9)); // spills
        assert!(!v.insert_unique(9));
        assert_eq!(v.len(), 3);
        assert!(v.contains(&8), "deref gives slice methods");
    }

    #[test]
    fn inline_vec_collects_and_compares() {
        let v: InlineVec<u32, 8> = (0..5).collect();
        assert_eq!(v, [0, 1, 2, 3, 4]);
        assert_eq!(v.iter().copied().sum::<u32>(), 10);
        assert_eq!(format!("{v:?}"), "[0, 1, 2, 3, 4]");
    }

    #[test]
    fn fast_map_is_deterministic_and_correct() {
        let build = || {
            let mut m: FastHashMap<(u32, u64), u32> = FastHashMap::default();
            for i in 0..1_000u64 {
                m.insert((i as u32, i.wrapping_mul(0x9E37_79B9)), i as u32);
            }
            m.iter().map(|(k, v)| (*k, *v)).collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
        let mut m: FastHashMap<u64, u64> = FastHashMap::default();
        for i in 0..100 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.get(&40), Some(&80));
        assert_eq!(m.len(), 100);
    }

    #[test]
    fn iteration_order_is_a_function_of_insertions() {
        let build = || {
            let mut m = DetHashMap::default();
            for i in 0..1_000u64 {
                m.insert(i.wrapping_mul(0x9E37_79B9), i);
            }
            m.iter().map(|(k, v)| (*k, *v)).collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }
}
