//! Hash collections with a *deterministic* hasher.
//!
//! `std`'s default `RandomState` seeds every map differently, so iteration
//! order varies between processes (and between two maps in one process).
//! Protocol state machines in this workspace iterate their maps while
//! emitting messages, so that randomness would leak into event order and
//! break the reproducibility contract of the simulator — every run must be
//! bit-identical for a fixed scenario seed, sequential or parallel.
//!
//! [`DetHashMap`] / [`DetHashSet`] keep O(1) operations but hash with
//! [`DefaultHasher`]'s fixed keys: iteration order becomes a pure function of
//! the insertion sequence, identical across runs, threads and processes.
//! (Simulation inputs are not attacker-controlled, so hash-flooding
//! resistance is irrelevant here.)

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::BuildHasherDefault;

/// A `HashMap` whose iteration order is reproducible across runs.
pub type DetHashMap<K, V> = HashMap<K, V, BuildHasherDefault<DefaultHasher>>;

/// A `HashSet` whose iteration order is reproducible across runs.
pub type DetHashSet<T> = HashSet<T, BuildHasherDefault<DefaultHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_order_is_a_function_of_insertions() {
        let build = || {
            let mut m = DetHashMap::default();
            for i in 0..1_000u64 {
                m.insert(i.wrapping_mul(0x9E37_79B9), i);
            }
            m.iter().map(|(k, v)| (*k, *v)).collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }
}
