//! Sharding primitives: contiguous node-range shard maps and deterministic
//! cross-shard mailboxes.
//!
//! A sharded world partitions its nodes into contiguous id ranges, one range
//! per shard. Within a synchronization window each shard processes its own
//! nodes' events independently; everything a shard wants to say to the rest
//! of the system — messages to other shards' nodes, timers, blames — is
//! appended to a per-(source shard, destination shard) **mailbox** instead of
//! being applied immediately. At the window boundary the mailboxes are merged
//! back into one globally ordered stream and committed sequentially.
//!
//! # Determinism
//!
//! Every mailbox entry carries an ordering key assigned from the *sequential*
//! event order (the position the event would have been processed at by a
//! single-threaded run, extended with the entry's emission index within that
//! event). Each shard processes its events in ascending key order, so every
//! individual mailbox is filled in ascending key order, and
//! [`ShardMailboxes::drain_ordered`] is a k-way merge of sorted runs: the
//! merged stream is exactly the order a sequential run would have produced,
//! regardless of shard count or thread scheduling. This is the property the
//! cross-shard ordering unit tests pin and the registry-wide shard-invariance
//! proptest exercises end to end.

use crate::id::NodeId;

/// An ordering key for one cross-shard mailbox entry: the sequential position
/// of the originating event within its synchronization window, extended with
/// the entry's emission index within that event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct MailKey {
    /// Position of the originating event in the window's sequential order.
    pub event: u32,
    /// Emission index of this entry within the originating event.
    pub emit: u32,
}

impl MailKey {
    /// Creates a key for emission `emit` of the window's `event`-th event.
    pub fn new(event: u32, emit: u32) -> Self {
        MailKey { event, emit }
    }
}

/// Partition of `n` nodes into `shards` contiguous id ranges.
///
/// Ranges are as even as possible (sizes differ by at most one) and cover the
/// id space exactly; shard 0 owns the lowest ids. The map is pure arithmetic
/// — no per-node table — so lookups are free and the map itself costs a few
/// words regardless of world size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    nodes: u32,
    shards: u32,
}

impl ShardMap {
    /// Creates a map of `nodes` ids over `shards` contiguous ranges. A shard
    /// count of zero is treated as one; shards are capped by the node count
    /// (an empty shard would never be scheduled anyway).
    pub fn new(nodes: usize, shards: usize) -> Self {
        let nodes = nodes as u32;
        let shards = (shards.max(1) as u32).min(nodes.max(1));
        ShardMap { nodes, shards }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards as usize
    }

    /// Number of nodes covered by the map.
    pub fn nodes(&self) -> usize {
        self.nodes as usize
    }

    /// The shard owning `node`.
    pub fn shard_of(&self, node: NodeId) -> usize {
        let idx = node.index() as u64;
        let k = self.shards as u64;
        let n = self.nodes.max(1) as u64;
        // Exact inverse of the floor partition `range(s) = [sn/k, (s+1)n/k)`:
        // s = ⌊((idx+1)·k − 1) / n⌋ (round-tripped against `range` in tests).
        let s = ((idx + 1) * k - 1) / n;
        (s as usize).min(self.shards as usize - 1)
    }

    /// The contiguous id range `[start, end)` owned by `shard`.
    pub fn range(&self, shard: usize) -> std::ops::Range<u32> {
        let s = shard as u64;
        let k = self.shards as u64;
        let n = self.nodes as u64;
        let start = (s * n / k) as u32;
        let end = ((s + 1) * n / k) as u32;
        start..end
    }
}

/// Deterministic per-(source shard, destination shard) ordered mailboxes.
///
/// Shards append entries in ascending [`MailKey`] order during the parallel
/// phase; [`drain_ordered`](Self::drain_ordered) merges all `shards²`
/// mailboxes back into one ascending stream for the sequential commit phase.
/// Cumulative per-(src, dst) counters are kept for observability (the
/// `profile_scenario` tool prints them); they never feed back into execution.
#[derive(Debug)]
pub struct ShardMailboxes<T> {
    shards: usize,
    /// Mailbox `(src, dst)` lives at `src * shards + dst`; each holds
    /// `(key, payload)` entries in ascending key order.
    boxes: Vec<Vec<(MailKey, T)>>,
    /// Cumulative entries ever pushed per `(src, dst)`.
    pushed: Vec<u64>,
}

impl<T> ShardMailboxes<T> {
    /// Creates empty mailboxes for `shards` shards.
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        ShardMailboxes {
            shards,
            boxes: std::iter::repeat_with(Vec::new)
                .take(shards * shards)
                .collect(),
            pushed: vec![0; shards * shards],
        }
    }

    /// Number of shards the mailboxes connect.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Appends an entry to the `(src, dst)` mailbox. Entries of one mailbox
    /// must be pushed in ascending key order (each shard emits in its own
    /// sequential order, so this holds by construction); `drain_ordered`
    /// relies on it.
    pub fn push(&mut self, src: usize, dst: usize, key: MailKey, item: T) {
        debug_assert!(src < self.shards && dst < self.shards);
        let slot = src * self.shards + dst;
        debug_assert!(
            self.boxes[slot]
                .last()
                .map(|(k, _)| *k < key)
                .unwrap_or(true),
            "mailbox entries must be pushed in ascending key order"
        );
        self.boxes[slot].push((key, item));
        self.pushed[slot] += 1;
    }

    /// Total entries currently buffered.
    pub fn pending(&self) -> usize {
        self.boxes.iter().map(Vec::len).sum()
    }

    /// Cumulative entries ever pushed to the `(src, dst)` mailbox.
    pub fn pushed(&self, src: usize, dst: usize) -> u64 {
        self.pushed[src * self.shards + dst]
    }

    /// Cumulative entries ever pushed across all mailboxes, split into
    /// (intra-shard, cross-shard).
    pub fn pushed_totals(&self) -> (u64, u64) {
        let mut intra = 0;
        let mut cross = 0;
        for src in 0..self.shards {
            for dst in 0..self.shards {
                let n = self.pushed(src, dst);
                if src == dst {
                    intra += n;
                } else {
                    cross += n;
                }
            }
        }
        (intra, cross)
    }

    /// Merges every mailbox into `out` in ascending key order and clears the
    /// mailboxes (their capacity is retained for the next window).
    ///
    /// Each mailbox is an ascending run, so this is a k-way merge; the result
    /// is the unique globally sorted order — the exact order a sequential run
    /// emits — independent of how entries were distributed across mailboxes.
    pub fn drain_ordered(&mut self, out: &mut Vec<(MailKey, T)>) {
        out.clear();
        let total = self.pending();
        out.reserve(total);
        // Repeated-min merge over the (at most shards²) run heads. Shard
        // counts are small (≤ 16 in practice), so a head scan beats a heap;
        // `Drain` hands the payloads out by move and leaves each mailbox
        // empty with its capacity retained for the next window.
        let mut heads: Vec<_> = self
            .boxes
            .iter_mut()
            .map(|b| b.drain(..).peekable())
            .collect();
        for _ in 0..total {
            let mut best: Option<(usize, MailKey)> = None;
            for (b, head) in heads.iter_mut().enumerate() {
                if let Some((key, _)) = head.peek() {
                    if best.map(|(_, k)| *key < k).unwrap_or(true) {
                        best = Some((b, *key));
                    }
                }
            }
            let (b, _) = best.expect("pending count matches run contents");
            out.push(heads[b].next().expect("peeked entry must exist"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_map_ranges_are_contiguous_even_and_exhaustive() {
        for (n, k) in [(10usize, 4usize), (7, 3), (100_000, 8), (5, 8), (1, 1)] {
            let map = ShardMap::new(n, k);
            let mut covered = 0u32;
            let mut sizes = Vec::new();
            for s in 0..map.shards() {
                let r = map.range(s);
                assert_eq!(r.start, covered, "ranges must be contiguous");
                covered = r.end;
                sizes.push(r.len());
                for id in r {
                    assert_eq!(map.shard_of(NodeId::new(id)), s, "n={n} k={k} id={id}");
                }
            }
            assert_eq!(covered as usize, n, "ranges must cover the id space");
            let (min, max) = (
                sizes.iter().min().copied().unwrap(),
                sizes.iter().max().copied().unwrap(),
            );
            assert!(max - min <= 1, "ranges must be even: {sizes:?}");
        }
    }

    #[test]
    fn shard_count_is_clamped() {
        assert_eq!(ShardMap::new(4, 0).shards(), 1);
        assert_eq!(ShardMap::new(4, 100).shards(), 4);
    }

    #[test]
    fn mailboxes_merge_back_to_global_order() {
        // Simulate the parallel phase of one window: events 0..12 distributed
        // round-robin over 3 shards, each emitting two entries addressed to
        // rotating destinations. Each shard pushes in its own ascending event
        // order; the merged stream must come back in global (event, emit)
        // order — the sequential order — no matter the distribution.
        let shards = 3;
        let mut boxes: ShardMailboxes<(u32, u32)> = ShardMailboxes::new(shards);
        for event in 0..12u32 {
            let src = (event as usize) % shards;
            for emit in 0..2u32 {
                let dst = (event as usize + emit as usize + 1) % shards;
                boxes.push(src, dst, MailKey::new(event, emit), (event, emit));
            }
        }
        let mut merged = Vec::new();
        boxes.drain_ordered(&mut merged);
        let expected: Vec<(u32, u32)> = (0..12u32)
            .flat_map(|e| (0..2u32).map(move |i| (e, i)))
            .collect();
        assert_eq!(
            merged.iter().map(|(_, p)| *p).collect::<Vec<_>>(),
            expected,
            "merge must reproduce the sequential emission order"
        );
        // Keys come back strictly ascending.
        assert!(merged.windows(2).all(|w| w[0].0 < w[1].0));
        // Mailboxes are empty afterwards; the cumulative counters are not.
        assert_eq!(boxes.pending(), 0);
        let (intra, cross) = boxes.pushed_totals();
        assert_eq!(intra + cross, 24);
        assert!(cross > 0);
    }

    #[test]
    fn mailbox_counters_attribute_per_pair() {
        let mut boxes: ShardMailboxes<u8> = ShardMailboxes::new(2);
        boxes.push(0, 1, MailKey::new(0, 0), 1);
        boxes.push(0, 1, MailKey::new(1, 0), 2);
        boxes.push(1, 1, MailKey::new(2, 0), 3);
        assert_eq!(boxes.pushed(0, 1), 2);
        assert_eq!(boxes.pushed(1, 1), 1);
        assert_eq!(boxes.pushed(1, 0), 0);
        let mut merged = Vec::new();
        boxes.drain_ordered(&mut merged);
        assert_eq!(
            merged.iter().map(|(_, p)| *p).collect::<Vec<_>>(),
            [1, 2, 3]
        );
        // Counters are cumulative: a drain does not reset them.
        assert_eq!(boxes.pushed(0, 1), 2);
    }
}
