//! Seed management for reproducible randomness.
//!
//! Every source of randomness in the reproduction (per-node protocol RNG,
//! per-link loss RNG, workload generators, …) is derived from a single master
//! seed through a splitmix-style mixing function, so that experiments are
//! reproducible and independent random streams do not accidentally correlate.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Mixes a master seed with a stream label into an independent 64-bit seed.
///
/// Uses the splitmix64 finalizer, which is the standard way to expand a single
/// seed into decorrelated streams.
pub fn split_seed(master: u64, stream: u64) -> u64 {
    let mut z = master
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Creates a small, fast RNG for the given `(master, stream)` pair.
pub fn derive_rng(master: u64, stream: u64) -> SmallRng {
    SmallRng::seed_from_u64(split_seed(master, stream))
}

/// A convenience generator of decorrelated seeds/RNGs, handing out one stream
/// after another.
///
/// ```
/// use lifting_sim::SeedSequence;
/// let mut seq = SeedSequence::new(42);
/// let a = seq.next_seed();
/// let b = seq.next_seed();
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone)]
pub struct SeedSequence {
    master: u64,
    next_stream: u64,
}

impl SeedSequence {
    /// Creates a sequence rooted at `master`.
    pub fn new(master: u64) -> Self {
        SeedSequence {
            master,
            next_stream: 0,
        }
    }

    /// Returns the next derived seed.
    pub fn next_seed(&mut self) -> u64 {
        let s = split_seed(self.master, self.next_stream);
        self.next_stream += 1;
        s
    }

    /// Returns an RNG seeded with the next derived seed.
    pub fn next_rng(&mut self) -> SmallRng {
        SmallRng::seed_from_u64(self.next_seed())
    }

    /// Returns an RNG for a fixed, named stream (independent of the sequence
    /// position), useful to give stable streams to components created in
    /// nondeterministic order.
    pub fn named_rng(&self, stream: u64) -> SmallRng {
        derive_rng(self.master, stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn split_seed_is_deterministic() {
        assert_eq!(split_seed(1, 2), split_seed(1, 2));
        assert_ne!(split_seed(1, 2), split_seed(1, 3));
        assert_ne!(split_seed(1, 2), split_seed(2, 2));
    }

    #[test]
    fn derived_rngs_are_reproducible() {
        let mut a = derive_rng(7, 3);
        let mut b = derive_rng(7, 3);
        let xs: Vec<u32> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u32> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn derived_rngs_differ_across_streams() {
        let mut a = derive_rng(7, 0);
        let mut b = derive_rng(7, 1);
        let xs: Vec<u32> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u32> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn sequence_hands_out_distinct_seeds() {
        let mut seq = SeedSequence::new(99);
        let seeds: Vec<u64> = (0..16).map(|_| seq.next_seed()).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len());
    }
}
