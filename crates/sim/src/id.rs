//! Node identifiers.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a node (peer) participating in the system.
///
/// The paper's system model assumes `n` nodes addressable by identity (IP and
/// port on PlanetLab); in the simulation we use dense integer identifiers so
/// they can double as vector indices.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Creates a node identifier from its dense index.
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// The dense index backing this identifier, usable for vector indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<NodeId> for u32 {
    fn from(v: NodeId) -> Self {
        v.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a broadcast stream (channel).
///
/// A deployment serves many concurrent channels over one membership and
/// reputation plane; each channel's data plane (source, chunk stores, playout
/// buffers, verification histories) is keyed by its `StreamId`. Identifiers
/// are dense so they can double as indices into per-stream state vectors.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct StreamId(pub u16);

impl StreamId {
    /// The primary stream: the one every single-channel scenario broadcasts.
    pub const PRIMARY: StreamId = StreamId(0);

    /// Creates a stream identifier from its dense index.
    pub const fn new(index: u16) -> Self {
        StreamId(index)
    }

    /// The dense index backing this identifier, usable for vector indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u16> for StreamId {
    fn from(v: u16) -> Self {
        StreamId(v)
    }
}

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn index_round_trip() {
        let id = NodeId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(u32::from(id), 42);
        assert_eq!(NodeId::from(42u32), id);
    }

    #[test]
    fn usable_as_hash_key() {
        let mut set = HashSet::new();
        set.insert(NodeId::new(1));
        set.insert(NodeId::new(1));
        set.insert(NodeId::new(2));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn display_prefixes_n() {
        assert_eq!(NodeId::new(7).to_string(), "n7");
    }

    #[test]
    fn stream_ids_are_dense_and_ordered() {
        assert_eq!(StreamId::PRIMARY, StreamId::new(0));
        assert_eq!(StreamId::new(3).index(), 3);
        assert!(StreamId::new(1) < StreamId::new(2));
        assert_eq!(StreamId::new(5).to_string(), "s5");
    }
}
