//! Node identifiers.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a node (peer) participating in the system.
///
/// The paper's system model assumes `n` nodes addressable by identity (IP and
/// port on PlanetLab); in the simulation we use dense integer identifiers so
/// they can double as vector indices.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Creates a node identifier from its dense index.
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// The dense index backing this identifier, usable for vector indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<NodeId> for u32 {
    fn from(v: NodeId) -> Self {
        v.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn index_round_trip() {
        let id = NodeId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(u32::from(id), 42);
        assert_eq!(NodeId::from(42u32), id);
    }

    #[test]
    fn usable_as_hash_key() {
        let mut set = HashSet::new();
        set.insert(NodeId::new(1));
        set.insert(NodeId::new(1));
        set.insert(NodeId::new(2));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn display_prefixes_n() {
        assert_eq!(NodeId::new(7).to_string(), "n7");
    }
}
