//! Generic component/provider registry.
//!
//! Scenarios in the reproduction used to be built by hand-enumerated
//! constructors: every new axis (transport policy, loss model, workload
//! shape, adversary, exporter) multiplied the scenario list. This module
//! provides the uniform machinery that turns that O(product) enumeration
//! into O(sum) composition: each axis registers *components* — named,
//! self-describing factories — in a [`ComponentRegistry`], and a scenario is
//! just a composition of component names plus parameter maps.
//!
//! The framework is deliberately small and embedding-agnostic:
//!
//! * [`ParamValue`] / [`ParamMap`] — an ordered, typed key→value bag used to
//!   parameterize component construction.
//! * [`ParamsSchema`] — a component's declared parameters (name, type,
//!   default), used both for documentation (`--list`) and for validation
//!   before `build` runs.
//! * [`Component`] — the factory trait: `name()`, `description()`,
//!   `params_schema()` and `build(&ParamMap, &mut SeedSplitter)`.
//! * [`ComponentRegistry`] — typed lookup by name with structured
//!   [`ComponentError`]s (never panics) on unknown names, duplicate
//!   registration, missing/ill-typed/unknown parameters.
//! * [`SeedSplitter`] — hands components decorrelated RNG streams off the
//!   scenario's master seed without letting construction order perturb the
//!   streams other components see.

use crate::rng::derive_rng;
use rand::rngs::SmallRng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A typed parameter value accepted by component factories.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ParamValue {
    /// Boolean flag.
    Bool(bool),
    /// Signed integer (counts, node indices, stream ids).
    Int(i64),
    /// Floating-point value (fractions, rates, durations in seconds).
    Float(f64),
    /// Free-form text (sub-component names, labels).
    Text(String),
}

impl ParamValue {
    /// The human-readable name of this value's type, used in error messages
    /// and schema listings.
    pub fn kind_name(&self) -> &'static str {
        match self {
            ParamValue::Bool(_) => "bool",
            ParamValue::Int(_) => "int",
            ParamValue::Float(_) => "float",
            ParamValue::Text(_) => "text",
        }
    }
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamValue::Bool(b) => write!(f, "{b}"),
            ParamValue::Int(i) => write!(f, "{i}"),
            ParamValue::Float(x) => write!(f, "{x}"),
            ParamValue::Text(s) => write!(f, "{s}"),
        }
    }
}

/// An ordered key→value map of component parameters.
///
/// Insertion order is preserved so that rendered compositions (`--list`,
/// manifests) are stable across runs; lookups are linear, which is fine for
/// the handful of parameters a component takes.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ParamMap {
    entries: Vec<(String, ParamValue)>,
}

impl ParamMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        ParamMap::default()
    }

    /// Inserts (or replaces) a parameter, builder-style.
    pub fn with(mut self, key: &str, value: ParamValue) -> Self {
        self.set(key, value);
        self
    }

    /// Inserts (or replaces) a parameter.
    pub fn set(&mut self, key: &str, value: ParamValue) {
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key.to_string(), value));
        }
    }

    /// Looks up a parameter by key.
    pub fn get(&self, key: &str) -> Option<&ParamValue> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Iterates over `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ParamValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no parameters are set.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Renders `key=value,key=value` for compositions and manifests.
    pub fn render(&self) -> String {
        self.entries
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// The declared type of a schema parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamKind {
    /// Expects [`ParamValue::Bool`].
    Bool,
    /// Expects [`ParamValue::Int`].
    Int,
    /// Expects [`ParamValue::Float`] (an `Int` is accepted and widened).
    Float,
    /// Expects [`ParamValue::Text`].
    Text,
}

impl ParamKind {
    /// Human-readable type name.
    pub fn name(self) -> &'static str {
        match self {
            ParamKind::Bool => "bool",
            ParamKind::Int => "int",
            ParamKind::Float => "float",
            ParamKind::Text => "text",
        }
    }

    fn accepts(self, value: &ParamValue) -> bool {
        matches!(
            (self, value),
            (ParamKind::Bool, ParamValue::Bool(_))
                | (ParamKind::Int, ParamValue::Int(_))
                | (ParamKind::Float, ParamValue::Float(_))
                | (ParamKind::Float, ParamValue::Int(_))
                | (ParamKind::Text, ParamValue::Text(_))
        )
    }
}

/// One declared parameter of a component.
#[derive(Debug, Clone)]
pub struct ParamSpec {
    /// Parameter key as it appears in a [`ParamMap`].
    pub key: &'static str,
    /// Expected value type.
    pub kind: ParamKind,
    /// Default used when the parameter is omitted; `None` marks it required.
    pub default: Option<ParamValue>,
    /// One-line description for `--list` output.
    pub doc: &'static str,
}

impl ParamSpec {
    /// A required parameter.
    pub fn required(key: &'static str, kind: ParamKind, doc: &'static str) -> Self {
        ParamSpec {
            key,
            kind,
            default: None,
            doc,
        }
    }

    /// An optional parameter with a default.
    pub fn optional(
        key: &'static str,
        kind: ParamKind,
        default: ParamValue,
        doc: &'static str,
    ) -> Self {
        ParamSpec {
            key,
            kind,
            default: Some(default),
            doc,
        }
    }
}

/// The full declared parameter set of a component.
#[derive(Debug, Clone, Default)]
pub struct ParamsSchema {
    /// Declared parameters, in display order.
    pub params: Vec<ParamSpec>,
}

impl ParamsSchema {
    /// A schema with no parameters.
    pub fn empty() -> Self {
        ParamsSchema::default()
    }

    /// A schema from a list of specs.
    pub fn of(params: Vec<ParamSpec>) -> Self {
        ParamsSchema { params }
    }

    /// Validates `params` against this schema for component `component`:
    /// every required key present, every present key declared and of the
    /// declared type. Returns the effective map with defaults filled in.
    pub fn validate(&self, component: &str, params: &ParamMap) -> Result<ParamMap, ComponentError> {
        for (key, value) in params.iter() {
            match self.params.iter().find(|spec| spec.key == key) {
                None => {
                    return Err(ComponentError::UnknownParam {
                        component: component.to_string(),
                        key: key.to_string(),
                        known: self.params.iter().map(|s| s.key.to_string()).collect(),
                    })
                }
                Some(spec) if !spec.kind.accepts(value) => {
                    return Err(ComponentError::BadParamType {
                        component: component.to_string(),
                        key: key.to_string(),
                        expected: spec.kind.name(),
                        got: value.kind_name(),
                    })
                }
                Some(_) => {}
            }
        }
        let mut effective = ParamMap::new();
        for spec in &self.params {
            match params.get(spec.key) {
                Some(value) => effective.set(spec.key, value.clone()),
                None => match &spec.default {
                    Some(default) => effective.set(spec.key, default.clone()),
                    None => {
                        return Err(ComponentError::MissingParam {
                            component: component.to_string(),
                            key: spec.key.to_string(),
                        })
                    }
                },
            }
        }
        Ok(effective)
    }
}

/// Structured errors from component lookup, validation and construction.
///
/// Every variant names the offending component and (where applicable) the
/// offending parameter key, so callers can surface actionable messages
/// without string-parsing. Nothing in the registry path panics.
#[derive(Debug, Clone, PartialEq)]
pub enum ComponentError {
    /// No component with that name is registered under the kind.
    UnknownComponent {
        /// Registry kind (e.g. `"workload"`).
        kind: String,
        /// The name that failed to resolve.
        name: String,
        /// All registered names, for the error message.
        known: Vec<String>,
    },
    /// A component with that name is already registered under the kind.
    DuplicateComponent {
        /// Registry kind.
        kind: String,
        /// The name registered twice.
        name: String,
    },
    /// A required parameter was not supplied.
    MissingParam {
        /// Component name.
        component: String,
        /// The missing key.
        key: String,
    },
    /// A supplied parameter has the wrong type.
    BadParamType {
        /// Component name.
        component: String,
        /// The offending key.
        key: String,
        /// Declared type.
        expected: &'static str,
        /// Supplied type.
        got: &'static str,
    },
    /// A supplied parameter is not declared by the component's schema.
    UnknownParam {
        /// Component name.
        component: String,
        /// The offending key.
        key: String,
        /// Declared keys, for the error message.
        known: Vec<String>,
    },
    /// A parameter passed schema validation but is semantically invalid
    /// (out of range, inconsistent with another parameter, …).
    InvalidParam {
        /// Component name.
        component: String,
        /// The offending key.
        key: String,
        /// Why the value was rejected.
        reason: String,
    },
}

impl fmt::Display for ComponentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComponentError::UnknownComponent { kind, name, known } => write!(
                f,
                "unknown {kind} component `{name}` (known: {})",
                known.join(", ")
            ),
            ComponentError::DuplicateComponent { kind, name } => {
                write!(f, "duplicate {kind} component `{name}`")
            }
            ComponentError::MissingParam { component, key } => {
                write!(f, "component `{component}`: missing required param `{key}`")
            }
            ComponentError::BadParamType {
                component,
                key,
                expected,
                got,
            } => write!(
                f,
                "component `{component}`: param `{key}` expects {expected}, got {got}"
            ),
            ComponentError::UnknownParam {
                component,
                key,
                known,
            } => write!(
                f,
                "component `{component}`: unknown param `{key}` (declared: {})",
                known.join(", ")
            ),
            ComponentError::InvalidParam {
                component,
                key,
                reason,
            } => write!(
                f,
                "component `{component}`: invalid param `{key}`: {reason}"
            ),
        }
    }
}

impl std::error::Error for ComponentError {}

/// Hands components decorrelated RNG streams off a scenario's master seed.
///
/// Components must not share streams with each other or with the world's
/// fixed streams, and construction order must not change which stream a
/// given component sees — so the splitter only exposes *named* streams
/// (fixed `u64` labels), mixed through the same splitmix64 expansion as the
/// rest of the reproduction.
#[derive(Debug, Clone)]
pub struct SeedSplitter {
    master: u64,
}

impl SeedSplitter {
    /// A splitter rooted at the scenario's master seed.
    pub fn new(master: u64) -> Self {
        SeedSplitter { master }
    }

    /// The master seed this splitter was rooted at.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// A decorrelated seed for the fixed stream label.
    pub fn seed(&self, stream: u64) -> u64 {
        crate::rng::split_seed(self.master, stream)
    }

    /// An RNG for the fixed stream label.
    pub fn named_rng(&mut self, stream: u64) -> SmallRng {
        derive_rng(self.master, stream)
    }
}

/// A named, self-describing factory for providers of type `P`.
///
/// `P` is the provider the embedding crate wants out of this registry kind:
/// a `TransportPolicy`, a boxed `WorkloadGenerator`, a boxed adversary
/// factory, an exporter — the framework does not care.
pub trait Component<P>: Send + Sync {
    /// Registry-unique component name (e.g. `"diurnal"`).
    fn name(&self) -> &'static str;
    /// One-line description for `--list` output.
    fn description(&self) -> &'static str {
        ""
    }
    /// Declared parameters; validated before [`Component::build`] runs.
    fn params_schema(&self) -> ParamsSchema {
        ParamsSchema::empty()
    }
    /// Constructs the provider from validated parameters.
    ///
    /// `params` has already passed [`ParamsSchema::validate`] — every
    /// declared key is present (defaults filled in) and correctly typed.
    /// Implementations should still return [`ComponentError::InvalidParam`]
    /// for semantically invalid values rather than panic.
    fn build(&self, params: &ParamMap, seeds: &mut SeedSplitter) -> Result<P, ComponentError>;
}

/// A typed registry of [`Component`]s of one kind.
pub struct ComponentRegistry<P> {
    kind: &'static str,
    entries: Vec<Box<dyn Component<P>>>,
}

impl<P> ComponentRegistry<P> {
    /// An empty registry for components of the given kind
    /// (e.g. `"transport"`, `"workload"`).
    pub fn new(kind: &'static str) -> Self {
        ComponentRegistry {
            kind,
            entries: Vec::new(),
        }
    }

    /// The registry's kind label.
    pub fn kind(&self) -> &'static str {
        self.kind
    }

    /// Registers a component; duplicate names are a structured error, not a
    /// silent replacement or a panic.
    pub fn register(&mut self, component: Box<dyn Component<P>>) -> Result<(), ComponentError> {
        if self.entries.iter().any(|c| c.name() == component.name()) {
            return Err(ComponentError::DuplicateComponent {
                kind: self.kind.to_string(),
                name: component.name().to_string(),
            });
        }
        self.entries.push(component);
        Ok(())
    }

    /// Looks up a component by name.
    pub fn get(&self, name: &str) -> Result<&dyn Component<P>, ComponentError> {
        self.entries
            .iter()
            .find(|c| c.name() == name)
            .map(|c| c.as_ref())
            .ok_or_else(|| ComponentError::UnknownComponent {
                kind: self.kind.to_string(),
                name: name.to_string(),
                known: self.names().map(str::to_string).collect(),
            })
    }

    /// Validates `params` against the named component's schema and builds
    /// the provider.
    pub fn build(
        &self,
        name: &str,
        params: &ParamMap,
        seeds: &mut SeedSplitter,
    ) -> Result<P, ComponentError> {
        let component = self.get(name)?;
        let effective = component.params_schema().validate(name, params)?;
        component.build(&effective, seeds)
    }

    /// Registered component names in registration order.
    pub fn names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.entries.iter().map(|c| c.name())
    }

    /// Registered components in registration order.
    pub fn components(&self) -> impl Iterator<Item = &dyn Component<P>> {
        self.entries.iter().map(|c| c.as_ref())
    }

    /// Number of registered components.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl<P> fmt::Debug for ComponentRegistry<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ComponentRegistry")
            .field("kind", &self.kind)
            .field("names", &self.names().collect::<Vec<_>>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Doubler;

    impl Component<i64> for Doubler {
        fn name(&self) -> &'static str {
            "doubler"
        }
        fn params_schema(&self) -> ParamsSchema {
            ParamsSchema::of(vec![
                ParamSpec::required("x", ParamKind::Int, "input"),
                ParamSpec::optional("bias", ParamKind::Int, ParamValue::Int(0), "added after"),
            ])
        }
        fn build(
            &self,
            params: &ParamMap,
            _seeds: &mut SeedSplitter,
        ) -> Result<i64, ComponentError> {
            let x = match params.get("x") {
                Some(ParamValue::Int(x)) => *x,
                _ => unreachable!("schema-validated"),
            };
            let bias = match params.get("bias") {
                Some(ParamValue::Int(b)) => *b,
                _ => unreachable!("schema-validated"),
            };
            Ok(2 * x + bias)
        }
    }

    fn registry() -> ComponentRegistry<i64> {
        let mut reg = ComponentRegistry::new("math");
        reg.register(Box::new(Doubler)).unwrap();
        reg
    }

    #[test]
    fn builds_with_defaults_filled_in() {
        let reg = registry();
        let mut seeds = SeedSplitter::new(1);
        let params = ParamMap::new().with("x", ParamValue::Int(21));
        assert_eq!(reg.build("doubler", &params, &mut seeds), Ok(42));
    }

    #[test]
    fn unknown_component_is_structured_err() {
        let reg = registry();
        let mut seeds = SeedSplitter::new(1);
        let err = reg
            .build("tripler", &ParamMap::new(), &mut seeds)
            .unwrap_err();
        match &err {
            ComponentError::UnknownComponent { kind, name, known } => {
                assert_eq!(kind, "math");
                assert_eq!(name, "tripler");
                assert_eq!(known, &vec!["doubler".to_string()]);
            }
            other => panic!("wrong error: {other:?}"),
        }
        assert!(err.to_string().contains("tripler"));
    }

    #[test]
    fn missing_required_param_names_the_key() {
        let reg = registry();
        let mut seeds = SeedSplitter::new(1);
        let err = reg
            .build("doubler", &ParamMap::new(), &mut seeds)
            .unwrap_err();
        assert!(matches!(&err, ComponentError::MissingParam { key, .. } if key == "x"));
        assert!(err.to_string().contains("`x`"));
    }

    #[test]
    fn ill_typed_param_names_the_key_and_types() {
        let reg = registry();
        let mut seeds = SeedSplitter::new(1);
        let params = ParamMap::new().with("x", ParamValue::Text("nope".into()));
        let err = reg.build("doubler", &params, &mut seeds).unwrap_err();
        match &err {
            ComponentError::BadParamType {
                key, expected, got, ..
            } => {
                assert_eq!(key, "x");
                assert_eq!(*expected, "int");
                assert_eq!(*got, "text");
            }
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn unknown_param_is_rejected() {
        let reg = registry();
        let mut seeds = SeedSplitter::new(1);
        let params = ParamMap::new()
            .with("x", ParamValue::Int(1))
            .with("zmod", ParamValue::Int(9));
        let err = reg.build("doubler", &params, &mut seeds).unwrap_err();
        assert!(matches!(&err, ComponentError::UnknownParam { key, .. } if key == "zmod"));
    }

    #[test]
    fn duplicate_registration_is_err_not_panic() {
        let mut reg = registry();
        let err = reg.register(Box::new(Doubler)).unwrap_err();
        assert_eq!(
            err,
            ComponentError::DuplicateComponent {
                kind: "math".to_string(),
                name: "doubler".to_string(),
            }
        );
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn float_param_accepts_int_widening() {
        struct Scaler;
        impl Component<f64> for Scaler {
            fn name(&self) -> &'static str {
                "scaler"
            }
            fn params_schema(&self) -> ParamsSchema {
                ParamsSchema::of(vec![ParamSpec::required("f", ParamKind::Float, "factor")])
            }
            fn build(
                &self,
                params: &ParamMap,
                _s: &mut SeedSplitter,
            ) -> Result<f64, ComponentError> {
                Ok(match params.get("f") {
                    Some(ParamValue::Float(x)) => *x,
                    Some(ParamValue::Int(x)) => *x as f64,
                    _ => unreachable!(),
                })
            }
        }
        let mut reg = ComponentRegistry::new("scale");
        reg.register(Box::new(Scaler)).unwrap();
        let mut seeds = SeedSplitter::new(1);
        let params = ParamMap::new().with("f", ParamValue::Int(3));
        assert_eq!(reg.build("scaler", &params, &mut seeds), Ok(3.0));
    }

    #[test]
    fn seed_splitter_streams_are_stable_and_decorrelated() {
        let a = SeedSplitter::new(42).seed(10);
        let b = SeedSplitter::new(42).seed(10);
        let c = SeedSplitter::new(42).seed(11);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
