//! Time-ordered event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An entry in the queue. Ordered by time, with a monotonically increasing
/// sequence number as a tie-breaker so that events scheduled for the same
/// instant are delivered in scheduling order (FIFO), which keeps runs
/// deterministic.
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is popped first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A priority queue of events keyed by simulated time.
///
/// Events at equal times are delivered in the order they were pushed.
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` for delivery at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Schedules a batch of events, delivered at their respective times;
    /// events with equal times keep the iterator's order (FIFO, like
    /// consecutive [`push`](Self::push) calls).
    ///
    /// Reserves heap capacity up front from the iterator's size hint, so
    /// pushing a drained scratch buffer whose capacity the heap has already
    /// absorbed performs no allocation.
    pub fn push_batch<I>(&mut self, events: I)
    where
        I: IntoIterator<Item = (SimTime, E)>,
    {
        let events = events.into_iter();
        let (lower, _) = events.size_hint();
        if lower > 1 {
            self.heap.reserve(lower);
        }
        for (time, event) in events {
            self.push(time, event);
        }
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// The delivery time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(30), "c");
        q.push(SimTime::from_millis(10), "a");
        q.push(SimTime::from_millis(20), "b");
        assert_eq!(q.pop(), Some((SimTime::from_millis(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(20), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.push(t, i);
        }
        let popped: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(popped, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn push_batch_matches_individual_pushes() {
        let t = SimTime::from_millis(1);
        let mut batched = EventQueue::new();
        batched.push(SimTime::from_millis(2), 100);
        batched.push_batch((0..50).map(|i| (t, i)));
        let mut pushed = EventQueue::new();
        pushed.push(SimTime::from_millis(2), 100);
        for i in 0..50 {
            pushed.push(t, i);
        }
        let drain = |mut q: EventQueue<i32>| -> Vec<(SimTime, i32)> {
            std::iter::from_fn(|| q.pop()).collect()
        };
        assert_eq!(drain(batched), drain(pushed));
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(2), ());
        q.push(SimTime::from_secs(1), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }
}
