//! Time-ordered event queue: a deterministic hierarchical time wheel.
//!
//! The queue used to be a single `BinaryHeap`, which made every push and pop
//! an `O(log n)` sift over the whole pending set. Simulation workloads are
//! heavily skewed towards the near future (network latencies of a few
//! milliseconds, gossip periods of half a second), so the queue is now a
//! two-level time wheel:
//!
//! * a **front heap** holding only the events of the slot currently being
//!   drained — pops are `O(log k)` with `k` the events of one ~1 ms slot;
//! * **level 0**: 256 slots of 1.024 ms each (~0.26 s of horizon), plain FIFO
//!   `Vec` buckets — pushes are `O(1)`, no ordering work until the slot is
//!   promoted;
//! * **level 1**: 64 buckets of ~0.26 s each (~16.8 s of horizon), scattered
//!   into level 0 when the cursor reaches them;
//! * an **overflow heap** for events beyond the level-1 horizon (periodic
//!   timers many seconds out), refilled into the wheels when reached.
//!
//! # Ordering contract
//!
//! Pop order is *exactly* the order the old `BinaryHeap` produced: strictly
//! increasing `(time, seq)` where `seq` is the global push counter. Buckets
//! keep FIFO push order and are only ordered (by promotion into the front
//! heap) when the cursor reaches them; since `seq` is monotone, FIFO within a
//! bucket and the `(time, seq)` sort agree. Events pushed for instants that
//! already passed go straight into the front heap, so arbitrary push/pop
//! interleavings — including pushes "in the past" — pop in the same order a
//! reference heap would produce (see the property test in
//! `tests/wheel_vs_heap.rs`). This is what keeps every golden digest
//! bit-identical across the data-structure swap.
//!
//! # Allocation contract
//!
//! At steady state the queue allocates nothing: bucket `Vec`s and the two
//! heaps retain their capacity across promotions, so once every ring index
//! has been touched at its peak occupancy (one full level-0 rotation of the
//! hottest phase), the event loop runs allocation-free (pinned by
//! `tests/zero_alloc.rs`).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Log2 of the level-0 slot width in microseconds (1024 µs per slot).
const L0_SHIFT: u32 = 10;
/// Number of level-0 slots; must be `1 << (L1_SHIFT - L0_SHIFT)` so one
/// level-1 bucket scatters exactly over the level-0 ring.
const L0_SLOTS: usize = 256;
/// Log2 of the level-1 bucket width in microseconds (~262 ms per bucket).
const L1_SHIFT: u32 = 18;
/// Number of level-1 buckets (~16.8 s of horizon beyond level 0).
const L1_SLOTS: usize = 64;

/// An entry in the queue. Ordered by time, with a monotonically increasing
/// sequence number as a tie-breaker so that events scheduled for the same
/// instant are delivered in scheduling order (FIFO), which keeps runs
/// deterministic.
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is popped first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A priority queue of events keyed by simulated time.
///
/// Events at equal times are delivered in the order they were pushed.
pub struct EventQueue<E> {
    /// Events earlier than `window_end`, sorted by `(time, seq)` in
    /// *descending* order so the next event is popped from the back in O(1).
    /// Mid-window pushes (events landing before `window_end`) are rare —
    /// latencies are longer than a slot — and insert by binary search.
    front: Vec<Scheduled<E>>,
    /// Exclusive upper bound (µs) of the front heap's coverage. Every event
    /// stored outside `front` is at `window_end` or later.
    window_end: u64,
    /// Level-0 ring: FIFO buckets for absolute slots
    /// `[l0_base, l0_base + L0_SLOTS)` where `slot = micros >> L0_SHIFT`.
    l0: Vec<Vec<Scheduled<E>>>,
    /// Absolute slot index of `l0[0]`.
    l0_base: u64,
    /// First level-0 index not yet promoted into the front heap.
    l0_cursor: usize,
    /// Level-1 ring: FIFO buckets for absolute slots
    /// `[l1_base, l1_base + L1_SLOTS)` where `slot = micros >> L1_SHIFT`.
    l1: Vec<Vec<Scheduled<E>>>,
    /// Absolute slot index of `l1[0]`.
    l1_base: u64,
    /// First level-1 index not yet scattered into level 0.
    l1_cursor: usize,
    /// Events at or beyond the level-1 horizon.
    overflow: BinaryHeap<Scheduled<E>>,
    /// Warmed, empty bucket `Vec`s recycled across ring indices. Promoting a
    /// bucket parks its capacity here and the next occupied index picks it
    /// up, so steady-state capacity follows the cursor around the rings
    /// instead of being re-grown (allocated) at every first-touched index.
    pool: Vec<Vec<Scheduled<E>>>,
    len: usize,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        // Invariant wiring: the level-0 range must end exactly where the next
        // unscattered level-1 bucket begins, i.e.
        // `(l0_base + L0_SLOTS) << L0_SHIFT == (l1_base + l1_cursor) << L1_SHIFT`.
        // Starting at slot 0 on both levels, that makes bucket 0 of level 1
        // permanently covered by level 0, so the cursor starts past it.
        EventQueue {
            front: Vec::new(),
            window_end: 0,
            l0: std::iter::repeat_with(Vec::new).take(L0_SLOTS).collect(),
            l0_base: 0,
            l0_cursor: 0,
            l1: std::iter::repeat_with(Vec::new).take(L1_SLOTS).collect(),
            l1_base: 0,
            l1_cursor: 1,
            overflow: BinaryHeap::new(),
            pool: Vec::new(),
            len: 0,
            next_seq: 0,
        }
    }

    /// Appends `s` to `bucket`, seeding the bucket with a warmed `Vec` from
    /// the pool when it has never been touched (or was just promoted).
    #[inline]
    fn bucket_push(
        pool: &mut Vec<Vec<Scheduled<E>>>,
        bucket: &mut Vec<Scheduled<E>>,
        s: Scheduled<E>,
    ) {
        if bucket.capacity() == 0 {
            if let Some(warm) = pool.pop() {
                *bucket = warm;
            }
        }
        bucket.push(s);
    }

    /// End (µs, exclusive) of the level-1 coverage.
    #[inline]
    fn l1_end(&self) -> u64 {
        (self.l1_base + L1_SLOTS as u64) << L1_SHIFT
    }

    /// Inserts `s` into the sorted front at its ordered position.
    fn front_insert(front: &mut Vec<Scheduled<E>>, s: Scheduled<E>) {
        let key = (s.time, s.seq);
        let idx = front.partition_point(|e| (e.time, e.seq) > key);
        front.insert(idx, s);
    }

    #[inline]
    fn route(&mut self, s: Scheduled<E>) {
        let m = s.time.as_micros();
        if m < self.window_end {
            Self::front_insert(&mut self.front, s);
        } else if (m >> L0_SHIFT) < self.l0_base + L0_SLOTS as u64 {
            // `m >= window_end >= l0_base << L0_SHIFT`, so the subtraction
            // cannot underflow and the slot is at or past the cursor.
            let idx = ((m >> L0_SHIFT) - self.l0_base) as usize;
            Self::bucket_push(&mut self.pool, &mut self.l0[idx], s);
        } else if (m >> L1_SHIFT) < self.l1_base + L1_SLOTS as u64 {
            let idx = ((m >> L1_SHIFT) - self.l1_base) as usize;
            Self::bucket_push(&mut self.pool, &mut self.l1[idx], s);
        } else {
            self.overflow.push(s);
        }
    }

    /// Schedules `event` for delivery at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        self.route(Scheduled { time, seq, event });
    }

    /// Schedules a batch of events, delivered at their respective times;
    /// events with equal times keep the iterator's order (FIFO, like
    /// consecutive [`push`](Self::push) calls).
    ///
    /// Wheel buckets absorb pushes in O(1) with pooled capacity, so the only
    /// tier whose insertions are not pre-sized is the front buffer (events
    /// landing inside the already-promoted window — rare, since latencies
    /// exceed a slot). Reserving the size hint there — including for
    /// single-event batches, which the old heap-based code skipped — bounds
    /// the worst case where a whole batch lands sub-window.
    pub fn push_batch<I>(&mut self, events: I)
    where
        I: IntoIterator<Item = (SimTime, E)>,
    {
        let events = events.into_iter();
        let (lower, _) = events.size_hint();
        if lower > 0 {
            self.front.reserve(lower);
        }
        for (time, event) in events {
            self.push(time, event);
        }
    }

    /// Moves the cursor forward until the front heap holds the earliest
    /// pending events. No-op when the front heap is already non-empty or the
    /// queue holds nothing outside it.
    fn advance(&mut self) {
        debug_assert!(self.front.is_empty());
        if self.len == 0 {
            return;
        }
        loop {
            // Level 0: promote the next non-empty slot into the front heap.
            while self.l0_cursor < L0_SLOTS {
                let i = self.l0_cursor;
                self.l0_cursor += 1;
                if !self.l0[i].is_empty() {
                    self.window_end = (self.l0_base + i as u64 + 1) << L0_SHIFT;
                    // The front is empty here (advance's precondition), so
                    // the whole slot becomes the new front after one sort.
                    std::mem::swap(&mut self.front, &mut self.l0[i]);
                    self.front.sort_unstable_by_key(|e| {
                        (std::cmp::Reverse(e.time), std::cmp::Reverse(e.seq))
                    });
                    let slot = std::mem::take(&mut self.l0[i]);
                    self.pool.push(slot); // recycle the warmed capacity
                    return;
                }
            }
            // Level 1: scatter the next non-empty bucket over level 0.
            let mut scattered = false;
            while self.l1_cursor < L1_SLOTS {
                let i = self.l1_cursor;
                self.l1_cursor += 1;
                if !self.l1[i].is_empty() {
                    let bucket_abs = self.l1_base + i as u64;
                    self.l0_base = bucket_abs << (L1_SHIFT - L0_SHIFT);
                    self.l0_cursor = 0;
                    self.window_end = self.l0_base << L0_SHIFT;
                    let mut bucket = std::mem::take(&mut self.l1[i]);
                    for s in bucket.drain(..) {
                        let idx = ((s.time.as_micros() >> L0_SHIFT) - self.l0_base) as usize;
                        Self::bucket_push(&mut self.pool, &mut self.l0[idx], s);
                    }
                    self.pool.push(bucket);
                    scattered = true;
                    break;
                }
            }
            if scattered {
                continue;
            }
            // Both wheels are drained: refill level 1 from the overflow heap.
            let Some(first) = self.overflow.peek() else {
                return; // everything pending already sits in the front heap
            };
            self.l1_base = first.time.as_micros() >> L1_SHIFT;
            self.l1_cursor = 0;
            let horizon = self.l1_end();
            while let Some(s) = self.overflow.peek() {
                if s.time.as_micros() >= horizon {
                    break;
                }
                let s = self.overflow.pop().expect("peeked event must exist");
                let idx = ((s.time.as_micros() >> L1_SHIFT) - self.l1_base) as usize;
                Self::bucket_push(&mut self.pool, &mut self.l1[idx], s);
            }
            // Park level 0 at the end of its (now stale) range; the next
            // iteration scatters the first refilled bucket and re-bases it.
            self.l0_cursor = L0_SLOTS;
        }
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.front.is_empty() {
            self.advance();
        }
        let s = self.front.pop()?;
        self.len -= 1;
        Some((s.time, s.event))
    }

    /// Removes and returns the earliest event if it is due at or before
    /// `deadline`. This is the engine's fast path: a single ordering
    /// comparison decides both "is there an event" and "is it due", instead
    /// of a `peek_time` probe followed by a `pop`.
    pub fn pop_due(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        if self.front.is_empty() {
            self.advance();
        }
        match self.front.last() {
            Some(s) if s.time <= deadline => {
                let s = self.front.pop().expect("peeked event must exist");
                self.len -= 1;
                Some((s.time, s.event))
            }
            _ => None,
        }
    }

    /// Removes and returns the earliest event if it is due at or before
    /// `deadline` **and** `take` approves it; a rejected event stays at the
    /// head of the queue, untouched.
    ///
    /// This is the sharded engine's wave-collection primitive: it gathers a
    /// maximal run of same-timestamp, same-kind events without ever popping
    /// the event that terminates the run. Like [`pop_due`](Self::pop_due) it
    /// may advance the wheel cursor to materialize the head — that is
    /// internal bookkeeping `pop_due` performs identically and never changes
    /// pop order.
    pub fn pop_due_if(
        &mut self,
        deadline: SimTime,
        take: impl FnOnce(SimTime, &E) -> bool,
    ) -> Option<(SimTime, E)> {
        if self.front.is_empty() {
            self.advance();
        }
        match self.front.last() {
            Some(s) if s.time <= deadline && take(s.time, &s.event) => {
                let s = self.front.pop().expect("peeked event must exist");
                self.len -= 1;
                Some((s.time, s.event))
            }
            _ => None,
        }
    }

    /// The delivery time of the earliest pending event, if any.
    ///
    /// Cold path (`&self` cannot advance the cursor): when the front heap is
    /// empty this scans the wheels for the earliest bucket. The engine's hot
    /// loop uses [`pop_due`](Self::pop_due) instead.
    pub fn peek_time(&self) -> Option<SimTime> {
        if let Some(s) = self.front.last() {
            return Some(s.time);
        }
        let min_of = |bucket: &[Scheduled<E>]| bucket.iter().map(|s| s.time).min();
        for slot in &self.l0[self.l0_cursor..] {
            if let Some(t) = min_of(slot) {
                return Some(t);
            }
        }
        for bucket in &self.l1[self.l1_cursor.min(L1_SLOTS)..] {
            if let Some(t) = min_of(bucket) {
                return Some(t);
            }
        }
        self.overflow.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.len)
            .field("next_seq", &self.next_seq)
            .field("window_end_us", &self.window_end)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(30), "c");
        q.push(SimTime::from_millis(10), "a");
        q.push(SimTime::from_millis(20), "b");
        assert_eq!(q.pop(), Some((SimTime::from_millis(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(20), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.push(t, i);
        }
        let popped: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(popped, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn push_batch_matches_individual_pushes() {
        let t = SimTime::from_millis(1);
        let mut batched = EventQueue::new();
        batched.push(SimTime::from_millis(2), 100);
        batched.push_batch((0..50).map(|i| (t, i)));
        let mut pushed = EventQueue::new();
        pushed.push(SimTime::from_millis(2), 100);
        for i in 0..50 {
            pushed.push(t, i);
        }
        let drain = |mut q: EventQueue<i32>| -> Vec<(SimTime, i32)> {
            std::iter::from_fn(|| q.pop()).collect()
        };
        assert_eq!(drain(batched), drain(pushed));
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(2), ());
        q.push(SimTime::from_secs(1), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }

    #[test]
    fn pop_due_respects_the_deadline() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(10), "a");
        q.push(SimTime::from_millis(30), "b");
        assert_eq!(
            q.pop_due(SimTime::from_millis(20)),
            Some((SimTime::from_millis(10), "a"))
        );
        assert_eq!(q.pop_due(SimTime::from_millis(20)), None);
        assert_eq!(q.len(), 1, "the undue event stays queued");
        assert_eq!(
            q.pop_due(SimTime::from_millis(30)),
            Some((SimTime::from_millis(30), "b"))
        );
        assert_eq!(q.pop_due(SimTime::MAX), None);
    }

    #[test]
    fn pop_due_if_leaves_rejected_events_queued() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(3);
        q.push(t, "wave");
        q.push(t, "barrier");
        q.push(SimTime::from_millis(9), "later");
        // Accept only "wave"-kind events: the barrier terminates the run but
        // must stay at the head for the plain pop that follows.
        assert_eq!(
            q.pop_due_if(SimTime::MAX, |_, e| *e == "wave"),
            Some((t, "wave"))
        );
        assert_eq!(q.pop_due_if(SimTime::MAX, |_, e| *e == "wave"), None);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((t, "barrier")));
        // The deadline is checked before the predicate runs.
        assert_eq!(q.pop_due_if(SimTime::from_millis(5), |_, _| true), None);
        assert_eq!(q.pop(), Some((SimTime::from_millis(9), "later")));
    }

    #[test]
    fn events_across_every_tier_pop_in_order() {
        // One event per tier: front (past), level 0, level 1, overflow.
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(120), "overflow");
        q.push(SimTime::from_millis(2), "l0");
        q.push(SimTime::from_secs(5), "l1");
        assert_eq!(q.pop(), Some((SimTime::from_millis(2), "l0")));
        // The cursor has advanced past 2 ms; a push before that instant must
        // still pop first (BinaryHeap-equivalent semantics).
        q.push(SimTime::from_millis(1), "past");
        assert_eq!(q.pop(), Some((SimTime::from_millis(1), "past")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(5), "l1")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(120), "overflow")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_events_survive_many_horizon_refills() {
        let mut q = EventQueue::new();
        // Three overflow refills apart (level-1 horizon is ~16.8 s).
        for secs in [1u64, 20, 45, 90] {
            q.push(SimTime::from_secs(secs), secs);
        }
        let popped: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(popped, vec![1, 20, 45, 90]);
    }
}
