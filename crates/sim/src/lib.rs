//! Deterministic discrete-event simulation engine for the LiFTinG reproduction.
//!
//! The whole reproduction runs on a single-threaded, seeded, discrete-event
//! simulator instead of a wall-clock async runtime. This gives two properties
//! the experiments of the paper need:
//!
//! * **Determinism** — every figure and table can be regenerated bit-for-bit
//!   from a seed, which makes the results auditable.
//! * **Speed** — a 10,000-node Monte-Carlo run (Figures 10–13 of the paper)
//!   executes faster than real time on a laptop, something a real-clock
//!   runtime cannot do.
//!
//! The engine is intentionally generic: the event type is chosen by the
//! embedding crate (see `lifting-runtime`), and protocol logic elsewhere in
//! the workspace is written *sans-IO* — state machines that return commands —
//! so it can be driven either by this engine or by unit tests directly.
//!
//! # Example
//!
//! ```
//! use lifting_sim::{Engine, World, Context, SimTime, SimDuration};
//!
//! struct Counter { ticks: u32 }
//!
//! impl World for Counter {
//!     type Event = ();
//!     fn handle_event(&mut self, _now: SimTime, _ev: (), ctx: &mut Context<()>) {
//!         self.ticks += 1;
//!         if self.ticks < 10 {
//!             ctx.schedule_after(SimDuration::from_millis(100), ());
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new(Counter { ticks: 0 });
//! engine.schedule(SimTime::ZERO, ());
//! engine.run_until(SimTime::from_secs(5));
//! assert_eq!(engine.world().ticks, 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collections;
pub mod component;
pub mod engine;
pub mod event;
pub mod id;
pub mod pool;
pub mod rng;
pub mod shard;
pub mod time;

pub use collections::InlineVec;
pub use component::{
    Component, ComponentError, ComponentRegistry, ParamKind, ParamMap, ParamSpec, ParamValue,
    ParamsSchema, SeedSplitter,
};
pub use engine::{Context, Engine, RunReport, ShardedWorld, World};
pub use event::EventQueue;
pub use id::{NodeId, StreamId};
pub use pool::{run_indexed, run_owned, worker_count};
pub use rng::{derive_rng, split_seed, SeedSequence};
pub use shard::{MailKey, ShardMailboxes, ShardMap};
pub use time::{SimDuration, SimTime};
