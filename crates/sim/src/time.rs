//! Simulated time.
//!
//! Time is represented with microsecond resolution, which is fine enough to
//! serialize packet transmissions of a few hundred bytes on multi-megabit
//! links while keeping arithmetic in `u64`.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An instant of simulated time, measured in microseconds since the start of
/// the simulation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, measured in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// The greatest representable instant; useful as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from microseconds since the simulation start.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant from milliseconds since the simulation start.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates an instant from seconds since the simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Creates an instant from fractional seconds since the simulation start.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid time: {secs}");
        SimTime((secs * 1_000_000.0).round() as u64)
    }

    /// The raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The instant expressed in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// The instant expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration: {secs}");
        SimDuration((secs * 1_000_000.0).round() as u64)
    }

    /// The raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration expressed in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// The duration expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Multiplies the duration by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Scales the duration by a non-negative floating point factor.
    ///
    /// # Panics
    ///
    /// Panics if `k` is negative or not finite.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        assert!(k.is_finite() && k >= 0.0, "invalid factor: {k}");
        SimDuration((self.0 as f64 * k).round() as u64)
    }

    /// True if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign<SimDuration> for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_millis(500).as_micros(), 500_000);
        assert_eq!(SimTime::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_secs(1).as_secs_f64(), 1.0);
        assert_eq!(SimTime::from_secs_f64(1.5).as_millis(), 1_500);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(250);
        assert_eq!(t.as_millis(), 1_250);
        assert_eq!((t - SimTime::from_secs(1)).as_millis(), 250);
        assert_eq!(
            SimDuration::from_millis(300).saturating_mul(4).as_millis(),
            1_200
        );
        assert_eq!(SimDuration::from_millis(300).mul_f64(0.5).as_millis(), 150);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(3);
        assert_eq!(late.saturating_since(early).as_secs_f64(), 2.0);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500s");
        assert_eq!(format!("{}", SimDuration::from_millis(20)), "0.020s");
    }

    #[test]
    #[should_panic]
    fn negative_seconds_panic() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }
}
