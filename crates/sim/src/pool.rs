//! A tiny deterministic fork-join pool for embarrassingly parallel index
//! ranges.
//!
//! [`run_indexed`] computes `f(0), f(1), …, f(jobs - 1)` on a set of scoped
//! worker threads and returns the results **in index order**. Because each
//! job depends only on its index (callers derive any randomness from a seed
//! mixed with the index — see [`crate::split_seed`]), the result is
//! bit-identical to a sequential loop regardless of the worker count or
//! scheduling. This is the primitive behind the parallel scenario fleet in
//! `lifting-runtime` and the parallel Monte-Carlo trials in
//! `lifting-analysis`.
//!
//! The worker count defaults to the available hardware parallelism, capped by
//! the job count, and can be overridden with the `LIFTING_WORKERS` environment
//! variable (`LIFTING_WORKERS=1` forces sequential execution — useful for
//! timing comparisons and determinism checks).

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Environment variable overriding the worker count (0 or unset = automatic).
pub const WORKERS_ENV: &str = "LIFTING_WORKERS";

thread_local! {
    /// True while the current thread is a pool worker. Nested [`run_indexed`]
    /// calls (an experiment fanning out scenarios that fan out Monte-Carlo
    /// trials) then run sequentially instead of multiplying threads at every
    /// level and oversubscribing the CPU; only the outermost fan-out
    /// parallelizes. Results are unaffected — jobs are pure in their index.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// The number of worker threads that [`run_indexed`] would use for `jobs`
/// independent jobs.
pub fn worker_count(jobs: usize) -> usize {
    // `available_parallelism` re-reads the cgroup quota files (several
    // syscalls) on every call, and the sharded wave executor consults the
    // pool once per wave — cache the process-constant answer. The
    // `LIFTING_WORKERS` override stays a live read: tests flip it
    // mid-process to compare worker counts.
    static HW: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    let hw = *HW.get_or_init(|| {
        thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    let configured = std::env::var(WORKERS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(hw);
    configured.min(jobs).max(1)
}

/// Runs `f(i)` for every `i in 0..jobs` across scoped worker threads and
/// returns the results in index order.
///
/// Work is claimed in contiguous chunks from an atomic cursor, so the
/// per-job overhead stays negligible even for very small jobs; the output
/// order (and therefore the result) never depends on thread scheduling.
///
/// # Panics
///
/// Propagates a panic from any job (the first observed one).
pub fn run_indexed<T, F>(jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if jobs == 0 {
        return Vec::new();
    }
    let workers = if IN_POOL.with(Cell::get) {
        1 // nested fan-out: the outer pool already owns the cores
    } else {
        worker_count(jobs)
    };
    if workers <= 1 {
        return (0..jobs).map(f).collect();
    }
    // Chunked claiming: large enough to amortize the atomic, small enough to
    // balance uneven job costs.
    let chunk = (jobs / (workers * 8)).max(1);
    let cursor = AtomicUsize::new(0);
    let f = &f;

    let mut collected: Vec<(usize, Vec<T>)> = thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                scope.spawn(move || {
                    IN_POOL.with(|flag| flag.set(true));
                    let mut out: Vec<(usize, Vec<T>)> = Vec::new();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= jobs {
                            break;
                        }
                        let end = (start + chunk).min(jobs);
                        out.push((start, (start..end).map(f).collect()));
                    }
                    out
                })
            })
            .collect();
        let mut all = Vec::new();
        for handle in handles {
            match handle.join() {
                Ok(part) => all.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        all
    });

    collected.sort_by_key(|(start, _)| *start);
    let mut results = Vec::with_capacity(jobs);
    for (_, part) in collected {
        results.extend(part);
    }
    debug_assert_eq!(results.len(), jobs);
    results
}

/// Runs `f(i, job_i)` for every owned job across the same worker pool and
/// returns the results in index order.
///
/// This is the owned-job variant of [`run_indexed`] for work that cannot be
/// captured by a `Fn(usize)` closure — most importantly fan-outs that hand
/// each worker a disjoint `&mut` slice of shared state (the sharded world
/// passes per-shard `&mut [NodeStack]` segments through here). Each job is
/// parked behind a mutex and taken exactly once by whichever worker claims
/// its index; the lock is uncontended by construction, so the overhead is one
/// atomic per job.
///
/// Determinism is inherited from [`run_indexed`]: results come back in index
/// order and each job runs exactly once, so the output is bit-identical to
/// the sequential loop `jobs.into_iter().enumerate().map(|(i, j)| f(i, j))`.
pub fn run_owned<J, T, F>(jobs: Vec<J>, f: F) -> Vec<T>
where
    J: Send,
    T: Send,
    F: Fn(usize, J) -> T + Sync,
{
    use std::sync::Mutex;
    let slots: Vec<Mutex<Option<J>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    run_indexed(slots.len(), |i| {
        let job = slots[i]
            .lock()
            .expect("job slot poisoned")
            .take()
            .expect("each job index is claimed exactly once");
        f(i, job)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        let out = run_indexed(1_000, |i| i * 3);
        assert_eq!(out, (0..1_000).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn matches_sequential_execution_bit_for_bit() {
        let f = |i: usize| {
            // A little seed-derived pseudo-randomness, as real callers do.
            let mut x = crate::split_seed(42, i as u64);
            x ^= x >> 13;
            x as f64 / u64::MAX as f64
        };
        let parallel = run_indexed(257, f);
        let sequential: Vec<f64> = (0..257).map(f).collect();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn zero_jobs_is_empty() {
        let out: Vec<u8> = run_indexed(0, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn worker_count_is_capped_by_jobs() {
        assert_eq!(worker_count(1), 1);
        assert!(worker_count(1_000) >= 1);
    }

    #[test]
    fn nested_calls_do_not_multiply_workers() {
        // Inner run_indexed calls made from a pool worker must run inline on
        // that worker; the thread count stays bounded by the outer fan-out.
        let out = run_indexed(4, |i| {
            let inner = run_indexed(8, move |j| i * 10 + j);
            inner.iter().sum::<usize>()
        });
        let expected: Vec<usize> = (0..4).map(|i| (0..8).map(|j| i * 10 + j).sum()).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn owned_jobs_run_once_each_in_index_order() {
        // Jobs carry owned, mutable state (here a Vec each); every job must
        // be executed exactly once and results must come back in input order.
        let jobs: Vec<Vec<usize>> = (0..64).map(|i| vec![i, i + 1]).collect();
        let out = run_owned(jobs, |i, mut job| {
            job.push(i);
            job.iter().sum::<usize>()
        });
        let expected: Vec<usize> = (0..64).map(|i| i + (i + 1) + i).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            run_indexed(8, |i| {
                if i == 3 {
                    panic!("job failed");
                }
                i
            })
        });
        assert!(result.is_err());
    }
}
