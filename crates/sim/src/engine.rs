//! The simulation engine: a run loop over a [`World`] and an [`EventQueue`].

use crate::event::EventQueue;
use crate::time::{SimDuration, SimTime};

/// The state being simulated.
///
/// An implementation owns all the nodes, the network, and any collectors; the
/// engine repeatedly hands it the next event together with a [`Context`] used
/// to schedule follow-up events.
pub trait World {
    /// The event type circulating in the simulation.
    type Event;

    /// Handles one event occurring at `now`.
    fn handle_event(&mut self, now: SimTime, event: Self::Event, ctx: &mut Context<Self::Event>);
}

/// Scheduling facility handed to [`World::handle_event`].
///
/// The context borrows a scratch buffer owned by the [`Engine`], so handling
/// an event performs no allocation once the buffer has warmed up: follow-up
/// events are staged in the recycled buffer and drained into the queue in one
/// batch after the handler returns.
#[derive(Debug)]
pub struct Context<'a, E> {
    now: SimTime,
    scheduled: &'a mut Vec<(SimTime, E)>,
}

impl<'a, E> Context<'a, E> {
    fn new(now: SimTime, scheduled: &'a mut Vec<(SimTime, E)>) -> Self {
        debug_assert!(scheduled.is_empty(), "scratch buffer must start drained");
        Context { now, scheduled }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at the absolute instant `time`.
    ///
    /// Events scheduled in the past are delivered "now" instead (never before
    /// the current instant), so simulated time is always monotone.
    pub fn schedule_at(&mut self, time: SimTime, event: E) {
        let t = time.max(self.now);
        self.scheduled.push((t, event));
    }

    /// Schedules `event` after the relative delay `delay`.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        self.scheduled.push((self.now + delay, event));
    }

    /// Number of events scheduled through this context so far.
    pub fn scheduled_len(&self) -> usize {
        self.scheduled.len()
    }
}

/// Statistics about a completed run segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunReport {
    /// Number of events processed.
    pub events_processed: u64,
    /// Simulated time at which the run segment stopped.
    pub stopped_at: SimTime,
    /// True if the run stopped because the queue drained.
    pub drained: bool,
}

/// Discrete-event simulation engine.
pub struct Engine<W: World> {
    world: W,
    queue: EventQueue<W::Event>,
    clock: SimTime,
    events_processed: u64,
    /// Recycled staging buffer for events scheduled while handling an event.
    /// [`Context`] borrows it, so the steady-state run loop allocates nothing.
    scratch: Vec<(SimTime, W::Event)>,
}

impl<W: World> Engine<W> {
    /// Creates an engine around `world` with an empty event queue and the
    /// clock at [`SimTime::ZERO`].
    pub fn new(world: W) -> Self {
        Engine {
            world,
            queue: EventQueue::new(),
            clock: SimTime::ZERO,
            events_processed: 0,
            scratch: Vec::new(),
        }
    }

    /// Schedules an initial event (or any event, between run segments).
    pub fn schedule(&mut self, time: SimTime, event: W::Event) {
        self.queue.push(time.max(self.clock), event);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Total number of events processed since construction.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of pending events.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Immutable access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the world (e.g. to inject faults between segments).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consumes the engine and returns the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Runs until the queue drains or the next event would occur after
    /// `deadline`. The clock is advanced to `deadline` if the queue drains
    /// earlier events only.
    pub fn run_until(&mut self, deadline: SimTime) -> RunReport {
        let mut report = RunReport::default();
        loop {
            // Fast path: one queue probe decides both "is there an event" and
            // "is it due" (see `EventQueue::pop_due`); an undue event stays
            // queued without ever being materialized here.
            let Some((time, event)) = self.queue.pop_due(deadline) else {
                report.drained = self.queue.is_empty();
                break;
            };
            self.clock = time;
            let mut ctx = Context::new(time, &mut self.scratch);
            self.world.handle_event(time, event, &mut ctx);
            self.queue.push_batch(self.scratch.drain(..));
            self.events_processed += 1;
            report.events_processed += 1;
        }
        if self.clock < deadline {
            self.clock = deadline;
        }
        report.stopped_at = self.clock;
        report
    }

    /// Runs until the queue is completely drained or `max_events` events have
    /// been processed (a safety valve against livelock in tests).
    pub fn run_to_completion(&mut self, max_events: u64) -> RunReport {
        let mut report = RunReport::default();
        while report.events_processed < max_events {
            let Some((time, event)) = self.queue.pop() else {
                report.drained = true;
                break;
            };
            self.clock = time;
            let mut ctx = Context::new(time, &mut self.scratch);
            self.world.handle_event(time, event, &mut ctx);
            self.queue.push_batch(self.scratch.drain(..));
            self.events_processed += 1;
            report.events_processed += 1;
        }
        report.stopped_at = self.clock;
        report
    }
}

impl<W: World + std::fmt::Debug> std::fmt::Debug for Engine<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("clock", &self.clock)
            .field("pending", &self.queue.len())
            .field("events_processed", &self.events_processed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct PingPong {
        bounces: u32,
        limit: u32,
    }

    #[derive(Debug, PartialEq)]
    enum Ev {
        Ping,
        Pong,
    }

    impl World for PingPong {
        type Event = Ev;
        fn handle_event(&mut self, _now: SimTime, ev: Ev, ctx: &mut Context<Ev>) {
            self.bounces += 1;
            if self.bounces >= self.limit {
                return;
            }
            match ev {
                Ev::Ping => ctx.schedule_after(SimDuration::from_millis(10), Ev::Pong),
                Ev::Pong => ctx.schedule_after(SimDuration::from_millis(10), Ev::Ping),
            }
        }
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut eng = Engine::new(PingPong {
            bounces: 0,
            limit: u32::MAX,
        });
        eng.schedule(SimTime::ZERO, Ev::Ping);
        let report = eng.run_until(SimTime::from_millis(95));
        // Events at 0, 10, ..., 90 → 10 events.
        assert_eq!(report.events_processed, 10);
        assert_eq!(eng.world().bounces, 10);
        assert!(!report.drained);
        assert_eq!(eng.now(), SimTime::from_millis(95));
    }

    #[test]
    fn run_to_completion_drains() {
        let mut eng = Engine::new(PingPong {
            bounces: 0,
            limit: 5,
        });
        eng.schedule(SimTime::ZERO, Ev::Ping);
        let report = eng.run_to_completion(1_000);
        assert!(report.drained);
        assert_eq!(eng.world().bounces, 5);
        assert_eq!(eng.now(), SimTime::from_millis(40));
    }

    #[test]
    fn events_in_the_past_are_clamped_to_now() {
        struct Clamp {
            saw: Vec<SimTime>,
        }
        impl World for Clamp {
            type Event = bool; // true = schedule one in the "past"
            fn handle_event(&mut self, now: SimTime, ev: bool, ctx: &mut Context<bool>) {
                self.saw.push(now);
                if ev {
                    ctx.schedule_at(SimTime::ZERO, false);
                }
            }
        }
        let mut eng = Engine::new(Clamp { saw: vec![] });
        eng.schedule(SimTime::from_millis(50), true);
        eng.run_to_completion(10);
        assert_eq!(
            eng.world().saw,
            vec![SimTime::from_millis(50), SimTime::from_millis(50)]
        );
    }

    #[test]
    fn run_until_advances_clock_when_drained() {
        let mut eng = Engine::new(PingPong {
            bounces: 0,
            limit: 1,
        });
        eng.schedule(SimTime::ZERO, Ev::Ping);
        let report = eng.run_until(SimTime::from_secs(10));
        assert!(report.drained);
        assert_eq!(eng.now(), SimTime::from_secs(10));
    }
}
