//! The simulation engine: a run loop over a [`World`] and an [`EventQueue`].

use crate::event::EventQueue;
use crate::id::NodeId;
use crate::time::{SimDuration, SimTime};

/// The state being simulated.
///
/// An implementation owns all the nodes, the network, and any collectors; the
/// engine repeatedly hands it the next event together with a [`Context`] used
/// to schedule follow-up events.
pub trait World {
    /// The event type circulating in the simulation.
    type Event;

    /// Handles one event occurring at `now`.
    fn handle_event(&mut self, now: SimTime, event: Self::Event, ctx: &mut Context<Self::Event>);
}

/// A [`World`] whose node-local events can be executed shard-parallel.
///
/// The contract: an event is **node-local** when its handler decomposes into
/// a first phase that mutates only the named node's private state (reading
/// shared state but writing none of it), followed by a commit phase driving
/// shared resources (network RNG, global books, the scheduler). The engine
/// collects maximal runs of node-local events that share one timestamp — a
/// **wave** — and hands them to [`handle_wave`](Self::handle_wave), which may
/// run the first phases shard-parallel as long as the observable effects are
/// *identical* to calling [`World::handle_event`] on each event in order.
/// Events for which [`local_node`](Self::local_node) returns `None` are
/// barriers: they run solo through the ordinary sequential path.
///
/// Same-timestamp waves are what make the parallel phase provably safe: any
/// event a wave member schedules carries a later sequence number than every
/// event already queued at that instant, so it sorts after the entire wave —
/// nothing can be scheduled *between* two wave members. (A world whose
/// cross-node effects all carry a minimum lookahead of one wheel slot could
/// widen the window to the slot; the runtimes here keep the conservative
/// single-timestamp window, which needs no lookahead assumption at all.)
pub trait ShardedWorld: World {
    /// Number of shards the world is configured to execute waves across.
    /// `1` disables wave collection entirely (the engine falls back to the
    /// plain sequential loop).
    fn shard_count(&self) -> usize;

    /// `Some(node)` if `event` is node-local to `node` in the sense above,
    /// `None` for barrier events.
    fn local_node(&self, event: &Self::Event) -> Option<NodeId>;

    /// Executes one same-timestamp wave of node-local events, draining
    /// `wave` (events are in their sequential pop order). Implementations
    /// must leave the world and the scheduled events bit-identical to a
    /// sequential `handle_event` loop over the same events.
    fn handle_wave(
        &mut self,
        now: SimTime,
        wave: &mut Vec<Self::Event>,
        ctx: &mut Context<Self::Event>,
    );
}

/// Scheduling facility handed to [`World::handle_event`].
///
/// The context borrows a scratch buffer owned by the [`Engine`], so handling
/// an event performs no allocation once the buffer has warmed up: follow-up
/// events are staged in the recycled buffer and drained into the queue in one
/// batch after the handler returns.
#[derive(Debug)]
pub struct Context<'a, E> {
    now: SimTime,
    scheduled: &'a mut Vec<(SimTime, E)>,
}

impl<'a, E> Context<'a, E> {
    fn new(now: SimTime, scheduled: &'a mut Vec<(SimTime, E)>) -> Self {
        debug_assert!(scheduled.is_empty(), "scratch buffer must start drained");
        Context { now, scheduled }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at the absolute instant `time`.
    ///
    /// Events scheduled in the past are delivered "now" instead (never before
    /// the current instant), so simulated time is always monotone.
    pub fn schedule_at(&mut self, time: SimTime, event: E) {
        let t = time.max(self.now);
        self.scheduled.push((t, event));
    }

    /// Schedules `event` after the relative delay `delay`.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        self.scheduled.push((self.now + delay, event));
    }

    /// Number of events scheduled through this context so far.
    pub fn scheduled_len(&self) -> usize {
        self.scheduled.len()
    }
}

/// Statistics about a completed run segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunReport {
    /// Number of events processed.
    pub events_processed: u64,
    /// Simulated time at which the run segment stopped.
    pub stopped_at: SimTime,
    /// True if the run stopped because the queue drained.
    pub drained: bool,
}

/// Discrete-event simulation engine.
pub struct Engine<W: World> {
    world: W,
    queue: EventQueue<W::Event>,
    clock: SimTime,
    events_processed: u64,
    /// Recycled staging buffer for events scheduled while handling an event.
    /// [`Context`] borrows it, so the steady-state run loop allocates nothing.
    scratch: Vec<(SimTime, W::Event)>,
}

impl<W: World> Engine<W> {
    /// Creates an engine around `world` with an empty event queue and the
    /// clock at [`SimTime::ZERO`].
    pub fn new(world: W) -> Self {
        Engine {
            world,
            queue: EventQueue::new(),
            clock: SimTime::ZERO,
            events_processed: 0,
            scratch: Vec::new(),
        }
    }

    /// Schedules an initial event (or any event, between run segments).
    pub fn schedule(&mut self, time: SimTime, event: W::Event) {
        self.queue.push(time.max(self.clock), event);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Total number of events processed since construction.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of pending events.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Immutable access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the world (e.g. to inject faults between segments).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consumes the engine and returns the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Runs until the queue drains or the next event would occur after
    /// `deadline`. The clock is advanced to `deadline` if the queue drains
    /// earlier events only.
    pub fn run_until(&mut self, deadline: SimTime) -> RunReport {
        let mut report = RunReport::default();
        loop {
            // Fast path: one queue probe decides both "is there an event" and
            // "is it due" (see `EventQueue::pop_due`); an undue event stays
            // queued without ever being materialized here.
            let Some((time, event)) = self.queue.pop_due(deadline) else {
                report.drained = self.queue.is_empty();
                break;
            };
            self.clock = time;
            let mut ctx = Context::new(time, &mut self.scratch);
            self.world.handle_event(time, event, &mut ctx);
            self.queue.push_batch(self.scratch.drain(..));
            self.events_processed += 1;
            report.events_processed += 1;
        }
        if self.clock < deadline {
            self.clock = deadline;
        }
        report.stopped_at = self.clock;
        report
    }

    /// Sharded variant of [`run_until`](Self::run_until): collects maximal
    /// same-timestamp runs of node-local events into waves and hands them to
    /// [`ShardedWorld::handle_wave`]; barrier events and single-event waves
    /// take the ordinary sequential path (a one-event wave would only pay the
    /// fan-out overhead). Results are bit-identical to `run_until` at any
    /// shard count — that is the [`ShardedWorld`] contract, pinned end to end
    /// by the runtime's shard-invariance tests.
    pub fn run_until_sharded(&mut self, deadline: SimTime) -> RunReport
    where
        W: ShardedWorld,
    {
        if self.world.shard_count() <= 1 {
            return self.run_until(deadline);
        }
        let mut report = RunReport::default();
        let mut wave: Vec<W::Event> = Vec::new();
        loop {
            let Some((time, event)) = self.queue.pop_due(deadline) else {
                report.drained = self.queue.is_empty();
                break;
            };
            self.clock = time;
            let world = &self.world;
            let second = world.local_node(&event).is_some().then(|| {
                // Probe for a second node-local event at the same instant
                // before paying any wave bookkeeping: most timestamps hold a
                // single event, which then takes the plain sequential path.
                self.queue
                    .pop_due_if(time, |t, e| t == time && world.local_node(e).is_some())
            });
            let processed = if let Some(Some((_, e2))) = second {
                wave.clear();
                wave.push(event);
                wave.push(e2);
                // Extend the wave while the head is node-local at the same
                // instant; whatever terminates the run (a barrier, a later
                // timestamp, an empty queue) stays queued untouched. Every
                // event already at `time` sorts before anything a wave member
                // schedules, so the collection is exactly the prefix a
                // sequential loop would process back to back.
                while let Some((_, e)) = self
                    .queue
                    .pop_due_if(time, |t, e| t == time && world.local_node(e).is_some())
                {
                    wave.push(e);
                }
                let count = wave.len() as u64;
                let mut ctx = Context::new(time, &mut self.scratch);
                self.world.handle_wave(time, &mut wave, &mut ctx);
                count
            } else {
                let mut ctx = Context::new(time, &mut self.scratch);
                self.world.handle_event(time, event, &mut ctx);
                1
            };
            // One batch push per wave: scheduled events are staged in the
            // same relative order as per-event pushes, and sequence numbers
            // depend only on push order, so the assignment is identical to
            // the sequential loop's.
            self.queue.push_batch(self.scratch.drain(..));
            self.events_processed += processed;
            report.events_processed += processed;
        }
        if self.clock < deadline {
            self.clock = deadline;
        }
        report.stopped_at = self.clock;
        report
    }

    /// Runs until the queue is completely drained or `max_events` events have
    /// been processed (a safety valve against livelock in tests).
    pub fn run_to_completion(&mut self, max_events: u64) -> RunReport {
        let mut report = RunReport::default();
        while report.events_processed < max_events {
            let Some((time, event)) = self.queue.pop() else {
                report.drained = true;
                break;
            };
            self.clock = time;
            let mut ctx = Context::new(time, &mut self.scratch);
            self.world.handle_event(time, event, &mut ctx);
            self.queue.push_batch(self.scratch.drain(..));
            self.events_processed += 1;
            report.events_processed += 1;
        }
        report.stopped_at = self.clock;
        report
    }
}

impl<W: World + std::fmt::Debug> std::fmt::Debug for Engine<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("clock", &self.clock)
            .field("pending", &self.queue.len())
            .field("events_processed", &self.events_processed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct PingPong {
        bounces: u32,
        limit: u32,
    }

    #[derive(Debug, PartialEq)]
    enum Ev {
        Ping,
        Pong,
    }

    impl World for PingPong {
        type Event = Ev;
        fn handle_event(&mut self, _now: SimTime, ev: Ev, ctx: &mut Context<Ev>) {
            self.bounces += 1;
            if self.bounces >= self.limit {
                return;
            }
            match ev {
                Ev::Ping => ctx.schedule_after(SimDuration::from_millis(10), Ev::Pong),
                Ev::Pong => ctx.schedule_after(SimDuration::from_millis(10), Ev::Ping),
            }
        }
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut eng = Engine::new(PingPong {
            bounces: 0,
            limit: u32::MAX,
        });
        eng.schedule(SimTime::ZERO, Ev::Ping);
        let report = eng.run_until(SimTime::from_millis(95));
        // Events at 0, 10, ..., 90 → 10 events.
        assert_eq!(report.events_processed, 10);
        assert_eq!(eng.world().bounces, 10);
        assert!(!report.drained);
        assert_eq!(eng.now(), SimTime::from_millis(95));
    }

    #[test]
    fn run_to_completion_drains() {
        let mut eng = Engine::new(PingPong {
            bounces: 0,
            limit: 5,
        });
        eng.schedule(SimTime::ZERO, Ev::Ping);
        let report = eng.run_to_completion(1_000);
        assert!(report.drained);
        assert_eq!(eng.world().bounces, 5);
        assert_eq!(eng.now(), SimTime::from_millis(40));
    }

    #[test]
    fn events_in_the_past_are_clamped_to_now() {
        struct Clamp {
            saw: Vec<SimTime>,
        }
        impl World for Clamp {
            type Event = bool; // true = schedule one in the "past"
            fn handle_event(&mut self, now: SimTime, ev: bool, ctx: &mut Context<bool>) {
                self.saw.push(now);
                if ev {
                    ctx.schedule_at(SimTime::ZERO, false);
                }
            }
        }
        let mut eng = Engine::new(Clamp { saw: vec![] });
        eng.schedule(SimTime::from_millis(50), true);
        eng.run_to_completion(10);
        assert_eq!(
            eng.world().saw,
            vec![SimTime::from_millis(50), SimTime::from_millis(50)]
        );
    }

    #[derive(Debug, Clone, PartialEq)]
    enum ShardEv {
        /// Node-local: node bumps its own counter and reschedules itself.
        Local(u32),
        /// Barrier: sums all counters into the log.
        Sum,
    }

    /// A toy sharded world: node-local events only touch `counters[node]`;
    /// `handle_wave` applies them in order (batched), which must be
    /// indistinguishable from per-event handling.
    #[derive(Debug, Clone)]
    struct ShardToy {
        counters: Vec<u64>,
        sums: Vec<u64>,
        shards: usize,
        waves_seen: u64,
    }

    impl ShardToy {
        fn apply_local(&mut self, node: u32, now: SimTime, ctx: &mut Context<ShardEv>) {
            self.counters[node as usize] += 1;
            if now < SimTime::from_millis(50) {
                ctx.schedule_after(SimDuration::from_millis(10), ShardEv::Local(node));
            }
        }
    }

    impl World for ShardToy {
        type Event = ShardEv;
        fn handle_event(&mut self, now: SimTime, ev: ShardEv, ctx: &mut Context<ShardEv>) {
            match ev {
                ShardEv::Local(node) => self.apply_local(node, now, ctx),
                ShardEv::Sum => self.sums.push(self.counters.iter().sum()),
            }
        }
    }

    impl ShardedWorld for ShardToy {
        fn shard_count(&self) -> usize {
            self.shards
        }
        fn local_node(&self, ev: &ShardEv) -> Option<NodeId> {
            match ev {
                ShardEv::Local(node) => Some(NodeId::new(*node)),
                ShardEv::Sum => None,
            }
        }
        fn handle_wave(
            &mut self,
            now: SimTime,
            wave: &mut Vec<ShardEv>,
            ctx: &mut Context<ShardEv>,
        ) {
            self.waves_seen += 1;
            for ev in wave.drain(..) {
                match ev {
                    ShardEv::Local(node) => self.apply_local(node, now, ctx),
                    ShardEv::Sum => unreachable!("barriers never enter a wave"),
                }
            }
        }
    }

    #[test]
    fn sharded_run_matches_sequential_and_batches_waves() {
        let build = |shards: usize| {
            let mut eng = Engine::new(ShardToy {
                counters: vec![0; 8],
                sums: Vec::new(),
                shards,
                waves_seen: 0,
            });
            for node in 0..8 {
                eng.schedule(SimTime::ZERO, ShardEv::Local(node));
            }
            // A barrier right in the middle of the same-time runs.
            eng.schedule(SimTime::from_millis(20), ShardEv::Sum);
            eng.schedule(SimTime::from_millis(60), ShardEv::Sum);
            eng
        };
        let mut sequential = build(1);
        let seq_report = sequential.run_until(SimTime::from_millis(100));
        let mut sharded = build(4);
        let shard_report = sharded.run_until_sharded(SimTime::from_millis(100));
        assert_eq!(sharded.world().counters, sequential.world().counters);
        assert_eq!(sharded.world().sums, sequential.world().sums);
        assert_eq!(
            shard_report.events_processed, seq_report.events_processed,
            "waves count every member event"
        );
        assert_eq!(sharded.now(), sequential.now());
        assert!(
            sharded.world().waves_seen > 0,
            "multi-event same-time runs must be batched into waves"
        );
        // shard_count == 1 falls back to the plain sequential loop.
        let mut fallback = build(1);
        fallback.run_until_sharded(SimTime::from_millis(100));
        assert_eq!(fallback.world().waves_seen, 0);
        assert_eq!(fallback.world().counters, sequential.world().counters);
    }

    #[test]
    fn run_until_advances_clock_when_drained() {
        let mut eng = Engine::new(PingPong {
            bounces: 0,
            limit: 1,
        });
        eng.schedule(SimTime::ZERO, Ev::Ping);
        let report = eng.run_until(SimTime::from_secs(10));
        assert!(report.drained);
        assert_eq!(eng.now(), SimTime::from_secs(10));
    }
}
