//! Proves the engine's inner loop is allocation-free at steady state: once
//! the recycled scratch buffer and the queue's heap have warmed up, handling
//! an event performs zero heap allocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use lifting_sim::{Context, Engine, SimDuration, SimTime, World};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// A world that keeps a fixed-size frontier of events alive: every event
/// schedules one follow-up, exercising pop, handle and batched re-push.
struct Relay {
    handled: u64,
    limit: u64,
}

#[derive(Clone, Copy)]
struct Hop(u32);

impl World for Relay {
    type Event = Hop;

    fn handle_event(&mut self, _now: SimTime, ev: Hop, ctx: &mut Context<Hop>) {
        self.handled += 1;
        if self.handled < self.limit {
            ctx.schedule_after(
                SimDuration::from_micros(u64::from(ev.0 % 7) + 1),
                Hop(ev.0 + 1),
            );
        }
    }
}

#[test]
fn steady_state_event_loop_does_not_allocate() {
    let mut engine = Engine::new(Relay {
        handled: 0,
        limit: u64::MAX,
    });
    for i in 0..16 {
        engine.schedule(SimTime::from_micros(i), Hop(i as u32));
    }
    // Warm up: let the scratch buffer, the front heap and every bucket of the
    // time wheel reach their final capacity. The level-0 ring spans ~262 ms
    // of simulated time, so one full rotation (plus slack) touches every ring
    // index at its steady-state occupancy.
    engine.run_until(SimTime::from_millis(600));
    assert!(engine.events_processed() > 1_000);

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let report = engine.run_until(SimTime::from_millis(900));
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert!(report.events_processed > 1_000);
    assert_eq!(
        after - before,
        0,
        "the warmed-up event loop must not allocate (got {} allocations over {} events)",
        after - before,
        report.events_processed
    );
}
