//! Property test: the hierarchical time wheel pops in *exactly* the order a
//! reference `BinaryHeap` priority queue would, for arbitrary interleavings
//! of pushes (including pushes "in the past"), pops and deadline-bounded
//! pops. This is the ordering contract that keeps every golden digest
//! bit-identical across the data-structure swap.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use lifting_sim::{EventQueue, SimTime};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The reference implementation: the pre-wheel `BinaryHeap` queue, ordered by
/// `(time, seq)` with a monotone push counter as the FIFO tie-breaker.
#[derive(Default)]
struct ReferenceQueue {
    heap: BinaryHeap<RefEntry>,
    next_seq: u64,
}

struct RefEntry {
    time: SimTime,
    seq: u64,
    event: u64,
}

impl PartialEq for RefEntry {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for RefEntry {}
impl Ord for RefEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for RefEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl ReferenceQueue {
    fn push(&mut self, time: SimTime, event: u64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(RefEntry { time, seq, event });
    }

    fn pop(&mut self) -> Option<(SimTime, u64)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    fn pop_due(&mut self, deadline: SimTime) -> Option<(SimTime, u64)> {
        match self.heap.peek() {
            Some(e) if e.time <= deadline => self.pop(),
            _ => None,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn wheel_pops_exactly_like_a_binary_heap(
        seed in 0u64..1_000_000,
        ops in 200usize..2_000,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut wheel: EventQueue<u64> = EventQueue::new();
        let mut reference = ReferenceQueue::default();
        let mut next_event = 0u64;
        // Times jump across every tier of the wheel: sub-slot, level 0,
        // level 1 and the overflow horizon (> 16.8 s), plus occasional
        // pushes far behind the cursor.
        let spans_us: [u64; 5] = [50, 20_000, 400_000, 6_000_000, 30_000_000];
        let mut base_us = 0u64;
        for _ in 0..ops {
            match rng.gen_range(0u32..10) {
                // 60 % pushes, biased towards the near future.
                0..=5 => {
                    let span = spans_us[rng.gen_range(0..spans_us.len())];
                    let jitter = rng.gen_range(0..=span);
                    // Occasionally schedule before the drained frontier.
                    let t = if rng.gen_bool(0.1) {
                        SimTime::from_micros(base_us.saturating_sub(jitter))
                    } else {
                        SimTime::from_micros(base_us + jitter)
                    };
                    let batch = rng.gen_range(1usize..4);
                    for _ in 0..batch {
                        wheel.push(t, next_event);
                        reference.push(t, next_event);
                        next_event += 1;
                    }
                }
                // 30 % plain pops.
                6..=8 => {
                    let a = wheel.pop();
                    let b = reference.pop();
                    prop_assert!(a == b, "pop diverged: wheel {a:?} vs heap {b:?}");
                    if let Some((t, _)) = a {
                        base_us = base_us.max(t.as_micros());
                    }
                }
                // 10 % deadline-bounded pops (the engine's fast path).
                _ => {
                    let deadline =
                        SimTime::from_micros(base_us + rng.gen_range(0u64..2_000_000));
                    let a = wheel.pop_due(deadline);
                    let b = reference.pop_due(deadline);
                    prop_assert!(a == b, "pop_due diverged: wheel {a:?} vs heap {b:?}");
                    if let Some((t, _)) = a {
                        base_us = base_us.max(t.as_micros());
                    }
                }
            }
            prop_assert!(wheel.len() == reference.heap.len());
            prop_assert!(wheel.peek_time() == reference.heap.peek().map(|e| e.time));
        }
        // Drain: the tail must agree element by element too.
        loop {
            let a = wheel.pop();
            let b = reference.pop();
            prop_assert!(a == b, "drain diverged: wheel {a:?} vs heap {b:?}");
            if a.is_none() {
                break;
            }
        }
        prop_assert!(wheel.is_empty());
    }
}
