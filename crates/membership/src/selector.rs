//! Partner-selection policies.
//!
//! Honest nodes select gossip partners uniformly at random (Section 3 of the
//! paper). Colluding freeriders *bias* this selection (Section 4.1(iii)):
//! either probabilistically — choosing a colluder with probability `pm` — or
//! deterministically in a round-robin over the coalition, which maximizes the
//! entropy of their history and is the motivating case for requiring
//! `nh·f ≫ m'` in Section 6.3.2.

use std::sync::Arc;

use lifting_sim::{NodeId, StreamId};
use rand::Rng;

use crate::directory::Directory;

/// How a node picks its `f` gossip partners each period.
#[derive(Debug, Clone)]
pub enum SelectionPolicy {
    /// Uniformly at random over all active nodes (honest behaviour).
    Uniform,
    /// With probability `pm` pick a colluder, otherwise pick uniformly among
    /// non-colluders. `pm = 0` degenerates to uniform selection over honest
    /// nodes only; `pm = 1` only ever picks colluders.
    ColludingBias {
        /// The coalition (includes the selecting node itself, which is skipped).
        colluders: Arc<Vec<NodeId>>,
        /// Probability of picking a colluder for each partner slot.
        pm: f64,
    },
    /// Deterministic round-robin over the coalition: each period the node
    /// proposes to the next `f` colluders in order. With a small coalition and
    /// a short history this can look uniform to the entropy check — which is
    /// why the paper requires `nh·f ≫ m'`.
    RoundRobinColluders {
        /// The coalition (includes the selecting node itself, which is skipped).
        colluders: Arc<Vec<NodeId>>,
    },
}

/// Stateful partner selector for one node.
#[derive(Debug, Clone)]
pub struct PartnerSelector {
    policy: SelectionPolicy,
    round_robin_cursor: usize,
}

impl PartnerSelector {
    /// Creates a selector with the given policy.
    pub fn new(policy: SelectionPolicy) -> Self {
        PartnerSelector {
            policy,
            round_robin_cursor: 0,
        }
    }

    /// A uniform (honest) selector.
    pub fn uniform() -> Self {
        PartnerSelector::new(SelectionPolicy::Uniform)
    }

    /// The policy this selector applies.
    pub fn policy(&self) -> &SelectionPolicy {
        &self.policy
    }

    /// Selects `fanout` distinct partners for `me` among the participants of
    /// `stream` (active and subscribed) in `directory`.
    ///
    /// On a single-stream directory participation degenerates to activity and
    /// every policy consumes exactly the RNG draws it always did.
    pub fn select<R: Rng + ?Sized>(
        &mut self,
        me: NodeId,
        fanout: usize,
        directory: &Directory,
        stream: StreamId,
        rng: &mut R,
    ) -> Vec<NodeId> {
        match &self.policy {
            SelectionPolicy::Uniform => directory.sample_stream(rng, fanout, me, stream),
            SelectionPolicy::ColludingBias { colluders, pm } => {
                let active_colluders: Vec<NodeId> = colluders
                    .iter()
                    .copied()
                    .filter(|c| *c != me && directory.is_participant(*c, stream))
                    .collect();
                let mut picked: Vec<NodeId> = Vec::with_capacity(fanout);
                let mut guard = 0;
                while picked.len() < fanout && guard < fanout * 50 + 100 {
                    guard += 1;
                    let pick_colluder =
                        !active_colluders.is_empty() && rng.gen_bool(pm.clamp(0.0, 1.0));
                    let candidate = if pick_colluder {
                        active_colluders[rng.gen_range(0..active_colluders.len())]
                    } else {
                        match directory.sample_stream(rng, 1, me, stream).first() {
                            Some(c) => *c,
                            None => break,
                        }
                    };
                    if !picked.contains(&candidate) {
                        picked.push(candidate);
                    }
                }
                picked
            }
            SelectionPolicy::RoundRobinColluders { colluders } => {
                // The cursor walks the *full* coalition list (a stable order)
                // and skips departed/expelled members in place. Indexing a
                // filtered snapshot instead — as this selector once did —
                // shifts every position when a member leaves, silently
                // skipping or double-counting the survivors.
                let mut picked = Vec::with_capacity(fanout);
                if !colluders.is_empty() {
                    let total = colluders.len();
                    let mut scanned = 0;
                    while picked.len() < fanout && scanned < total {
                        let candidate = colluders[self.round_robin_cursor % total];
                        self.round_robin_cursor = self.round_robin_cursor.wrapping_add(1);
                        scanned += 1;
                        if candidate != me
                            && directory.is_participant(candidate, stream)
                            && !picked.contains(&candidate)
                        {
                            picked.push(candidate);
                        }
                    }
                }
                // A coalition smaller than the fanout must not silently shrink
                // the node's fanout (that alone would flag it): top up with
                // uniformly sampled non-coalition partners, duplicates barred.
                if picked.len() < fanout {
                    let need = fanout - picked.len();
                    directory.sample_stream_into(rng, need, me, stream, &mut picked);
                }
                picked
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifting_sim::derive_rng;

    fn coalition(ids: &[u32]) -> Arc<Vec<NodeId>> {
        Arc::new(ids.iter().map(|i| NodeId::new(*i)).collect())
    }

    #[test]
    fn uniform_selection_matches_directory_sampling() {
        let dir = Directory::new(100);
        let mut sel = PartnerSelector::uniform();
        let mut rng = derive_rng(1, 0);
        let partners = sel.select(NodeId::new(5), 12, &dir, StreamId::PRIMARY, &mut rng);
        assert_eq!(partners.len(), 12);
        assert!(!partners.contains(&NodeId::new(5)));
    }

    #[test]
    fn colluding_bias_prefers_colluders() {
        let dir = Directory::new(1000);
        let coalition = coalition(&(0..26).collect::<Vec<_>>());
        let mut sel = PartnerSelector::new(SelectionPolicy::ColludingBias {
            colluders: coalition.clone(),
            pm: 0.8,
        });
        let mut rng = derive_rng(2, 0);
        let mut colluder_picks = 0usize;
        let mut total = 0usize;
        for _ in 0..500 {
            let partners = sel.select(NodeId::new(0), 7, &dir, StreamId::PRIMARY, &mut rng);
            total += partners.len();
            colluder_picks += partners.iter().filter(|p| coalition.contains(p)).count();
        }
        let fraction = colluder_picks as f64 / total as f64;
        assert!(
            fraction > 0.6,
            "colluders should dominate the selection, got {fraction}"
        );
    }

    #[test]
    fn colluding_bias_zero_behaves_like_uniform_over_non_colluders() {
        let dir = Directory::new(100);
        let coalition = coalition(&[1, 2, 3]);
        let mut sel = PartnerSelector::new(SelectionPolicy::ColludingBias {
            colluders: coalition,
            pm: 0.0,
        });
        let mut rng = derive_rng(3, 0);
        let partners = sel.select(NodeId::new(0), 10, &dir, StreamId::PRIMARY, &mut rng);
        assert_eq!(partners.len(), 10);
    }

    #[test]
    fn round_robin_cycles_through_coalition() {
        let dir = Directory::new(100);
        let coalition = coalition(&[10, 11, 12, 13, 14]);
        let mut sel = PartnerSelector::new(SelectionPolicy::RoundRobinColluders {
            colluders: coalition,
        });
        let mut rng = derive_rng(4, 0);
        // Node 10 cycles over the other 4 members.
        let first = sel.select(NodeId::new(10), 2, &dir, StreamId::PRIMARY, &mut rng);
        let second = sel.select(NodeId::new(10), 2, &dir, StreamId::PRIMARY, &mut rng);
        assert_eq!(first, vec![NodeId::new(11), NodeId::new(12)]);
        assert_eq!(second, vec![NodeId::new(13), NodeId::new(14)]);
    }

    #[test]
    fn round_robin_cursor_survives_member_departure() {
        // Regression: the cursor used to index a *filtered* snapshot of the
        // coalition, so a departure shifted every position — skipping some
        // members and double-counting others. It now walks the stable
        // coalition list and skips inactive members in place.
        let mut dir = Directory::new(100);
        let coalition = coalition(&[10, 11, 12, 13, 14]);
        let mut sel = PartnerSelector::new(SelectionPolicy::RoundRobinColluders {
            colluders: coalition,
        });
        let mut rng = derive_rng(7, 0);
        let first = sel.select(NodeId::new(10), 2, &dir, StreamId::PRIMARY, &mut rng);
        assert_eq!(first, vec![NodeId::new(11), NodeId::new(12)]);
        // Member 13 departs mid-cycle: the rotation resumes at 14 without
        // re-serving 11/12 and without skipping anyone else.
        dir.deactivate(NodeId::new(13));
        let second = sel.select(NodeId::new(10), 1, &dir, StreamId::PRIMARY, &mut rng);
        assert_eq!(second, vec![NodeId::new(14)]);
        // 13 rejoins: the next full cycle serves every member exactly once.
        dir.activate(NodeId::new(13));
        let third = sel.select(NodeId::new(10), 4, &dir, StreamId::PRIMARY, &mut rng);
        assert_eq!(
            third,
            vec![
                NodeId::new(11),
                NodeId::new(12),
                NodeId::new(13),
                NodeId::new(14)
            ]
        );
    }

    #[test]
    fn round_robin_small_coalition_still_yields_full_fanout() {
        // A coalition smaller than the fanout must not silently shrink the
        // node's fanout: the selector tops up with distinct uniform picks.
        let dir = Directory::new(100);
        let mut sel = PartnerSelector::new(SelectionPolicy::RoundRobinColluders {
            colluders: coalition(&[1, 2, 3]),
        });
        let mut rng = derive_rng(8, 0);
        for _ in 0..50 {
            let partners = sel.select(NodeId::new(1), 7, &dir, StreamId::PRIMARY, &mut rng);
            assert_eq!(partners.len(), 7, "fanout must not silently shrink");
            let unique: std::collections::HashSet<_> = partners.iter().collect();
            assert_eq!(unique.len(), 7, "partners must be distinct");
            assert!(!partners.contains(&NodeId::new(1)));
            assert!(partners.contains(&NodeId::new(2)));
            assert!(partners.contains(&NodeId::new(3)));
        }
    }

    #[test]
    fn round_robin_falls_back_to_uniform_without_active_colluders() {
        let mut dir = Directory::new(50);
        dir.deactivate(NodeId::new(20));
        let mut sel = PartnerSelector::new(SelectionPolicy::RoundRobinColluders {
            colluders: coalition(&[20]),
        });
        let mut rng = derive_rng(5, 0);
        let partners = sel.select(NodeId::new(1), 6, &dir, StreamId::PRIMARY, &mut rng);
        assert_eq!(partners.len(), 6);
    }

    #[test]
    fn expelled_colluders_are_not_selected() {
        let mut dir = Directory::new(100);
        dir.deactivate(NodeId::new(2));
        let mut sel = PartnerSelector::new(SelectionPolicy::ColludingBias {
            colluders: coalition(&[1, 2, 3]),
            pm: 1.0,
        });
        let mut rng = derive_rng(6, 0);
        for _ in 0..50 {
            let partners = sel.select(NodeId::new(1), 2, &dir, StreamId::PRIMARY, &mut rng);
            assert!(!partners.contains(&NodeId::new(2)));
        }
    }
}
