//! Deterministic churn schedules: per-node session/offline durations plus
//! catastrophic-failure and flash-crowd waves.
//!
//! The paper's evaluation runs LiFTinG under realistic PlanetLab conditions —
//! nodes join, crash and rejoin mid-stream while blame propagation and
//! score-based expulsion keep working. A [`ChurnSchedule`] describes that
//! dynamism declaratively; [`ChurnPlan::generate`] expands it into the
//! per-node membership decisions (who churns, who starts offline, who dies in
//! the catastrophe wave) from a seeded RNG, and the runtime draws the actual
//! session/offline durations from the schedule as the run progresses. All
//! draws are seeded, so churn scenarios stay bit-for-bit deterministic and
//! parallel == sequential like every other scenario.

use lifting_sim::{NodeId, SimDuration};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One synchronized membership wave: at instant `at`, a `fraction` of the
/// (non-source) population changes state together — all failing at once
/// (catastrophe) or all joining at once (flash crowd).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnWave {
    /// When the wave hits, relative to the start of the run.
    pub at: SimDuration,
    /// Fraction of the non-source population in the wave.
    pub fraction: f64,
}

/// Declarative description of a run's membership dynamics.
///
/// Steady churn: a `churn_fraction` of the non-source nodes cycle between
/// online sessions (exponentially distributed with mean `mean_session`) and
/// offline spells (mean `mean_offline`), with no departure before `warmup`.
/// On top of that, an optional catastrophic-failure wave takes a fraction of
/// the population down at one instant, and an optional flash-crowd wave holds
/// a fraction of the population *offline from the start* and joins them all
/// at one instant. The broadcast source (node 0) never churns.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnSchedule {
    /// Fraction of non-source nodes subject to steady session/offline cycling
    /// (0 disables steady churn; waves still apply).
    pub churn_fraction: f64,
    /// Mean online-session length of a churning node.
    pub mean_session: SimDuration,
    /// Mean offline spell before a churning node rejoins.
    pub mean_offline: SimDuration,
    /// No steady-churn departure happens before this instant (lets the
    /// dissemination warm up, as real deployments do).
    pub warmup: SimDuration,
    /// Catastrophic failure: a fraction of the population crashes at once.
    /// Members that are not steady churners never come back.
    pub catastrophe: Option<ChurnWave>,
    /// Flash crowd: a fraction of the population starts offline and joins at
    /// the wave instant.
    pub flash_crowd: Option<ChurnWave>,
}

impl ChurnSchedule {
    /// A steady-churn schedule with no waves.
    pub fn steady(
        churn_fraction: f64,
        mean_session: SimDuration,
        mean_offline: SimDuration,
        warmup: SimDuration,
    ) -> Self {
        ChurnSchedule {
            churn_fraction,
            mean_session,
            mean_offline,
            warmup,
            catastrophe: None,
            flash_crowd: None,
        }
    }

    /// Validates the schedule.
    ///
    /// # Panics
    ///
    /// Panics if a fraction is out of `[0, 1]`, a mean duration is zero while
    /// steady churn is enabled, or a wave is scheduled at instant zero.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.churn_fraction),
            "churn fraction out of range"
        );
        if self.churn_fraction > 0.0 {
            assert!(
                !self.mean_session.is_zero() && !self.mean_offline.is_zero(),
                "steady churn needs positive session/offline means"
            );
        }
        for wave in [self.catastrophe, self.flash_crowd].into_iter().flatten() {
            assert!(
                (0.0..=1.0).contains(&wave.fraction),
                "wave fraction out of range"
            );
            assert!(!wave.at.is_zero(), "a wave cannot hit at instant zero");
        }
    }

    /// Draws one online-session length (exponential, mean `mean_session`,
    /// floored at 10 ms so a session always covers at least a few events).
    pub fn session_length<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        exponential(self.mean_session, rng)
    }

    /// Draws one offline-spell length (exponential, mean `mean_offline`).
    pub fn offline_length<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        exponential(self.mean_offline, rng)
    }
}

/// Exponentially distributed duration with the given mean, floored at 10 ms.
fn exponential<R: Rng + ?Sized>(mean: SimDuration, rng: &mut R) -> SimDuration {
    let u: f64 = rng.gen_range(0.0..1.0);
    let secs = -mean.as_secs_f64() * (1.0 - u).ln();
    SimDuration::from_secs_f64(secs.max(0.010))
}

/// The per-node membership decisions expanded from a [`ChurnSchedule`].
///
/// Generated from a seeded RNG in one fixed draw order, so the runtime's
/// world builder and its initial-event scheduler (two separate code paths)
/// expand the same schedule to the identical plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnPlan {
    /// Per node: subject to steady session/offline cycling.
    pub churners: Vec<bool>,
    /// Per node: held offline until the flash-crowd wave joins it.
    pub starts_offline: Vec<bool>,
    /// Per node: crashes in the catastrophe wave.
    pub catastrophe_members: Vec<bool>,
}

impl ChurnPlan {
    /// Expands `schedule` over a population of `nodes` identifiers using the
    /// given (already seeded) RNG. Node 0 — the broadcast source — is never
    /// selected for anything.
    pub fn generate<R: Rng + ?Sized>(
        schedule: &ChurnSchedule,
        nodes: usize,
        rng: &mut R,
    ) -> ChurnPlan {
        let mut churners = vec![false; nodes];
        let mut starts_offline = vec![false; nodes];
        let mut catastrophe_members = vec![false; nodes];
        for flag in churners.iter_mut().take(nodes).skip(1) {
            *flag = schedule.churn_fraction > 0.0 && rng.gen_bool(schedule.churn_fraction);
        }
        if let Some(wave) = schedule.flash_crowd {
            for flag in starts_offline.iter_mut().take(nodes).skip(1) {
                *flag = wave.fraction > 0.0 && rng.gen_bool(wave.fraction);
            }
        }
        if let Some(wave) = schedule.catastrophe {
            for (flag, held_offline) in catastrophe_members
                .iter_mut()
                .zip(&starts_offline)
                .take(nodes)
                .skip(1)
            {
                // The waves are disjoint: a flash-crowd member is offline
                // until its wave joins it, so it cannot also be a catastrophe
                // victim (a departure fired while it is still held offline
                // would no-op and the later join would resurrect a node that
                // was supposed to crash for good). The RNG draw happens
                // unconditionally so the plan stream stays stable.
                let hit = wave.fraction > 0.0 && rng.gen_bool(wave.fraction);
                *flag = hit && !held_offline;
            }
        }
        ChurnPlan {
            churners,
            starts_offline,
            catastrophe_members,
        }
    }

    /// True if `node` is subject to steady churn.
    pub fn is_churner(&self, node: NodeId) -> bool {
        self.churners.get(node.index()).copied().unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifting_sim::derive_rng;

    fn schedule() -> ChurnSchedule {
        ChurnSchedule {
            churn_fraction: 0.4,
            mean_session: SimDuration::from_secs(10),
            mean_offline: SimDuration::from_secs(3),
            warmup: SimDuration::from_secs(2),
            catastrophe: Some(ChurnWave {
                at: SimDuration::from_secs(15),
                fraction: 0.3,
            }),
            flash_crowd: Some(ChurnWave {
                at: SimDuration::from_secs(5),
                fraction: 0.2,
            }),
        }
    }

    #[test]
    fn plan_generation_is_deterministic_and_spares_the_source() {
        let s = schedule();
        s.validate();
        let a = ChurnPlan::generate(&s, 200, &mut derive_rng(9, 5));
        let b = ChurnPlan::generate(&s, 200, &mut derive_rng(9, 5));
        assert_eq!(a, b);
        assert!(!a.churners[0] && !a.starts_offline[0] && !a.catastrophe_members[0]);
        let churners = a.churners.iter().filter(|c| **c).count();
        assert!((40..=120).contains(&churners), "got {churners} churners");
        assert!(a.starts_offline.iter().any(|c| *c));
        assert!(a.catastrophe_members.iter().any(|c| *c));
    }

    #[test]
    fn flash_crowd_and_catastrophe_memberships_are_disjoint() {
        let mut s = schedule();
        s.flash_crowd = Some(ChurnWave {
            at: SimDuration::from_secs(5),
            fraction: 0.6,
        });
        s.catastrophe = Some(ChurnWave {
            at: SimDuration::from_secs(3), // before the flash join, the nasty case
            fraction: 0.6,
        });
        let plan = ChurnPlan::generate(&s, 500, &mut derive_rng(4, 5));
        assert!(plan.starts_offline.iter().any(|c| *c));
        assert!(plan.catastrophe_members.iter().any(|c| *c));
        for i in 0..500 {
            assert!(
                !(plan.starts_offline[i] && plan.catastrophe_members[i]),
                "node {i} is in both waves"
            );
        }
    }

    #[test]
    fn durations_are_positive_and_roughly_exponential() {
        let s = schedule();
        let mut rng = derive_rng(1, 0);
        let mut total = 0.0;
        for _ in 0..2_000 {
            let d = s.session_length(&mut rng);
            assert!(!d.is_zero());
            total += d.as_secs_f64();
        }
        let mean = total / 2_000.0;
        assert!((mean - 10.0).abs() < 1.0, "mean session {mean}");
    }

    #[test]
    #[should_panic(expected = "wave cannot hit at instant zero")]
    fn zero_instant_wave_is_rejected() {
        let mut s = schedule();
        s.catastrophe = Some(ChurnWave {
            at: SimDuration::ZERO,
            fraction: 0.1,
        });
        s.validate();
    }

    #[test]
    fn zero_fraction_schedule_plans_nothing() {
        let s = ChurnSchedule::steady(
            0.0,
            SimDuration::from_secs(1),
            SimDuration::from_secs(1),
            SimDuration::ZERO,
        );
        s.validate();
        let plan = ChurnPlan::generate(&s, 50, &mut derive_rng(3, 5));
        assert!(plan.churners.iter().all(|c| !*c));
        assert!(!plan.is_churner(NodeId::new(7)));
    }
}
