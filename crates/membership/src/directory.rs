//! The membership directory: which nodes exist, which are still active, and
//! which streams (channels) each node subscribes to.

use lifting_sim::{NodeId, StreamId};
use rand::Rng;

/// Full-membership directory.
///
/// The directory knows every node that ever joined and whether it is still
/// active (not expelled, not departed). Uniform sampling is performed over the
/// active nodes only, which is how an expulsion propagates: once the managers
/// expel a node, honest nodes stop selecting it as a partner.
///
/// **Streams.** A multi-channel deployment keeps one subscription set per
/// stream: churn and expulsion act on the *node* (activity), subscriptions on
/// the *stream*. A directory built with [`new`](Directory::new) has a single
/// implicit stream everyone subscribes to — the per-stream paths then take
/// the exact same branches and RNG draws as the stream-less ones, which is
/// what keeps single-stream scenarios bit-identical.
#[derive(Debug, Clone)]
pub struct Directory {
    active: Vec<bool>,
    active_count: usize,
    /// Per-stream subscriber sets, indexed by `StreamId` (entry 0 is the
    /// primary stream). Empty when only the single implicit all-subscribed
    /// stream exists (the overwhelmingly common case).
    subscriptions: Vec<StreamSubscribers>,
}

#[derive(Debug, Clone)]
struct StreamSubscribers {
    subscribed: Vec<bool>,
    /// Number of nodes both active and subscribed (kept incrementally so the
    /// per-stream sampler has the same O(1) availability check as the global
    /// one).
    active_subscribed: usize,
}

impl Directory {
    /// Creates a directory with `n` active nodes, identified `0..n`, serving
    /// a single stream that every node subscribes to.
    pub fn new(n: usize) -> Self {
        Directory {
            active: vec![true; n],
            active_count: n,
            subscriptions: Vec::new(),
        }
    }

    /// Creates a directory with `n` active nodes serving `streams` channels.
    /// Every node starts subscribed to every stream; restrict audiences with
    /// [`unsubscribe`](Directory::unsubscribe).
    ///
    /// With `streams <= 1` this is identical to [`new`](Directory::new): no
    /// per-stream state exists and every sampling path short-circuits to the
    /// stream-less one.
    pub fn with_streams(n: usize, streams: usize) -> Self {
        let mut dir = Directory::new(n);
        if streams > 1 {
            dir.subscriptions = (0..streams)
                .map(|_| StreamSubscribers {
                    subscribed: vec![true; n],
                    active_subscribed: n,
                })
                .collect();
        }
        dir
    }

    /// Number of streams the directory tracks (1 when no per-stream
    /// subscription state exists).
    pub fn stream_count(&self) -> usize {
        self.subscriptions.len().max(1)
    }

    /// True if `node` subscribes to `stream`. Always true for the implicit
    /// single stream of a [`new`](Directory::new)-built directory.
    pub fn is_subscribed(&self, node: NodeId, stream: StreamId) -> bool {
        match self.subscriptions.get(stream.index()) {
            None => self.subscriptions.is_empty(),
            Some(subs) => subs.subscribed.get(node.index()).copied().unwrap_or(false),
        }
    }

    /// True if `node` currently participates in `stream`: active **and**
    /// subscribed. This is the predicate every per-stream selection site
    /// (gossip partners, witnesses) samples under.
    pub fn is_participant(&self, node: NodeId, stream: StreamId) -> bool {
        self.is_active(node) && self.is_subscribed(node, stream)
    }

    /// Subscribes `node` to `stream` (no-op on a single-stream directory).
    pub fn subscribe(&mut self, node: NodeId, stream: StreamId) {
        let active = self.is_active(node);
        if let Some(subs) = self.subscriptions.get_mut(stream.index()) {
            if let Some(s) = subs.subscribed.get_mut(node.index()) {
                if !*s {
                    *s = true;
                    if active {
                        subs.active_subscribed += 1;
                    }
                }
            }
        }
    }

    /// Unsubscribes `node` from `stream` (no-op on a single-stream
    /// directory: the implicit stream has no subscription state to shrink).
    pub fn unsubscribe(&mut self, node: NodeId, stream: StreamId) {
        let active = self.is_active(node);
        if let Some(subs) = self.subscriptions.get_mut(stream.index()) {
            if let Some(s) = subs.subscribed.get_mut(node.index()) {
                if *s {
                    *s = false;
                    if active {
                        subs.active_subscribed -= 1;
                    }
                }
            }
        }
    }

    /// Number of nodes both active and subscribed to `stream`.
    pub fn participant_count(&self, stream: StreamId) -> usize {
        match self.subscriptions.get(stream.index()) {
            None => self.active_count,
            Some(subs) => subs.active_subscribed,
        }
    }

    /// Total number of nodes ever known (active or not).
    pub fn len(&self) -> usize {
        self.active.len()
    }

    /// True if the directory knows no nodes.
    pub fn is_empty(&self) -> bool {
        self.active.is_empty()
    }

    /// Number of active nodes.
    pub fn active_count(&self) -> usize {
        self.active_count
    }

    /// Heap bytes held by the membership tables (capacity walk,
    /// deterministic).
    pub fn estimated_heap_bytes(&self) -> usize {
        self.active.capacity()
            + self
                .subscriptions
                .iter()
                .map(|s| s.subscribed.capacity())
                .sum::<usize>()
            + self.subscriptions.capacity() * std::mem::size_of::<StreamSubscribers>()
    }

    /// True if the node is currently active.
    pub fn is_active(&self, node: NodeId) -> bool {
        self.active.get(node.index()).copied().unwrap_or(false)
    }

    /// Adds a new node to the directory (subscribed to every stream),
    /// returning its identifier.
    pub fn join(&mut self) -> NodeId {
        let id = NodeId::new(self.active.len() as u32);
        self.active.push(true);
        self.active_count += 1;
        for subs in &mut self.subscriptions {
            subs.subscribed.push(true);
            subs.active_subscribed += 1;
        }
        id
    }

    /// Marks a node inactive (expelled or departed). Idempotent. Activity
    /// acts on the node: its stream subscriptions are untouched (a rejoining
    /// node resumes the same channels), only the per-stream participant
    /// counts shrink while it is away.
    pub fn deactivate(&mut self, node: NodeId) {
        if let Some(a) = self.active.get_mut(node.index()) {
            if *a {
                *a = false;
                self.active_count -= 1;
                for subs in &mut self.subscriptions {
                    if subs.subscribed.get(node.index()).copied().unwrap_or(false) {
                        subs.active_subscribed -= 1;
                    }
                }
            }
        }
    }

    /// Re-activates a node (e.g. rejoin after churn). Idempotent.
    pub fn activate(&mut self, node: NodeId) {
        if let Some(a) = self.active.get_mut(node.index()) {
            if !*a {
                *a = true;
                self.active_count += 1;
                for subs in &mut self.subscriptions {
                    if subs.subscribed.get(node.index()).copied().unwrap_or(false) {
                        subs.active_subscribed += 1;
                    }
                }
            }
        }
    }

    /// Iterates over the active node identifiers.
    pub fn active_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.active
            .iter()
            .enumerate()
            .filter(|(_, a)| **a)
            .map(|(i, _)| NodeId::new(i as u32))
    }

    /// Iterates over the nodes both active and subscribed to `stream`.
    pub fn participants(&self, stream: StreamId) -> impl Iterator<Item = NodeId> + '_ {
        self.active_nodes()
            .filter(move |n| self.is_subscribed(*n, stream))
    }

    /// Samples `count` distinct active nodes uniformly at random, excluding
    /// `exclude`. Returns fewer than `count` nodes if not enough are active.
    pub fn sample_uniform<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        count: usize,
        exclude: NodeId,
    ) -> Vec<NodeId> {
        let mut picked = Vec::with_capacity(count);
        self.sample_uniform_into(rng, count, exclude, &mut picked);
        picked
    }

    /// Like [`sample_uniform`](Self::sample_uniform), but appends to `picked`
    /// and never selects a node already present in it (nor `exclude`). The
    /// round-robin colluder selector uses this to top a too-small coalition up
    /// to the full fanout without handing out duplicates. With an empty
    /// `picked`, the RNG draw sequence is identical to `sample_uniform`.
    pub fn sample_uniform_into<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        count: usize,
        exclude: NodeId,
        picked: &mut Vec<NodeId>,
    ) {
        self.sample_into_where(rng, count, exclude, picked, None);
    }

    /// Samples `count` distinct **participants of `stream`** (active and
    /// subscribed) uniformly at random, excluding `exclude`.
    ///
    /// On a single-stream directory (no subscription state) the eligibility
    /// predicate degenerates to plain activity and the RNG draw sequence is
    /// identical to [`sample_uniform`](Self::sample_uniform) — subscription
    /// checks never consume randomness.
    pub fn sample_stream<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        count: usize,
        exclude: NodeId,
        stream: StreamId,
    ) -> Vec<NodeId> {
        let mut picked = Vec::with_capacity(count);
        self.sample_stream_into(rng, count, exclude, stream, &mut picked);
        picked
    }

    /// Appending variant of [`sample_stream`](Self::sample_stream); never
    /// selects a node already present in `picked`.
    pub fn sample_stream_into<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        count: usize,
        exclude: NodeId,
        stream: StreamId,
        picked: &mut Vec<NodeId>,
    ) {
        let filter = if self.subscriptions.is_empty() {
            None // single stream: exactly the stream-less path
        } else {
            Some(stream)
        };
        self.sample_into_where(rng, count, exclude, picked, filter);
    }

    /// The one sampling routine. `stream = None` means "any active node";
    /// `Some(s)` additionally requires subscription to `s`. The two modes
    /// share every draw site so the filter can only *reject more*, never
    /// reorder the sequence of RNG consumptions for the candidates it accepts.
    fn sample_into_where<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        count: usize,
        exclude: NodeId,
        picked: &mut Vec<NodeId>,
        stream: Option<StreamId>,
    ) {
        let eligible = |c: NodeId| match stream {
            None => self.is_active(c),
            Some(s) => self.is_participant(c, s),
        };
        let pool = match stream {
            None => self.active_count,
            Some(s) => self.participant_count(s),
        };
        let already = picked.len();
        let excluded_eligible: usize = usize::from(eligible(exclude) && !picked.contains(&exclude))
            + picked.iter().filter(|p| eligible(**p)).count();
        let available = pool.saturating_sub(excluded_eligible);
        let target = count.min(available);
        if target == 0 {
            return;
        }
        // Rejection sampling: cheap because fanout << n in all experiments.
        // Falls back to a full scan if the eligible fraction is tiny.
        let n = self.active.len();
        let mut attempts = 0usize;
        let max_attempts = 50 * count.max(1) + 100;
        while picked.len() - already < target && attempts < max_attempts {
            attempts += 1;
            let candidate = NodeId::new(rng.gen_range(0..n as u32));
            if candidate == exclude || !eligible(candidate) || picked.contains(&candidate) {
                continue;
            }
            picked.push(candidate);
        }
        if picked.len() - already < target {
            // Dense fallback: enumerate remaining eligible nodes and fill up.
            let mut rest: Vec<NodeId> = self
                .active_nodes()
                .filter(|c| eligible(*c) && *c != exclude && !picked.contains(c))
                .collect();
            // Fisher–Yates partial shuffle.
            let need = target - (picked.len() - already);
            for i in 0..need.min(rest.len()) {
                let j = rng.gen_range(i..rest.len());
                rest.swap(i, j);
                picked.push(rest[i]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifting_sim::derive_rng;
    use std::collections::HashSet;

    #[test]
    fn join_and_deactivate_update_counts() {
        let mut dir = Directory::new(3);
        assert_eq!(dir.len(), 3);
        assert_eq!(dir.active_count(), 3);
        let new = dir.join();
        assert_eq!(new, NodeId::new(3));
        assert_eq!(dir.active_count(), 4);
        dir.deactivate(NodeId::new(1));
        dir.deactivate(NodeId::new(1));
        assert_eq!(dir.active_count(), 3);
        assert!(!dir.is_active(NodeId::new(1)));
        dir.activate(NodeId::new(1));
        assert_eq!(dir.active_count(), 4);
    }

    #[test]
    fn sample_excludes_self_and_inactive() {
        let mut dir = Directory::new(50);
        dir.deactivate(NodeId::new(10));
        let mut rng = derive_rng(5, 0);
        for _ in 0..200 {
            let s = dir.sample_uniform(&mut rng, 7, NodeId::new(0));
            assert_eq!(s.len(), 7);
            assert!(!s.contains(&NodeId::new(0)));
            assert!(!s.contains(&NodeId::new(10)));
            let unique: HashSet<_> = s.iter().collect();
            assert_eq!(unique.len(), 7, "samples must be distinct");
        }
    }

    #[test]
    fn sample_handles_small_populations() {
        let dir = Directory::new(3);
        let mut rng = derive_rng(6, 0);
        let s = dir.sample_uniform(&mut rng, 10, NodeId::new(2));
        assert_eq!(s.len(), 2);
        assert!(!s.contains(&NodeId::new(2)));
    }

    #[test]
    fn sample_is_roughly_uniform() {
        let dir = Directory::new(100);
        let mut rng = derive_rng(7, 0);
        let mut counts = vec![0u32; 100];
        for _ in 0..20_000 {
            for id in dir.sample_uniform(&mut rng, 5, NodeId::new(0)) {
                counts[id.index()] += 1;
            }
        }
        // Every selectable node (1..100) should be picked roughly 20000*5/99 ≈ 1010 times.
        for (i, &c) in counts.iter().enumerate().skip(1) {
            assert!(
                (700..1400).contains(&c),
                "node {i} selected {c} times, expected ~1010"
            );
        }
        assert_eq!(counts[0], 0);
    }

    #[test]
    fn sample_into_never_duplicates_prior_picks() {
        let dir = Directory::new(20);
        let mut rng = derive_rng(9, 0);
        for _ in 0..100 {
            let mut picked = vec![NodeId::new(1), NodeId::new(2), NodeId::new(3)];
            dir.sample_uniform_into(&mut rng, 10, NodeId::new(0), &mut picked);
            assert_eq!(picked.len(), 13);
            let unique: HashSet<_> = picked.iter().collect();
            assert_eq!(unique.len(), 13, "prior picks must not be re-selected");
            assert!(!picked.contains(&NodeId::new(0)));
        }
    }

    #[test]
    fn sample_into_with_empty_prefix_matches_sample_uniform() {
        let mut dir = Directory::new(40);
        dir.deactivate(NodeId::new(7));
        let mut a = derive_rng(11, 0);
        let mut b = derive_rng(11, 0);
        for _ in 0..50 {
            let direct = dir.sample_uniform(&mut a, 6, NodeId::new(2));
            let mut appended = Vec::new();
            dir.sample_uniform_into(&mut b, 6, NodeId::new(2), &mut appended);
            assert_eq!(direct, appended, "draw sequences must be identical");
        }
    }

    #[test]
    fn subscriptions_gate_participation_but_not_activity() {
        use lifting_sim::StreamId;
        let s0 = StreamId::new(0);
        let s1 = StreamId::new(1);
        let mut dir = Directory::with_streams(10, 2);
        assert_eq!(dir.stream_count(), 2);
        assert_eq!(dir.participant_count(s1), 10);
        dir.unsubscribe(NodeId::new(3), s1);
        assert!(dir.is_active(NodeId::new(3)));
        assert!(dir.is_participant(NodeId::new(3), s0));
        assert!(!dir.is_participant(NodeId::new(3), s1));
        assert_eq!(dir.participant_count(s1), 9);
        // Churn acts on the node: departing removes it from every stream's
        // participant set, rejoining restores exactly its subscriptions.
        dir.deactivate(NodeId::new(4));
        assert_eq!(dir.participant_count(s0), 9);
        assert_eq!(dir.participant_count(s1), 8);
        dir.activate(NodeId::new(4));
        assert_eq!(dir.participant_count(s1), 9);
        // Deactivating an unsubscribed node does not double-shrink the count.
        dir.deactivate(NodeId::new(3));
        assert_eq!(dir.participant_count(s1), 9);
        dir.activate(NodeId::new(3));
        dir.subscribe(NodeId::new(3), s1);
        assert_eq!(dir.participant_count(s1), 10);
        // Joins subscribe everywhere.
        let new = dir.join();
        assert!(dir.is_participant(new, s0) && dir.is_participant(new, s1));
    }

    #[test]
    fn stream_sampling_draws_identically_to_uniform_when_all_subscribed() {
        use lifting_sim::StreamId;
        // The bit-compat contract: on a single-stream directory (and on a
        // multi-stream one whose audience is everyone) the per-stream sampler
        // must consume the exact same RNG sequence as the stream-less one.
        let mut single = Directory::new(40);
        let mut multi = Directory::with_streams(40, 2);
        single.deactivate(NodeId::new(7));
        multi.deactivate(NodeId::new(7));
        let mut a = derive_rng(13, 0);
        let mut b = derive_rng(13, 0);
        let mut c = derive_rng(13, 0);
        for _ in 0..50 {
            let plain = single.sample_uniform(&mut a, 6, NodeId::new(2));
            let s0 = single.sample_stream(&mut b, 6, NodeId::new(2), StreamId::PRIMARY);
            let full = multi.sample_stream(&mut c, 6, NodeId::new(2), StreamId::new(1));
            assert_eq!(plain, s0, "single-stream draw sequences must match");
            assert_eq!(plain, full, "all-subscribed stream must draw the same");
        }
    }

    #[test]
    fn stream_sampling_only_selects_subscribers() {
        use lifting_sim::StreamId;
        let s1 = StreamId::new(1);
        let mut dir = Directory::with_streams(30, 2);
        // Stream 1's audience: nodes 15..30 only.
        for i in 0..15u32 {
            dir.unsubscribe(NodeId::new(i), s1);
        }
        let mut rng = derive_rng(14, 0);
        for _ in 0..100 {
            let picked = dir.sample_stream(&mut rng, 5, NodeId::new(20), s1);
            assert_eq!(picked.len(), 5);
            for p in &picked {
                assert!(dir.is_participant(*p, s1), "{p} is not in the audience");
                assert_ne!(*p, NodeId::new(20));
            }
        }
        // Asking for more than the audience clips to it.
        let all = dir.sample_stream(&mut rng, 40, NodeId::new(20), s1);
        assert_eq!(all.len(), 14);
    }

    #[test]
    fn sample_with_mostly_inactive_population_uses_fallback() {
        let mut dir = Directory::new(1000);
        for i in 0..995u32 {
            dir.deactivate(NodeId::new(i));
        }
        let mut rng = derive_rng(8, 0);
        let s = dir.sample_uniform(&mut rng, 4, NodeId::new(999));
        assert_eq!(s.len(), 4);
        for node in &s {
            assert!(dir.is_active(*node));
            assert_ne!(*node, NodeId::new(999));
        }
    }
}
