//! The membership directory: which nodes exist and which are still active.

use lifting_sim::NodeId;
use rand::Rng;

/// Full-membership directory.
///
/// The directory knows every node that ever joined and whether it is still
/// active (not expelled, not departed). Uniform sampling is performed over the
/// active nodes only, which is how an expulsion propagates: once the managers
/// expel a node, honest nodes stop selecting it as a partner.
#[derive(Debug, Clone)]
pub struct Directory {
    active: Vec<bool>,
    active_count: usize,
}

impl Directory {
    /// Creates a directory with `n` active nodes, identified `0..n`.
    pub fn new(n: usize) -> Self {
        Directory {
            active: vec![true; n],
            active_count: n,
        }
    }

    /// Total number of nodes ever known (active or not).
    pub fn len(&self) -> usize {
        self.active.len()
    }

    /// True if the directory knows no nodes.
    pub fn is_empty(&self) -> bool {
        self.active.is_empty()
    }

    /// Number of active nodes.
    pub fn active_count(&self) -> usize {
        self.active_count
    }

    /// True if the node is currently active.
    pub fn is_active(&self, node: NodeId) -> bool {
        self.active.get(node.index()).copied().unwrap_or(false)
    }

    /// Adds a new node to the directory, returning its identifier.
    pub fn join(&mut self) -> NodeId {
        let id = NodeId::new(self.active.len() as u32);
        self.active.push(true);
        self.active_count += 1;
        id
    }

    /// Marks a node inactive (expelled or departed). Idempotent.
    pub fn deactivate(&mut self, node: NodeId) {
        if let Some(a) = self.active.get_mut(node.index()) {
            if *a {
                *a = false;
                self.active_count -= 1;
            }
        }
    }

    /// Re-activates a node (e.g. rejoin after churn). Idempotent.
    pub fn activate(&mut self, node: NodeId) {
        if let Some(a) = self.active.get_mut(node.index()) {
            if !*a {
                *a = true;
                self.active_count += 1;
            }
        }
    }

    /// Iterates over the active node identifiers.
    pub fn active_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.active
            .iter()
            .enumerate()
            .filter(|(_, a)| **a)
            .map(|(i, _)| NodeId::new(i as u32))
    }

    /// Samples `count` distinct active nodes uniformly at random, excluding
    /// `exclude`. Returns fewer than `count` nodes if not enough are active.
    pub fn sample_uniform<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        count: usize,
        exclude: NodeId,
    ) -> Vec<NodeId> {
        let mut picked = Vec::with_capacity(count);
        self.sample_uniform_into(rng, count, exclude, &mut picked);
        picked
    }

    /// Like [`sample_uniform`](Self::sample_uniform), but appends to `picked`
    /// and never selects a node already present in it (nor `exclude`). The
    /// round-robin colluder selector uses this to top a too-small coalition up
    /// to the full fanout without handing out duplicates. With an empty
    /// `picked`, the RNG draw sequence is identical to `sample_uniform`.
    pub fn sample_uniform_into<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        count: usize,
        exclude: NodeId,
        picked: &mut Vec<NodeId>,
    ) {
        let already = picked.len();
        let excluded_active: usize =
            usize::from(self.is_active(exclude) && !picked.contains(&exclude))
                + picked.iter().filter(|p| self.is_active(**p)).count();
        let available = self.active_count.saturating_sub(excluded_active);
        let target = count.min(available);
        if target == 0 {
            return;
        }
        // Rejection sampling: cheap because fanout << n in all experiments.
        // Falls back to a full scan if the active fraction is tiny.
        let n = self.active.len();
        let mut attempts = 0usize;
        let max_attempts = 50 * count.max(1) + 100;
        while picked.len() - already < target && attempts < max_attempts {
            attempts += 1;
            let candidate = NodeId::new(rng.gen_range(0..n as u32));
            if candidate == exclude || !self.is_active(candidate) || picked.contains(&candidate) {
                continue;
            }
            picked.push(candidate);
        }
        if picked.len() - already < target {
            // Dense fallback: enumerate remaining active nodes and fill up.
            let mut rest: Vec<NodeId> = self
                .active_nodes()
                .filter(|c| *c != exclude && !picked.contains(c))
                .collect();
            // Fisher–Yates partial shuffle.
            let need = target - (picked.len() - already);
            for i in 0..need.min(rest.len()) {
                let j = rng.gen_range(i..rest.len());
                rest.swap(i, j);
                picked.push(rest[i]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifting_sim::derive_rng;
    use std::collections::HashSet;

    #[test]
    fn join_and_deactivate_update_counts() {
        let mut dir = Directory::new(3);
        assert_eq!(dir.len(), 3);
        assert_eq!(dir.active_count(), 3);
        let new = dir.join();
        assert_eq!(new, NodeId::new(3));
        assert_eq!(dir.active_count(), 4);
        dir.deactivate(NodeId::new(1));
        dir.deactivate(NodeId::new(1));
        assert_eq!(dir.active_count(), 3);
        assert!(!dir.is_active(NodeId::new(1)));
        dir.activate(NodeId::new(1));
        assert_eq!(dir.active_count(), 4);
    }

    #[test]
    fn sample_excludes_self_and_inactive() {
        let mut dir = Directory::new(50);
        dir.deactivate(NodeId::new(10));
        let mut rng = derive_rng(5, 0);
        for _ in 0..200 {
            let s = dir.sample_uniform(&mut rng, 7, NodeId::new(0));
            assert_eq!(s.len(), 7);
            assert!(!s.contains(&NodeId::new(0)));
            assert!(!s.contains(&NodeId::new(10)));
            let unique: HashSet<_> = s.iter().collect();
            assert_eq!(unique.len(), 7, "samples must be distinct");
        }
    }

    #[test]
    fn sample_handles_small_populations() {
        let dir = Directory::new(3);
        let mut rng = derive_rng(6, 0);
        let s = dir.sample_uniform(&mut rng, 10, NodeId::new(2));
        assert_eq!(s.len(), 2);
        assert!(!s.contains(&NodeId::new(2)));
    }

    #[test]
    fn sample_is_roughly_uniform() {
        let dir = Directory::new(100);
        let mut rng = derive_rng(7, 0);
        let mut counts = vec![0u32; 100];
        for _ in 0..20_000 {
            for id in dir.sample_uniform(&mut rng, 5, NodeId::new(0)) {
                counts[id.index()] += 1;
            }
        }
        // Every selectable node (1..100) should be picked roughly 20000*5/99 ≈ 1010 times.
        for (i, &c) in counts.iter().enumerate().skip(1) {
            assert!(
                (700..1400).contains(&c),
                "node {i} selected {c} times, expected ~1010"
            );
        }
        assert_eq!(counts[0], 0);
    }

    #[test]
    fn sample_into_never_duplicates_prior_picks() {
        let dir = Directory::new(20);
        let mut rng = derive_rng(9, 0);
        for _ in 0..100 {
            let mut picked = vec![NodeId::new(1), NodeId::new(2), NodeId::new(3)];
            dir.sample_uniform_into(&mut rng, 10, NodeId::new(0), &mut picked);
            assert_eq!(picked.len(), 13);
            let unique: HashSet<_> = picked.iter().collect();
            assert_eq!(unique.len(), 13, "prior picks must not be re-selected");
            assert!(!picked.contains(&NodeId::new(0)));
        }
    }

    #[test]
    fn sample_into_with_empty_prefix_matches_sample_uniform() {
        let mut dir = Directory::new(40);
        dir.deactivate(NodeId::new(7));
        let mut a = derive_rng(11, 0);
        let mut b = derive_rng(11, 0);
        for _ in 0..50 {
            let direct = dir.sample_uniform(&mut a, 6, NodeId::new(2));
            let mut appended = Vec::new();
            dir.sample_uniform_into(&mut b, 6, NodeId::new(2), &mut appended);
            assert_eq!(direct, appended, "draw sequences must be identical");
        }
    }

    #[test]
    fn sample_with_mostly_inactive_population_uses_fallback() {
        let mut dir = Directory::new(1000);
        for i in 0..995u32 {
            dir.deactivate(NodeId::new(i));
        }
        let mut rng = derive_rng(8, 0);
        let s = dir.sample_uniform(&mut rng, 4, NodeId::new(999));
        assert_eq!(s.len(), 4);
        for node in &s {
            assert!(dir.is_active(*node));
            assert_ne!(*node, NodeId::new(999));
        }
    }
}
