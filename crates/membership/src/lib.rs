//! Peer-sampling services for the LiFTinG reproduction.
//!
//! The paper's system model (Section 2) assumes that "nodes can pick uniformly
//! at random a set of nodes in the system", achieved with full membership or a
//! random peer-sampling protocol. This crate provides:
//!
//! * a [`Directory`] of the nodes currently in the system (supporting joins
//!   and the expulsions decided by the reputation managers),
//! * uniform partner selection over that directory (what honest nodes do),
//! * the **biased** selection policies used by freeriders in Section 4.1(iii):
//!   colluders that favour each other with probability `pm`, and the
//!   round-robin colluder selection that the entropy check of Section 6.3.2 is
//!   designed to defeat, and
//! * deterministic **churn schedules** ([`ChurnSchedule`]): per-node
//!   session/offline cycling plus catastrophic-failure and flash-crowd waves,
//!   expanded into per-node plans by [`ChurnPlan`], and
//! * trace-driven **workload generators** ([`WorkloadGenerator`]): diurnal
//!   audience cycles, correlated regional-failure waves and zap-style channel
//!   switching, expanded into pre-drawn [`WorkloadPlan`]s the same way.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod directory;
pub mod selector;
pub mod workload;

pub use churn::{ChurnPlan, ChurnSchedule, ChurnWave};
pub use directory::Directory;
pub use selector::{PartnerSelector, SelectionPolicy};
pub use workload::{
    DiurnalCycle, RegionalFailureWaves, WorkloadAction, WorkloadEvent, WorkloadGenerator,
    WorkloadPlan, ZapSwitching,
};

pub use lifting_sim::NodeId;
