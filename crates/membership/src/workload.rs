//! Trace-driven workload generators: deterministic audience dynamics beyond
//! plain churn.
//!
//! [`crate::ChurnSchedule`] models memoryless session/offline cycling; real
//! live-streaming audiences have *structure*: viewers follow daily rhythms,
//! whole regions fail together (a power cut, an ISP outage), and multi-channel
//! audiences zap between streams. A [`WorkloadGenerator`] expands such a
//! shape into a [`WorkloadPlan`] — a pre-drawn, time-sorted list of membership
//! transitions and channel switches — from a dedicated seeded RNG stream,
//! exactly like [`crate::ChurnPlan`] pre-draws its membership decisions, so
//! workload scenarios stay bit-for-bit deterministic and
//! parallel == sequential like every other scenario.
//!
//! Three generators ship with the reproduction:
//!
//! * [`DiurnalCycle`] — each participating viewer goes offline for a window
//!   of every cycle, at a per-node phase (the "evening audience" shape).
//! * [`RegionalFailureWaves`] — the population is split into contiguous
//!   regions; each wave takes one whole region down for an outage and brings
//!   it back (correlated failures, not independent ones).
//! * [`ZapSwitching`] — every viewer watches exactly one channel; a fraction
//!   of them zap to another channel after exponentially distributed dwell
//!   times (the multi-channel audience of the multistream planes).

use lifting_sim::{NodeId, SimDuration, StreamId};
use rand::{Rng, RngCore};

/// One pre-drawn workload transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadAction {
    /// The node goes offline (maps to a churn departure).
    Depart,
    /// The node comes back online (maps to a churn rejoin).
    Rejoin,
    /// The node stops watching `from` and tunes into `to`.
    Switch {
        /// The channel the node leaves.
        from: StreamId,
        /// The channel the node joins.
        to: StreamId,
    },
}

/// One timed entry of a [`WorkloadPlan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadEvent {
    /// When the transition fires, relative to the start of the run.
    pub at: SimDuration,
    /// The node transitioning.
    pub node: NodeId,
    /// What happens.
    pub action: WorkloadAction,
}

/// The fully expanded, time-sorted trace of a workload generator.
///
/// Like [`crate::ChurnPlan`], the plan is drawn in one fixed order from a
/// seeded RNG so that two independent expansions (the runtime's world builder
/// and its initial-event scheduler) agree bit-for-bit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WorkloadPlan {
    /// All transitions, sorted by `(at, node)`.
    pub events: Vec<WorkloadEvent>,
    /// Per node: the single channel the node initially watches, when the
    /// generator assigns one (zap-style workloads); `None` leaves the node's
    /// audience-derived subscriptions untouched. Empty when no generator
    /// assigns channels at all.
    pub initial_stream: Vec<Option<StreamId>>,
}

impl WorkloadPlan {
    /// Number of channel switches in the plan.
    pub fn switch_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.action, WorkloadAction::Switch { .. }))
            .count()
    }

    /// Number of departures in the plan.
    pub fn departure_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.action == WorkloadAction::Depart)
            .count()
    }

    /// Sorts the events into the canonical `(at, node)` order. Generators
    /// emit per-node runs; the stable sort makes the merged trace
    /// independent of emission order for distinct keys and deterministic for
    /// equal ones.
    fn canonicalize(&mut self) {
        self.events
            .sort_by_key(|e| (e.at.as_micros(), e.node.index()));
    }
}

/// A deterministic audience-dynamics generator.
///
/// `expand` must draw from `rng` in one fixed order (iterate nodes
/// ascending, draw per-node decisions unconditionally where feasible — the
/// same discipline [`crate::ChurnPlan::generate`] follows) so the plan is a
/// pure function of the seed.
pub trait WorkloadGenerator: Send + Sync {
    /// The generator's registered name.
    fn name(&self) -> &'static str;

    /// Expands the workload over `nodes` identifiers and `streams` channels
    /// for a run of `duration`. Node 0 — the broadcast source — must never
    /// be selected for anything.
    fn expand(
        &self,
        nodes: usize,
        streams: usize,
        duration: SimDuration,
        rng: &mut dyn RngCore,
    ) -> WorkloadPlan;
}

/// Exponentially distributed duration with the given mean, floored at 10 ms
/// (the same draw the churn schedule uses for session lengths).
fn exponential(mean: SimDuration, rng: &mut dyn RngCore) -> SimDuration {
    let u: f64 = rng.gen_range(0.0..1.0);
    let secs = -mean.as_secs_f64() * (1.0 - u).ln();
    SimDuration::from_secs_f64(secs.max(0.010))
}

/// Diurnal audience cycles: each participating viewer goes offline for an
/// `offline_fraction` window of every `cycle`, at a per-node phase, after a
/// warmup. Models the daily rhythm of a live audience compressed to
/// simulation scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalCycle {
    /// Fraction of the non-source population that follows the cycle.
    pub participation: f64,
    /// Length of one full cycle.
    pub cycle: SimDuration,
    /// Fraction of each cycle the viewer spends offline.
    pub offline_fraction: f64,
    /// No departure before this instant.
    pub warmup: SimDuration,
}

impl WorkloadGenerator for DiurnalCycle {
    fn name(&self) -> &'static str {
        "diurnal"
    }

    fn expand(
        &self,
        nodes: usize,
        _streams: usize,
        duration: SimDuration,
        rng: &mut dyn RngCore,
    ) -> WorkloadPlan {
        let mut plan = WorkloadPlan::default();
        let cycle = self.cycle.as_secs_f64();
        let offline = self.offline_fraction * cycle;
        for i in 1..nodes {
            // Both draws happen unconditionally so the plan stream stays
            // stable regardless of who participates.
            let participates = self.participation > 0.0 && rng.gen_bool(self.participation);
            let phase: f64 = rng.gen_range(0.0..1.0);
            if !participates || offline <= 0.0 {
                continue;
            }
            let node = NodeId::new(i as u32);
            let mut start = self.warmup.as_secs_f64() + phase * cycle;
            while start < duration.as_secs_f64() {
                plan.events.push(WorkloadEvent {
                    at: SimDuration::from_secs_f64(start),
                    node,
                    action: WorkloadAction::Depart,
                });
                plan.events.push(WorkloadEvent {
                    at: SimDuration::from_secs_f64(start + offline),
                    node,
                    action: WorkloadAction::Rejoin,
                });
                start += cycle;
            }
        }
        plan.canonicalize();
        plan
    }
}

/// Correlated regional failures: the non-source population is split into
/// `regions` contiguous identifier blocks; each wave picks one region and an
/// onset, takes every member down together, and brings the whole region back
/// after `outage`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionalFailureWaves {
    /// Number of contiguous regions the population is split into (≥ 1).
    pub regions: usize,
    /// Number of failure waves over the run.
    pub waves: usize,
    /// How long a failed region stays down.
    pub outage: SimDuration,
    /// No wave begins before this instant.
    pub warmup: SimDuration,
}

impl RegionalFailureWaves {
    /// The region node `index` (≥ 1) belongs to.
    pub fn region_of(&self, index: usize, nodes: usize) -> usize {
        let population = nodes.saturating_sub(1).max(1);
        ((index - 1) * self.regions / population).min(self.regions - 1)
    }
}

impl WorkloadGenerator for RegionalFailureWaves {
    fn name(&self) -> &'static str {
        "regional-failure"
    }

    fn expand(
        &self,
        nodes: usize,
        _streams: usize,
        duration: SimDuration,
        rng: &mut dyn RngCore,
    ) -> WorkloadPlan {
        let mut plan = WorkloadPlan::default();
        let warmup = self.warmup.as_secs_f64();
        let span = (duration.as_secs_f64() - warmup - self.outage.as_secs_f64()).max(0.0);
        for _ in 0..self.waves {
            // Fixed draw order per wave: onset fraction, then region.
            let frac: f64 = rng.gen_range(0.0..1.0);
            let region = rng.gen_range(0..self.regions);
            let at = SimDuration::from_secs_f64(warmup + frac * span);
            let back = at + self.outage;
            for i in 1..nodes {
                if self.region_of(i, nodes) != region {
                    continue;
                }
                let node = NodeId::new(i as u32);
                plan.events.push(WorkloadEvent {
                    at,
                    node,
                    action: WorkloadAction::Depart,
                });
                plan.events.push(WorkloadEvent {
                    at: back,
                    node,
                    action: WorkloadAction::Rejoin,
                });
            }
        }
        plan.canonicalize();
        plan
    }
}

/// Zap-style channel switching over the multistream planes: every viewer
/// initially watches exactly one channel (uniformly drawn); a `zappers`
/// fraction of them switch to a different channel after exponentially
/// distributed dwell times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZapSwitching {
    /// Fraction of the non-source population that zaps.
    pub zappers: f64,
    /// Mean dwell time on a channel before a zapper switches.
    pub mean_dwell: SimDuration,
    /// No switch before this instant.
    pub warmup: SimDuration,
}

impl WorkloadGenerator for ZapSwitching {
    fn name(&self) -> &'static str {
        "zap"
    }

    fn expand(
        &self,
        nodes: usize,
        streams: usize,
        duration: SimDuration,
        rng: &mut dyn RngCore,
    ) -> WorkloadPlan {
        let mut plan = WorkloadPlan {
            events: Vec::new(),
            initial_stream: vec![None; nodes],
        };
        if streams < 2 {
            return plan; // nothing to zap between
        }
        for i in 1..nodes {
            // Fixed draw order per node: zapper flag, initial channel, then
            // the zapper's dwell/target walk.
            let zaps = self.zappers > 0.0 && rng.gen_bool(self.zappers);
            let mut current = StreamId::new(rng.gen_range(0..streams as u16));
            plan.initial_stream[i] = Some(current);
            if !zaps {
                continue;
            }
            let node = NodeId::new(i as u32);
            let mut t = self.warmup;
            loop {
                t += exponential(self.mean_dwell, rng);
                if t.as_micros() >= duration.as_micros() {
                    break;
                }
                let pick = rng.gen_range(0..streams as u16 - 1);
                let to = StreamId::new(if pick >= current.0 { pick + 1 } else { pick });
                plan.events.push(WorkloadEvent {
                    at: t,
                    node,
                    action: WorkloadAction::Switch { from: current, to },
                });
                current = to;
            }
        }
        plan.canonicalize();
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifting_sim::derive_rng;

    const DURATION: SimDuration = SimDuration::from_secs(30);

    #[test]
    fn diurnal_plan_is_deterministic_and_spares_the_source() {
        let gen = DiurnalCycle {
            participation: 0.4,
            cycle: SimDuration::from_secs(10),
            offline_fraction: 0.25,
            warmup: SimDuration::from_secs(2),
        };
        let a = gen.expand(100, 1, DURATION, &mut derive_rng(5, 10));
        let b = gen.expand(100, 1, DURATION, &mut derive_rng(5, 10));
        assert_eq!(a, b);
        assert!(!a.events.is_empty());
        assert!(a.events.iter().all(|e| e.node != NodeId::new(0)));
        // Each participant alternates Depart/Rejoin, so the counts pair up.
        assert_eq!(a.departure_count() * 2, a.events.len());
    }

    #[test]
    fn diurnal_events_are_time_sorted() {
        let gen = DiurnalCycle {
            participation: 0.6,
            cycle: SimDuration::from_secs(8),
            offline_fraction: 0.3,
            warmup: SimDuration::ZERO,
        };
        let plan = gen.expand(60, 1, DURATION, &mut derive_rng(1, 10));
        for pair in plan.events.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
    }

    #[test]
    fn regional_waves_take_whole_regions_down_together() {
        let gen = RegionalFailureWaves {
            regions: 4,
            waves: 2,
            outage: SimDuration::from_secs(4),
            warmup: SimDuration::from_secs(3),
        };
        let plan = gen.expand(81, 1, DURATION, &mut derive_rng(7, 10));
        assert_eq!(plan, gen.expand(81, 1, DURATION, &mut derive_rng(7, 10)));
        // Two waves over 20 members per region: 40 departures, 40 rejoins.
        assert_eq!(plan.departure_count(), 40);
        assert_eq!(plan.events.len(), 80);
        // All departures of one wave share the same instant (correlated, not
        // independent), and every region index is valid.
        let mut depart_instants: Vec<u64> = plan
            .events
            .iter()
            .filter(|e| e.action == WorkloadAction::Depart)
            .map(|e| e.at.as_micros())
            .collect();
        depart_instants.sort_unstable();
        depart_instants.dedup();
        assert!(depart_instants.len() <= 2, "one onset per wave");
        for i in 1..81 {
            assert!(gen.region_of(i, 81) < 4);
        }
    }

    #[test]
    fn zap_assigns_everyone_a_channel_and_switches_zappers() {
        let gen = ZapSwitching {
            zappers: 0.5,
            mean_dwell: SimDuration::from_secs(4),
            warmup: SimDuration::from_secs(1),
        };
        let plan = gen.expand(80, 3, DURATION, &mut derive_rng(3, 10));
        assert_eq!(plan, gen.expand(80, 3, DURATION, &mut derive_rng(3, 10)));
        assert!(plan.initial_stream[0].is_none(), "the source watches all");
        for i in 1..80 {
            let watched = plan.initial_stream[i].expect("every viewer watches one channel");
            assert!(watched.index() < 3);
        }
        assert!(plan.switch_count() > 0);
        // A switch never targets the channel the node is already on, and
        // always names a valid channel.
        for e in &plan.events {
            if let WorkloadAction::Switch { from, to } = e.action {
                assert_ne!(from, to);
                assert!(to.index() < 3);
                assert!(e.at >= SimDuration::from_secs(1));
            }
        }
    }

    #[test]
    fn zap_on_a_single_stream_is_empty() {
        let gen = ZapSwitching {
            zappers: 1.0,
            mean_dwell: SimDuration::from_secs(1),
            warmup: SimDuration::ZERO,
        };
        let plan = gen.expand(40, 1, DURATION, &mut derive_rng(2, 10));
        assert!(plan.events.is_empty());
        assert!(plan.initial_stream.iter().all(|s| s.is_none()));
    }
}
