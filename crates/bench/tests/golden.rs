//! Golden-snapshot tests pinning the fig01 and fig12 quick-scale outputs
//! bit-for-bit across refactors.
//!
//! The digests hash the raw IEEE-754 bit patterns of every reported number,
//! so *any* numeric drift — a reordered RNG draw, a changed float-summation
//! order, a different partner pick — fails the test. When a change is
//! *supposed* to alter results (a new protocol feature, a scenario tweak),
//! re-run with `LIFTING_PRINT_GOLDEN=1` and update the constants; silent
//! drift is the thing this file exists to catch.

use lifting_bench::experiments::{
    churn_sweep, fig01_stream_health, fig12_detection_vs_delta, multistream_sweep, workload_sweep,
    Scale,
};

/// FNV-1a over a stream of 64-bit words.
fn fnv1a(words: impl Iterator<Item = u64>) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for word in words {
        for byte in word.to_le_bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
    }
    hash
}

fn maybe_print(name: &str, digest: u64) {
    if std::env::var_os("LIFTING_PRINT_GOLDEN").is_some() {
        eprintln!("golden digest {name} = 0x{digest:016x}");
    }
}

const FIG01_DIGEST: u64 = 0x784bcd7f34320fdf;
const FIG12_DIGEST: u64 = 0x0aef8a93dd7e5a93;
const CHURN_DIGEST: u64 = 0xa50071d0866d834b;
const MULTISTREAM_DIGEST: u64 = 0xf97016a068001857;
const WORKLOAD_DIGEST: u64 = 0x78c5d274fdcc256e;

#[test]
fn fig01_quick_scale_run_outcome_is_pinned() {
    let curves = fig01_stream_health(Scale::Quick, 1);
    assert_eq!(curves.len(), 3);
    assert_eq!(curves[0].label, "no freeriders");
    assert_eq!(curves[1].label, "25% freeriders");
    assert_eq!(curves[2].label, "25% freeriders (LiFTinG)");
    let words = curves.iter().flat_map(|curve| {
        std::iter::once(curve.expelled as u64)
            .chain(curve.lag_secs.iter().map(|x| x.to_bits()))
            .chain(curve.fraction_clear.iter().map(|x| x.to_bits()))
    });
    let digest = fnv1a(words);
    maybe_print("FIG01_DIGEST", digest);
    assert_eq!(
        digest, FIG01_DIGEST,
        "fig01 quick-scale output drifted; if intentional, update FIG01_DIGEST \
         (run with LIFTING_PRINT_GOLDEN=1 to print the new digest)"
    );
}

#[test]
fn churn_sweep_quick_scale_is_pinned() {
    // Determinism must hold with dynamic populations too: the digest covers
    // every churn scenario's detection numbers and membership counters, so a
    // reordered RNG draw anywhere in the churn engine (plan expansion,
    // duration draws, stack rebuilds) fails this test.
    let results = churn_sweep(Scale::Quick, 33);
    assert_eq!(results.len(), 5);
    let words = results.iter().flat_map(|r| {
        [
            r.detection.to_bits(),
            r.false_positives.to_bits(),
            r.expelled as u64,
            r.sessions,
            r.departures,
            r.rejoins,
            r.audits_aborted_by_departure,
            r.offline_at_end as u64,
            r.final_clear_fraction.to_bits(),
        ]
    });
    let digest = fnv1a(words);
    maybe_print("CHURN_DIGEST", digest);
    assert_eq!(
        digest, CHURN_DIGEST,
        "churn quick-scale output drifted; if intentional, update CHURN_DIGEST \
         (run with LIFTING_PRINT_GOLDEN=1 to print the new digest)"
    );
}

#[test]
fn multistream_sweep_quick_scale_is_pinned() {
    // Multi-channel determinism: the digest covers every multistream
    // scenario's aggregate detection numbers and each channel's subscriber
    // count, emission volume, blame provenance and final clear fraction, so
    // a reordered RNG draw anywhere in the per-stream planes (partner
    // selection under subscriptions, the audit plane's stream picks, offset
    // source schedules) fails this test.
    let results = multistream_sweep(Scale::Quick, 7);
    assert_eq!(results.len(), 4);
    let words = results.iter().flat_map(|r| {
        [
            r.streams as u64,
            r.detection.to_bits(),
            r.false_positives.to_bits(),
            r.expelled as u64,
            r.honest_mean.to_bits(),
            r.freerider_mean.to_bits(),
        ]
        .into_iter()
        .chain(r.per_stream.iter().flat_map(|s| {
            [
                s.subscribers as u64,
                s.emitted_chunks as u64,
                s.final_clear_fraction.to_bits(),
                s.blames,
                s.freerider_blame_value.to_bits(),
            ]
        }))
        .collect::<Vec<u64>>()
    });
    let digest = fnv1a(words);
    maybe_print("MULTISTREAM_DIGEST", digest);
    assert_eq!(
        digest, MULTISTREAM_DIGEST,
        "multistream quick-scale output drifted; if intentional, update \
         MULTISTREAM_DIGEST (run with LIFTING_PRINT_GOLDEN=1 to print the new digest)"
    );
}

#[test]
fn workload_sweep_quick_scale_is_pinned() {
    // Trace-driven membership determinism: the digest covers every workload
    // scenario's detection numbers, the membership transitions its generator
    // plan executed, and each channel's final clear fraction, so a reordered
    // draw anywhere in the workload plane (plan expansion from the dedicated
    // RNG stream, tiered capability assignment, resubscribe handling) fails
    // this test.
    let results = workload_sweep(Scale::Quick, 21);
    assert_eq!(results.len(), 3);
    let words = results.iter().flat_map(|r| {
        [
            r.detection.to_bits(),
            r.false_positives.to_bits(),
            r.expelled as u64,
            r.sessions,
            r.departures,
            r.rejoins,
            r.offline_at_end as u64,
            r.streams as u64,
            r.final_clear_fraction.to_bits(),
        ]
        .into_iter()
        .chain(r.per_stream_final_clear.iter().map(|x| x.to_bits()))
        .collect::<Vec<u64>>()
    });
    let digest = fnv1a(words);
    maybe_print("WORKLOAD_DIGEST", digest);
    assert_eq!(
        digest, WORKLOAD_DIGEST,
        "workload quick-scale output drifted; if intentional, update \
         WORKLOAD_DIGEST (run with LIFTING_PRINT_GOLDEN=1 to print the new digest)"
    );
}

#[test]
fn fig12_quick_scale_sweep_is_pinned() {
    let (eta, points) = fig12_detection_vs_delta(Scale::Quick, 12);
    assert_eq!(points.len(), 21);
    let words = std::iter::once(eta.to_bits()).chain(points.iter().flat_map(|p| {
        [
            p.delta.to_bits(),
            p.gain.to_bits(),
            p.detection.to_bits(),
            p.false_positives.to_bits(),
        ]
    }));
    let digest = fnv1a(words);
    maybe_print("FIG12_DIGEST", digest);
    assert_eq!(
        digest, FIG12_DIGEST,
        "fig12 quick-scale output drifted; if intentional, update FIG12_DIGEST \
         (run with LIFTING_PRINT_GOLDEN=1 to print the new digest)"
    );
}
