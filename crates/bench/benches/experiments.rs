//! Criterion benches of whole experiments at `Scale::Quick`: each bench runs a
//! reduced version of a paper experiment end to end, so `cargo bench` both
//! exercises every experiment path and reports how long it takes.

use criterion::{criterion_group, criterion_main, Criterion};
use lifting_bench::experiments::{
    fig10_wrongful_blames, fig12_detection_vs_delta, fig13_history_entropy, headline_run, Scale,
};

fn bench_fig10(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);
    g.bench_function("fig10_wrongful_blames_quick", |b| {
        b.iter(|| fig10_wrongful_blames(Scale::Quick, 1))
    });
    g.finish();
}

fn bench_fig12(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);
    g.bench_function("fig12_detection_sweep_quick", |b| {
        b.iter(|| fig12_detection_vs_delta(Scale::Quick, 2))
    });
    g.finish();
}

fn bench_fig13(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);
    g.bench_function("fig13_history_entropy_quick", |b| {
        b.iter(|| fig13_history_entropy(Scale::Quick, 3))
    });
    g.finish();
}

fn bench_full_system(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);
    g.bench_function("packet_level_headline_run_quick", |b| {
        b.iter(|| headline_run(Scale::Quick, 4))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fig10,
    bench_fig12,
    bench_fig13,
    bench_full_system
);
criterion_main!(benches);
