//! Criterion micro-benchmarks of the building blocks: event queue, entropy
//! computation, blame-model sampling, verifier handling and audit of a full
//! history.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use lifting_analysis::{shannon_entropy, BlameModel, FreeridingDegree, ProtocolParams};
use lifting_core::{
    AuditOracle, Auditor, CollusionConfig, ConfirmPayload, LiftingConfig, NodeHistory, Verifier,
};
use lifting_gossip::ChunkId;
use lifting_sim::{derive_rng, EventQueue, NodeId, SimTime};
use rand::Rng;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        b.iter_batched(
            || derive_rng(1, 0),
            |mut rng| {
                let mut q = EventQueue::new();
                for i in 0..10_000u64 {
                    q.push(SimTime::from_micros(rng.gen_range(0..1_000_000)), i);
                }
                while q.pop().is_some() {}
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_entropy(c: &mut Criterion) {
    let mut rng = derive_rng(2, 0);
    let history: Vec<u32> = (0..600).map(|_| rng.gen_range(0..10_000)).collect();
    c.bench_function("shannon_entropy_600_entries", |b| {
        b.iter(|| shannon_entropy(history.iter().copied()))
    });
}

fn bench_blame_model(c: &mut Criterion) {
    let params = ProtocolParams::simulation_defaults();
    let model = BlameModel::new(params, 1.0);
    c.bench_function("blame_model_one_period", |b| {
        let mut rng = derive_rng(3, 0);
        b.iter(|| model.sample_period_blame(FreeridingDegree::uniform(0.1), &mut rng))
    });
    c.bench_function("blame_model_normalized_score_50_periods", |b| {
        let mut rng = derive_rng(4, 0);
        b.iter(|| model.sample_normalized_score(FreeridingDegree::HONEST, 50, &mut rng))
    });
}

fn bench_verifier_confirm(c: &mut Criterion) {
    c.bench_function("verifier_witness_answers_confirm", |b| {
        b.iter_batched(
            || {
                let mut v = Verifier::new(
                    NodeId::new(1),
                    7,
                    LiftingConfig::planetlab(),
                    CollusionConfig::none(),
                );
                for i in 0..200u64 {
                    v.on_propose_received(
                        NodeId::new((i % 50) as u32 + 2),
                        &[ChunkId::new(i), ChunkId::new(i + 1)],
                        SimTime::from_millis(i),
                    );
                }
                v
            },
            |mut v| {
                v.on_confirm(
                    NodeId::new(99),
                    ConfirmPayload {
                        subject: NodeId::new(10),
                        chunks: vec![ChunkId::new(8), ChunkId::new(9)],
                        token: 1,
                    },
                    SimTime::from_secs(1),
                )
            },
            BatchSize::SmallInput,
        )
    });
}

struct YesOracle;
impl AuditOracle for YesOracle {
    fn confirm_proposal(&mut self, _w: NodeId, _s: NodeId, _c: &[ChunkId]) -> bool {
        true
    }
    fn confirm_askers(&mut self, w: NodeId, _s: NodeId) -> Vec<NodeId> {
        vec![NodeId::new(u32::from(w) % 97)]
    }
}

fn bench_audit(c: &mut Criterion) {
    let mut rng = derive_rng(5, 0);
    let mut history = NodeHistory::new(NodeId::new(0), 50);
    for p in 0..50u64 {
        let partners: Vec<NodeId> = (0..7).map(|_| NodeId::new(rng.gen_range(1..10_000))).collect();
        history.record_proposal_sent(p, partners, vec![ChunkId::new(p), ChunkId::new(p + 1)]);
    }
    let auditor = Auditor::with_threshold(LiftingConfig::planetlab(), 7, 7.5);
    c.bench_function("audit_full_history_50_periods", |b| {
        b.iter(|| auditor.audit(&history, &mut YesOracle))
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_entropy,
    bench_blame_model,
    bench_verifier_confirm,
    bench_audit
);
criterion_main!(benches);
