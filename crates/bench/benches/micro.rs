//! Criterion micro-benchmarks of the building blocks: event queue, entropy
//! computation, blame-model sampling, verifier handling and audit of a full
//! history.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use lifting_analysis::{shannon_entropy, BlameModel, FreeridingDegree, ProtocolParams};
use lifting_core::{
    AuditOracle, Auditor, CollusionConfig, ConfirmPayload, LiftingConfig, NodeHistory, Verifier,
};
use lifting_gossip::ChunkId;
use lifting_sim::{derive_rng, EventQueue, NodeId, SimTime};
use rand::Rng;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        b.iter_batched(
            || derive_rng(1, 0),
            |mut rng| {
                let mut q = EventQueue::new();
                for i in 0..10_000u64 {
                    q.push(SimTime::from_micros(rng.gen_range(0..1_000_000)), i);
                }
                while q.pop().is_some() {}
            },
            BatchSize::SmallInput,
        )
    });
    // The batched path the engine's zero-allocation loop drains its recycled
    // scratch buffer through.
    c.bench_function("event_queue_push_batch_pop_10k", |b| {
        b.iter_batched(
            || {
                let mut rng = derive_rng(1, 1);
                (0..10_000u64)
                    .map(|i| (SimTime::from_micros(rng.gen_range(0..1_000_000)), i))
                    .collect::<Vec<_>>()
            },
            |batch| {
                let mut q = EventQueue::new();
                q.push_batch(batch);
                while q.pop().is_some() {}
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_quick_scenario(c: &mut Criterion) {
    use lifting_runtime::{run_scenario, run_scenarios_parallel, ScenarioConfig};
    let mut g = c.benchmark_group("scenario");
    g.sample_size(10);
    // One Quick-scale packet-level run: the engine's zero-allocation inner
    // loop end to end.
    g.bench_function("quick_scenario_30_nodes", |b| {
        b.iter(|| run_scenario(ScenarioConfig::small_test(30, 42)))
    });
    // The same work as a fleet of four, measuring the parallel runner's
    // scaling (equals ~4x the single run on one core, less on multi-core).
    g.bench_function("quick_scenario_fleet_of_4", |b| {
        b.iter(|| {
            run_scenarios_parallel(
                (0..4)
                    .map(|i| ScenarioConfig::small_test(30, 42 + i))
                    .collect(),
            )
        })
    });
    g.finish();
}

fn bench_entropy(c: &mut Criterion) {
    let mut rng = derive_rng(2, 0);
    let history: Vec<u32> = (0..600).map(|_| rng.gen_range(0..10_000)).collect();
    c.bench_function("shannon_entropy_600_entries", |b| {
        b.iter(|| shannon_entropy(history.iter().copied()))
    });
}

fn bench_blame_model(c: &mut Criterion) {
    let params = ProtocolParams::simulation_defaults();
    let model = BlameModel::new(params, 1.0);
    c.bench_function("blame_model_one_period", |b| {
        let mut rng = derive_rng(3, 0);
        b.iter(|| model.sample_period_blame(FreeridingDegree::uniform(0.1), &mut rng))
    });
    c.bench_function("blame_model_normalized_score_50_periods", |b| {
        let mut rng = derive_rng(4, 0);
        b.iter(|| model.sample_normalized_score(FreeridingDegree::HONEST, 50, &mut rng))
    });
}

fn bench_verifier_confirm(c: &mut Criterion) {
    c.bench_function("verifier_witness_answers_confirm", |b| {
        b.iter_batched(
            || {
                let mut v = Verifier::new(
                    NodeId::new(1),
                    7,
                    LiftingConfig::planetlab(),
                    CollusionConfig::none(),
                );
                for i in 0..200u64 {
                    v.on_propose_received(
                        NodeId::new((i % 50) as u32 + 2),
                        vec![ChunkId::primary(i), ChunkId::primary(i + 1)].into(),
                        SimTime::from_millis(i),
                    );
                }
                v
            },
            |mut v| {
                v.on_confirm(
                    NodeId::new(99),
                    &ConfirmPayload {
                        subject: NodeId::new(10),
                        chunks: vec![ChunkId::primary(8), ChunkId::primary(9)].into(),
                        token: 1,
                    },
                    SimTime::from_secs(1),
                )
            },
            BatchSize::SmallInput,
        )
    });
}

struct YesOracle;
impl AuditOracle for YesOracle {
    fn confirm_proposal(&mut self, _w: NodeId, _s: NodeId, _c: &[ChunkId]) -> bool {
        true
    }
    fn confirm_askers(&mut self, w: NodeId, _s: NodeId) -> Vec<NodeId> {
        vec![NodeId::new(u32::from(w) % 97)]
    }
}

fn bench_audit(c: &mut Criterion) {
    let mut rng = derive_rng(5, 0);
    let mut history = NodeHistory::new(NodeId::new(0), 50);
    for p in 0..50u64 {
        let partners: Vec<NodeId> = (0..7)
            .map(|_| NodeId::new(rng.gen_range(1..10_000)))
            .collect();
        history.record_proposal_sent(
            p,
            &partners,
            &[ChunkId::primary(p), ChunkId::primary(p + 1)],
        );
    }
    let auditor = Auditor::with_threshold(LiftingConfig::planetlab(), 7, 7.5);
    c.bench_function("audit_full_history_50_periods", |b| {
        b.iter(|| auditor.audit(&history, &mut YesOracle))
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_quick_scenario,
    bench_entropy,
    bench_blame_model,
    bench_verifier_confirm,
    bench_audit
);
criterion_main!(benches);
