//! Runs every experiment of the paper as a parallel job queue and writes a
//! JSON summary (with per-experiment wall-clock timings) to
//! `experiments_summary.json`, plus a timing snapshot to
//! `BENCH_experiments.json` for the performance trajectory.
//!
//! Flags:
//! * `--quick` shrinks every experiment for a smoke run (the tier tracked by
//!   the CI bench-smoke step and the speedup-vs-seed section);
//! * `--paper` runs the paper's own operating point (300 PlanetLab nodes,
//!   full Monte-Carlo populations) — the default;
//! * `--both` sweeps Quick then Paper and emits per-scale timings;
//! * `--sequential` forces a single worker (`LIFTING_WORKERS=1`), which
//!   produces **identical** figure/table numbers — only the wall-clock
//!   changes;
//! * `--filter <substring>` runs only the jobs whose name contains the
//!   substring (e.g. `--filter multistream`) and writes a partial summary
//!   marked `"filtered": true` — a development loop need not pay for the
//!   full suite;
//! * `--tier scale-heavy` opts into the heavy tail of the scale sweep
//!   (`scale/100k`); the default tier stops at `scale/10k` so the `--paper`
//!   suite stays around a minute. Both tiers' per-population timings are
//!   recorded under `scale_tiers` in `BENCH_experiments.json`;
//! * `--list` prints the scenario registry grouped by family, with each
//!   scenario's resolved component composition, and exits.

use std::time::Instant;

use lifting_bench::experiments::*;
use lifting_runtime::{run_jobs_parallel, ScenarioRegistry};
use serde_json::{json, to_value, Value};

/// `total_wall_secs` of the seed revision's committed Quick-scale baseline
/// (PR 1, single worker). The speedup-vs-seed section tracks how far the
/// per-run hot path has moved since; the CI bench-smoke step separately
/// guards against regressions relative to the *currently committed* snapshot.
const SEED_QUICK_TOTAL_WALL_SECS: f64 = 2.3349774930000002;

/// The jobs that existed in the seed revision's Quick baseline. The suite
/// has since grown (layer_traffic, adversaries, churn, multistream,
/// resilience, scale), so comparing the seed total against today's *full*
/// total would report a phantom slowdown that actually measures new
/// coverage. The speedup section therefore compares over this intersection
/// and reports the grown suite's total separately.
const SEED_QUICK_JOBS: [&str; 9] = [
    "fig01",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14_pdcc_1",
    "fig14_pdcc_05",
    "table3",
    "table5",
];

/// Paper-scale wall-clock of the heaviest jobs as committed by the previous
/// revision's single-worker snapshot — the baseline the sharded-world PR's
/// speedup is measured against (`heavy_job_speedup` in the bench snapshot).
const PRIOR_PAPER_HEAVY_SECS: [(&str, f64); 3] = [
    ("churn", 6.629641466),
    ("multistream", 4.380693119),
    ("resilience", 9.311701082999999),
];

type Job = (&'static str, Box<dyn Fn() -> Value + Send + Sync>);

fn build_jobs(scale: Scale, heavy_scale_tier: bool) -> Vec<Job> {
    // Every experiment is a job; independent scenarios *inside* an experiment
    // fan out further through the same pool (fig01's three cases, fig12's
    // delta sweep, the table grids), and fig14's two pdcc runs are jobs of
    // their own.
    vec![
        (
            "fig01",
            Box::new(move || to_value(&fig01_stream_health(scale, 1))),
        ),
        (
            "fig10",
            Box::new(move || to_value(&fig10_wrongful_blames(scale, 10))),
        ),
        (
            "fig11",
            Box::new(move || to_value(&fig11_score_distributions(scale, 11))),
        ),
        (
            "fig12",
            Box::new(move || {
                let (eta, points) = fig12_detection_vs_delta(scale, 12);
                json!({ "eta": eta, "points": points })
            }),
        ),
        (
            "fig13",
            Box::new(move || to_value(&fig13_history_entropy(scale, 13))),
        ),
        (
            "fig14_pdcc_1",
            Box::new(move || to_value(&fig14_planetlab_scores(scale, 1.0, 14))),
        ),
        (
            "fig14_pdcc_05",
            Box::new(move || to_value(&fig14_planetlab_scores(scale, 0.5, 14))),
        ),
        (
            "table3",
            Box::new(move || to_value(&table03_verification_overhead(scale, 3))),
        ),
        (
            "table5",
            Box::new(move || to_value(&table05_practical_overhead(scale, 5))),
        ),
        (
            "layer_traffic",
            Box::new(move || to_value(&layer_traffic_breakdown(scale, 30))),
        ),
        (
            "adversaries",
            Box::new(move || to_value(&adversary_showcase(scale, 21))),
        ),
        ("churn", Box::new(move || to_value(&churn_sweep(scale, 33)))),
        (
            "multistream",
            Box::new(move || to_value(&multistream_sweep(scale, 44))),
        ),
        (
            "resilience",
            Box::new(move || to_value(&resilience_sweep(scale, 55))),
        ),
        (
            "workload",
            Box::new(move || to_value(&workload_sweep(scale, 77))),
        ),
        (
            "scale",
            Box::new(move || to_value(&scale_sweep_tier(scale, 66, heavy_scale_tier))),
        ),
    ]
}

/// Recursively removes `key` from every object of a value tree — used to
/// keep the nondeterministic per-population `wall_secs` timings out of
/// `experiments_summary.json` (which CI diffs bit-for-bit across worker and
/// shard counts) while `BENCH_experiments.json` keeps them.
fn strip_key(value: &Value, key: &str) -> Value {
    match value {
        Value::Object(entries) => Value::Object(
            entries
                .iter()
                .filter(|(k, _)| k != key)
                .map(|(k, v)| (k.clone(), strip_key(v, key)))
                .collect(),
        ),
        Value::Array(items) => Value::Array(items.iter().map(|v| strip_key(v, key)).collect()),
        other => other.clone(),
    }
}

/// Results of one full sweep at one scale.
struct SuiteRun {
    scale: Scale,
    /// `(name, figure/table value, seconds)` per experiment, in job order.
    results: Vec<(&'static str, Value, f64)>,
    total_secs: f64,
}

impl SuiteRun {
    fn by_name(&self, name: &str) -> &Value {
        &self
            .results
            .iter()
            .find(|(n, _, _)| *n == name)
            .expect("known experiment name")
            .1
    }

    fn timings(&self) -> Value {
        Value::Object(
            self.results
                .iter()
                .map(|(name, _, secs)| (name.to_string(), Value::Float(*secs)))
                .collect(),
        )
    }
}

fn run_suite(scale: Scale, filter: Option<&str>, heavy_scale_tier: bool) -> SuiteRun {
    let mut jobs = build_jobs(scale, heavy_scale_tier);
    if let Some(needle) = filter {
        jobs.retain(|(name, _)| name.contains(needle));
        assert!(
            !jobs.is_empty(),
            "--filter {needle:?} matches no experiment; known jobs: {:?}",
            build_jobs(scale, heavy_scale_tier)
                .iter()
                .map(|(n, _)| *n)
                .collect::<Vec<_>>()
        );
    }
    eprintln!("running all experiments at {scale:?} scale ...");
    let wall_start = Instant::now();
    let results: Vec<(Value, f64)> = run_jobs_parallel(jobs.len(), |i| {
        let (name, run) = &jobs[i];
        eprintln!("[{}/{}] {scale:?}/{name} ...", i + 1, jobs.len());
        let start = Instant::now();
        let value = run();
        let secs = start.elapsed().as_secs_f64();
        eprintln!(
            "[{}/{}] {scale:?}/{name} done in {secs:.2}s",
            i + 1,
            jobs.len()
        );
        (value, secs)
    });
    let total_secs = wall_start.elapsed().as_secs_f64();
    SuiteRun {
        scale,
        results: jobs
            .iter()
            .zip(results)
            .map(|((name, _), (value, secs))| (*name, value, secs))
            .collect(),
        total_secs,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--list") {
        lifting_bench::listing::print_registry_listing();
        return;
    }
    if args.iter().any(|a| a == "--sequential") {
        std::env::set_var(lifting_sim::pool::WORKERS_ENV, "1");
    }
    let both = args.iter().any(|a| a == "--both");
    let quick_only = args.iter().any(|a| a == "--quick") && !both;
    let filter: Option<String> = args
        .iter()
        .position(|a| a == "--filter")
        .map(|i| args.get(i + 1).expect("--filter needs a substring").clone());
    let heavy_scale_tier = args
        .iter()
        .position(|a| a == "--tier")
        .map(|i| {
            let tier = args.get(i + 1).expect("--tier needs a name");
            assert!(
                tier == "scale-heavy",
                "unknown tier {tier:?}; the only opt-in tier is scale-heavy"
            );
            true
        })
        .unwrap_or(false);
    let workers = lifting_sim::worker_count(usize::MAX);
    eprintln!("experiment suite on {workers} worker(s)");

    // Sweep the requested scales; the *primary* run (Quick for smoke runs,
    // Paper otherwise) provides the figure/table values of the summary.
    let mut runs: Vec<SuiteRun> = Vec::new();
    if quick_only || both {
        runs.push(run_suite(Scale::Quick, filter.as_deref(), heavy_scale_tier));
    }
    if !quick_only {
        runs.push(run_suite(Scale::Paper, filter.as_deref(), heavy_scale_tier));
    }
    let primary = runs.last().expect("at least one scale runs");

    let scenario_names: Vec<String> = ScenarioRegistry::builtin()
        .names()
        .iter()
        .map(|n| n.to_string())
        .collect();
    // One per-scale timing record, shared verbatim by the summary's
    // `per_scale_timings` and the bench snapshot's `scales` sections.
    let per_scale_timings = Value::Object(
        runs.iter()
            .map(|run| {
                (
                    format!("{:?}", run.scale),
                    json!({
                        "experiments_secs": run.timings(),
                        "total_wall_secs": run.total_secs,
                    }),
                )
            })
            .collect(),
    );
    // The speedup-vs-seed section tracks the Quick tier (the one the seed
    // baseline recorded); it is present whenever that tier ran. The ratio is
    // computed over the seed-era job intersection so it keeps measuring the
    // hot path; the full (grown) suite's total rides along for context.
    let quick_run = runs.iter().find(|r| r.scale == Scale::Quick);
    let speedup_vs_seed = quick_run.map(|run| {
        let seed_jobs_secs: f64 = run
            .results
            .iter()
            .filter(|(name, _, _)| SEED_QUICK_JOBS.contains(name))
            .map(|(_, _, secs)| *secs)
            .sum();
        json!({
            "seed_quick_total_wall_secs": SEED_QUICK_TOTAL_WALL_SECS,
            "seed_jobs": SEED_QUICK_JOBS,
            "seed_jobs_quick_secs": seed_jobs_secs,
            "speedup": SEED_QUICK_TOTAL_WALL_SECS / seed_jobs_secs.max(1e-9),
            "full_suite_jobs": run.results.len(),
            "quick_total_wall_secs": run.total_secs,
        })
    });
    // Paper-scale wall-clock of the heavy jobs against the previously
    // committed single-worker snapshot — the sharded/SoA PR's measured win.
    let paper_run = runs.iter().find(|r| r.scale == Scale::Paper);
    let heavy_job_speedup = paper_run.map(|run| {
        let shards: usize = std::env::var(lifting_runtime::SHARDS_ENV)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1);
        Value::Object(
            PRIOR_PAPER_HEAVY_SECS
                .iter()
                .filter_map(|(name, prior)| {
                    let (_, _, secs) = run.results.iter().find(|(n, _, _)| n == name)?;
                    Some((
                        name.to_string(),
                        json!({
                            "prior_committed_secs": prior,
                            "measured_secs": secs,
                            "speedup": prior / secs.max(1e-9),
                            "shards": shards,
                        }),
                    ))
                })
                .collect(),
        )
    });

    let summary = if filter.is_some() {
        // Partial development summary: just the filtered jobs, flagged so it
        // is never mistaken for (or committed as) the full suite's output.
        let mut sections: Vec<(String, Value)> = vec![
            ("filtered".to_string(), Value::Bool(true)),
            (
                "scale".to_string(),
                Value::String(format!("{:?}", primary.scale)),
            ),
            ("workers".to_string(), to_value(&workers)),
        ];
        for (name, value, _) in &primary.results {
            sections.push((name.to_string(), strip_key(value, "wall_secs")));
        }
        sections.push(("timings_secs".to_string(), primary.timings()));
        Value::Object(sections)
    } else {
        json!({
            "scale": format!("{:?}", primary.scale),
            "workers": workers,
            "scenarios": scenario_names,
            "fig01": primary.by_name("fig01"),
            "fig10": primary.by_name("fig10"),
            "fig11": primary.by_name("fig11"),
            "fig12": primary.by_name("fig12"),
            "fig13": primary.by_name("fig13"),
            "fig14": json!({
                "pdcc_1": primary.by_name("fig14_pdcc_1"),
                "pdcc_05": primary.by_name("fig14_pdcc_05"),
            }),
            "table3": primary.by_name("table3"),
            "table5": primary.by_name("table5"),
            "layer_traffic": primary.by_name("layer_traffic"),
            "adversaries": primary.by_name("adversaries"),
            "churn": primary.by_name("churn"),
            "multistream": primary.by_name("multistream"),
            "resilience": primary.by_name("resilience"),
            "workload": primary.by_name("workload"),
            "scale_sweep": strip_key(primary.by_name("scale"), "wall_secs"),
            "scale_tier": if heavy_scale_tier { "scale-heavy" } else { "standard" },
            // Times a sweep's η calibration fell back to the paper's −9.75
            // because its honest sample was empty; anything non-zero means a
            // reported detection rate ran against an uncalibrated threshold.
            "eta_fallbacks": paper_eta_fallback_count(),
            "timings_secs": primary.timings(),
            "total_wall_secs": primary.total_secs,
            "per_scale_timings": per_scale_timings.clone(),
            "speedup_vs_seed": speedup_vs_seed.clone().unwrap_or(Value::Null),
        })
    };
    let path = "experiments_summary.json";
    std::fs::write(path, serde_json::to_string_pretty(&summary).unwrap()).expect("write summary");
    println!("wrote {path}");

    // Per-tier scale-sweep timings: the standard tier (always run) and the
    // opt-in scale-heavy tail, each with per-population seconds pulled from
    // the sweep's own `wall_secs` records. Keeping both in the snapshot lets
    // the perf trajectory track the 100k run even though the default
    // `--paper` suite no longer pays for it.
    let scale_tiers = primary
        .results
        .iter()
        .find(|(n, _, _)| *n == "scale")
        .map(|(_, v, _)| {
            let mut standard: Vec<(String, Value)> = Vec::new();
            let mut heavy: Vec<(String, Value)> = Vec::new();
            if let Value::Array(rows) = v {
                for row in rows {
                    let (Some(Value::String(name)), Some(secs)) =
                        (row.get("scenario"), row.get("wall_secs"))
                    else {
                        continue;
                    };
                    if SCALE_HEAVY_SCENARIOS.contains(&name.as_str()) {
                        heavy.push((name.clone(), secs.clone()));
                    } else {
                        standard.push((name.clone(), secs.clone()));
                    }
                }
            }
            let total = |entries: &[(String, Value)]| -> f64 {
                entries.iter().filter_map(|(_, v)| v.as_f64()).sum()
            };
            json!({
                "standard": json!({
                    "scenario_secs": Value::Object(standard.clone()),
                    "total_secs": total(&standard),
                }),
                "scale-heavy": json!({
                    "ran": heavy_scale_tier,
                    "scenario_secs": Value::Object(heavy.clone()),
                    "total_secs": if heavy_scale_tier { Value::Float(total(&heavy)) } else { Value::Null },
                }),
            })
        })
        .unwrap_or(Value::Null);

    // Timing snapshot: the perf trajectory across PRs. With workers > 1 the
    // per-experiment spans overlap and include descheduled time (their sum
    // exceeds the wall clock); `contended` flags that, and the per-scale
    // `total_wall_secs` are the numbers to track across runs. Use
    // `--sequential` when per-experiment spans themselves must be comparable.
    let bench = json!({
        "suite": "run_all_experiments",
        "scale": format!("{:?}", primary.scale),
        "workers": workers,
        "contended": workers > 1,
        "experiments_secs": primary.timings(),
        "total_wall_secs": primary.total_secs,
        "scales": per_scale_timings,
        "scale_tier": if heavy_scale_tier { "scale-heavy" } else { "standard" },
        "scale_tiers": scale_tiers,
        "speedup_vs_seed": speedup_vs_seed.unwrap_or(Value::Null),
        "heavy_job_speedup": heavy_job_speedup.unwrap_or(Value::Null),
        "memory_per_node_bytes": primary
            .results
            .iter()
            .find(|(n, _, _)| *n == "scale")
            .map(|(_, v, _)| match v {
                Value::Array(rows) => Value::Object(
                    rows.iter()
                        .filter_map(|row| {
                            let Value::String(name) = row.get("scenario")? else {
                                return None;
                            };
                            Some((
                                name.clone(),
                                row.get("memory_per_node_bytes")?.clone(),
                            ))
                        })
                        .collect(),
                ),
                _ => Value::Null,
            })
            .unwrap_or(Value::Null),
    });
    let bench_path = "BENCH_experiments.json";
    std::fs::write(bench_path, serde_json::to_string_pretty(&bench).unwrap())
        .expect("write bench snapshot");
    println!("wrote {bench_path}");

    let pick = |v: &Value, keys: &[&str]| -> f64 {
        let mut cur = v.clone();
        for k in keys {
            cur = match k.parse::<usize>() {
                Ok(i) => cur.get_index(i).cloned().unwrap_or(Value::Null),
                Err(_) => cur.get(k).cloned().unwrap_or(Value::Null),
            };
        }
        cur.as_f64().unwrap_or(0.0)
    };
    if filter.is_none() {
        println!(
            "headlines: fig10 σ = {:.1} (paper 25.6); fig11 detection = {:.2}; \
             fig13 p*m = {:.2} (paper 0.21); fig14 detection@30s = {:.2} (paper 0.86)",
            pick(primary.by_name("fig10"), &["std_dev"]),
            pick(primary.by_name("fig11"), &["detection"]),
            pick(primary.by_name("fig13"), &["max_bias_25_colluders"]),
            pick(
                primary.by_name("fig14_pdcc_1"),
                &["snapshots", "1", "detection"]
            ),
        );
    }
    for run in &runs {
        println!(
            "{:?} scale wall-clock: {:.2}s on {workers} worker(s)",
            run.scale, run.total_secs
        );
    }
}
