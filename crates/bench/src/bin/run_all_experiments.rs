//! Runs every experiment of the paper as a parallel job queue and writes a
//! JSON summary (with per-experiment wall-clock timings) to
//! `experiments_summary.json`, plus a timing-only snapshot to
//! `BENCH_experiments.json` for the performance trajectory.
//!
//! Flags: `--quick` shrinks every experiment for a smoke run; `--sequential`
//! forces a single worker (`LIFTING_WORKERS=1`), which produces **identical**
//! figure/table numbers — only the wall-clock changes.

use std::time::Instant;

use lifting_bench::experiments::*;
use lifting_bench::scale_from_args;
use lifting_runtime::{run_jobs_parallel, ScenarioRegistry};
use serde_json::{json, to_value, Value};

type Job = (&'static str, Box<dyn Fn() -> Value + Send + Sync>);

fn main() {
    let scale = scale_from_args();
    if std::env::args().any(|a| a == "--sequential") {
        std::env::set_var(lifting_sim::pool::WORKERS_ENV, "1");
    }
    let workers = lifting_sim::worker_count(usize::MAX);
    eprintln!("running all experiments at {scale:?} scale on {workers} worker(s) ...");

    // Every experiment is a job; independent scenarios *inside* an experiment
    // fan out further through the same pool (fig01's three cases, fig12's
    // delta sweep, the table grids), and fig14's two pdcc runs are jobs of
    // their own.
    let jobs: Vec<Job> = vec![
        (
            "fig01",
            Box::new(move || to_value(&fig01_stream_health(scale, 1))),
        ),
        (
            "fig10",
            Box::new(move || to_value(&fig10_wrongful_blames(scale, 10))),
        ),
        (
            "fig11",
            Box::new(move || to_value(&fig11_score_distributions(scale, 11))),
        ),
        (
            "fig12",
            Box::new(move || {
                let (eta, points) = fig12_detection_vs_delta(scale, 12);
                json!({ "eta": eta, "points": points })
            }),
        ),
        (
            "fig13",
            Box::new(move || to_value(&fig13_history_entropy(scale, 13))),
        ),
        (
            "fig14_pdcc_1",
            Box::new(move || to_value(&fig14_planetlab_scores(scale, 1.0, 14))),
        ),
        (
            "fig14_pdcc_05",
            Box::new(move || to_value(&fig14_planetlab_scores(scale, 0.5, 14))),
        ),
        (
            "table3",
            Box::new(move || to_value(&table03_verification_overhead(scale, 3))),
        ),
        (
            "table5",
            Box::new(move || to_value(&table05_practical_overhead(scale, 5))),
        ),
        (
            "layer_traffic",
            Box::new(move || to_value(&layer_traffic_breakdown(scale, 30))),
        ),
        (
            "adversaries",
            Box::new(move || to_value(&adversary_showcase(scale, 21))),
        ),
    ];

    let wall_start = Instant::now();
    let results: Vec<(Value, f64)> = run_jobs_parallel(jobs.len(), |i| {
        let (name, run) = &jobs[i];
        eprintln!("[{}/{}] {name} ...", i + 1, jobs.len());
        let start = Instant::now();
        let value = run();
        let secs = start.elapsed().as_secs_f64();
        eprintln!("[{}/{}] {name} done in {secs:.2}s", i + 1, jobs.len());
        (value, secs)
    });
    let total_secs = wall_start.elapsed().as_secs_f64();

    let by_name =
        |name: &str| -> &Value { &results[jobs.iter().position(|(n, _)| *n == name).unwrap()].0 };
    let timings = Value::Object(
        jobs.iter()
            .zip(&results)
            .map(|((name, _), (_, secs))| (name.to_string(), Value::Float(*secs)))
            .collect(),
    );

    let scenario_names: Vec<String> = ScenarioRegistry::builtin()
        .names()
        .iter()
        .map(|n| n.to_string())
        .collect();
    let summary = json!({
        "scale": format!("{scale:?}"),
        "workers": workers,
        "scenarios": scenario_names,
        "fig01": by_name("fig01"),
        "fig10": by_name("fig10"),
        "fig11": by_name("fig11"),
        "fig12": by_name("fig12"),
        "fig13": by_name("fig13"),
        "fig14": json!({ "pdcc_1": by_name("fig14_pdcc_1"), "pdcc_05": by_name("fig14_pdcc_05") }),
        "table3": by_name("table3"),
        "table5": by_name("table5"),
        "layer_traffic": by_name("layer_traffic"),
        "adversaries": by_name("adversaries"),
        "timings_secs": timings,
        "total_wall_secs": total_secs,
    });
    let path = "experiments_summary.json";
    std::fs::write(path, serde_json::to_string_pretty(&summary).unwrap()).expect("write summary");
    println!("wrote {path}");

    // Timing-only snapshot: the seed of the perf trajectory across PRs.
    // With workers > 1 the per-experiment spans overlap and include
    // descheduled time (their sum exceeds the wall clock); `contended` flags
    // that, and `total_wall_secs` is the number to track across runs. Use
    // `--sequential` when per-experiment spans themselves must be comparable.
    let bench = json!({
        "suite": "run_all_experiments",
        "scale": format!("{scale:?}"),
        "workers": workers,
        "contended": workers > 1,
        "experiments_secs": summary.get("timings_secs").unwrap(),
        "total_wall_secs": total_secs,
    });
    let bench_path = "BENCH_experiments.json";
    std::fs::write(bench_path, serde_json::to_string_pretty(&bench).unwrap())
        .expect("write bench snapshot");
    println!("wrote {bench_path}");

    let pick = |v: &Value, keys: &[&str]| -> f64 {
        let mut cur = v.clone();
        for k in keys {
            cur = match k.parse::<usize>() {
                Ok(i) => cur.get_index(i).cloned().unwrap_or(Value::Null),
                Err(_) => cur.get(k).cloned().unwrap_or(Value::Null),
            };
        }
        cur.as_f64().unwrap_or(0.0)
    };
    println!(
        "headlines: fig10 σ = {:.1} (paper 25.6); fig11 detection = {:.2}; \
         fig13 p*m = {:.2} (paper 0.21); fig14 detection@30s = {:.2} (paper 0.86)",
        pick(by_name("fig10"), &["std_dev"]),
        pick(by_name("fig11"), &["detection"]),
        pick(by_name("fig13"), &["max_bias_25_colluders"]),
        pick(by_name("fig14_pdcc_1"), &["snapshots", "1", "detection"]),
    );
    println!("total wall-clock: {total_secs:.2}s on {workers} worker(s)");
}
