//! Runs every experiment of the paper and writes a JSON summary to
//! `experiments_summary.json` (use `--quick` for a fast smoke run).

use lifting_bench::experiments::*;
use lifting_bench::scale_from_args;
use serde_json::json;

fn main() {
    let scale = scale_from_args();
    eprintln!("running all experiments at {scale:?} scale ...");

    eprintln!("[1/8] figure 10");
    let fig10 = fig10_wrongful_blames(scale, 10);
    eprintln!("[2/8] figure 11");
    let fig11 = fig11_score_distributions(scale, 11);
    eprintln!("[3/8] figure 12");
    let (eta, fig12) = fig12_detection_vs_delta(scale, 12);
    eprintln!("[4/8] figure 13");
    let fig13 = fig13_history_entropy(scale, 13);
    eprintln!("[5/8] figure 1");
    let fig01 = fig01_stream_health(scale, 1);
    eprintln!("[6/8] figure 14");
    let fig14_full = fig14_planetlab_scores(scale, 1.0, 14);
    let fig14_half = fig14_planetlab_scores(scale, 0.5, 14);
    eprintln!("[7/8] table 3");
    let table3 = table03_verification_overhead(scale, 3);
    eprintln!("[8/8] table 5");
    let table5 = table05_practical_overhead(scale, 5);

    let summary = json!({
        "scale": format!("{scale:?}"),
        "fig01": fig01,
        "fig10": fig10,
        "fig11": fig11,
        "fig12": {"eta": eta, "points": fig12},
        "fig13": fig13,
        "fig14": {"pdcc_1": fig14_full, "pdcc_05": fig14_half},
        "table3": table3,
        "table5": table5,
    });
    let path = "experiments_summary.json";
    std::fs::write(path, serde_json::to_string_pretty(&summary).unwrap())
        .expect("write summary");
    println!("wrote {path}");
    println!(
        "headlines: fig10 σ = {:.1} (paper 25.6); fig11 detection = {:.2}; \
         fig13 p*m = {:.2} (paper 0.21); fig14 detection@30s = {:.2} (paper 0.86)",
        fig10.std_dev,
        fig11.detection,
        fig13.max_bias_25_colluders,
        fig14_full
            .snapshots
            .get(1)
            .map(|s| s.detection)
            .unwrap_or(0.0)
    );
}
