//! Figure 1: fraction of nodes viewing a clear stream vs. stream lag, with and
//! without LiFTinG, in the presence of 25 % freeriders.

use lifting_bench::experiments::fig01_stream_health;
use lifting_bench::scale_from_args;

fn main() {
    let scale = scale_from_args();
    eprintln!("figure 1 — stream health ({scale:?} scale)");
    let curves = fig01_stream_health(scale, 1);
    print!("{:>8}", "lag(s)");
    for c in &curves {
        print!("  {:>28}", c.label);
    }
    println!();
    for i in 0..curves[0].lag_secs.len() {
        print!("{:>8.0}", curves[0].lag_secs[i]);
        for c in &curves {
            print!("  {:>28.3}", c.fraction_clear[i]);
        }
        println!();
    }
    println!();
    for c in &curves {
        println!("{:<28} expelled {}", c.label, c.expelled);
    }
}
