//! Figure 13 and Section 6.3.2: entropy of honest fanout/fanin histories,
//! the calibrated threshold γ and the maximal undetectable collusion bias.

use lifting_bench::experiments::fig13_history_entropy;
use lifting_bench::scale_from_args;

fn main() {
    let scale = scale_from_args();
    eprintln!("figure 13 — history entropy ({scale:?} scale)");
    let r = fig13_history_entropy(scale, 13);
    println!(
        "maximum entropy log2(nh·f)      : {:.3}  (paper: 9.23)",
        r.max_entropy
    );
    println!(
        "fanout entropy (honest)         : mean {:.3}  min {:.3}  max {:.3}  (paper: 9.11–9.21)",
        r.fanout.mean, r.fanout.min, r.fanout.max
    );
    println!(
        "fanin entropy (honest)          : mean {:.3}  min {:.3}  max {:.3}  (paper: 8.98–9.34)",
        r.fanin.mean, r.fanin.min, r.fanin.max
    );
    println!(
        "calibrated threshold γ          : {:.2}  (paper: 8.95)",
        r.calibrated_gamma
    );
    println!(
        "biased colluder history entropy : {:.2}  (fails the γ check)",
        r.biased_entropy_example
    );
    println!();
    println!(
        "Eq. 7: max undetectable bias p*m for γ = 8.95, m' = 25 colluders: {:.1} %  (paper: 21 %)",
        100.0 * r.max_bias_25_colluders
    );
}
