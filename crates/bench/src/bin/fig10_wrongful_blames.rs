//! Figure 10: distribution of compensated honest scores after one gossip
//! period under 7 % message loss (f = 12, |R| = 4, pdcc = 1).

use lifting_bench::experiments::fig10_wrongful_blames;
use lifting_bench::scale_from_args;

fn main() {
    let scale = scale_from_args();
    eprintln!("figure 10 — wrongful blames and compensation ({scale:?} scale)");
    let r = fig10_wrongful_blames(scale, 10);
    println!(
        "expected wrongful blame b~ (Eq. 5)  : {:.2}  (paper: 72.95)",
        r.expected_compensation
    );
    println!(
        "mean compensated score              : {:.3}  (paper: < 0.01)",
        r.mean_score
    );
    println!(
        "score standard deviation            : {:.2}  (paper: 25.6)",
        r.std_dev
    );
    println!();
    println!("{:>10}  {:>16}", "score", "fraction of nodes");
    for (c, f) in r.bin_centers.iter().zip(&r.fractions) {
        if *f > 0.0 {
            println!("{c:>10.1}  {f:>16.4}");
        }
    }
}
