//! Table 5: practical bandwidth overhead of cross-checking and blaming for
//! three stream rates and pdcc ∈ {0, 0.5, 1}.

use lifting_bench::experiments::table05_practical_overhead;
use lifting_bench::scale_from_args;

fn main() {
    let scale = scale_from_args();
    eprintln!("table 5 — practical overhead ({scale:?} scale)");
    let cells = table05_practical_overhead(scale, 5);
    println!(
        "{:>16}  {:>10}  {:>10}  {:>10}",
        "stream", "pdcc=0", "pdcc=0.5", "pdcc=1"
    );
    for kbps in [674u64, 1082, 2036] {
        let at = |p: f64| {
            cells
                .iter()
                .find(|c| c.stream_kbps == kbps && (c.pdcc - p).abs() < 1e-9)
                .map(|c| format!("{:.2}%", 100.0 * c.overhead))
                .unwrap_or_default()
        };
        println!(
            "{:>13} kbps  {:>10}  {:>10}  {:>10}",
            kbps,
            at(0.0),
            at(0.5),
            at(1.0)
        );
    }
    println!();
    println!("paper (674 kbps): 1.07% / 4.53% / 8.01%; overhead decreases with the stream rate");
}
