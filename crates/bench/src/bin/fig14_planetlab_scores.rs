//! Figure 14: PlanetLab-scale score distributions at 25 / 30 / 35 s for
//! pdcc = 1 and pdcc = 0.5, with 10 % freeriders of degree Δ = (1/7, 0.1, 0.1).

use lifting_bench::experiments::fig14_planetlab_scores;
use lifting_bench::scale_from_args;

fn main() {
    let scale = scale_from_args();
    eprintln!("figure 14 — PlanetLab score snapshots ({scale:?} scale)");
    for pdcc in [1.0, 0.5] {
        let r = fig14_planetlab_scores(scale, pdcc, 14);
        println!("== pdcc = {pdcc} (overhead {:.2} %) ==", 100.0 * r.overhead);
        for s in &r.snapshots {
            println!(
                "  t = {:>4.0}s   detection {:>5.1} %   false positives {:>5.1} %   \
                 honest mean {:>7.2} (σ {:>5.2})   freerider mean {:>7.2} (σ {:>5.2})",
                s.at_secs,
                100.0 * s.detection,
                100.0 * s.false_positives,
                s.honest.mean,
                s.honest.std_dev,
                s.freeriders.mean,
                s.freeriders.std_dev,
            );
        }
        println!();
    }
    println!("paper headline (pdcc = 1, t = 30 s): detection 86 %, false positives 12 %");
}
