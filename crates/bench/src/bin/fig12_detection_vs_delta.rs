//! Figure 12: detection probability and bandwidth gain as functions of the
//! degree of freeriding δ, with η calibrated for β < 1 %.

use lifting_bench::experiments::fig12_detection_vs_delta;
use lifting_bench::scale_from_args;

fn main() {
    let scale = scale_from_args();
    eprintln!("figure 12 — detection vs degree of freeriding ({scale:?} scale)");
    let (eta, points) = fig12_detection_vs_delta(scale, 12);
    println!("calibrated threshold η = {eta:.2} (β ≤ 1%)");
    println!();
    println!(
        "{:>8}  {:>10}  {:>12}  {:>16}",
        "delta", "gain", "detection", "false positives"
    );
    for p in &points {
        println!(
            "{:>8.2}  {:>10.3}  {:>12.3}  {:>16.4}",
            p.delta, p.gain, p.detection, p.false_positives
        );
    }
    println!();
    let at = |d: f64| {
        points
            .iter()
            .min_by(|a, b| {
                (a.delta - d)
                    .abs()
                    .partial_cmp(&(b.delta - d).abs())
                    .unwrap()
            })
            .unwrap()
    };
    println!("paper checkpoints:");
    println!(
        "  δ = 0.05 → detection {:.2}  (paper: ≈ 0.65)",
        at(0.05).detection
    );
    println!(
        "  δ = 0.10 → detection {:.2}  (paper: > 0.99)",
        at(0.10).detection
    );
    println!(
        "  δ = 0.035 (10% gain) → detection {:.2}  (paper: ≈ 0.50)",
        at(0.04).detection
    );
}
