//! Runs one registered scenario by name and prints a compact JSON readout —
//! the CLI face of the scenario registry, used by the CI fault-injection
//! smoke gate and handy for ad-hoc inspection:
//!
//! ```text
//! run_scenario resilience/partition-waves --quick [--seed N] [--shards K]
//! ```
//!
//! `--shards K` runs the scenario through the sharded wave executor; the
//! readout is bit-identical to the sequential one at any shard count, which
//! is exactly what the CI scale gate diffs. `--exporter <name>` renders the
//! outcome through a registered outcome exporter (`json`, `summary-line`,
//! `digest`) instead of the default readout.
//!
//! Registry introspection:
//! * `--list` prints every scenario grouped by family, with its description
//!   and resolved component composition;
//! * `--list-names` prints the bare names (the CI manifest gate diffs this
//!   against `tests/scenario_manifest.txt`);
//! * `--validate-registry` instantiates every registered component of every
//!   kind with default parameters and exits non-zero on any failure.

use lifting_bench::experiments::{Scale, PAPER_ETA};
use lifting_bench::listing;
use lifting_runtime::{exporter_components, run_scenario_sharded, ScenarioRegistry};
use lifting_sim::{ParamMap, SeedSplitter};
use serde_json::{json, to_value};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let registry = ScenarioRegistry::builtin();
    if args.iter().any(|a| a == "--list") {
        listing::print_registry_listing();
        return;
    }
    if args.iter().any(|a| a == "--list-names") {
        listing::print_registry_names();
        return;
    }
    if args.iter().any(|a| a == "--validate-registry") {
        let validated = listing::validate_component_registries();
        println!("validated {validated} components across 6 registries");
        return;
    }
    let name = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .expect("usage: run_scenario <scenario-name> [--quick] [--seed N] [--list]");
    let scale = if args.iter().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Paper
    };
    let seed: u64 = args
        .iter()
        .position(|a| a == "--seed")
        .map(|i| args[i + 1].parse().expect("--seed needs an integer"))
        .unwrap_or(55);
    let shards: usize = args
        .iter()
        .position(|a| a == "--shards")
        .map(|i| args[i + 1].parse().expect("--shards needs an integer"))
        .unwrap_or(1);
    let exporter = args
        .iter()
        .position(|a| a == "--exporter")
        .map(|i| args[i + 1].as_str());
    assert!(
        registry.contains(name),
        "unknown scenario {name:?}; see --list"
    );

    let outcome = run_scenario_sharded(registry.build(name, scale, seed), shards);
    if let Some(exporter_name) = exporter {
        let mut seeds = SeedSplitter::new(seed);
        let exporter = exporter_components()
            .build(exporter_name, &ParamMap::new(), &mut seeds)
            .unwrap_or_else(|e| panic!("--exporter: {e}"));
        println!("{}", exporter.export(name, PAPER_ETA, &outcome));
        return;
    }
    let readout = json!({
        "scenario": name,
        "scale": format!("{scale:?}"),
        "seed": seed,
        "expelled_count": outcome.expelled_count,
        "churn": to_value(&outcome.churn),
        "confirm_retry": to_value(&outcome.confirm_retry),
        "audit_rpc": to_value(&outcome.audit_rpc),
        "recovery": to_value(&outcome.recovery),
        "stream_health": to_value(&outcome.stream_health),
        "traffic_total_bytes_sent": outcome.traffic.total_bytes_sent,
        "memory_per_node_bytes": outcome.memory_per_node_bytes,
    });
    println!(
        "{}",
        serde_json::to_string_pretty(&readout).expect("serialize readout")
    );
}
