//! Poor-man's profiler for the per-run hot path (no external profiler in the
//! build environment): runs the headline Quick scenario under a counting
//! allocator, attributes wall time to each event kind through a timing
//! `World` adapter, re-times the scenario under feature knobs (differential
//! attribution), and micro-times the building blocks.
//!
//! This is the harness that guided the time-wheel / flat-index / Arc-payload
//! optimization pass; keep it honest when touching the hot path.
//!
//! Flags: `--scenario NAME` picks the profiled scenario (default
//! `headline/planetlab`); `--shards K` additionally re-runs it through the
//! shard-parallel wave executor and prints the per-shard event and mailbox
//! counters (waves formed, events executed in waves, intra- vs cross-shard
//! staged actions, and the full src→dst mailbox matrix).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use lifting_runtime::{run_scenario, Scale, ScenarioConfig, ScenarioRegistry};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn time_run(label: &str, config: &ScenarioConfig) {
    let start = Instant::now();
    let _ = run_scenario(config.clone());
    println!("{label:<44} {:8.3}s", start.elapsed().as_secs_f64());
}

fn headline_breakdown(base: &ScenarioConfig) -> u64 {
    let start = Instant::now();
    let mut engine = lifting_runtime::build_engine(base.clone());
    let build_secs = start.elapsed().as_secs_f64();
    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    let start = Instant::now();
    engine.run_until(lifting_sim::SimTime::ZERO + base.duration);
    let run_secs = start.elapsed().as_secs_f64();
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - allocs_before;
    let events = engine.events_processed();
    let lags: Vec<lifting_sim::SimDuration> =
        (0..=30).map(lifting_sim::SimDuration::from_secs).collect();
    let start = Instant::now();
    let outcome = engine.world().run_outcome(
        lifting_sim::SimTime::ZERO + base.duration,
        Vec::new(),
        &lags,
    );
    let outcome_secs = start.elapsed().as_secs_f64();
    println!(
        "build {build_secs:.3}s  run {run_secs:.3}s  outcome {outcome_secs:.3}s  \
         events {events}  msgs {}  ns/event {:.0}  allocs/event {:.2}",
        outcome.traffic.total_messages_sent,
        run_secs * 1e9 / events as f64,
        allocs as f64 / events as f64,
    );
    for (cat, stats) in &outcome.traffic.per_category {
        if stats.messages_sent > 0 {
            println!(
                "  {cat:?}: sent {} delivered {}",
                stats.messages_sent, stats.messages_delivered
            );
        }
    }
    outcome.traffic.total_messages_sent
}

/// Re-runs the scenario through the shard-parallel wave executor and prints
/// its observability counters. The outcome is bit-identical to the sequential
/// run (asserted here on the cheap totals); what this section adds is the
/// execution-shape readout: how many same-timestamp waves formed, how many
/// events they covered, and how the staged actions split between intra-shard
/// commits and cross-shard mailbox traffic.
fn sharded_breakdown(base: &ScenarioConfig, shards: usize, sequential_msgs: u64) {
    use lifting_sim::SimTime;

    let mut engine = lifting_runtime::build_engine(base.clone());
    engine.world_mut().set_shard_count(shards);
    let start = Instant::now();
    engine.run_until_sharded(SimTime::ZERO + base.duration);
    let run_secs = start.elapsed().as_secs_f64();
    let world = engine.world();
    let k = world.shard_count();
    let ranges: Vec<String> = (0..k)
        .map(|s| {
            let (lo, hi) = world.shard_range(s);
            format!("{lo}..{hi}")
        })
        .collect();
    println!(
        "sharded run ({k} shards: {})           {run_secs:8.3}s",
        ranges.join(", ")
    );
    let msgs = world.traffic_messages_sent();
    assert_eq!(
        msgs, sequential_msgs,
        "sharded run diverged from sequential (messages {msgs} vs {sequential_msgs})"
    );
    if let Some((waves, wave_events, intra, cross)) = world.wave_stats() {
        let staged = intra + cross;
        println!(
            "  waves {waves}  events-in-waves {wave_events}  staged actions {staged} \
             (intra {intra}, cross {cross}, cross share {:.1}%)",
            100.0 * cross as f64 / (staged.max(1)) as f64
        );
        println!("  mailbox pushes (src shard -> dst shard):");
        for src in 0..k {
            let row: Vec<String> = (0..k)
                .map(|dst| format!("{:>10}", world.wave_mailbox_pushed(src, dst)))
                .collect();
            println!("    {src} | {}", row.join(" "));
        }
    }
}

/// Attributes handler time to each event kind. The two `Instant::now` calls
/// per event add a fixed overhead (printed last) — subtract it mentally.
fn per_event_kind_attribution(base: &ScenarioConfig) {
    use lifting_runtime::{Event, Message, SystemWorld};
    use lifting_sim::{Context, Engine, SimTime, World};

    const NAMES: [&str; 13] = [
        "SourceEmit",
        "GossipTick",
        "PeriodEnd",
        "AuditTick",
        "Timer",
        "Churn",
        "Propose",
        "Request",
        "Serve",
        "Ack",
        "Confirm",
        "ConfirmResp",
        "Blame",
    ];

    struct TimedWorld {
        inner: SystemWorld,
        buckets: [(f64, u64); 13],
    }
    impl TimedWorld {
        fn kind(ev: &Event) -> usize {
            match ev {
                Event::SourceEmit { .. } => 0,
                Event::GossipTick { .. } => 1,
                Event::PeriodEnd => 2,
                Event::AuditTick { .. } => 3,
                Event::Timer { .. } => 4,
                Event::Churn { .. } => 5,
                // Rare membership-level transitions share the churn bucket.
                Event::Fault { .. } | Event::Resubscribe { .. } => 5,
                Event::Deliver { message, .. } => match message {
                    Message::Gossip(g) => match g {
                        lifting_gossip::GossipMessage::Propose(_) => 6,
                        lifting_gossip::GossipMessage::Request(_) => 7,
                        lifting_gossip::GossipMessage::Serve(_) => 8,
                    },
                    Message::Verification(v) => match v {
                        lifting_core::VerificationMessage::Ack(_) => 9,
                        lifting_core::VerificationMessage::Confirm(_) => 10,
                        lifting_core::VerificationMessage::ConfirmResponse(_) => 11,
                        _ => 12,
                    },
                },
            }
        }
    }
    impl World for TimedWorld {
        type Event = Event;
        fn handle_event(&mut self, now: SimTime, ev: Event, ctx: &mut Context<Event>) {
            let k = Self::kind(&ev);
            let start = Instant::now();
            self.inner.handle_event(now, ev, ctx);
            self.buckets[k].0 += start.elapsed().as_secs_f64();
            self.buckets[k].1 += 1;
        }
    }

    let world = SystemWorld::new(base.clone());
    let events = world.initial_events();
    let mut engine = Engine::new(TimedWorld {
        inner: world,
        buckets: [(0.0, 0); 13],
    });
    for (t, e) in events {
        engine.schedule(t, e);
    }
    engine.run_until(SimTime::ZERO + base.duration);
    let mut rows: Vec<(&str, f64, u64)> = NAMES
        .iter()
        .zip(engine.world().buckets)
        .map(|(name, (secs, count))| (*name, secs, count))
        .collect();
    rows.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (name, secs, count) in rows {
        if count > 0 {
            println!(
                "  {name:<12} {secs:7.3}s  {count:8} events  {:7.0} ns/event",
                secs * 1e9 / count as f64
            );
        }
    }
    let start = Instant::now();
    let mut acc = 0u64;
    for _ in 0..1_000_000 {
        acc = acc.wrapping_add(Instant::now().elapsed().as_nanos() as u64);
    }
    println!(
        "  (timing overhead: {:.0} ns per event, accumulator {acc})",
        start.elapsed().as_secs_f64() * 1e9 / 1_000_000.0
    );
}

fn engine_machinery() {
    use lifting_sim::{Context, Engine, SimDuration, SimTime, World};

    /// Payload sized like the real `Event` (48 bytes) so queue moves cost
    /// what they cost in production.
    #[derive(Clone, Copy)]
    struct Fat(u64, [u64; 5]);

    struct Churn {
        rng: rand::rngs::SmallRng,
    }
    impl World for Churn {
        type Event = Fat;
        fn handle_event(&mut self, _now: SimTime, ev: Fat, ctx: &mut Context<Fat>) {
            use rand::Rng;
            // Latency-like delays: most a few hundred ms, some 500 ms ticks.
            let delay = if ev.0.is_multiple_of(5) {
                SimDuration::from_millis(500)
            } else {
                SimDuration::from_micros(self.rng.gen_range(10_000..400_000))
            };
            ctx.schedule_after(delay, Fat(ev.0 + 1, ev.1));
        }
    }
    let mut engine = Engine::new(Churn {
        rng: lifting_sim::derive_rng(9, 9),
    });
    for i in 0..2_000u64 {
        engine.schedule(SimTime::from_micros(i * 37), Fat(i, [0; 5]));
    }
    engine.run_until(SimTime::from_secs(5)); // warm up the wheel
    let start = Instant::now();
    let report = engine.run_until(SimTime::from_secs(35));
    println!(
        "engine machinery                             {:8.1} ns/event ({} events)",
        start.elapsed().as_secs_f64() * 1e9 / report.events_processed as f64,
        report.events_processed
    );
}

fn component_micro_timings() {
    use lifting_analysis::{BlameModel, FreeridingDegree, ProtocolParams};
    use lifting_core::{CollusionConfig, ConfirmPayload, LiftingConfig, Verifier};
    use lifting_gossip::ChunkId;
    use lifting_sim::{derive_rng, NodeId, SimTime};

    {
        let model = BlameModel::new(ProtocolParams::simulation_defaults(), 1.0);
        let start = Instant::now();
        let s = model.estimate_blame_stats(FreeridingDegree::HONEST, 100_000, 42);
        println!(
            "sample_period_blame (honest)             {:8.1} ns/op (mean {:.2})",
            start.elapsed().as_secs_f64() * 1e9 / 100_000.0,
            s.mean
        );
    }

    {
        let n = 1_000_000u64;
        let mut net = lifting_net::Network::new(
            100,
            lifting_net::NetworkConfig::planetlab(0.04),
            derive_rng(1, 0),
        );
        let start = Instant::now();
        let mut delivered = 0u64;
        for i in 0..n {
            let out = net.send(
                SimTime::from_micros(i),
                NodeId::new((i % 99) as u32),
                NodeId::new(((i + 1) % 99) as u32),
                64,
                lifting_net::TrafficCategory::Verification,
            );
            if out.is_delivered() {
                delivered += 1;
            }
        }
        println!(
            "network.send                             {:8.1} ns/op ({delivered} delivered)",
            start.elapsed().as_secs_f64() * 1e9 / n as f64
        );
    }

    {
        let mut v = Verifier::new(
            NodeId::new(1),
            7,
            LiftingConfig::planetlab(),
            CollusionConfig::none(),
        );
        for p in 0..50u64 {
            v.begin_period(p);
            for s in 0..7u32 {
                v.on_propose_received(
                    NodeId::new(10 + s),
                    (0..5)
                        .map(|k| ChunkId::primary(p * 5 + k))
                        .collect::<Vec<_>>()
                        .into(),
                    SimTime::from_millis(p),
                );
            }
        }
        let m = 200_000u64;
        let start = Instant::now();
        let mut answers = 0u64;
        for i in 0..m {
            let out = v.on_confirm(
                NodeId::new((i % 50) as u32 + 100),
                &ConfirmPayload {
                    subject: NodeId::new(10 + (i % 7) as u32),
                    chunks: vec![ChunkId::primary((i % 245) + 1)].into(),
                    token: i,
                },
                SimTime::from_secs(25),
            );
            answers += out.len() as u64;
        }
        println!(
            "verifier.on_confirm                      {:8.1} ns/op ({answers} answers)",
            start.elapsed().as_secs_f64() * 1e9 / m as f64
        );
    }
}

/// Parses `--flag VALUE` from argv; `None` when the flag is absent, panics
/// (with a usage hint) when the value is missing or malformed.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    Some(
        args.get(pos + 1)
            .unwrap_or_else(|| panic!("usage: profile_scenario [--scenario NAME] [--shards K]"))
            .clone(),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scenario = flag_value(&args, "--scenario").unwrap_or_else(|| "headline/planetlab".into());
    let shards: usize = flag_value(&args, "--shards")
        .map(|v| v.parse().expect("--shards takes a positive integer"))
        .unwrap_or(1);

    let registry = ScenarioRegistry::builtin();
    let base = registry.build(&scenario, Scale::Quick, 30);

    println!("-- {scenario} quick run ------------------------------------------");
    let sequential_msgs = headline_breakdown(&base);

    if shards > 1 {
        println!("-- sharded execution -------------------------------------------");
        sharded_breakdown(&base, shards, sequential_msgs);
    }

    println!("-- per-event-kind attribution ----------------------------------");
    per_event_kind_attribution(&base);

    println!("-- differential knobs ------------------------------------------");
    time_run("headline quick (as-is)", &base);
    let mut c = base.clone();
    c.lifting.pdcc = 0.0;
    time_run("pdcc = 0 (no cross-check confirms)", &c);
    let mut c = base.clone();
    c.lifting_enabled = false;
    time_run("lifting disabled (gossip only)", &c);
    let mut c = base.clone();
    c.lifting.history_periods = 5;
    time_run("history nh = 5", &c);

    println!("-- building blocks ---------------------------------------------");
    engine_machinery();
    component_micro_timings();
}
