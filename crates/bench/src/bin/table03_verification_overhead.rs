//! Table 3: message overhead of the verification procedures — analytical
//! bounds (Section 6.1) and per-node, per-period measured counts.

use lifting_bench::experiments::table03_verification_overhead;
use lifting_bench::scale_from_args;

fn main() {
    let scale = scale_from_args();
    eprintln!("table 3 — verification message overhead ({scale:?} scale)");
    let rows = table03_verification_overhead(scale, 3);
    println!(
        "{:>8}  {:>20}  {:>20}  {:>26}",
        "pdcc", "analytical bound", "gossip msgs f(2+|R|)", "measured msgs/node/period"
    );
    for r in &rows {
        println!(
            "{:>8.3}  {:>20.1}  {:>20.1}  {:>26.2}",
            r.pdcc, r.analytical_bound, r.gossip_messages, r.measured_per_node_period
        );
    }
}
