//! Figure 11: pdf/cdf of normalized scores for 9,000 honest nodes and 1,000
//! freeriders of degree Δ = (0.1, 0.1, 0.1) after r = 50 gossip periods.

use lifting_bench::experiments::fig11_score_distributions;
use lifting_bench::scale_from_args;

fn main() {
    let scale = scale_from_args();
    eprintln!("figure 11 — score distributions ({scale:?} scale)");
    let r = fig11_score_distributions(scale, 11);
    println!(
        "honest     : mean {:>7.2}  σ {:>6.2}  (n = {})",
        r.honest.mean, r.honest.std_dev, r.honest.count
    );
    println!(
        "freeriders : mean {:>7.2}  σ {:>6.2}  (n = {})",
        r.freeriders.mean, r.freeriders.std_dev, r.freeriders.count
    );
    println!();
    println!("detection α at η = -9.75        : {:.3}", r.detection);
    println!(
        "false positives β at η = -9.75  : {:.4}  (paper target: < 1%)",
        r.false_positives
    );
    if let Some(b) = r.mixture_boundary {
        println!("2-component mixture boundary    : {b:.2}  (likelihood-maximization ablation)");
    }
    println!();
    println!(
        "{:>8}  {:>14}  {:>14}",
        "score", "cdf honest", "cdf freeriders"
    );
    for ((x, h), f) in r.grid.iter().zip(&r.honest_cdf).zip(&r.freerider_cdf) {
        println!("{x:>8.1}  {h:>14.3}  {f:>14.3}");
    }
}
