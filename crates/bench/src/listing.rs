//! The `--list` face of the scenario registry (shared by `run_scenario` and
//! `run_all_experiments`): scenarios grouped by family with each one's
//! component composition, plus the registry-validation pass the CI gate runs.

use lifting_net::{capability_components, loss_components, transport_components};
use lifting_runtime::{
    adversary_components, component_summary, exporter_components, workload_components, Scale,
    ScenarioRegistry,
};
use lifting_sim::{ParamMap, SeedSplitter};

/// Prints every registered scenario grouped by family, each with its
/// description and the component composition the registry resolves it to
/// (`transport=paper loss=bernoulli{pl=0.04} ...`).
pub fn print_registry_listing() {
    let registry = ScenarioRegistry::builtin();
    for (family, members) in registry.families() {
        println!("{family}/");
        for name in members {
            let config = registry.build(name, Scale::Quick, 0);
            let composition: Vec<String> = component_summary(&config)
                .into_iter()
                .map(|(axis, value)| format!("{axis}={value}"))
                .collect();
            println!("  {name}");
            if let Some(description) = registry.description(name) {
                println!("      {description}");
            }
            println!("      [{}]", composition.join(" "));
        }
    }
}

/// Prints the bare scenario names, one per line — the machine-readable
/// format the CI manifest gate diffs against `tests/scenario_manifest.txt`.
pub fn print_registry_names() {
    for name in ScenarioRegistry::builtin().names() {
        println!("{name}");
    }
}

/// Instantiates every registered component of every kind with default
/// parameters, panicking (with the component's own error message) on any
/// failure — the CI registry-validation gate. Returns the number of
/// components validated.
pub fn validate_component_registries() -> usize {
    let mut validated = 0;
    let mut check = |kind: &str, names: Vec<&'static str>, build: &mut dyn FnMut(&str)| {
        for name in names {
            build(name);
            validated += 1;
            eprintln!("  {kind}/{name} ok");
        }
    };
    let defaults = ParamMap::new();
    check(
        "transport",
        transport_components().names().collect(),
        &mut |name| {
            let mut seeds = SeedSplitter::new(0);
            transport_components()
                .build(name, &defaults, &mut seeds)
                .unwrap_or_else(|e| panic!("transport/{name} failed to build: {e}"));
        },
    );
    check("loss", loss_components().names().collect(), &mut |name| {
        let mut seeds = SeedSplitter::new(0);
        loss_components()
            .build(name, &defaults, &mut seeds)
            .unwrap_or_else(|e| panic!("loss/{name} failed to build: {e}"));
    });
    check(
        "capability",
        capability_components().names().collect(),
        &mut |name| {
            let mut seeds = SeedSplitter::new(0);
            capability_components()
                .build(name, &defaults, &mut seeds)
                .unwrap_or_else(|e| panic!("capability/{name} failed to build: {e}"));
        },
    );
    check(
        "workload",
        workload_components().names().collect(),
        &mut |name| {
            let mut seeds = SeedSplitter::new(0);
            workload_components()
                .build(name, &defaults, &mut seeds)
                .unwrap_or_else(|e| panic!("workload/{name} failed to build: {e}"));
        },
    );
    check(
        "adversary",
        adversary_components().names().collect(),
        &mut |name| {
            let mut seeds = SeedSplitter::new(0);
            adversary_components()
                .build(name, &defaults, &mut seeds)
                .unwrap_or_else(|e| panic!("adversary/{name} failed to build: {e}"));
        },
    );
    check(
        "exporter",
        exporter_components().names().collect(),
        &mut |name| {
            let mut seeds = SeedSplitter::new(0);
            exporter_components()
                .build(name, &defaults, &mut seeds)
                .unwrap_or_else(|e| panic!("exporter/{name} failed to build: {e}"));
        },
    );
    validated
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_component_of_every_kind_builds_with_defaults() {
        // 3 transports + 3 loss models + 3 capability assigners + 3 workload
        // generators + 7 adversaries + 3 exporters.
        assert_eq!(validate_component_registries(), 22);
    }
}
