//! Experiment harness of the LiFTinG reproduction.
//!
//! Every table and figure of the paper's evaluation has a corresponding
//! experiment function here and a thin binary under `src/bin/` that prints the
//! same rows/series the paper reports (see `EXPERIMENTS.md` at the repository
//! root for the measured results). The functions are also reused by the
//! Criterion benches in `benches/`.
//!
//! Scale: every experiment accepts a [`Scale`]; `Scale::Paper` uses the
//! paper's population sizes and durations, `Scale::Quick` shrinks them so the
//! whole suite runs in seconds (used by `run_all_experiments --quick`, CI and
//! the Criterion experiment bench).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod listing;
pub mod output;

pub use experiments::Scale;

/// Parses the experiment scale from the process arguments (`--quick` selects
/// the reduced scale).
pub fn scale_from_args() -> Scale {
    if std::env::args().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Paper
    }
}
