//! The experiments themselves: one function per table/figure of the paper.

use lifting_analysis::entropy::calibrate_gamma;
use lifting_analysis::{
    calibrate_threshold, detection_rate, ecdf, false_positive_rate, max_undetectable_bias,
    shannon_entropy, uniform_selection_entropy, BlameModel, FreeridingDegree, GaussianMixture,
    Histogram, ProtocolParams, Summary,
};
use lifting_runtime::{
    fig14_scenario_name, run_jobs_parallel, run_scenario, run_scenario_with_snapshots,
    run_scenarios_parallel, table03_scenario_name, table05_scenario_name, LayerTraffic, RunOutcome,
    ScenarioConfig, ScenarioRegistry, ScoreSnapshot, WaveRecovery, TABLE03_PDCCS, TABLE05_PDCCS,
    TABLE05_STREAM_KBPS,
};
use lifting_sim::SimDuration;
use serde::{Deserialize, Serialize};

pub use lifting_analysis::entropy::uniform_selection_entropy as entropy_samples;
/// Experiment scale (re-exported from the runtime's scenario registry).
pub use lifting_runtime::Scale;

/// The paper's expulsion threshold: η = −9.75, calibrated in Section 6.2 for
/// a false-positive budget β < 1 % on the PlanetLab deployment's honest-score
/// distribution. Experiments that sweep their own populations recalibrate η
/// from their measured honest scores ([`calibrate_threshold`]) and fall back
/// to this reference value only when the honest sample is empty; every
/// fallback increments [`paper_eta_fallback_count`], which
/// `run_all_experiments` surfaces in its summary so a silently
/// miscalibrated sweep cannot masquerade as a measured one.
pub const PAPER_ETA: f64 = -9.75;

static PAPER_ETA_FALLBACKS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// How many times a threshold calibration fell back to [`PAPER_ETA`] because
/// its honest sample was empty (process-wide, in job-completion order).
pub fn paper_eta_fallback_count() -> u64 {
    PAPER_ETA_FALLBACKS.load(std::sync::atomic::Ordering::Relaxed)
}

/// Calibrates η for a `target_beta` false-positive budget over the measured
/// honest scores, falling back to [`PAPER_ETA`] (with a warning and a bump of
/// the fallback counter) when the sample is empty.
fn calibrated_eta(honest: &[f64], target_beta: f64) -> f64 {
    calibrate_threshold(honest, target_beta).unwrap_or_else(|| {
        PAPER_ETA_FALLBACKS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        eprintln!(
            "warning: empty honest sample, falling back to the paper's η = {PAPER_ETA} \
             (β is uncontrolled for this sweep)"
        );
        PAPER_ETA
    })
}

// ---------------------------------------------------------------------------
// Figure 1 — system efficiency in the presence of freeriders.
// ---------------------------------------------------------------------------

/// One stream-health curve of Figure 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HealthCurve {
    /// Curve label.
    pub label: String,
    /// Stream lags (seconds).
    pub lag_secs: Vec<f64>,
    /// Fraction of nodes viewing a clear stream at each lag.
    pub fraction_clear: Vec<f64>,
    /// Nodes expelled during the run.
    pub expelled: usize,
}

/// Figure 1: fraction of nodes viewing a clear stream vs. stream lag, for a
/// baseline run, 25 % freeriders without LiFTinG, and 25 % freeriders with
/// LiFTinG expelling them.
pub fn fig01_stream_health(scale: Scale, seed: u64) -> Vec<HealthCurve> {
    let registry = ScenarioRegistry::builtin();
    let (labels, configs): (Vec<String>, Vec<ScenarioConfig>) = [
        ("no freeriders", "fig01/no-freeriders"),
        ("25% freeriders", "fig01/freeriders-no-lifting"),
        ("25% freeriders (LiFTinG)", "fig01/freeriders-lifting"),
    ]
    .into_iter()
    .map(|(label, scenario)| (label.to_string(), registry.build(scenario, scale, seed)))
    .unzip();
    // The three cases are independent full-system runs; fan them out on the
    // scenario fleet (each carries its own seed, so results are identical to
    // running them one by one).
    let outcomes = run_scenarios_parallel(configs);
    labels
        .into_iter()
        .zip(outcomes)
        .map(|(label, outcome)| HealthCurve {
            label,
            lag_secs: outcome.stream_health.lag_secs.clone(),
            fraction_clear: outcome.stream_health.fraction_clear.clone(),
            expelled: outcome.expelled_count,
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 10 — impact of message losses after compensation.
// ---------------------------------------------------------------------------

/// Result of the Figure 10 experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WrongfulBlameResult {
    /// Expected wrongful blame per period from Equation 5 (the compensation).
    pub expected_compensation: f64,
    /// Mean of the compensated scores (paper: ≈ 0, < 0.01 in absolute value).
    pub mean_score: f64,
    /// Standard deviation of the compensated scores (paper: 25.6).
    pub std_dev: f64,
    /// Histogram bin centers.
    pub bin_centers: Vec<f64>,
    /// Fraction of nodes per bin (the pdf of Figure 10).
    pub fractions: Vec<f64>,
}

/// Figure 10: distribution of compensated scores of 10,000 honest nodes after
/// one gossip period with `pl = 7 %`, `f = 12`, `|R| = 4`, `pdcc = 1`.
pub fn fig10_wrongful_blames(scale: Scale, seed: u64) -> WrongfulBlameResult {
    let nodes = scale.pick(10_000, 2_000);
    let params = ProtocolParams::simulation_defaults();
    let model = BlameModel::new(params, 1.0);
    let scores = model
        .population_scores(nodes, 0, FreeridingDegree::HONEST, 1, seed)
        .honest;
    let summary = Summary::of(&scores);
    let mut hist = Histogram::new(-250.0, 50.0, 60);
    hist.extend(scores.iter().copied());
    WrongfulBlameResult {
        expected_compensation: params.expected_wrongful_blame(),
        mean_score: summary.mean,
        std_dev: summary.std_dev,
        bin_centers: hist.centers(),
        fractions: hist.fractions(),
    }
}

// ---------------------------------------------------------------------------
// Figure 11 — score distributions with 10 % freeriders, Δ = (0.1, 0.1, 0.1).
// ---------------------------------------------------------------------------

/// Result of the Figure 11 experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScoreDistributionResult {
    /// Grid of score values for the cdf (x-axis of Figure 11b).
    pub grid: Vec<f64>,
    /// CDF of honest scores over the grid.
    pub honest_cdf: Vec<f64>,
    /// CDF of freerider scores over the grid.
    pub freerider_cdf: Vec<f64>,
    /// Summary of honest scores.
    pub honest: Summary,
    /// Summary of freerider scores.
    pub freeriders: Summary,
    /// Detection probability at η = −9.75.
    pub detection: f64,
    /// False-positive probability at η = −9.75.
    pub false_positives: f64,
    /// Decision boundary suggested by a two-component Gaussian mixture fit
    /// (the likelihood-maximization alternative the paper mentions).
    pub mixture_boundary: Option<f64>,
}

/// Figure 11: normalized score distributions of 9,000 honest nodes and 1,000
/// freeriders of degree `Δ = (0.1, 0.1, 0.1)` after `r = 50` gossip periods.
pub fn fig11_score_distributions(scale: Scale, seed: u64) -> ScoreDistributionResult {
    let honest_n = scale.pick(9_000, 1_800);
    let freerider_n = scale.pick(1_000, 200);
    let params = ProtocolParams::simulation_defaults();
    let model = BlameModel::new(params, 1.0);
    let samples = model.population_scores(
        honest_n,
        freerider_n,
        FreeridingDegree::uniform(0.1),
        50,
        seed,
    );
    let grid: Vec<f64> = (-50..=10).map(|x| x as f64).collect();
    let eta = PAPER_ETA;
    let mixture = GaussianMixture::fit(&samples.all(), 200);
    ScoreDistributionResult {
        honest_cdf: ecdf(&samples.honest, &grid),
        freerider_cdf: ecdf(&samples.freeriders, &grid),
        honest: Summary::of(&samples.honest),
        freeriders: Summary::of(&samples.freeriders),
        detection: detection_rate(&samples.freeriders, eta),
        false_positives: false_positive_rate(&samples.honest, eta),
        mixture_boundary: mixture.map(|m| m.decision_boundary()),
        grid,
    }
}

// ---------------------------------------------------------------------------
// Figure 12 — detection probability and gain vs. degree of freeriding.
// ---------------------------------------------------------------------------

/// One row of the Figure 12 sweep.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DetectionPoint {
    /// Degree of freeriding δ (δ1 = δ2 = δ3 = δ).
    pub delta: f64,
    /// Upload-bandwidth gain of the freerider.
    pub gain: f64,
    /// Detection probability measured by Monte-Carlo simulation.
    pub detection: f64,
    /// False-positive probability at the same threshold.
    pub false_positives: f64,
}

/// Figure 12: detection probability α and bandwidth gain as functions of the
/// degree of freeriding δ, with the threshold η calibrated for β < 1 %.
pub fn fig12_detection_vs_delta(scale: Scale, seed: u64) -> (f64, Vec<DetectionPoint>) {
    let honest_n = scale.pick(5_000, 1_000);
    let freerider_n = scale.pick(2_000, 400);
    let periods = 50;
    let params = ProtocolParams::simulation_defaults();
    let model = BlameModel::new(params, 1.0);
    let honest = model
        .population_scores(honest_n, 0, FreeridingDegree::HONEST, periods, seed)
        .honest;
    let eta = calibrated_eta(&honest, 0.01);
    // Each δ of the sweep is an independent Monte-Carlo population with its
    // own derived seed; fan the 21 points out across the worker pool.
    let points = run_jobs_parallel(21, |i| {
        let delta = i as f64 * 0.01;
        let degree = FreeridingDegree::uniform(delta);
        let scores = model
            .population_scores(0, freerider_n, degree, periods, seed ^ (i as u64 + 1))
            .freeriders;
        DetectionPoint {
            delta,
            gain: degree.gain(),
            detection: detection_rate(&scores, eta),
            false_positives: false_positive_rate(&honest, eta),
        }
    });
    (eta, points)
}

// ---------------------------------------------------------------------------
// Figure 13 — entropy of honest histories, and Equation 7.
// ---------------------------------------------------------------------------

/// Result of the Figure 13 experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EntropyResult {
    /// Entropy samples of the fanout multiset (nh·f = 600 entries).
    pub fanout: Summary,
    /// Entropy samples of the fanin multiset.
    pub fanin: Summary,
    /// The maximum reachable entropy log2(nh·f).
    pub max_entropy: f64,
    /// The threshold calibrated from the samples (paper: γ = 8.95).
    pub calibrated_gamma: f64,
    /// Maximum undetectable collusion bias p*m for γ = 8.95 and m' = 25
    /// (paper: ≈ 21 %).
    pub max_bias_25_colluders: f64,
    /// Entropy of a maximally biased colluder's history (for reference).
    pub biased_entropy_example: f64,
}

/// Figure 13 and the Equation 7 analysis: entropy distribution of honest
/// fanout/fanin histories in a 10,000-node system with `nh·f = 600`, the
/// calibrated threshold γ, and the maximal undetectable collusion bias.
pub fn fig13_history_entropy(scale: Scale, seed: u64) -> EntropyResult {
    let samples = scale.pick(2_000, 300);
    let population = 10_000;
    let entries = 600;
    let fanout = uniform_selection_entropy(entries, population, samples, seed);
    // The fanin multiset has the same law but a Poisson-distributed size with
    // mean nh·f; sampling with ±10 % jitter reproduces the wider spread of
    // Figure 13b.
    let fanin: Vec<f64> = (0..samples)
        .flat_map(|i| {
            let size = entries - 60 + (i * 120 / samples.max(1));
            uniform_selection_entropy(size, population, 1, seed ^ (i as u64 + 77))
        })
        .collect();
    let gamma = calibrate_gamma(entries, population, samples.min(500), 0.15, seed);
    // A colluder biasing 60 % of its pushes towards a 25-node coalition.
    let biased: Vec<u32> = (0..entries)
        .map(|i| {
            if i % 5 < 3 {
                (i % 25) as u32
            } else {
                1_000 + i as u32
            }
        })
        .collect();
    EntropyResult {
        fanout: Summary::of(&fanout),
        fanin: Summary::of(&fanin),
        max_entropy: (entries as f64).log2(),
        calibrated_gamma: gamma,
        max_bias_25_colluders: max_undetectable_bias(8.95, 25, entries).unwrap_or(0.0),
        biased_entropy_example: shannon_entropy(biased),
    }
}

// ---------------------------------------------------------------------------
// Figure 14 — PlanetLab score CDFs at 25 / 30 / 35 s, pdcc = 1 and 0.5.
// ---------------------------------------------------------------------------

/// Result of the Figure 14 experiment for one value of pdcc.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlanetlabScoresResult {
    /// The cross-checking probability used.
    pub pdcc: f64,
    /// One entry per snapshot (25, 30, 35 s): detection and false positives
    /// at η = −9.75 plus score summaries.
    pub snapshots: Vec<PlanetlabSnapshot>,
    /// Overall LiFTinG traffic overhead during the run.
    pub overhead: f64,
}

/// Detection metrics at one snapshot instant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlanetlabSnapshot {
    /// Snapshot time in seconds.
    pub at_secs: f64,
    /// Detection probability (score < η or expelled).
    pub detection: f64,
    /// False-positive probability.
    pub false_positives: f64,
    /// Summary of honest scores.
    pub honest: Summary,
    /// Summary of freerider scores.
    pub freeriders: Summary,
}

fn snapshot_metrics(snap: &ScoreSnapshot, eta: f64) -> PlanetlabSnapshot {
    PlanetlabSnapshot {
        at_secs: snap.at.as_secs_f64(),
        detection: snap.detection_rate(eta),
        false_positives: snap.false_positive_rate(eta),
        honest: Summary::of(&snap.honest_scores()),
        freeriders: Summary::of(&snap.freerider_scores()),
    }
}

/// Figure 14: the PlanetLab deployment (300 nodes, 674 kbps, 10 % freeriders
/// with Δ = (1/7, 0.1, 0.1)) observed at 25, 30 and 35 seconds, for the given
/// cross-checking probability.
pub fn fig14_planetlab_scores(scale: Scale, pdcc: f64, seed: u64) -> PlanetlabScoresResult {
    // The paper's two pdcc values are registered scenarios; any other pdcc
    // reuses the registered deployment with the probability overridden.
    let registry = ScenarioRegistry::builtin();
    let config = registry
        .try_build(&fig14_scenario_name(pdcc), scale, seed)
        .unwrap_or_else(|| {
            let mut config = registry.build(&fig14_scenario_name(1.0), scale, seed);
            config.lifting.pdcc = pdcc;
            config
        });
    let snaps = [
        SimDuration::from_secs(25),
        SimDuration::from_secs(30),
        SimDuration::from_secs(35),
    ];
    let outcome = run_scenario_with_snapshots(config, &snaps);
    let eta = PAPER_ETA;
    PlanetlabScoresResult {
        pdcc,
        snapshots: outcome
            .snapshots
            .iter()
            .map(|s| snapshot_metrics(s, eta))
            .collect(),
        overhead: outcome.traffic.overhead_ratio,
    }
}

// ---------------------------------------------------------------------------
// Table 3 — message overhead of the verifications.
// ---------------------------------------------------------------------------

/// One row of Table 3: message counts per gossip period for one pdcc.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VerificationOverheadRow {
    /// Cross-checking probability.
    pub pdcc: f64,
    /// Analytical bound on verification + blame messages per node per period.
    pub analytical_bound: f64,
    /// Messages sent per period by the gossip protocol itself, `f(2 + |R|)`.
    pub gossip_messages: f64,
    /// Measured verification + blame messages per node per period.
    pub measured_per_node_period: f64,
}

/// Table 3: analytical bounds (Section 6.1) and measured per-node, per-period
/// verification message counts for several values of pdcc.
pub fn table03_verification_overhead(scale: Scale, seed: u64) -> Vec<VerificationOverheadRow> {
    let params = ProtocolParams::planetlab_defaults();
    let pdccs = TABLE03_PDCCS;
    let registry = ScenarioRegistry::builtin();
    let configs: Vec<ScenarioConfig> = pdccs
        .iter()
        .map(|&pdcc| registry.build(&table03_scenario_name(pdcc), scale, seed))
        .collect();
    // Normalize by the population/duration of the scenarios actually run, so
    // the registry stays the single source of truth.
    let nodes = configs[0].nodes;
    let duration = configs[0].duration;
    let outcomes = run_scenarios_parallel(configs);
    pdccs
        .into_iter()
        .zip(outcomes)
        .map(|(pdcc, outcome)| {
            let verification_msgs: u64 = outcome
                .traffic
                .per_category
                .iter()
                .filter(|(c, _)| c.is_lifting_overhead())
                .map(|(_, v)| v.messages_sent)
                .sum();
            let periods = duration.as_secs_f64() / 0.5;
            VerificationOverheadRow {
                pdcc,
                analytical_bound: params.verification_message_bound(pdcc, 25),
                gossip_messages: params.gossip_message_count(),
                measured_per_node_period: verification_msgs as f64 / (nodes as f64 * periods),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Table 5 — practical bandwidth overhead.
// ---------------------------------------------------------------------------

/// One cell of Table 5.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PracticalOverheadCell {
    /// Stream rate (kbps).
    pub stream_kbps: u64,
    /// Cross-checking probability.
    pub pdcc: f64,
    /// Measured LiFTinG overhead (verification + blame + audit bytes divided
    /// by gossip bytes).
    pub overhead: f64,
}

/// Table 5: cross-checking and blaming overhead for stream rates of 674, 1082
/// and 2036 kbps and pdcc ∈ {0, 0.5, 1}.
pub fn table05_practical_overhead(scale: Scale, seed: u64) -> Vec<PracticalOverheadCell> {
    let mut grid = Vec::new();
    for stream_kbps in TABLE05_STREAM_KBPS {
        for pdcc in TABLE05_PDCCS {
            grid.push((stream_kbps, pdcc));
        }
    }
    let registry = ScenarioRegistry::builtin();
    let configs: Vec<ScenarioConfig> = grid
        .iter()
        .map(|&(stream_kbps, pdcc)| {
            registry.build(&table05_scenario_name(stream_kbps, pdcc), scale, seed)
        })
        .collect();
    let outcomes = run_scenarios_parallel(configs);
    grid.into_iter()
        .zip(outcomes)
        .map(|((stream_kbps, pdcc), outcome)| PracticalOverheadCell {
            stream_kbps,
            pdcc,
            overhead: outcome.traffic.overhead_ratio,
        })
        .collect()
}

/// Convenience: the headline PlanetLab run used by `run_all_experiments`
/// (detection / false positives / overhead after 30 s).
pub fn headline_run(scale: Scale, seed: u64) -> RunOutcome {
    run_scenario(ScenarioRegistry::builtin().build("headline/planetlab", scale, seed))
}

// ---------------------------------------------------------------------------
// Per-layer overhead breakdown and the adversary showcases.
// ---------------------------------------------------------------------------

/// Per-layer traffic of one full-system run (Table 3's overhead breakdown at
/// system scale: gossip vs verification vs audit vs reputation bytes).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerTrafficResult {
    /// The registered scenario that was run.
    pub scenario: String,
    /// Per-layer message/byte counters.
    pub per_layer: Vec<LayerTraffic>,
    /// Overall LiFTinG overhead ratio (Table 5's headline number).
    pub overhead: f64,
}

/// Runs the headline PlanetLab scenario and reports its traffic split by
/// protocol-stack layer.
pub fn layer_traffic_breakdown(scale: Scale, seed: u64) -> LayerTrafficResult {
    let scenario = "headline/planetlab";
    let outcome = run_scenario(ScenarioRegistry::builtin().build(scenario, scale, seed));
    LayerTrafficResult {
        scenario: scenario.to_string(),
        per_layer: outcome.layer_traffic.clone(),
        overhead: outcome.traffic.overhead_ratio,
    }
}

/// Outcome of one adversary-showcase scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdversaryShowcaseResult {
    /// The registered scenario that was run.
    pub scenario: String,
    /// Detection probability at η = −9.75.
    pub detection: f64,
    /// False-positive probability at η = −9.75.
    pub false_positives: f64,
    /// Nodes expelled during the run.
    pub expelled: usize,
    /// Mean score of the misbehaving population.
    pub freerider_mean: f64,
    /// Mean score of the honest population.
    pub honest_mean: f64,
}

// ---------------------------------------------------------------------------
// Churn sweep: dynamic membership (PlanetLab-style joins/crashes/rejoins).
// ---------------------------------------------------------------------------

/// The registered `churn/*` scenarios the sweep runs, in registry order.
pub const CHURN_SCENARIOS: [&str; 5] = [
    "churn/steady-slow",
    "churn/steady-fast",
    "churn/catastrophe",
    "churn/flash-crowd",
    "churn/freeriders",
];

/// Outcome of one churn scenario: detection quality (α/β at η = −9.75) plus
/// the membership dynamics observed during the run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChurnScenarioResult {
    /// The registered scenario that was run.
    pub scenario: String,
    /// Detection probability at η = −9.75 (score below η or expelled).
    pub detection: f64,
    /// False-positive probability at η = −9.75.
    pub false_positives: f64,
    /// Nodes expelled during the run.
    pub expelled: usize,
    /// Online sessions begun (initially online nodes plus rejoins).
    pub sessions: u64,
    /// Departures executed (steady churn plus catastrophe crashes).
    pub departures: u64,
    /// Rejoins executed (steady churn plus the flash-crowd wave).
    pub rejoins: u64,
    /// Audits abandoned because a witness had departed.
    pub audits_aborted_by_departure: u64,
    /// Nodes offline (departed, not expelled) when the run ended.
    pub offline_at_end: usize,
    /// Fraction of nodes viewing a clear stream at the largest lag.
    pub final_clear_fraction: f64,
}

/// Runs the `churn/*` scenario family — steady churn at two rates, a
/// catastrophic 30 % failure, a flash crowd and churn × freeriders — and
/// reports detection quality plus the churn metrics of each run.
pub fn churn_sweep(scale: Scale, seed: u64) -> Vec<ChurnScenarioResult> {
    let registry = ScenarioRegistry::builtin();
    let configs: Vec<ScenarioConfig> = CHURN_SCENARIOS
        .iter()
        .map(|name| registry.build(name, scale, seed))
        .collect();
    let outcomes = run_scenarios_parallel(configs);
    let eta = PAPER_ETA;
    CHURN_SCENARIOS
        .iter()
        .zip(outcomes)
        .map(|(scenario, outcome)| ChurnScenarioResult {
            scenario: scenario.to_string(),
            detection: outcome.detection_rate(eta),
            false_positives: outcome.false_positive_rate(eta),
            expelled: outcome.expelled_count,
            sessions: outcome.churn.sessions,
            departures: outcome.churn.departures,
            rejoins: outcome.churn.rejoins,
            audits_aborted_by_departure: outcome.churn.audits_aborted_by_departure,
            offline_at_end: outcome.churn.offline_at_end,
            final_clear_fraction: outcome
                .stream_health
                .fraction_clear
                .last()
                .copied()
                .unwrap_or(0.0),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Multistream sweep: several concurrent channels over one membership and
// reputation plane.
// ---------------------------------------------------------------------------

/// The registered `multistream/*` scenarios the sweep runs, in registry order.
pub const MULTISTREAM_SCENARIOS: [&str; 4] = [
    "multistream/disjoint-audiences",
    "multistream/overlapping-audiences",
    "multistream/selective-freeriders",
    "multistream/rate-asymmetry",
];

/// Per-channel readout of one multistream scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamResult {
    /// The stream index.
    pub stream: u16,
    /// Subscribers of this stream (excluding the source).
    pub subscribers: usize,
    /// Chunks the stream's source emitted.
    pub emitted_chunks: usize,
    /// Fraction of the stream's subscribers viewing a clear stream at the
    /// largest lag.
    pub final_clear_fraction: f64,
    /// Blames emitted by this stream's verification plane.
    pub blames: u64,
    /// Blame value booked against the misbehaving population on this
    /// channel (the attack's per-channel footprint).
    pub freerider_blame_value: f64,
}

/// Outcome of one multistream scenario: aggregate detection quality (the one
/// cross-stream score per node) plus each channel's own dissemination
/// readout.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultistreamScenarioResult {
    /// The registered scenario that was run.
    pub scenario: String,
    /// Number of concurrent channels.
    pub streams: usize,
    /// Detection probability at η = −9.75 (aggregate cross-stream score).
    pub detection: f64,
    /// False-positive probability at η = −9.75.
    pub false_positives: f64,
    /// Nodes expelled during the run (an expulsion bans from every channel).
    pub expelled: usize,
    /// Mean score of the honest population (one cross-stream score each).
    pub honest_mean: f64,
    /// Mean score of the misbehaving population.
    pub freerider_mean: f64,
    /// Per-channel readouts.
    pub per_stream: Vec<StreamResult>,
}

/// Runs the `multistream/*` scenario family — disjoint audiences, overlapping
/// audiences, selective freeriders (honest on one channel, silent on
/// another) and rate asymmetry — and reports aggregate detection plus
/// per-stream dissemination metrics for each run.
pub fn multistream_sweep(scale: Scale, seed: u64) -> Vec<MultistreamScenarioResult> {
    let registry = ScenarioRegistry::builtin();
    let configs: Vec<ScenarioConfig> = MULTISTREAM_SCENARIOS
        .iter()
        .map(|name| registry.build(name, scale, seed))
        .collect();
    let outcomes = run_scenarios_parallel(configs);
    let eta = PAPER_ETA;
    MULTISTREAM_SCENARIOS
        .iter()
        .zip(outcomes)
        .map(|(scenario, outcome)| {
            let mean = |v: &[f64]| {
                if v.is_empty() {
                    0.0
                } else {
                    v.iter().sum::<f64>() / v.len() as f64
                }
            };
            MultistreamScenarioResult {
                scenario: scenario.to_string(),
                streams: outcome.per_stream.len(),
                detection: outcome.detection_rate(eta),
                false_positives: outcome.false_positive_rate(eta),
                expelled: outcome.expelled_count,
                honest_mean: mean(&outcome.finals.honest_scores()),
                freerider_mean: mean(&outcome.finals.freerider_scores()),
                per_stream: outcome
                    .per_stream
                    .iter()
                    .map(|s| StreamResult {
                        stream: s.stream.0,
                        subscribers: s.subscribers,
                        emitted_chunks: s.emitted_chunks,
                        final_clear_fraction: s
                            .stream_health
                            .fraction_clear
                            .last()
                            .copied()
                            .unwrap_or(0.0),
                        blames: s.blames,
                        freerider_blame_value: s.freerider_blame_value,
                    })
                    .collect(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Resilience sweep: closed-loop adversaries, injected network faults, and
// the recovery-convergence readout of the hardened protocol paths.
// ---------------------------------------------------------------------------

/// The registered `resilience/*` scenarios the sweep runs, in registry order.
pub const RESILIENCE_SCENARIOS: [&str; 6] = [
    "resilience/gradient-freerider",
    "resilience/gradient-freerider-online",
    "resilience/whitewasher",
    "resilience/partition-waves",
    "resilience/bursty-loss",
    "resilience/adaptive-colluders",
];

/// Outcome of one resilience scenario: detection quality at the paper's
/// static η and at the run's effective (possibly recalibrated) threshold,
/// the hardened-RPC counters, and the recovery-convergence readout.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResilienceScenarioResult {
    /// The registered scenario that was run.
    pub scenario: String,
    /// Detection probability at the *static* η = −9.75 (score below η or
    /// expelled) — what the paper's fixed threshold would catch.
    pub detection_static_eta: f64,
    /// Detection probability at the run's effective threshold (equals the
    /// static number unless online recalibration moved η).
    pub detection_effective_eta: f64,
    /// False-positive probability at the effective threshold.
    pub false_positives: f64,
    /// Nodes expelled during the run.
    pub expelled: usize,
    /// Mean score of the honest population.
    pub honest_mean: f64,
    /// Mean score of the misbehaving population.
    pub freerider_mean: f64,
    /// The effective threshold at the end of the run.
    pub eta_final: f64,
    /// Hardened-confirm timeouts (lost `ConfirmResponse`s detected).
    pub confirm_timeouts: u64,
    /// Hardened-confirm re-sends.
    pub confirm_resends: u64,
    /// Confirm checks abandoned without blame after every retry stayed
    /// silent.
    pub confirm_aborts: u64,
    /// Audit RPCs that timed out against unreachable peers.
    pub audit_rpc_timeouts: u64,
    /// Audit RPCs re-sent after a timeout.
    pub audit_rpc_retries: u64,
    /// Audits abandoned because the peer stayed unreachable through every
    /// retry.
    pub audits_aborted_unreachable: u64,
    /// Detection precision over the final period.
    pub final_precision: f64,
    /// Detection recall over the final period.
    pub final_recall: f64,
    /// Per-disturbance reconvergence readout (partition waves, whitewash
    /// bursts), in onset order.
    pub waves: Vec<WaveRecovery>,
    /// Fraction of nodes viewing a clear stream at the largest lag.
    pub final_clear_fraction: f64,
}

/// Runs the `resilience/*` scenario family — gradient freeriders against the
/// static and the online-recalibrated threshold, whitewashers, partition
/// waves against the hardened audit RPCs, bursty loss against the hardened
/// confirms, and adaptive colluders — and reports detection quality plus the
/// recovery metrics of each run.
pub fn resilience_sweep(scale: Scale, seed: u64) -> Vec<ResilienceScenarioResult> {
    let registry = ScenarioRegistry::builtin();
    let configs: Vec<ScenarioConfig> = RESILIENCE_SCENARIOS
        .iter()
        .map(|name| registry.build(name, scale, seed))
        .collect();
    let outcomes = run_scenarios_parallel(configs);
    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    RESILIENCE_SCENARIOS
        .iter()
        .zip(outcomes)
        .map(|(scenario, outcome)| {
            let recovery = outcome.recovery.as_ref();
            let eta_final = recovery
                .and_then(|r| r.eta_trace.last().copied())
                .unwrap_or(PAPER_ETA);
            ResilienceScenarioResult {
                scenario: scenario.to_string(),
                detection_static_eta: outcome.detection_rate(PAPER_ETA),
                detection_effective_eta: outcome.detection_rate(eta_final),
                false_positives: outcome.false_positive_rate(eta_final),
                expelled: outcome.expelled_count,
                honest_mean: mean(&outcome.finals.honest_scores()),
                freerider_mean: mean(&outcome.finals.freerider_scores()),
                eta_final,
                confirm_timeouts: outcome.confirm_retry.timeouts,
                confirm_resends: outcome.confirm_retry.resends,
                confirm_aborts: outcome.confirm_retry.aborts,
                audit_rpc_timeouts: outcome.audit_rpc.rpc_timeouts,
                audit_rpc_retries: outcome.audit_rpc.rpc_retries,
                audits_aborted_unreachable: outcome.audit_rpc.aborted_unreachable,
                final_precision: recovery
                    .and_then(|r| r.period_precision.last().copied())
                    .unwrap_or(1.0),
                final_recall: recovery
                    .and_then(|r| r.period_recall.last().copied())
                    .unwrap_or(0.0),
                waves: recovery.map(|r| r.waves.clone()).unwrap_or_default(),
                final_clear_fraction: outcome
                    .stream_health
                    .fraction_clear
                    .last()
                    .copied()
                    .unwrap_or(0.0),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Workload sweep: trace-driven membership workloads expanded from registered
// generator components (diurnal cycles, regional failures, channel zapping).
// ---------------------------------------------------------------------------

/// The registered `workload/*` scenarios the sweep runs, in registry order.
pub const WORKLOAD_SCENARIOS: [&str; 3] = [
    "workload/diurnal",
    "workload/regional-failure",
    "workload/zap",
];

/// Outcome of one workload scenario: detection quality (α/β at η = −9.75)
/// plus the membership/subscription dynamics the generator drove.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadScenarioResult {
    /// The registered scenario that was run.
    pub scenario: String,
    /// Detection probability at η = −9.75 (score below η or expelled).
    pub detection: f64,
    /// False-positive probability at η = −9.75.
    pub false_positives: f64,
    /// Nodes expelled during the run.
    pub expelled: usize,
    /// Online sessions begun (initially online nodes plus rejoins).
    pub sessions: u64,
    /// Departures the workload plan executed (diurnal troughs, outages).
    pub departures: u64,
    /// Rejoins the workload plan executed (diurnal peaks, outage recovery).
    pub rejoins: u64,
    /// Nodes offline (departed, not expelled) when the run ended.
    pub offline_at_end: usize,
    /// Number of concurrent channels.
    pub streams: usize,
    /// Fraction of nodes viewing a clear stream at the largest lag.
    pub final_clear_fraction: f64,
    /// Each channel's clear fraction at the largest lag (zap redistributes
    /// audiences between channels; every channel must stay alive).
    pub per_stream_final_clear: Vec<f64>,
}

/// Runs the `workload/*` scenario family — a diurnal participation cycle
/// over tiered access classes, correlated regional-failure waves, and
/// zap-style channel surfing across three channels — and reports detection
/// quality plus the membership dynamics each trace drove.
pub fn workload_sweep(scale: Scale, seed: u64) -> Vec<WorkloadScenarioResult> {
    let registry = ScenarioRegistry::builtin();
    let configs: Vec<ScenarioConfig> = WORKLOAD_SCENARIOS
        .iter()
        .map(|name| registry.build(name, scale, seed))
        .collect();
    let outcomes = run_scenarios_parallel(configs);
    let eta = PAPER_ETA;
    WORKLOAD_SCENARIOS
        .iter()
        .zip(outcomes)
        .map(|(scenario, outcome)| WorkloadScenarioResult {
            scenario: scenario.to_string(),
            detection: outcome.detection_rate(eta),
            false_positives: outcome.false_positive_rate(eta),
            expelled: outcome.expelled_count,
            sessions: outcome.churn.sessions,
            departures: outcome.churn.departures,
            rejoins: outcome.churn.rejoins,
            offline_at_end: outcome.churn.offline_at_end,
            streams: outcome.per_stream.len(),
            final_clear_fraction: outcome
                .stream_health
                .fraction_clear
                .last()
                .copied()
                .unwrap_or(0.0),
            per_stream_final_clear: outcome
                .per_stream
                .iter()
                .map(|s| {
                    s.stream_health
                        .fraction_clear
                        .last()
                        .copied()
                        .unwrap_or(0.0)
                })
                .collect(),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// scale/ — detection quality and memory beyond the paper's population.
// ---------------------------------------------------------------------------

/// The scale/ scenario family, in ascending population order. Run smallest
/// first so an out-of-memory failure at the top end cannot mask the results
/// of the populations below it.
pub const SCALE_SCENARIOS: [&str; 3] = ["scale/1k", "scale/10k", "scale/100k"];

/// The heavy tail of the scale family: populations that dominate the whole
/// Paper suite's wall clock. `run_all_experiments` runs them only behind the
/// opt-in `--tier scale-heavy` flag so the default `--paper` sweep stays
/// around a minute.
pub const SCALE_HEAVY_SCENARIOS: [&str; 1] = ["scale/100k"];

/// One population of the scale sweep: Figure 14's detection readout (10 %
/// freeriders, pdcc = 1) at a beyond-paper population, plus the per-node
/// memory bill of the whole protocol state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScaleScenarioResult {
    /// Registered scenario name.
    pub scenario: String,
    /// Population size of the run.
    pub nodes: usize,
    /// Simulated duration in seconds.
    pub duration_secs: f64,
    /// Expulsion threshold calibrated from this population's honest scores
    /// (β = 1 %), falling back to the paper's η only on an empty sample.
    pub eta: f64,
    /// Fraction of freeriders detected at `eta` (recall).
    pub detection: f64,
    /// Fraction of honest nodes below `eta`.
    pub false_positives: f64,
    /// Of everything flagged at `eta`, the fraction that really freerides.
    pub precision: f64,
    /// Nodes expelled during the run.
    pub expelled: usize,
    /// Estimated protocol-state heap bytes per node at the end of the run
    /// (deterministic capacity walk; identical across worker/shard counts).
    pub memory_per_node_bytes: f64,
    /// Fraction of nodes viewing a clear stream at the largest lag.
    pub final_clear_fraction: f64,
    /// Wall-clock seconds this population's run took — the per-tier timing
    /// record `BENCH_experiments.json` tracks across revisions.
    pub wall_secs: f64,
}

/// Runs the `scale/*` family — the Figure 14 deployment pushed to 1k, 10k
/// and 100k nodes — and reports precision/recall at a per-population
/// calibrated threshold together with `memory_per_node_bytes`. The runs are
/// deliberately sequential (not fanned out through the pool): the 100k
/// population dominates peak memory, and stacking it on top of concurrent
/// jobs would make the sweep's footprint depend on worker count.
pub fn scale_sweep(scale: Scale, seed: u64) -> Vec<ScaleScenarioResult> {
    scale_sweep_tier(scale, seed, true)
}

/// [`scale_sweep`] with the heavy tail gated: `include_heavy = false` skips
/// the [`SCALE_HEAVY_SCENARIOS`] populations (the `--paper` default in
/// `run_all_experiments`); `true` runs the full family.
pub fn scale_sweep_tier(scale: Scale, seed: u64, include_heavy: bool) -> Vec<ScaleScenarioResult> {
    let registry = ScenarioRegistry::builtin();
    SCALE_SCENARIOS
        .iter()
        .filter(|name| include_heavy || !SCALE_HEAVY_SCENARIOS.contains(name))
        .map(|name| {
            let config = registry.build(name, scale, seed);
            let nodes = config.nodes;
            let duration_secs = config.duration.as_secs_f64();
            let run_start = std::time::Instant::now();
            let outcome = run_scenario(config);
            let wall_secs = run_start.elapsed().as_secs_f64();
            let honest = outcome.finals.honest_scores();
            let freeriders = outcome.finals.freerider_scores();
            let eta = calibrated_eta(&honest, 0.01);
            let detection = outcome.detection_rate(eta);
            let false_positives = outcome.false_positive_rate(eta);
            // Precision from the two rates and the population split: of the
            // nodes flagged at η, how many actually freeride.
            let flagged_bad = detection * freeriders.len() as f64;
            let flagged_good = false_positives * honest.len() as f64;
            let precision = if flagged_bad + flagged_good > 0.0 {
                flagged_bad / (flagged_bad + flagged_good)
            } else {
                1.0
            };
            ScaleScenarioResult {
                scenario: name.to_string(),
                nodes,
                duration_secs,
                eta,
                detection,
                false_positives,
                precision,
                expelled: outcome.expelled_count,
                memory_per_node_bytes: outcome.memory_per_node_bytes,
                final_clear_fraction: outcome
                    .stream_health
                    .fraction_clear
                    .last()
                    .copied()
                    .unwrap_or(0.0),
                wall_secs,
            }
        })
        .collect()
}

/// Runs the pluggable-adversary scenarios (attacks the pre-refactor wiring
/// could not express: on-off freeriders and blame spammers) and reports how
/// the detector fares against each.
pub fn adversary_showcase(scale: Scale, seed: u64) -> Vec<AdversaryShowcaseResult> {
    let registry = ScenarioRegistry::builtin();
    let scenarios = ["adversary/on-off-freeriders", "adversary/blame-spam"];
    let configs: Vec<ScenarioConfig> = scenarios
        .iter()
        .map(|name| registry.build(name, scale, seed))
        .collect();
    let outcomes = run_scenarios_parallel(configs);
    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    let eta = PAPER_ETA;
    scenarios
        .iter()
        .zip(outcomes)
        .map(|(scenario, outcome)| AdversaryShowcaseResult {
            scenario: scenario.to_string(),
            detection: outcome.detection_rate(eta),
            false_positives: outcome.false_positive_rate(eta),
            expelled: outcome.expelled_count,
            freerider_mean: mean(&outcome.finals.freerider_scores()),
            honest_mean: mean(&outcome.finals.honest_scores()),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_experiments_run_end_to_end() {
        let fig10 = fig10_wrongful_blames(Scale::Quick, 1);
        assert!(fig10.mean_score.abs() < 3.0);
        assert!((fig10.expected_compensation - 72.95).abs() < 0.05);

        let fig11 = fig11_score_distributions(Scale::Quick, 2);
        assert!(fig11.detection > fig11.false_positives);

        let (eta, fig12) = fig12_detection_vs_delta(Scale::Quick, 3);
        assert!(eta < 0.0);
        assert!(fig12.last().unwrap().detection > 0.9);

        let fig13 = fig13_history_entropy(Scale::Quick, 4);
        assert!(fig13.fanout.mean > 9.0);
        assert!((fig13.max_bias_25_colluders - 0.21).abs() < 0.03);
        assert!(fig13.biased_entropy_example < fig13.calibrated_gamma);
    }

    #[test]
    fn quick_scale_churn_sweep_exercises_every_dynamic() {
        let results = churn_sweep(Scale::Quick, 9);
        assert_eq!(results.len(), CHURN_SCENARIOS.len());
        let by_name = |name: &str| {
            results
                .iter()
                .find(|r| r.scenario == name)
                .unwrap_or_else(|| panic!("missing churn result {name}"))
        };
        // Steady churn cycles sessions both ways.
        let steady = by_name("churn/steady-fast");
        assert!(steady.departures > 0 && steady.rejoins > 0);
        assert_eq!(steady.sessions, steady.rejoins + 79, "80-node quick run");
        // The catastrophe is permanent; the flash crowd joins exactly once.
        let cat = by_name("churn/catastrophe");
        assert!(cat.departures > 0);
        assert_eq!(cat.rejoins, 0);
        let flash = by_name("churn/flash-crowd");
        assert!(flash.rejoins > 0);
        assert_eq!(flash.departures, 0);
        assert_eq!(flash.offline_at_end, 0);
        // Dissemination survives every dynamic.
        for r in &results {
            assert!(
                r.final_clear_fraction > 0.2,
                "{}: stream collapsed ({})",
                r.scenario,
                r.final_clear_fraction
            );
        }
    }

    #[test]
    fn quick_scale_multistream_sweep_reports_every_channel() {
        let results = multistream_sweep(Scale::Quick, 9);
        assert_eq!(results.len(), MULTISTREAM_SCENARIOS.len());
        let by_name = |name: &str| {
            results
                .iter()
                .find(|r| r.scenario == name)
                .unwrap_or_else(|| panic!("missing multistream result {name}"))
        };
        let disjoint = by_name("multistream/disjoint-audiences");
        assert_eq!(disjoint.streams, 2);
        // Disjoint halves: each channel serves about half the population.
        let subs: Vec<usize> = disjoint.per_stream.iter().map(|s| s.subscribers).collect();
        assert_eq!(subs.iter().sum::<usize>(), 79, "80-node quick run");
        // Every channel of every scenario actually emitted and disseminated.
        for r in &results {
            assert_eq!(r.per_stream.len(), r.streams);
            for s in &r.per_stream {
                assert!(
                    s.emitted_chunks > 0,
                    "{}: {} never emitted",
                    r.scenario,
                    s.stream
                );
                assert!(
                    s.final_clear_fraction > 0.2,
                    "{}: stream {} collapsed ({})",
                    r.scenario,
                    s.stream,
                    s.final_clear_fraction
                );
            }
        }
        // The selective freeriders' silence on channel 1 shows up in that
        // channel's blame volume and drags their one cross-stream score
        // below the honest population's (the uncompensated expulsion
        // demonstration lives in runtime/tests/multistream_invariants.rs).
        let selective = by_name("multistream/selective-freeriders");
        // Channel 0's share is pure wrongful noise (the freeriders are honest
        // there); the silence on channel 1 adds real misbehaviour on top, so
        // its blame value must dominate even though channel 0 streams faster.
        assert!(
            selective.per_stream[1].freerider_blame_value
                > selective.per_stream[0].freerider_blame_value,
            "the silenced channel should dominate the freeriders' blame \
             ({} vs {})",
            selective.per_stream[1].freerider_blame_value,
            selective.per_stream[0].freerider_blame_value
        );
        assert!(
            selective.freerider_mean < selective.honest_mean,
            "selective freeriders should score below honest nodes ({} vs {})",
            selective.freerider_mean,
            selective.honest_mean
        );
        assert_eq!(
            selective.false_positives, 0.0,
            "compensation must keep honest nodes clear of the threshold"
        );
    }

    #[test]
    fn quick_scale_workload_sweep_drives_every_trace() {
        let results = workload_sweep(Scale::Quick, 9);
        assert_eq!(results.len(), WORKLOAD_SCENARIOS.len());
        let by_name = |name: &str| {
            results
                .iter()
                .find(|r| r.scenario == name)
                .unwrap_or_else(|| panic!("missing workload result {name}"))
        };
        // The diurnal cycle swings participation both ways.
        let diurnal = by_name("workload/diurnal");
        assert!(diurnal.departures > 0 && diurnal.rejoins > 0);
        // Regional outages knock regions down and bring them back.
        let regional = by_name("workload/regional-failure");
        assert!(regional.departures > 0 && regional.rejoins > 0);
        // Zapping is pure channel switching: membership stays put, and all
        // three channels stay alive under the shifting audiences.
        let zap = by_name("workload/zap");
        assert_eq!(zap.departures, 0);
        assert_eq!(zap.streams, 3);
        for (i, clear) in zap.per_stream_final_clear.iter().enumerate() {
            assert!(
                *clear > 0.2,
                "workload/zap: channel {i} collapsed ({clear})"
            );
        }
        // Dissemination survives every trace.
        for r in &results {
            assert!(
                r.final_clear_fraction > 0.2,
                "{}: stream collapsed ({})",
                r.scenario,
                r.final_clear_fraction
            );
        }
    }

    #[test]
    fn scale_sweep_standard_tier_skips_the_heavy_tail() {
        let results = scale_sweep_tier(Scale::Quick, 9, false);
        assert_eq!(
            results.len(),
            SCALE_SCENARIOS.len() - SCALE_HEAVY_SCENARIOS.len()
        );
        assert!(results
            .iter()
            .all(|r| !SCALE_HEAVY_SCENARIOS.contains(&r.scenario.as_str())));
    }

    #[test]
    fn quick_scale_scale_sweep_reports_detection_and_memory() {
        let results = scale_sweep(Scale::Quick, 9);
        assert_eq!(results.len(), SCALE_SCENARIOS.len());
        // Populations ascend; every run reports a positive memory bill and a
        // live stream, and the η calibration keeps false positives near its
        // 1 % target. (Detection itself is a *finding* of the sweep — the
        // paper-scale calibration does not transfer to 10k+ populations — so
        // the test pins the readout's integrity, not a detection floor.)
        for pair in results.windows(2) {
            assert!(pair[0].nodes < pair[1].nodes);
        }
        for r in &results {
            assert!(
                r.memory_per_node_bytes > 0.0,
                "{}: no memory bill",
                r.scenario
            );
            assert!(
                r.final_clear_fraction > 0.2,
                "{}: stream collapsed ({})",
                r.scenario,
                r.final_clear_fraction
            );
            assert!(
                r.false_positives <= 0.05,
                "{}: false positives {} far above the 1% calibration target",
                r.scenario,
                r.false_positives
            );
            assert!((0.0..=1.0).contains(&r.detection), "{}", r.scenario);
            assert!((0.0..=1.0).contains(&r.precision), "{}", r.scenario);
        }
    }

    #[test]
    fn quick_scale_resilience_sweep_reports_recovery_metrics() {
        let results = resilience_sweep(Scale::Quick, 9);
        assert_eq!(results.len(), RESILIENCE_SCENARIOS.len());
        let by_name = |name: &str| {
            results
                .iter()
                .find(|r| r.scenario == name)
                .unwrap_or_else(|| panic!("missing resilience result {name}"))
        };
        // The online recalibration must move the threshold above the static
        // η and catch at least as much as the static detector does.
        let evaded = by_name("resilience/gradient-freerider");
        let online = by_name("resilience/gradient-freerider-online");
        assert!(online.eta_final > PAPER_ETA);
        assert_eq!(evaded.eta_final, PAPER_ETA);
        assert!(online.final_recall >= evaded.final_recall);
        // The partition waves must be traced with the hardened audit RPCs
        // aborting rather than blaming the unreachable.
        let waves = by_name("resilience/partition-waves");
        assert_eq!(waves.waves.len(), 2, "two scheduled partition waves");
        assert!(waves.audit_rpc_timeouts > 0);
        assert!(waves.audits_aborted_unreachable > 0);
        // Bursty loss exercises the hardened confirm path.
        let bursty = by_name("resilience/bursty-loss");
        assert!(bursty.confirm_timeouts > 0);
        // Dissemination survives every disturbance.
        for r in &results {
            assert!(
                r.final_clear_fraction > 0.2,
                "{}: stream collapsed ({})",
                r.scenario,
                r.final_clear_fraction
            );
        }
        assert_eq!(paper_eta_fallback_count(), 0);
    }

    #[test]
    fn quick_scale_table05_shows_overhead_decreasing_with_stream_rate() {
        let cells = table05_practical_overhead(Scale::Quick, 5);
        assert_eq!(cells.len(), 9);
        // At pdcc = 1, the relative overhead shrinks as the stream rate grows.
        let at = |kbps: u64| {
            cells
                .iter()
                .find(|c| c.stream_kbps == kbps && c.pdcc == 1.0)
                .unwrap()
                .overhead
        };
        assert!(at(674) > at(2036));
        // And overhead grows with pdcc for a fixed stream.
        let low = cells
            .iter()
            .find(|c| c.stream_kbps == 674 && c.pdcc == 0.0)
            .unwrap()
            .overhead;
        assert!(low < at(674));
    }
}
