//! Small helpers for printing experiment tables and series.

/// Prints a two-column series (x, y) with a header.
pub fn print_series(title: &str, x_label: &str, y_label: &str, series: &[(f64, f64)]) {
    println!("# {title}");
    println!("{x_label:>12}  {y_label:>16}");
    for (x, y) in series {
        println!("{x:>12.3}  {y:>16.4}");
    }
    println!();
}

/// Prints a multi-column table: a header row then aligned value rows.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("# {title}");
    for h in headers {
        print!("{h:>18}");
    }
    println!();
    for row in rows {
        for cell in row {
            print!("{cell:>18}");
        }
        println!();
    }
    println!();
}

/// Formats a float with three decimal places.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a percentage with one decimal place.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(pct(0.8637), "86.4%");
    }
}
