//! Property test: every registered scenario runs sharded == sequential
//! bit-for-bit, at every shard count.
//!
//! The sharded wave executor must never change results — only how the
//! node-local event waves are executed. The property samples (scenario,
//! seed) pairs from the builtin registry — including the dynamic-membership
//! `churn/*` family (rebuild sessions, epoch bumps), the fault-injecting
//! `resilience/*` family and the multi-channel `multistream/*` family, all
//! of which route messages, timers and blames through the wave executor's
//! Phase A/B split — runs each at 1, 2, 4 and 8 shards, and compares every
//! number down to the bit pattern. Durations are truncated so the property
//! stays fast; determinism must hold at every prefix of a run. Shard counts
//! are passed as explicit parameters (never via `LIFTING_SHARDS`) so
//! concurrently running tests cannot race on process environment.

use lifting_runtime::{run_scenario_sharded, RunOutcome, Scale, ScenarioRegistry};
use lifting_sim::SimDuration;
use proptest::prelude::*;

fn assert_bit_identical(a: &RunOutcome, b: &RunOutcome, scenario: &str, shards: usize) {
    assert_eq!(
        a.finals.outcomes, b.finals.outcomes,
        "{scenario} @ {shards} shards: outcomes"
    );
    assert_eq!(
        a.expelled_count, b.expelled_count,
        "{scenario} @ {shards} shards: expulsions"
    );
    assert_eq!(
        a.traffic.total_bytes_sent, b.traffic.total_bytes_sent,
        "{scenario} @ {shards} shards: bytes"
    );
    assert_eq!(
        a.traffic.total_messages_sent, b.traffic.total_messages_sent,
        "{scenario} @ {shards} shards: messages"
    );
    assert_eq!(
        a.traffic.overhead_ratio.to_bits(),
        b.traffic.overhead_ratio.to_bits(),
        "{scenario} @ {shards} shards: overhead"
    );
    assert_eq!(
        a.layer_traffic, b.layer_traffic,
        "{scenario} @ {shards} shards: layer traffic"
    );
    assert_eq!(
        a.stream_health.fraction_clear, b.stream_health.fraction_clear,
        "{scenario} @ {shards} shards: stream health"
    );
    assert_eq!(
        a.emitted_chunks, b.emitted_chunks,
        "{scenario} @ {shards} shards: chunks"
    );
    assert_eq!(
        a.memory_per_node_bytes.to_bits(),
        b.memory_per_node_bytes.to_bits(),
        "{scenario} @ {shards} shards: memory metric"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn any_registered_scenario_is_shard_invariant(
        scenario_index in 0usize..ScenarioRegistry::builtin().len(),
        seed in 1u64..10_000,
    ) {
        let registry = ScenarioRegistry::builtin();
        let name = registry.names()[scenario_index].to_string();
        let mut config = registry.build(&name, Scale::Quick, seed);
        // Keep the property fast: a short prefix of the run is just as
        // deterministic as the full scenario.
        config.duration = config.duration.min(SimDuration::from_secs(3));

        let sequential = run_scenario_sharded(config.clone(), 1);
        for shards in [2usize, 4, 8] {
            let sharded = run_scenario_sharded(config.clone(), shards);
            assert_bit_identical(&sharded, &sequential, &name, shards);
        }
    }
}
