//! Integration coverage for the component registry plane.
//!
//! Three concerns live here:
//!
//! 1. **Error paths** — every mis-declared component in a scenario's
//!    `components:` section must come back as a structured
//!    [`ComponentError`] naming the offending key, never a panic. The
//!    registry is the first thing a scenario author touches, so the error
//!    text is part of the interface.
//! 2. **Workload scenarios do what their generators promise** — diurnal and
//!    regional-failure plans actually take nodes offline and bring them
//!    back; the zap plan actually resubscribes viewers between channels.
//! 3. **Shard invariance** — the three `workload/*` scenarios are pinned at
//!    1/2/4/8 shards explicitly (the registry-wide proptest samples scenario
//!    indices, so a family this new deserves deterministic coverage too).

use lifting_runtime::{
    build_engine, resolve_components, run_scenario_sharded, workload_components, ComponentSpec,
    RunOutcome, Scale, ScenarioRegistry,
};
use lifting_sim::{
    Component, ComponentError, ComponentRegistry, ParamKind, ParamMap, ParamSpec, ParamValue,
    ParamsSchema, SeedSplitter, SimDuration, SimTime,
};

// ---------------------------------------------------------------------------
// 1. Error paths: structured Err, never panic, offending key in the message.
// ---------------------------------------------------------------------------

fn quick_config(seed: u64) -> lifting_runtime::ScenarioConfig {
    ScenarioRegistry::builtin().build("smoke/small", Scale::Quick, seed)
}

#[test]
fn unknown_component_name_is_a_structured_error_naming_the_kind() {
    let mut config = quick_config(1);
    config.components.workload = Some(ComponentSpec::new("tidal"));
    let err = resolve_components(&mut config).expect_err("unknown name must not resolve");
    match &err {
        ComponentError::UnknownComponent { kind, name, known } => {
            assert_eq!(kind, "workload");
            assert_eq!(name, "tidal");
            assert!(
                known.iter().any(|n| n == "diurnal"),
                "known list: {known:?}"
            );
        }
        other => panic!("expected UnknownComponent, got {other:?}"),
    }
    let text = err.to_string();
    assert!(
        text.contains("tidal"),
        "error must name the component: {text}"
    );
    assert!(
        text.contains("diurnal"),
        "error must list known names: {text}"
    );
}

#[test]
fn unknown_names_error_on_every_axis() {
    type Setter = fn(&mut lifting_runtime::ScenarioConfig);
    let axes: [(&str, Setter); 5] = [
        ("transport", |c| {
            c.components.transport = Some(ComponentSpec::new("carrier-pigeon"))
        }),
        ("loss", |c| {
            c.components.loss = Some(ComponentSpec::new("total"))
        }),
        ("capability", |c| {
            c.components.capability = Some(ComponentSpec::new("quantum"))
        }),
        ("adversary", |c| {
            c.components.adversary = Some(ComponentSpec::new("mastermind"))
        }),
        ("exporter", |c| {
            c.components.exporter = Some(ComponentSpec::new("carrier"))
        }),
    ];
    for (axis, set) in axes {
        let mut config = quick_config(1);
        set(&mut config);
        let Err(err) = resolve_components(&mut config) else {
            panic!("axis {axis}: unknown name must not resolve");
        };
        assert!(
            matches!(err, ComponentError::UnknownComponent { .. }),
            "axis {axis}: expected UnknownComponent, got {err:?}"
        );
    }
}

#[test]
fn ill_typed_param_is_rejected_with_the_offending_key() {
    let mut config = quick_config(1);
    config.components.workload =
        Some(ComponentSpec::new("diurnal").with("participation", ParamValue::Text("high".into())));
    let err = resolve_components(&mut config).expect_err("text for a float must not validate");
    match &err {
        ComponentError::BadParamType {
            component,
            key,
            expected,
            got,
        } => {
            assert_eq!(component, "diurnal");
            assert_eq!(key, "participation");
            assert_eq!(*expected, "float");
            assert_eq!(*got, "text");
        }
        other => panic!("expected BadParamType, got {other:?}"),
    }
    assert!(err.to_string().contains("participation"));
}

#[test]
fn out_of_range_param_is_rejected_with_the_offending_key() {
    let mut config = quick_config(1);
    config.components.workload =
        Some(ComponentSpec::new("diurnal").with("participation", ParamValue::Float(1.5)));
    let err = resolve_components(&mut config).expect_err("participation > 1 must not validate");
    match &err {
        ComponentError::InvalidParam { component, key, .. } => {
            assert_eq!(component, "diurnal");
            assert_eq!(key, "participation");
        }
        other => panic!("expected InvalidParam, got {other:?}"),
    }
}

#[test]
fn undeclared_param_key_is_rejected() {
    let mut config = quick_config(1);
    config.components.workload =
        Some(ComponentSpec::new("zap").with("zapers", ParamValue::Float(0.5)));
    let err = resolve_components(&mut config).expect_err("misspelled key must not validate");
    match &err {
        ComponentError::UnknownParam { component, key, .. } => {
            assert_eq!(component, "zap");
            assert_eq!(key, "zapers");
        }
        other => panic!("expected UnknownParam, got {other:?}"),
    }
}

struct NeedsSeed;
impl Component<u64> for NeedsSeed {
    fn name(&self) -> &'static str {
        "needs-seed"
    }
    fn params_schema(&self) -> ParamsSchema {
        ParamsSchema::of(vec![ParamSpec::required(
            "seed_offset",
            ParamKind::Int,
            "mandatory offset",
        )])
    }
    fn build(&self, params: &ParamMap, seeds: &mut SeedSplitter) -> Result<u64, ComponentError> {
        let offset = match params.get("seed_offset") {
            Some(ParamValue::Int(x)) => *x as u64,
            _ => unreachable!("schema validation supplies the key"),
        };
        Ok(seeds.seed(offset))
    }
}

#[test]
fn missing_required_param_is_rejected_before_build_runs() {
    let mut registry: ComponentRegistry<u64> = ComponentRegistry::new("test");
    registry.register(Box::new(NeedsSeed)).unwrap();
    let mut seeds = SeedSplitter::new(42);
    let err = registry
        .build("needs-seed", &ParamMap::new(), &mut seeds)
        .expect_err("missing required param must not build");
    match &err {
        ComponentError::MissingParam { component, key } => {
            assert_eq!(component, "needs-seed");
            assert_eq!(key, "seed_offset");
        }
        other => panic!("expected MissingParam, got {other:?}"),
    }
    assert!(err.to_string().contains("seed_offset"));
}

#[test]
fn duplicate_registration_is_rejected() {
    let mut registry: ComponentRegistry<u64> = ComponentRegistry::new("test");
    registry.register(Box::new(NeedsSeed)).unwrap();
    let err = registry
        .register(Box::new(NeedsSeed))
        .expect_err("second registration of the same name must fail");
    match &err {
        ComponentError::DuplicateComponent { kind, name } => {
            assert_eq!(kind, "test");
            assert_eq!(name, "needs-seed");
        }
        other => panic!("expected DuplicateComponent, got {other:?}"),
    }
    assert_eq!(registry.len(), 1, "the duplicate must not be registered");
}

#[test]
fn every_registered_workload_component_builds_with_default_params() {
    let registry = workload_components();
    for name in registry.names() {
        let mut seeds = SeedSplitter::new(7);
        let generator = registry
            .build(name, &ParamMap::new(), &mut seeds)
            .unwrap_or_else(|e| panic!("{name} must build with defaults: {e}"));
        assert_eq!(generator.name(), name);
    }
}

// ---------------------------------------------------------------------------
// 2. The workload scenarios drive real membership / subscription dynamics.
// ---------------------------------------------------------------------------

#[test]
fn diurnal_workload_cycles_nodes_offline_and_back() {
    let config = ScenarioRegistry::builtin().build("workload/diurnal", Scale::Quick, 11);
    assert!(
        config.churn.is_none(),
        "workload plans replace churn schedules"
    );
    let outcome = run_scenario_sharded(config, 1);
    assert!(
        outcome.churn.departures > 0,
        "diurnal troughs must take nodes offline (got {} departures)",
        outcome.churn.departures
    );
    assert!(
        outcome.churn.rejoins > 0,
        "diurnal peaks must bring nodes back (got {} rejoins)",
        outcome.churn.rejoins
    );
    assert!(!outcome.emitted_chunks.is_empty());
}

#[test]
fn regional_failure_workload_knocks_regions_offline() {
    let config = ScenarioRegistry::builtin().build("workload/regional-failure", Scale::Quick, 11);
    let outcome = run_scenario_sharded(config, 1);
    assert!(
        outcome.churn.departures > 0,
        "outage waves must take whole regions down"
    );
    assert!(
        outcome.churn.rejoins > 0,
        "regions must come back after the outage"
    );
}

#[test]
fn zap_workload_switches_viewers_between_channels() {
    let config = ScenarioRegistry::builtin().build("workload/zap", Scale::Quick, 11);
    assert_eq!(config.streams.len() + 1, 3, "zap runs three channels");
    let duration = config.duration;
    let mut engine = build_engine(config);
    engine.run_until(SimTime::ZERO + duration);
    assert!(
        engine.world().workload_switches() > 0,
        "zappers must actually change channels"
    );
}

// ---------------------------------------------------------------------------
// 3. Shard invariance, pinned (not sampled) for the new family.
// ---------------------------------------------------------------------------

fn assert_bit_identical(a: &RunOutcome, b: &RunOutcome, scenario: &str, shards: usize) {
    assert_eq!(
        a.finals.outcomes, b.finals.outcomes,
        "{scenario} @ {shards} shards: outcomes"
    );
    assert_eq!(
        a.traffic.total_bytes_sent, b.traffic.total_bytes_sent,
        "{scenario} @ {shards} shards: bytes"
    );
    assert_eq!(
        a.traffic.total_messages_sent, b.traffic.total_messages_sent,
        "{scenario} @ {shards} shards: messages"
    );
    assert_eq!(
        a.stream_health.fraction_clear, b.stream_health.fraction_clear,
        "{scenario} @ {shards} shards: stream health"
    );
    assert_eq!(
        a.churn, b.churn,
        "{scenario} @ {shards} shards: membership dynamics"
    );
    assert_eq!(
        a.emitted_chunks, b.emitted_chunks,
        "{scenario} @ {shards} shards: chunks"
    );
}

#[test]
fn workload_scenarios_are_shard_invariant() {
    let registry = ScenarioRegistry::builtin();
    for name in [
        "workload/diurnal",
        "workload/regional-failure",
        "workload/zap",
    ] {
        let mut config = registry.build(name, Scale::Quick, 23);
        config.duration = config.duration.min(SimDuration::from_secs(6));
        let sequential = run_scenario_sharded(config.clone(), 1);
        for shards in [2usize, 4, 8] {
            let sharded = run_scenario_sharded(config.clone(), shards);
            assert_bit_identical(&sharded, &sequential, name, shards);
        }
    }
}
