//! Multi-channel invariants: per-stream data planes over one shared
//! membership and reputation plane.
//!
//! The load-bearing properties: audiences isolate stream traffic, blames
//! aggregate **across** streams into one score per node, and a node expelled
//! by one channel's blames stops receiving traffic on *every* channel.

use lifting_runtime::{
    build_engine, run_scenario, run_scenarios_parallel, Scale, ScenarioRegistry,
};
use lifting_sim::{NodeId, SimTime, StreamId};

const S0: StreamId = StreamId::PRIMARY;
const S1: StreamId = StreamId(1);

#[test]
fn disjoint_audiences_isolate_stream_traffic() {
    let registry = ScenarioRegistry::builtin();
    let config = registry.build("multistream/disjoint-audiences", Scale::Quick, 5);
    let n = config.nodes;
    let mut engine = build_engine(config);
    engine.run_until(SimTime::from_secs(15));
    let world = engine.world();

    let mut first_half_s0 = 0usize;
    let mut second_half_s1 = 0usize;
    for i in 1..n {
        let node = NodeId::new(i as u32);
        let stack = &world.stacks()[i];
        let (s0_chunks, s1_chunks) = (
            stack.plane(S0).gossip.node.stored_chunks(),
            stack.plane(S1).gossip.node.stored_chunks(),
        );
        if world.directory().is_subscribed(node, S0) {
            first_half_s0 += usize::from(s0_chunks > 0);
            assert_eq!(
                s1_chunks, 0,
                "node {node} is not in channel 1's audience yet stored its chunks"
            );
        } else {
            second_half_s1 += usize::from(s1_chunks > 0);
            assert_eq!(
                s0_chunks, 0,
                "node {node} is not in channel 0's audience yet stored its chunks"
            );
        }
    }
    // Both channels actually disseminate within their own audience.
    assert!(first_half_s0 > n / 4, "channel 0 barely disseminated");
    assert!(second_half_s1 > n / 4, "channel 1 barely disseminated");
}

#[test]
fn per_stream_outcomes_cover_every_channel() {
    let registry = ScenarioRegistry::builtin();
    let outcome = run_scenario(registry.build("multistream/rate-asymmetry", Scale::Quick, 9));
    assert_eq!(outcome.per_stream.len(), 3);
    for (i, stream) in outcome.per_stream.iter().enumerate() {
        assert_eq!(stream.stream, StreamId::new(i as u16));
        assert!(stream.emitted_chunks > 0, "stream {i} never emitted");
        assert!(
            !stream.stream_health.fraction_clear.is_empty(),
            "stream {i} has no health curve"
        );
    }
    // The primary stream serves everyone; the offset streams serve 3/4.
    assert!(outcome.per_stream[0].subscribers > outcome.per_stream[1].subscribers);
    // The single-channel compatibility view mirrors stream 0.
    assert_eq!(
        outcome.stream_health.fraction_clear,
        outcome.per_stream[0].stream_health.fraction_clear
    );
    assert_eq!(
        outcome.emitted_chunks.len(),
        outcome.per_stream[0].emitted_chunks
    );
}

/// The headline cross-stream invariant: a selective freerider is honest on
/// channel 0 and silent on channel 1; every blame against it is emitted by
/// channel 1's verification, yet the expulsion bans it from **both**
/// channels — it receives zero traffic anywhere afterwards.
#[test]
fn blames_on_one_stream_expel_from_all_streams() {
    let registry = ScenarioRegistry::builtin();
    let mut config = registry.build("multistream/selective-freeriders", Scale::Quick, 13);
    // As in the churn expulsion test: disable the wrongful-blame compensation
    // so the silence drives scores below eta within a quick run.
    config.lifting.compensate_wrongful_blames = false;
    let n = config.nodes;
    let duration = config.duration;
    let mut engine = build_engine(config);

    // Step until the first expulsion (the scenario is tuned so it happens).
    let mut at = SimTime::ZERO;
    while engine.world().expelled_count() == 0 && at < SimTime::ZERO + duration {
        at += lifting_sim::SimDuration::from_secs(1);
        engine.run_until(at);
    }
    let world = engine.world();
    let expelled: Vec<NodeId> = (1..n)
        .map(|i| NodeId::new(i as u32))
        .filter(|node| world.is_expelled(*node) && world.stacks()[node.index()].is_freerider)
        .collect();
    assert!(
        !expelled.is_empty(),
        "no freerider expulsion happened; weak test — retune seed/duration"
    );

    // The blame that did it came overwhelmingly from the silenced channel
    // (the lossy network wrongfully blames everyone a little on the honest
    // channel; the silence is what tips the score — compare blame *value*,
    // the quantity the score sums).
    let mut stored_at_expulsion = Vec::new();
    for node in &expelled {
        let (b0, b1) = (
            world.blame_value_against(*node, S0),
            world.blame_value_against(*node, S1),
        );
        assert!(
            world.blames_against(*node, S1) > 0,
            "expelled node {node} has no blames from the silenced channel"
        );
        assert!(
            b1 > b0,
            "node {node} is honest on channel 0; the silenced channel must \
             dominate its blame value ({b1:.1} vs {b0:.1})"
        );
        assert!(world.network().is_cut_off(*node));
        assert!(!world.directory().is_active(*node));
        let stack = &world.stacks()[node.index()];
        stored_at_expulsion.push((
            *node,
            stack.plane(S0).gossip.node.stored_chunks(),
            stack.plane(S1).gossip.node.stored_chunks(),
        ));
    }

    // Run the stream out: the expelled nodes must not receive one more chunk
    // on either channel (zero traffic on ALL streams, not just the one that
    // blamed them).
    engine.run_until(SimTime::ZERO + duration);
    let world = engine.world();
    for (node, s0_before, s1_before) in stored_at_expulsion {
        let stack = &world.stacks()[node.index()];
        assert_eq!(
            stack.plane(S0).gossip.node.stored_chunks(),
            s0_before,
            "expelled node {node} kept receiving channel 0"
        );
        assert_eq!(
            stack.plane(S1).gossip.node.stored_chunks(),
            s1_before,
            "expelled node {node} kept receiving channel 1"
        );
    }
}

/// Cross-stream score aggregation, the other direction: freeriders shirking
/// on both channels are expelled by the *sum* of the two channels' blames —
/// the end-to-end demonstration that manager books aggregate across streams.
#[test]
fn expulsion_is_triggered_by_blames_from_both_channels() {
    let registry = ScenarioRegistry::builtin();
    let mut config = registry.build("multistream/overlapping-audiences", Scale::Quick, 21);
    config.lifting.compensate_wrongful_blames = false;
    let duration = config.duration;
    let n = config.nodes;
    let mut engine = build_engine(config);
    engine.run_until(SimTime::ZERO + duration);
    let world = engine.world();
    let expelled: Vec<NodeId> = (1..n)
        .map(|i| NodeId::new(i as u32))
        .filter(|node| world.is_expelled(*node))
        .collect();
    assert!(
        !expelled.is_empty(),
        "no expulsion happened; weak test — retune seed/duration"
    );
    for node in &expelled {
        let (b0, b1) = (
            world.blames_against(*node, S0),
            world.blames_against(*node, S1),
        );
        assert!(
            b0 > 0 && b1 > 0,
            "expelled node {node} should have been blamed by both channels (got {b0}/{b1})"
        );
    }
}

#[test]
fn multistream_scenarios_run_parallel_eq_sequential_bit_for_bit() {
    // Belt and braces on top of the registry-wide proptest: the multistream
    // family explicitly, full quick duration, per-stream metrics included.
    let registry = ScenarioRegistry::builtin();
    for name in [
        "multistream/disjoint-audiences",
        "multistream/selective-freeriders",
    ] {
        let config = registry.build(name, Scale::Quick, 3);
        std::env::set_var(lifting_sim::pool::WORKERS_ENV, "3");
        let parallel = run_scenarios_parallel(vec![config.clone()]);
        std::env::set_var(lifting_sim::pool::WORKERS_ENV, "1");
        let sequential = run_scenario(config);
        std::env::remove_var(lifting_sim::pool::WORKERS_ENV);
        assert_eq!(parallel[0].finals.outcomes, sequential.finals.outcomes);
        assert_eq!(
            parallel[0].traffic.total_bytes_sent, sequential.traffic.total_bytes_sent,
            "{name}: bytes"
        );
        for (p, s) in parallel[0].per_stream.iter().zip(&sequential.per_stream) {
            assert_eq!(p.stream, s.stream);
            assert_eq!(p.blames, s.blames, "{name}: blames on {}", p.stream);
            assert_eq!(
                p.stream_health.fraction_clear, s.stream_health.fraction_clear,
                "{name}: health on {}",
                p.stream
            );
        }
    }
}
