//! Invariants of the resilience plane: closed-loop adversaries, fault
//! injection, hardened audits, and the online recalibration defence.
//!
//! The core safety property mirrors the churn boundary: a disturbance the
//! *environment* causes (a partition, a loss burst, a whitewash departure)
//! must never be converted into blame or expulsion of an honest node — and
//! the detection story must be honest both ways: a gradient freerider really
//! does evade the paper's static `η`, and only the online recalibration
//! brings it back into reach.

use lifting_runtime::{run_scenario, run_scenarios_parallel, Scale, ScenarioRegistry, WaveKind};

/// Same seed as the bench resilience sweep, so the numbers asserted here are
/// the published ones.
const SEED: u64 = 55;

/// The static threshold every resilience scenario configures (the paper's
/// offline PlanetLab calibration).
fn static_eta() -> f64 {
    lifting_core::LiftingConfig::planetlab().eta
}

#[test]
fn gradient_freerider_evades_static_eta_but_not_the_online_recalibration() {
    let registry = ScenarioRegistry::builtin();

    // Static η: the closed-loop population throttles its freeriding to sit
    // above the threshold — zero detections, zero expulsions, end of story.
    let evaded = run_scenario(registry.build("resilience/gradient-freerider", Scale::Quick, SEED));
    assert_eq!(evaded.expelled_count, 0, "static η must be fully evaded");
    assert_eq!(evaded.finals.detection_rate(static_eta()), 0.0);
    let recovery = evaded
        .recovery
        .as_ref()
        .expect("closed-loop run traces recovery");
    assert!(
        recovery.eta_trace.iter().all(|eta| *eta == static_eta()),
        "without the online defence the threshold never moves"
    );

    // Online recalibration: the threshold climbs off the static floor and
    // the same adversary population is detected and expelled.
    let defended =
        run_scenario(registry.build("resilience/gradient-freerider-online", Scale::Quick, SEED));
    let recovery = defended.recovery.as_ref().expect("recovery traces");
    let eta_final = *recovery.eta_trace.last().unwrap();
    assert!(
        eta_final > static_eta(),
        "the recalibrated threshold must rise above the static η, got {eta_final}"
    );
    assert!(defended.expelled_count > 0, "the defence must expel");
    let expelled_freeriders = defended
        .finals
        .outcomes
        .iter()
        .filter(|o| o.expelled && o.is_freerider)
        .count();
    let expelled_honest = defended
        .finals
        .outcomes
        .iter()
        .filter(|o| o.expelled && !o.is_freerider)
        .count();
    // The honest and freerider score distributions genuinely overlap at this
    // scale, so some collateral is unavoidable — but the expulsions must
    // target the freerider population, not decimate the honest bulk.
    assert!(
        expelled_freeriders > expelled_honest,
        "expulsions must skew freerider: {expelled_freeriders} freeriders vs \
         {expelled_honest} honest"
    );
    let honest_total = defended
        .finals
        .outcomes
        .iter()
        .filter(|o| !o.is_freerider)
        .count();
    assert!(
        (expelled_honest as f64) < 0.2 * honest_total as f64,
        "honest collateral out of hand: {expelled_honest}/{honest_total}"
    );
    let recall = *recovery.period_recall.last().unwrap();
    assert!(
        recall >= 0.5,
        "the online defence must catch most of the population, recall {recall}"
    );
}

#[test]
fn whitewash_cycles_shed_no_blame_and_are_traced_as_waves() {
    let registry = ScenarioRegistry::builtin();
    let outcome = run_scenario(registry.build("resilience/whitewasher", Scale::Quick, SEED));

    // The attack actually ran: departures and rejoins happened in cycles.
    assert!(outcome.churn.departures > 0, "whitewashers must depart");
    assert!(outcome.churn.rejoins > 0, "whitewashers must rejoin");
    let recovery = outcome.recovery.as_ref().expect("recovery traces");
    assert!(
        recovery.waves.iter().any(|w| w.kind == WaveKind::Whitewash),
        "whitewash departures must be registered as recovery waves"
    );

    // The manager books freeze on departure and carry over the rejoin, so a
    // whitewash cycle does not launder the blame history: the whitewashing
    // population still scores clearly below the honest one at the end.
    let honest = outcome.finals.honest_scores();
    let freeriders = outcome.finals.freerider_scores();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        mean(&freeriders) < mean(&honest) - 1.0,
        "whitewashing must not launder the score gap: freerider mean {:.2} vs \
         honest mean {:.2}",
        mean(&freeriders),
        mean(&honest)
    );
}

#[test]
fn partition_waves_abort_audits_instead_of_blaming_the_unreachable() {
    let registry = ScenarioRegistry::builtin();
    let outcome = run_scenario(registry.build("resilience/partition-waves", Scale::Quick, SEED));

    // The faults hit audits hard enough to matter: RPCs timed out, retries
    // were spent, and some audits gave up on unreachable counterparts.
    assert!(
        outcome.audit_rpc.rpc_timeouts > 0,
        "partitions must time out audit RPCs"
    );
    assert!(
        outcome.audit_rpc.rpc_retries > 0,
        "the retry policy must fire"
    );
    assert!(
        outcome.audit_rpc.aborted_unreachable > 0,
        "audits against partitioned nodes must abort"
    );
    // ... and the safety boundary held: none of that became an expulsion of
    // an honest node (scores stay on the static η in this scenario).
    let wrongful = outcome
        .finals
        .outcomes
        .iter()
        .filter(|o| o.expelled && !o.is_freerider)
        .count();
    assert_eq!(wrongful, 0, "a partition must never expel an honest node");
    // Both scheduled waves were registered with their reconvergence readout.
    let recovery = outcome.recovery.as_ref().expect("recovery traces");
    let partitions: Vec<_> = recovery
        .waves
        .iter()
        .filter(|w| w.kind == WaveKind::Partition)
        .collect();
    assert_eq!(partitions.len(), 2, "both fault waves must be traced");
}

#[test]
fn resilience_scenarios_run_parallel_eq_sequential_bit_for_bit() {
    // The resilience plane touches the hot path (fault events, duplicated
    // deliveries, per-period recalibration, closed-loop feedback); all of it
    // must preserve the engine's parallel == sequential determinism, traces
    // included.
    let registry = ScenarioRegistry::builtin();
    for name in [
        "resilience/partition-waves",
        "resilience/gradient-freerider-online",
        "resilience/bursty-loss",
    ] {
        let config = registry.build(name, Scale::Quick, 3);
        std::env::set_var(lifting_sim::pool::WORKERS_ENV, "3");
        let parallel = run_scenarios_parallel(vec![config.clone()]);
        std::env::set_var(lifting_sim::pool::WORKERS_ENV, "1");
        let sequential = run_scenario(config);
        std::env::remove_var(lifting_sim::pool::WORKERS_ENV);
        assert_eq!(
            parallel[0].finals.outcomes, sequential.finals.outcomes,
            "{name}"
        );
        assert_eq!(parallel[0].churn, sequential.churn, "{name}: churn stats");
        assert_eq!(
            parallel[0].recovery, sequential.recovery,
            "{name}: recovery traces"
        );
        assert_eq!(
            parallel[0].audit_rpc, sequential.audit_rpc,
            "{name}: audit RPCs"
        );
        assert_eq!(
            parallel[0].confirm_retry, sequential.confirm_retry,
            "{name}: confirm retries"
        );
        assert_eq!(
            parallel[0].traffic.total_bytes_sent, sequential.traffic.total_bytes_sent,
            "{name}: traffic"
        );
        assert_eq!(
            parallel[0].stream_health.fraction_clear, sequential.stream_health.fraction_clear,
            "{name}: stream health"
        );
    }
}
