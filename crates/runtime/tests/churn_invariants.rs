//! Membership invariants under churn and expulsion.
//!
//! The directory is the single source of truth for who participates: an
//! expelled or departed node must never be handed a partner or witness slot,
//! must never receive traffic, and audits that depended on a departed
//! witness must abort instead of converting churn into blame.

use lifting_core::{Auditor, LiftingConfig};
use lifting_gossip::{ChunkId, GossipConfig, ProposeRound};
use lifting_membership::Directory;
use lifting_net::{Network, NetworkConfig, TrafficCategory};
use lifting_runtime::layers::{AuditCoordinator, AuditOutcome, Honest, NodeStack};
use lifting_runtime::{
    build_engine, run_scenario, run_scenarios_parallel, Scale, ScenarioRegistry,
};
use lifting_sim::{derive_rng, NodeId, SimDuration, SimTime, StreamId};

fn stack(id: u32) -> NodeStack {
    NodeStack::new(
        NodeId::new(id),
        GossipConfig::planetlab(),
        LiftingConfig::planetlab(),
        true,
        Box::new(Honest),
        derive_rng(1, id as u64),
    )
}

fn audit_traffic(network: &Network) -> (u64, u64) {
    network
        .stats()
        .report()
        .per_category
        .iter()
        .find(|(c, _)| *c == TrafficCategory::Audit)
        .map(|(_, counters)| (counters.messages_sent, counters.bytes_sent))
        .unwrap_or((0, 0))
}

/// Runs one audit of node 1 (which logged proposals to witnesses 2 and 3 that
/// the witnesses never saw) and returns the outcome plus the audit traffic.
fn audit_with(directory: &Directory) -> (AuditOutcome, u64) {
    let mut stacks: Vec<NodeStack> = (0..4).map(stack).collect();
    let target = NodeId::new(1);
    let witnesses = vec![NodeId::new(2), NodeId::new(3)];
    // The target claims it proposed chunks to both witnesses; neither ever
    // received them, so every push is unconfirmed and the verdict is Blamed.
    let round = ProposeRound {
        period: 0,
        chunks: vec![ChunkId::primary(1), ChunkId::primary(2)].into(),
        partners: witnesses,
        by_source: vec![],
        dropped_sources: vec![],
    };
    stacks[1]
        .plane_mut(StreamId::PRIMARY)
        .verification
        .verifier
        .on_propose_round(&round, SimTime::ZERO);
    let mut network = Network::new(4, NetworkConfig::ideal(), derive_rng(2, 0));
    // Mirror directory state onto the network, as the runtime does.
    for i in 0..4u32 {
        let node = NodeId::new(i);
        network.set_cut_off(node, !directory.is_active(node));
    }
    let mut coordinator =
        AuditCoordinator::new(Auditor::with_threshold(LiftingConfig::planetlab(), 7, 0.5));
    let outcome = coordinator.audit(
        &stacks,
        &mut network,
        directory,
        NodeId::new(0),
        target,
        StreamId::PRIMARY,
        SimTime::from_secs(1),
    );
    let (messages, _bytes) = audit_traffic(&network);
    (outcome, messages)
}

#[test]
fn expelled_witness_is_never_polled_and_aborts_negative_audits() {
    // Baseline: every witness active — the unconfirmed pushes are blamed and
    // both witnesses are polled.
    let directory = Directory::new(4);
    let (outcome, messages_all) = audit_with(&directory);
    assert!(
        matches!(outcome, AuditOutcome::Blame(_)),
        "unconfirmed pushes must be blamed in a static population, got {outcome:?}"
    );

    // Witness 2 is expelled (or departed): it must not be handed the witness
    // slot — no polls reach it — and the now witness-starved negative verdict
    // is abandoned instead of blaming the target for someone else's absence.
    let mut directory = Directory::new(4);
    directory.deactivate(NodeId::new(2));
    let (outcome, messages_partial) = audit_with(&directory);
    assert_eq!(
        outcome,
        AuditOutcome::Aborted,
        "a negative audit relying on a departed witness must abort"
    );
    assert!(
        messages_partial < messages_all,
        "polls to the inactive witness must not be sent \
         ({messages_partial} vs {messages_all} audit messages)"
    );
}

#[test]
fn departed_node_stops_receiving_traffic_and_partner_slots() {
    let registry = ScenarioRegistry::builtin();
    let mut config = registry.build("smoke/small", Scale::Quick, 42);
    config.duration = SimDuration::from_secs(8);
    let victim = NodeId::new(5);

    let mut engine = build_engine(config);
    engine.run_until(SimTime::from_secs(3));
    let before = engine.world().stacks()[victim.index()]
        .primary()
        .gossip
        .node
        .stored_chunks();
    assert!(before > 0, "the node must participate before departing");

    engine.world_mut().force_depart(victim);
    assert!(!engine.world().directory().is_active(victim));
    assert!(engine.world().network().is_cut_off(victim));

    engine.run_until(SimTime::from_secs(8));
    let after = engine.world().stacks()[victim.index()]
        .primary()
        .gossip
        .node
        .stored_chunks();
    assert_eq!(
        before, after,
        "a departed node must not receive a single chunk"
    );
    assert!(!engine.world().directory().is_active(victim));
}

#[test]
fn steady_churn_runs_and_its_metrics_add_up() {
    let registry = ScenarioRegistry::builtin();
    let config = registry.build("churn/steady-fast", Scale::Quick, 7);
    let initial_online = config.nodes as u64 - 1; // nobody starts offline here
    let outcome = run_scenario(config);
    let churn = outcome.churn;
    assert!(churn.departures > 0, "steady churn must produce departures");
    assert!(churn.rejoins > 0, "steady churn must produce rejoins");
    assert_eq!(
        churn.sessions,
        initial_online + churn.rejoins,
        "every rejoin opens a session"
    );
    assert!(
        churn.offline_at_end + outcome.expelled_count
            <= churn.departures as usize + outcome.expelled_count,
        "offline nodes are a subset of the departed ones"
    );
    // The population still disseminates: most nodes see most of the stream.
    let last = *outcome.stream_health.fraction_clear.last().unwrap();
    assert!(last > 0.3, "stream collapsed under churn: {last}");
}

#[test]
fn flash_crowd_joins_once_and_catastrophe_never_returns() {
    let registry = ScenarioRegistry::builtin();

    let flash = run_scenario(registry.build("churn/flash-crowd", Scale::Quick, 11));
    assert!(flash.churn.rejoins > 0, "the flash crowd must join");
    assert_eq!(flash.churn.departures, 0);
    assert_eq!(
        flash.churn.offline_at_end, 0,
        "every flash-crowd member stays after joining"
    );

    let cat = run_scenario(registry.build("churn/catastrophe", Scale::Quick, 11));
    assert!(cat.churn.departures > 0, "the catastrophe wave must hit");
    assert_eq!(cat.churn.rejoins, 0, "catastrophe victims never return");
    assert!(cat.churn.offline_at_end > 0);
}

#[test]
fn churn_scenarios_run_parallel_eq_sequential_bit_for_bit() {
    // Belt and braces on top of the registry-wide proptest: the churn family
    // explicitly, full quick duration.
    let registry = ScenarioRegistry::builtin();
    for name in ["churn/steady-fast", "churn/freeriders"] {
        let config = registry.build(name, Scale::Quick, 3);
        std::env::set_var(lifting_sim::pool::WORKERS_ENV, "3");
        let parallel = run_scenarios_parallel(vec![config.clone()]);
        std::env::set_var(lifting_sim::pool::WORKERS_ENV, "1");
        let sequential = run_scenario(config);
        std::env::remove_var(lifting_sim::pool::WORKERS_ENV);
        assert_eq!(parallel[0].finals.outcomes, sequential.finals.outcomes);
        assert_eq!(parallel[0].churn, sequential.churn, "{name}: churn stats");
        assert_eq!(
            parallel[0].traffic.total_bytes_sent,
            sequential.traffic.total_bytes_sent
        );
        assert_eq!(
            parallel[0].stream_health.fraction_clear,
            sequential.stream_health.fraction_clear
        );
    }
}

#[test]
fn combined_waves_and_steady_churn_compose() {
    // Steady churners, a catastrophe wave and a flash crowd in one schedule:
    // the nasty interleavings (a wave taking down a churner whose session-end
    // departure is still queued; wave membership overlaps) must neither fork
    // duplicate churn chains nor resurrect catastrophe victims, and the run
    // must stay bit-for-bit deterministic.
    let registry = ScenarioRegistry::builtin();
    let mut config = registry.build("churn/steady-fast", Scale::Quick, 17);
    let mut schedule = config.churn.unwrap();
    schedule.catastrophe = Some(lifting_runtime::ChurnWave {
        at: SimDuration::from_secs(6),
        fraction: 0.2,
    });
    schedule.flash_crowd = Some(lifting_runtime::ChurnWave {
        at: SimDuration::from_secs(9), // after the catastrophe: worst ordering
        fraction: 0.2,
    });
    config.churn = Some(schedule);
    config.validate();

    std::env::set_var(lifting_sim::pool::WORKERS_ENV, "3");
    let parallel = run_scenarios_parallel(vec![config.clone()]);
    std::env::set_var(lifting_sim::pool::WORKERS_ENV, "1");
    let sequential = run_scenario(config.clone());
    std::env::remove_var(lifting_sim::pool::WORKERS_ENV);
    assert_eq!(parallel[0].churn, sequential.churn);
    assert_eq!(parallel[0].finals.outcomes, sequential.finals.outcomes);

    let churn = sequential.churn;
    assert!(churn.departures > 0 && churn.rejoins > 0);
    // Session accounting survives the interleavings: every rejoin (steady or
    // flash) opens exactly one session on top of the initially online nodes.
    let plan_offline = config.nodes as u64 - 1 - (churn.sessions - churn.rejoins);
    assert!(
        plan_offline > 0,
        "the flash crowd must hold some nodes offline initially"
    );
    // Catastrophe victims are not steady churners nor flash members, so they
    // stay down: the run ends with at least one node offline.
    assert!(churn.offline_at_end > 0);
}

#[test]
fn expelled_nodes_stay_out_under_churn() {
    // Heavy freeriding plus churn: whoever gets expelled must still be
    // inactive at the end (a rejoin event for an expelled node is refused).
    // Start from the fig01 "wise freerider" population and disable the
    // wrongful-blame compensation so the blame actually drives scores below
    // η within a quick run — expulsions demonstrably happen here.
    let registry = ScenarioRegistry::builtin();
    let mut config = registry.build("fig01/freeriders-lifting", Scale::Quick, 21);
    config.lifting.compensate_wrongful_blames = false;
    config.churn = Some(lifting_runtime::ChurnSchedule::steady(
        0.25,
        SimDuration::from_secs(8),
        SimDuration::from_secs(2),
        SimDuration::from_secs(2),
    ));
    config.duration = SimDuration::from_secs(20);
    let mut engine = build_engine(config.clone());
    engine.run_until(SimTime::ZERO + config.duration);
    let world = engine.world();
    let mut expelled_seen = 0;
    for i in 1..config.nodes {
        let node = NodeId::new(i as u32);
        if world.is_expelled(node) {
            expelled_seen += 1;
            assert!(
                !world.directory().is_active(node),
                "expelled node {node} is active in the directory"
            );
            assert!(world.network().is_cut_off(node));
        }
    }
    // The scenario is tuned so expulsions actually happen; if this starts
    // failing after a parameter change, pick a seed/duration that expels.
    assert!(expelled_seen > 0, "no expulsion happened; weak test");
}
