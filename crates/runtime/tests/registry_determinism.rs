//! Property test: every registered scenario runs parallel == sequential
//! bit-for-bit.
//!
//! The worker pool must never change results — only wall-clock time. The
//! property samples (scenario, seed) pairs from the builtin registry —
//! including the dynamic-membership `churn/*` family, whose schedule draws,
//! stack rebuilds and epoch bookkeeping must be just as deterministic — runs
//! the scenario through the parallel fleet and through plain sequential
//! calls, and compares every number down to the bit pattern. Durations are
//! truncated so the property stays fast; the truncation does not weaken the
//! property (determinism must hold at every prefix of a run).
//! (`churn_invariants.rs` additionally pins two churn scenarios at full quick
//! duration, so the family is covered even when this property's sampler
//! happens not to draw it.)

use lifting_runtime::{run_scenario, run_scenarios_parallel, RunOutcome, Scale, ScenarioRegistry};
use lifting_sim::SimDuration;
use proptest::prelude::*;

fn assert_bit_identical(p: &RunOutcome, s: &RunOutcome, scenario: &str) {
    assert_eq!(p.finals.outcomes, s.finals.outcomes, "{scenario}: outcomes");
    assert_eq!(p.expelled_count, s.expelled_count, "{scenario}: expulsions");
    assert_eq!(
        p.traffic.total_bytes_sent, s.traffic.total_bytes_sent,
        "{scenario}: bytes"
    );
    assert_eq!(
        p.traffic.total_messages_sent, s.traffic.total_messages_sent,
        "{scenario}: messages"
    );
    assert_eq!(
        p.traffic.overhead_ratio.to_bits(),
        s.traffic.overhead_ratio.to_bits(),
        "{scenario}: overhead"
    );
    assert_eq!(
        p.layer_traffic, s.layer_traffic,
        "{scenario}: layer traffic"
    );
    assert_eq!(
        p.stream_health.fraction_clear, s.stream_health.fraction_clear,
        "{scenario}: stream health"
    );
    assert_eq!(p.emitted_chunks, s.emitted_chunks, "{scenario}: chunks");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn any_registered_scenario_runs_parallel_eq_sequential(
        scenario_index in 0usize..ScenarioRegistry::builtin().len(),
        seed in 1u64..10_000,
    ) {
        let registry = ScenarioRegistry::builtin();
        let name = registry.names()[scenario_index].to_string();
        let mut config = registry.build(&name, Scale::Quick, seed);
        // Keep the property fast: a short prefix of the run is just as
        // deterministic as the full scenario.
        config.duration = config.duration.min(SimDuration::from_secs(3));

        std::env::set_var(lifting_sim::pool::WORKERS_ENV, "3");
        let parallel = run_scenarios_parallel(vec![config.clone(), config.clone()]);
        std::env::set_var(lifting_sim::pool::WORKERS_ENV, "1");
        let sequential = run_scenario(config);
        std::env::remove_var(lifting_sim::pool::WORKERS_ENV);

        prop_assert!(parallel.len() == 2);
        // Both parallel copies must agree with the sequential reference.
        assert_bit_identical(&parallel[0], &sequential, &name);
        assert_bit_identical(&parallel[1], &sequential, &name);
    }
}
