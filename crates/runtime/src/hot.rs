//! Dense struct-of-arrays node state: the per-node fields the event loop
//! touches on every dispatch, split out of [`NodeStack`] into parallel `Vec`s.
//!
//! Every event gate reads the acting node's session epoch and ground-truth
//! adversary flag; keeping those inside the (large, pointer-rich) stack
//! structs means a gate check drags a whole `NodeStack` cache line in just to
//! reject a stale timer. Packing them into dense arrays keeps the hot loop's
//! working set at a few bytes per node — at 100k nodes the epoch column is
//! 400 KB instead of 100k scattered struct reads — and gives the sharded
//! executor a cheap `Sync` view it can share across shard threads while the
//! stacks themselves are split into disjoint `&mut` ranges.

use lifting_sim::NodeId;

use crate::layers::NodeStack;

/// Hot per-node columns (struct-of-arrays), indexed by node id.
#[derive(Debug)]
pub(crate) struct HotNodeState {
    /// Per-node session epoch: bumped when churn rebuilds the node's stack,
    /// so events scheduled for an earlier session are dropped (see
    /// [`crate::message::Event`]).
    pub(crate) epochs: Vec<u32>,
    /// Ground-truth freerider flag (dense mirror of each stack's cached
    /// adversary verdict; used only by metrics and closed-loop feedback,
    /// never by the protocol).
    pub(crate) freerider: Vec<bool>,
}

impl HotNodeState {
    /// Builds the columns for freshly constructed stacks (epoch 0 everywhere).
    pub(crate) fn from_stacks(stacks: &[NodeStack]) -> Self {
        HotNodeState {
            epochs: vec![0; stacks.len()],
            freerider: stacks.iter().map(|s| s.is_freerider).collect(),
        }
    }

    /// The session epoch of `node`.
    #[inline]
    pub(crate) fn epoch(&self, node: NodeId) -> u32 {
        self.epochs[node.index()]
    }

    /// Re-mirrors the freerider flag after a stack rebuild (the adversary is
    /// re-derived deterministically, so this is normally a no-op; kept for
    /// the invariant rather than out of need).
    pub(crate) fn refresh(&mut self, node: NodeId, stack: &NodeStack) {
        self.freerider[node.index()] = stack.is_freerider;
    }

    /// Heap bytes held by the columns (capacity walk, deterministic).
    pub(crate) fn estimated_heap_bytes(&self) -> usize {
        self.epochs.capacity() * std::mem::size_of::<u32>() + self.freerider.capacity()
    }
}
