//! Events circulating in the simulated system.

use lifting_core::{VerificationMessage, VerifierTimer};
use lifting_gossip::GossipMessage;
use lifting_net::TrafficCategory;
use lifting_sim::{NodeId, StreamId};

/// A message travelling between two nodes.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// A three-phase gossip message.
    Gossip(GossipMessage),
    /// A LiFTinG verification message.
    Verification(VerificationMessage),
}

impl Message {
    /// Application-level payload size of the message.
    pub fn wire_size(&self) -> u64 {
        match self {
            Message::Gossip(m) => m.wire_size(),
            Message::Verification(m) => m.wire_size(),
        }
    }

    /// The stream plane this message is addressed to, when any: derived from
    /// the chunk identities the payload carries (see
    /// [`GossipMessage::stream`] and [`VerificationMessage::stream`]), so no
    /// wire bytes are spent on it. `None` for traffic addressed to the
    /// stream-agnostic reputation plane (blames) and for audit transfers.
    pub fn stream(&self) -> Option<StreamId> {
        match self {
            Message::Gossip(m) => m.stream(),
            Message::Verification(m) => m.stream(),
        }
    }

    /// The traffic category this message is accounted under.
    pub fn category(&self) -> TrafficCategory {
        match self {
            Message::Gossip(GossipMessage::Serve(_)) => TrafficCategory::StreamData,
            Message::Gossip(_) => TrafficCategory::GossipControl,
            Message::Verification(VerificationMessage::Blame(_)) => TrafficCategory::Blame,
            Message::Verification(VerificationMessage::HistoryRequest)
            | Message::Verification(VerificationMessage::HistoryResponse(_)) => {
                TrafficCategory::Audit
            }
            Message::Verification(_) => TrafficCategory::Verification,
        }
    }
}

/// A simulation event.
///
/// Per-node recurring events (gossip ticks, audit ticks, verifier timers)
/// carry the node's **session epoch**: churn tears a node's stack down and
/// rebuilds it on rejoin, bumping the epoch, so events scheduled for an
/// earlier session are dropped instead of double-driving the rebuilt stack
/// (or colliding with the fresh verifier's reissued timer tokens). In a
/// static population every epoch is 0 and the field is inert.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// The broadcast source emits the next chunk of one stream.
    SourceEmit {
        /// The stream whose emission is due.
        stream: StreamId,
    },
    /// A node runs its propose phase.
    GossipTick {
        /// The node whose gossip period elapsed.
        node: NodeId,
        /// The node's session epoch when the tick was scheduled.
        epoch: u32,
    },
    /// A message reaches its destination.
    Deliver {
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// The message.
        message: Message,
    },
    /// A verifier timer expires.
    Timer {
        /// The node owning the timer.
        node: NodeId,
        /// The stream plane whose verifier armed the timer (timer tokens are
        /// plane-local, so the stream must ride along to route the expiry).
        stream: StreamId,
        /// The timer.
        timer: VerifierTimer,
        /// The node's session epoch when the timer was armed.
        epoch: u32,
    },
    /// End of a global gossip period: managers apply compensation and check
    /// expulsion thresholds.
    PeriodEnd,
    /// A node initiates an a-posteriori audit of a random peer.
    AuditTick {
        /// The auditing node.
        auditor: NodeId,
        /// The auditor's session epoch when the tick was scheduled.
        epoch: u32,
    },
    /// A churn transition: the node departs (`up = false`) or (re)joins
    /// (`up = true`). Emitted by the [`crate::scenario::ScenarioConfig`]'s
    /// churn schedule through the regular event queue.
    Churn {
        /// The node changing membership state.
        node: NodeId,
        /// True for a join/rejoin, false for a departure.
        up: bool,
        /// For a session-end departure: the node's session epoch when the
        /// departure was drawn, so a departure outlived by a wave-induced
        /// depart/rejoin cycle is dropped instead of spawning a second churn
        /// chain. Wave transitions and rejoins use [`CHURN_EPOCH_ANY`]
        /// (joins are idempotent, waves apply to whatever session is live).
        epoch: u32,
    },
    /// A workload-driven channel switch: the node leaves stream `from` and
    /// joins stream `to` (zap-style channel surfing). Expanded from the
    /// scenario's pre-drawn workload plan, like [`Event::Churn`] transitions.
    Resubscribe {
        /// The switching viewer.
        node: NodeId,
        /// The channel being left.
        from: StreamId,
        /// The channel being joined.
        to: StreamId,
    },
    /// A scheduled network-fault transition: wave `wave` of the scenario's
    /// [`lifting_net::FaultSchedule`] begins (`begin = true`, its members
    /// become partitioned) or heals (`begin = false`). Nodes hit by several
    /// overlapping waves stay partitioned until the last one heals.
    Fault {
        /// Index of the wave in the fault plan.
        wave: u32,
        /// True when the wave begins, false when it heals.
        begin: bool,
    },
}

/// Epoch wildcard for [`Event::Churn`]: the transition applies regardless of
/// the node's current session epoch.
pub const CHURN_EPOCH_ANY: u32 = u32::MAX;

#[cfg(test)]
mod tests {
    use super::*;
    use lifting_core::Blame;
    use lifting_gossip::{Chunk, ChunkId, ProposePayload, ServePayload};
    use lifting_sim::SimTime;

    #[test]
    fn messages_are_categorized_for_overhead_accounting() {
        let serve = Message::Gossip(GossipMessage::Serve(ServePayload {
            chunk: Chunk::new(ChunkId::primary(1), 1_000, SimTime::ZERO),
        }));
        assert_eq!(serve.category(), TrafficCategory::StreamData);
        let propose = Message::Gossip(GossipMessage::Propose(ProposePayload {
            period: 0,
            chunks: vec![ChunkId::primary(1)].into(),
        }));
        assert_eq!(propose.category(), TrafficCategory::GossipControl);
        let blame = Message::Verification(VerificationMessage::Blame(Blame::new(
            NodeId::new(1),
            1.0,
            lifting_core::BlameReason::PartialServe,
        )));
        assert_eq!(blame.category(), TrafficCategory::Blame);
        assert_eq!(
            Message::Verification(VerificationMessage::HistoryRequest).category(),
            TrafficCategory::Audit
        );
        assert!(serve.wire_size() > propose.wire_size());
    }
}

#[cfg(test)]
mod size_regression {
    /// Every pending event sits in the scheduler's binary heap and is moved on
    /// each sift, so [`Event`] must stay lean. The payload-heavy verification
    /// variants are boxed in `lifting-core` to keep it that way; this test
    /// pins the budget so a future fat variant is caught immediately.
    #[test]
    fn event_fits_the_heap_entry_budget() {
        assert!(
            std::mem::size_of::<super::Event>() <= 48,
            "Event grew to {} bytes; box the oversized variant",
            std::mem::size_of::<super::Event>()
        );
        assert!(
            std::mem::size_of::<super::Message>() <= 40,
            "Message grew to {} bytes; box the oversized variant",
            std::mem::size_of::<super::Message>()
        );
    }
}
