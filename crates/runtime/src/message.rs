//! Events circulating in the simulated system.

use lifting_core::{VerificationMessage, VerifierTimer};
use lifting_gossip::GossipMessage;
use lifting_net::TrafficCategory;
use lifting_sim::NodeId;

/// A message travelling between two nodes.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// A three-phase gossip message.
    Gossip(GossipMessage),
    /// A LiFTinG verification message.
    Verification(VerificationMessage),
}

impl Message {
    /// Application-level payload size of the message.
    pub fn wire_size(&self) -> u64 {
        match self {
            Message::Gossip(m) => m.wire_size(),
            Message::Verification(m) => m.wire_size(),
        }
    }

    /// The traffic category this message is accounted under.
    pub fn category(&self) -> TrafficCategory {
        match self {
            Message::Gossip(GossipMessage::Serve(_)) => TrafficCategory::StreamData,
            Message::Gossip(_) => TrafficCategory::GossipControl,
            Message::Verification(VerificationMessage::Blame(_)) => TrafficCategory::Blame,
            Message::Verification(VerificationMessage::HistoryRequest)
            | Message::Verification(VerificationMessage::HistoryResponse(_)) => {
                TrafficCategory::Audit
            }
            Message::Verification(_) => TrafficCategory::Verification,
        }
    }
}

/// A simulation event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// The broadcast source emits its next chunk.
    SourceEmit,
    /// A node runs its propose phase.
    GossipTick {
        /// The node whose gossip period elapsed.
        node: NodeId,
    },
    /// A message reaches its destination.
    Deliver {
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// The message.
        message: Message,
    },
    /// A verifier timer expires.
    Timer {
        /// The node owning the timer.
        node: NodeId,
        /// The timer.
        timer: VerifierTimer,
    },
    /// End of a global gossip period: managers apply compensation and check
    /// expulsion thresholds.
    PeriodEnd,
    /// A node initiates an a-posteriori audit of a random peer.
    AuditTick {
        /// The auditing node.
        auditor: NodeId,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifting_core::Blame;
    use lifting_gossip::{Chunk, ChunkId, ProposePayload, ServePayload};
    use lifting_sim::SimTime;

    #[test]
    fn messages_are_categorized_for_overhead_accounting() {
        let serve = Message::Gossip(GossipMessage::Serve(ServePayload {
            chunk: Chunk::new(ChunkId::new(1), 1_000, SimTime::ZERO),
        }));
        assert_eq!(serve.category(), TrafficCategory::StreamData);
        let propose = Message::Gossip(GossipMessage::Propose(ProposePayload {
            period: 0,
            chunks: vec![ChunkId::new(1)].into(),
        }));
        assert_eq!(propose.category(), TrafficCategory::GossipControl);
        let blame = Message::Verification(VerificationMessage::Blame(Blame::new(
            NodeId::new(1),
            1.0,
            lifting_core::BlameReason::PartialServe,
        )));
        assert_eq!(blame.category(), TrafficCategory::Blame);
        assert_eq!(
            Message::Verification(VerificationMessage::HistoryRequest).category(),
            TrafficCategory::Audit
        );
        assert!(serve.wire_size() > propose.wire_size());
    }
}

#[cfg(test)]
mod size_regression {
    /// Every pending event sits in the scheduler's binary heap and is moved on
    /// each sift, so [`Event`] must stay lean. The payload-heavy verification
    /// variants are boxed in `lifting-core` to keep it that way; this test
    /// pins the budget so a future fat variant is caught immediately.
    #[test]
    fn event_fits_the_heap_entry_budget() {
        assert!(
            std::mem::size_of::<super::Event>() <= 48,
            "Event grew to {} bytes; box the oversized variant",
            std::mem::size_of::<super::Event>()
        );
        assert!(
            std::mem::size_of::<super::Message>() <= 40,
            "Message grew to {} bytes; box the oversized variant",
            std::mem::size_of::<super::Message>()
        );
    }
}
