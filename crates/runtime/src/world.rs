//! The simulated system: the node stacks, the network, the audit plane and
//! the world-level glue (event dispatch, blame routing, expulsions).
//!
//! All node-local protocol logic lives in [`crate::layers`]; the world only
//! routes events into the right [`NodeStack`], executes the [`Downcall`]s the
//! stacks emit, coordinates cross-node concerns (audits, expulsion quorums)
//! and reads out the metrics.

use lifting_core::Blame;
use lifting_gossip::{Chunk, StreamSource};
use lifting_membership::Directory;
use lifting_net::Network;
use lifting_reputation::ManagerAssignment;
use lifting_sim::{Context, InlineVec, NodeId, SimTime, World};
use rand::rngs::SmallRng;
use rand::Rng;

use lifting_core::VerificationMessage;

use crate::builder;
use crate::layers::{AuditCoordinator, AuditOutcome, Downcall, NodeStack};
use crate::message::{Event, Message};
use crate::scenario::ScenarioConfig;

/// The whole simulated system.
pub struct SystemWorld {
    pub(crate) config: ScenarioConfig,
    pub(crate) directory: Directory,
    pub(crate) network: Network,
    pub(crate) stacks: Vec<NodeStack>,
    pub(crate) assignment: ManagerAssignment,
    pub(crate) audits: AuditCoordinator,
    pub(crate) source: StreamSource,
    pub(crate) emitted_chunks: Vec<Chunk>,
    pub(crate) compensation_per_period: f64,
    pub(crate) expulsion_votes: Vec<usize>,
    pub(crate) expelled: Vec<bool>,
    pub(crate) rng: SmallRng,
    /// Recycled scratch buffer for stack downcalls (allocation-free loop).
    pub(crate) scratch_downcalls: Vec<Downcall>,
    /// Recycled scratch for audit-target candidates and expulsion votes, so
    /// the periodic events allocate nothing at steady state either.
    pub(crate) scratch_nodes: Vec<NodeId>,
}

impl SystemWorld {
    /// Builds the system described by `config`.
    pub fn new(config: ScenarioConfig) -> Self {
        builder::build_world(config)
    }

    /// The scenario this world was built from.
    pub fn config(&self) -> &ScenarioConfig {
        &self.config
    }

    /// The per-period score compensation applied by the managers.
    pub fn compensation_per_period(&self) -> f64 {
        self.compensation_per_period
    }

    /// The chunks emitted by the source so far.
    pub fn emitted_chunks(&self) -> &[Chunk] {
        &self.emitted_chunks
    }

    /// The simulated network (traffic statistics, expulsions).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The per-node protocol stacks.
    pub fn stacks(&self) -> &[NodeStack] {
        &self.stacks
    }

    /// Number of nodes expelled so far.
    pub fn expelled_count(&self) -> usize {
        self.expelled.iter().filter(|e| **e).count()
    }

    /// True if `node` has been expelled.
    pub fn is_expelled(&self, node: NodeId) -> bool {
        self.expelled[node.index()]
    }

    /// Schedules the initial events of a run.
    pub fn initial_events(&self) -> Vec<(SimTime, Event)> {
        builder::initial_events(&self.config)
    }

    fn lifting_on(&self) -> bool {
        self.config.lifting_enabled
    }

    fn send(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        message: Message,
        ctx: &mut Context<Event>,
    ) {
        let outcome = self
            .network
            .send(now, from, to, message.wire_size(), message.category());
        if let lifting_net::DeliveryOutcome::Deliver { at } = outcome {
            ctx.schedule_at(at, Event::Deliver { from, to, message });
        }
    }

    /// Executes the downcalls a stack emitted, in order: this is the single
    /// point where layer traffic reaches the network and the scheduler, so
    /// the stacks' emission order fully determines the wire order.
    fn process_downcalls(
        &mut self,
        node: NodeId,
        downcalls: &mut Vec<Downcall>,
        now: SimTime,
        ctx: &mut Context<Event>,
    ) {
        for downcall in downcalls.drain(..) {
            match downcall {
                Downcall::Send { to, message } => self.send(now, node, to, message, ctx),
                Downcall::StartTimer { timer, deadline } => {
                    ctx.schedule_at(deadline, Event::Timer { node, timer });
                }
                Downcall::Blame(blame) => self.route_blame(node, blame, now, ctx),
            }
        }
    }

    fn route_blame(&mut self, from: NodeId, blame: Blame, now: SimTime, ctx: &mut Context<Event>) {
        if !self.lifting_on() || blame.target == NodeId::new(0) {
            return; // the source is not scored
        }
        // Copy the manager list to the stack (M ≈ 25 fits inline) so `send`
        // can borrow the world mutably without a heap allocation per blame.
        let managers: InlineVec<NodeId, 32> =
            InlineVec::from_slice(self.assignment.managers_of(blame.target));
        for manager in managers.iter() {
            self.send(
                now,
                from,
                *manager,
                Message::Verification(VerificationMessage::Blame(blame)),
                ctx,
            );
        }
    }

    fn expel(&mut self, node: NodeId) {
        if node == NodeId::new(0) || self.expelled[node.index()] {
            return;
        }
        self.expelled[node.index()] = true;
        self.network.set_expelled(node, true);
        self.directory.deactivate(node);
    }

    fn handle_period_end(&mut self, _now: SimTime, ctx: &mut Context<Event>) {
        if std::env::var_os("LIFTING_AUDIT_DEBUG").is_some() {
            let snap = self.score_snapshot(_now);
            let min = snap
                .outcomes
                .iter()
                .filter_map(|o| o.score)
                .fold(f64::INFINITY, f64::min);
            let fr_mean = {
                let v = snap.freerider_scores();
                v.iter().sum::<f64>() / v.len().max(1) as f64
            };
            eprintln!(
                "period end at {_now}: min score {min:.2}, freerider mean {fr_mean:.2}, expelled {}",
                self.expelled_count()
            );
        }
        if self.lifting_on() {
            let eta = self.config.lifting.eta;
            let min_periods = self.config.lifting.min_periods_before_expulsion;
            for stack in &mut self.stacks {
                stack.reputation.end_period(self.compensation_per_period);
            }
            let mut newly_voted = std::mem::take(&mut self.scratch_nodes);
            newly_voted.clear();
            for stack in &mut self.stacks {
                stack
                    .reputation
                    .expulsion_votes_into(eta, min_periods, &mut newly_voted);
            }
            let quorum = (self.config.lifting.expulsion_quorum
                * self.config.lifting.managers as f64)
                .ceil()
                .max(1.0) as usize;
            for target in newly_voted.drain(..) {
                self.expulsion_votes[target.index()] += 1;
                if self.expulsion_votes[target.index()] >= quorum {
                    self.expel(target);
                }
            }
            self.scratch_nodes = newly_voted;
        }
        ctx.schedule_after(self.config.gossip.gossip_period, Event::PeriodEnd);
    }

    fn handle_audit_tick(&mut self, auditor: NodeId, now: SimTime, ctx: &mut Context<Event>) {
        if !self.config.audits_enabled || self.expelled[auditor.index()] {
            return;
        }
        // Pick a random active target (never the source, never self). The
        // candidate list is staged in a recycled buffer: audit ticks fire for
        // every node every interval, so this path must not allocate.
        let mut candidates = std::mem::take(&mut self.scratch_nodes);
        candidates.clear();
        candidates.extend(
            self.directory
                .active_nodes()
                .filter(|c| *c != auditor && *c != NodeId::new(0)),
        );
        if !candidates.is_empty() && self.lifting_on() {
            let target = candidates[self.rng.gen_range(0..candidates.len())];
            let outcome = self
                .audits
                .audit(&self.stacks, &mut self.network, auditor, target, now);
            match outcome {
                AuditOutcome::Expel => self.expel(target),
                AuditOutcome::Blame(blame) => self.route_blame(auditor, blame, now, ctx),
                AuditOutcome::Pass => {}
            }
        }
        self.scratch_nodes = candidates;
        ctx.schedule_after(self.config.audit_interval, Event::AuditTick { auditor });
    }
}

impl World for SystemWorld {
    type Event = Event;

    fn handle_event(&mut self, now: SimTime, event: Event, ctx: &mut Context<Event>) {
        match event {
            Event::SourceEmit => {
                let chunk = self.source.emit();
                self.emitted_chunks.push(chunk);
                self.stacks[0].gossip.inject_source_chunk(chunk, now);
                ctx.schedule_at(self.source.next_emission(), Event::SourceEmit);
            }
            Event::GossipTick { node } => {
                if self.expelled[node.index()] {
                    return; // expelled nodes stop participating
                }
                let mut downcalls = std::mem::take(&mut self.scratch_downcalls);
                self.stacks[node.index()].on_gossip_tick(
                    node,
                    now,
                    &self.directory,
                    &mut downcalls,
                );
                self.process_downcalls(node, &mut downcalls, now, ctx);
                self.scratch_downcalls = downcalls;
                ctx.schedule_after(self.config.gossip.gossip_period, Event::GossipTick { node });
            }
            Event::Deliver { from, to, message } => {
                if self.expelled[to.index()] {
                    return;
                }
                let mut downcalls = std::mem::take(&mut self.scratch_downcalls);
                self.stacks[to.index()].on_message(
                    to,
                    from,
                    message,
                    now,
                    &self.directory,
                    &mut downcalls,
                );
                self.process_downcalls(to, &mut downcalls, now, ctx);
                self.scratch_downcalls = downcalls;
            }
            Event::Timer { node, timer } => {
                if self.expelled[node.index()] || !self.lifting_on() {
                    return;
                }
                let mut downcalls = std::mem::take(&mut self.scratch_downcalls);
                self.stacks[node.index()].on_timer(
                    node,
                    timer,
                    now,
                    &self.directory,
                    &mut downcalls,
                );
                self.process_downcalls(node, &mut downcalls, now, ctx);
                self.scratch_downcalls = downcalls;
            }
            Event::PeriodEnd => self.handle_period_end(now, ctx),
            Event::AuditTick { auditor } => self.handle_audit_tick(auditor, now, ctx),
        }
    }
}

impl std::fmt::Debug for SystemWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SystemWorld")
            .field("nodes", &self.stacks.len())
            .field("expelled", &self.expelled_count())
            .field("emitted_chunks", &self.emitted_chunks.len())
            .finish()
    }
}
