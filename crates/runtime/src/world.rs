//! The simulated system: the node stacks, the network, the audit plane and
//! the world-level glue (event dispatch, blame routing, expulsions, churn).
//!
//! All node-local protocol logic lives in [`crate::layers`]; the world only
//! routes events into the right [`NodeStack`], executes the [`Downcall`]s the
//! stacks emit, coordinates cross-node concerns (audits, expulsion quorums,
//! membership transitions) and reads out the metrics.
//!
//! **Membership invariant**: the [`Directory`] is the single source of truth
//! for who participates. Every selection site — gossip partners, audit
//! targets, audit witnesses — samples from the directory's active set, every
//! event dispatch gates on it, and the network cuts inactive nodes off, so an
//! expelled or departed node can never be handed a partner or witness slot
//! nor receive traffic. `expelled` only records *why* a node is inactive
//! (expulsion is permanent; departure is reversible).

use lifting_analysis::robust_outlier_threshold;
use lifting_core::Blame;
use lifting_gossip::{Chunk, StreamSource};
use lifting_membership::Directory;
use lifting_net::{FaultPlan, Network};
use lifting_reputation::ManagerAssignment;
use lifting_sim::{derive_rng, Context, InlineVec, NodeId, SimDuration, SimTime, StreamId, World};
use rand::rngs::SmallRng;
use rand::Rng;
use std::sync::Arc;

use lifting_core::VerificationMessage;

use crate::builder;
use crate::hot::HotNodeState;
use crate::layers::{AuditCoordinator, AuditOutcome, Downcall, FeedbackAction, NodeStack};
use crate::message::{Event, Message, CHURN_EPOCH_ANY};
use crate::metrics::{RecoveryReport, WaveKind, WaveRecovery};
use crate::scenario::ScenarioConfig;
use crate::wave::WaveExec;

/// Live churn state: which nodes cycle on/off and the RNG stream feeding the
/// session/offline duration draws as the run progresses.
pub(crate) struct ChurnRuntime {
    /// Per node: subject to steady session/offline cycling.
    pub(crate) churners: Vec<bool>,
    /// The world's churn draw stream (separate from the protocol RNGs so a
    /// static-population run consumes exactly the streams it always did).
    pub(crate) rng: SmallRng,
}

/// The whole simulated system.
pub struct SystemWorld {
    pub(crate) config: ScenarioConfig,
    pub(crate) directory: Directory,
    pub(crate) network: Network,
    pub(crate) stacks: Vec<NodeStack>,
    pub(crate) assignment: ManagerAssignment,
    pub(crate) audits: AuditCoordinator,
    /// One broadcast source per stream, indexed by [`StreamId`].
    pub(crate) sources: Vec<StreamSource>,
    /// Per stream, the chunks its source emitted (the reference sets for
    /// stream health).
    pub(crate) emitted: Vec<Vec<Chunk>>,
    /// Per stream, the per-period wrongful-blame compensation (Equation 5
    /// evaluated at that stream's rate); a node's credit is the sum over its
    /// subscriptions.
    pub(crate) compensation_per_stream: Vec<f64>,
    /// Per `(node, stream)` (row-major, `node * streams + stream`): blames
    /// routed to the node's managers, attributed to the stream whose
    /// verification emitted them — occurrence counts and summed values.
    /// Cross-stream provenance for metrics and the aggregation invariant
    /// tests; scoring never reads either.
    pub(crate) blame_counts: Vec<u64>,
    pub(crate) blame_values: Vec<f64>,
    /// Per target: the distinct managers that have voted to expel it. A set
    /// of voters, not a bare counter: a manager whose stack was rebuilt
    /// after a rejoin starts from a blank book and may re-derive the same
    /// vote, which must not count twice toward the quorum.
    pub(crate) expulsion_voters: Vec<Vec<NodeId>>,
    pub(crate) expelled: Vec<bool>,
    /// Dense hot columns (session epochs, freerider flags) — the
    /// struct-of-arrays fields every event gate reads (see [`crate::hot`]).
    pub(crate) hot: HotNodeState,
    /// Sharded-execution state; `None` runs the classic sequential dispatch
    /// (see [`crate::wave`] and [`SystemWorld::set_shard_count`]).
    pub(crate) wave_exec: Option<WaveExec>,
    /// Live churn state (`None` for a static population).
    pub(crate) churn: Option<ChurnRuntime>,
    pub(crate) churn_departures: u64,
    pub(crate) churn_rejoins: u64,
    /// Online sessions begun (nodes that started online plus every rejoin).
    pub(crate) churn_sessions: u64,
    /// Channel switches executed by the workload plan (zap scenarios).
    pub(crate) workload_switches: u64,
    /// Audits whose negative verdict was discarded because a witness named in
    /// the audited history had departed (benefit of the doubt: absence of a
    /// confirmation is indistinguishable from churn).
    pub(crate) audits_aborted_by_departure: u64,
    /// The freerider coalition (kept for stack rebuilds after a rejoin).
    pub(crate) coalition: Arc<Vec<NodeId>>,
    pub(crate) rng: SmallRng,
    /// Draws that only exist in multi-channel runs (audit stream picks).
    /// Never consumed when one stream runs, so single-stream scenarios keep
    /// their exact RNG stream consumption.
    pub(crate) mstream_rng: SmallRng,
    /// Recycled scratch buffer for stack downcalls (allocation-free loop).
    pub(crate) scratch_downcalls: Vec<Downcall>,
    /// Recycled scratch for audit-target candidates and expulsion votes, so
    /// the periodic events allocate nothing at steady state either.
    pub(crate) scratch_nodes: Vec<NodeId>,
    /// Recycled scratch for per-period `(manager, target)` expulsion votes.
    pub(crate) scratch_votes: Vec<(NodeId, NodeId)>,
    /// Pre-drawn membership of every fault wave (`None` when the scenario
    /// schedules no faults, so fault-free runs consume no extra RNG).
    pub(crate) fault_plan: Option<FaultPlan>,
    /// Per node: how many fault waves currently hold it partitioned. A node
    /// hit by overlapping waves stays partitioned until the count drains.
    pub(crate) partition_holds: Vec<u8>,
    /// Gossip periods completed so far (drives the recovery traces).
    pub(crate) periods_elapsed: u64,
    /// The expulsion threshold actually applied this period: the static
    /// configured η, or the online-recalibrated value when
    /// [`crate::scenario::OnlineRecalibration`] is active.
    pub(crate) eta_live: f64,
    /// EWMA state of the online recalibration (equals η when off).
    pub(crate) eta_smoothed: f64,
    /// Recovery-convergence traces, populated only when the scenario's
    /// resilience features are active (see
    /// [`ScenarioConfig::resilience_active`]).
    pub(crate) recovery: Option<RecoveryReport>,
}

impl SystemWorld {
    /// Builds the system described by `config`.
    pub fn new(config: ScenarioConfig) -> Self {
        builder::build_world(config)
    }

    /// The scenario this world was built from.
    pub fn config(&self) -> &ScenarioConfig {
        &self.config
    }

    /// The per-period score compensation a fully subscribed node collects
    /// (the sum over every stream's credit; in a single-channel run this is
    /// exactly the primary stream's Equation 5 value).
    pub fn compensation_per_period(&self) -> f64 {
        self.compensation_per_stream.iter().sum()
    }

    /// The per-period compensation attributed to one stream.
    pub fn compensation_for(&self, stream: StreamId) -> f64 {
        self.compensation_per_stream[stream.index()]
    }

    /// Number of concurrent streams this world broadcasts.
    pub fn stream_count(&self) -> usize {
        self.sources.len()
    }

    /// The chunks emitted by the primary stream's source so far.
    pub fn emitted_chunks(&self) -> &[Chunk] {
        &self.emitted[0]
    }

    /// The chunks emitted on `stream` so far.
    pub fn emitted_chunks_of(&self, stream: StreamId) -> &[Chunk] {
        &self.emitted[stream.index()]
    }

    /// Blames booked against `node` that were emitted by `stream`'s
    /// verification plane (provenance; the score itself aggregates all
    /// streams).
    pub fn blames_against(&self, node: NodeId, stream: StreamId) -> u64 {
        self.blame_counts[node.index() * self.stream_count() + stream.index()]
    }

    /// Total blame **value** booked against `node` from `stream`'s
    /// verification plane (the quantity the score actually sums; counts
    /// weigh a heavy missing-ack blame the same as a sliver of wrongful
    /// partial-serve noise, values do not).
    pub fn blame_value_against(&self, node: NodeId, stream: StreamId) -> f64 {
        self.blame_values[node.index() * self.stream_count() + stream.index()]
    }

    /// The simulated network (traffic statistics, expulsions).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The per-node protocol stacks.
    pub fn stacks(&self) -> &[NodeStack] {
        &self.stacks
    }

    /// The membership directory — the single source of truth for which nodes
    /// currently participate (neither expelled nor departed).
    pub fn directory(&self) -> &Directory {
        &self.directory
    }

    /// Number of nodes expelled so far.
    pub fn expelled_count(&self) -> usize {
        self.expelled.iter().filter(|e| **e).count()
    }

    /// True if `node` has been expelled.
    pub fn is_expelled(&self, node: NodeId) -> bool {
        self.expelled[node.index()]
    }

    /// True if `node` is offline due to churn (departed but not expelled).
    pub fn is_departed(&self, node: NodeId) -> bool {
        !self.directory.is_active(node) && !self.expelled[node.index()]
    }

    /// Forcibly removes `node` from the system mid-run, as a churn departure
    /// would (deactivated in the directory, cut off the network, stack left
    /// to be torn down on a later rejoin). Exposed for fault injection
    /// between engine segments and for invariant tests.
    pub fn force_depart(&mut self, node: NodeId) {
        if node == NodeId::new(0) || !self.directory.is_active(node) {
            return;
        }
        self.directory.deactivate(node);
        self.network.set_cut_off(node, true);
        self.churn_departures += 1;
    }

    /// Schedules the initial events of a run.
    pub fn initial_events(&self) -> Vec<(SimTime, Event)> {
        builder::initial_events(&self.config)
    }

    fn lifting_on(&self) -> bool {
        self.config.lifting_enabled
    }

    /// The number of shards the world executes waves over (1 = sequential).
    pub fn shard_count(&self) -> usize {
        self.wave_exec.as_ref().map_or(1, |e| e.map.shards())
    }

    /// Switches the world to shard-parallel wave execution over `shards`
    /// contiguous node ranges (1 or 0 restores classic sequential dispatch).
    /// Results are bit-identical at any shard count; only wall-clock time and
    /// the per-shard observability counters change. Call before running the
    /// engine via [`lifting_sim::Engine::run_until_sharded`].
    pub fn set_shard_count(&mut self, shards: usize) {
        let map = lifting_sim::ShardMap::new(self.config.nodes, shards);
        self.wave_exec = (map.shards() > 1).then(|| WaveExec::new(map));
    }

    /// Cumulative wave-executor counters: `(waves, events in waves,
    /// intra-shard staged entries, cross-shard staged entries)`. `None` when
    /// running sequentially. Observability only — never part of a
    /// [`crate::RunOutcome`], which must be shard-invariant.
    pub fn wave_stats(&self) -> Option<(u64, u64, u64, u64)> {
        self.wave_exec.as_ref().map(|e| {
            let (intra, cross) = e.mailbox_totals();
            (e.waves, e.wave_events, intra, cross)
        })
    }

    /// Cumulative staged wave entries for one `(src, dst)` shard pair (see
    /// [`lifting_sim::ShardMailboxes::pushed`]); 0 when running sequentially.
    pub fn wave_mailbox_pushed(&self, src: usize, dst: usize) -> u64 {
        self.wave_exec
            .as_ref()
            .map_or(0, |e| e.mailbox_pushed(src, dst))
    }

    /// The contiguous node-id range `[lo, hi)` owned by one shard; the whole
    /// population as a single range when running sequentially.
    pub fn shard_range(&self, shard: usize) -> (u32, u32) {
        match &self.wave_exec {
            Some(e) => {
                let r = e.map.range(shard);
                (r.start, r.end)
            }
            None => (0, self.config.nodes as u32),
        }
    }

    /// Total messages handed to the network so far — a cheap divergence probe
    /// for tools that compare a sharded run against a sequential one without
    /// paying for a full [`crate::RunOutcome`].
    pub fn traffic_messages_sent(&self) -> u64 {
        self.network.stats().report().total_messages_sent
    }

    pub(crate) fn send(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        message: Message,
        ctx: &mut Context<Event>,
    ) {
        let outcome = self
            .network
            .send(now, from, to, message.wire_size(), message.category());
        match outcome {
            lifting_net::DeliveryOutcome::Deliver { at } => {
                ctx.schedule_at(at, Event::Deliver { from, to, message });
            }
            lifting_net::DeliveryOutcome::Duplicated { at, duplicate_at } => {
                ctx.schedule_at(
                    at,
                    Event::Deliver {
                        from,
                        to,
                        message: message.clone(),
                    },
                );
                ctx.schedule_at(duplicate_at, Event::Deliver { from, to, message });
            }
            lifting_net::DeliveryOutcome::Lost => {}
        }
    }

    /// Executes the downcalls a stack emitted, in order: this is the single
    /// point where layer traffic reaches the network and the scheduler, so
    /// the stacks' emission order fully determines the wire order.
    fn process_downcalls(
        &mut self,
        node: NodeId,
        downcalls: &mut Vec<Downcall>,
        now: SimTime,
        ctx: &mut Context<Event>,
    ) {
        let epoch = self.hot.epoch(node);
        for downcall in downcalls.drain(..) {
            match downcall {
                Downcall::Send { to, message } => self.send(now, node, to, message, ctx),
                Downcall::StartTimer {
                    stream,
                    timer,
                    deadline,
                } => {
                    ctx.schedule_at(
                        deadline,
                        Event::Timer {
                            node,
                            stream,
                            timer,
                            epoch,
                        },
                    );
                }
                Downcall::Blame(blame) => self.route_blame(node, blame, now, ctx),
            }
        }
    }

    pub(crate) fn route_blame(
        &mut self,
        from: NodeId,
        blame: Blame,
        now: SimTime,
        ctx: &mut Context<Event>,
    ) {
        if !self.lifting_on() || blame.target == NodeId::new(0) {
            return; // the source is not scored
        }
        let slot = blame.target.index() * self.sources.len() + blame.stream.index();
        self.blame_counts[slot] += 1;
        self.blame_values[slot] += blame.value;
        // Copy the manager list to the stack (M ≈ 25 fits inline) so `send`
        // can borrow the world mutably without a heap allocation per blame.
        let managers: InlineVec<NodeId, 32> =
            InlineVec::from_slice(self.assignment.managers_of(blame.target));
        for manager in managers.iter() {
            self.send(
                now,
                from,
                *manager,
                Message::Verification(VerificationMessage::Blame(blame)),
                ctx,
            );
        }
    }

    fn expel(&mut self, node: NodeId) {
        if node == NodeId::new(0) || self.expelled[node.index()] {
            return;
        }
        self.expelled[node.index()] = true;
        self.network.set_expelled(node, true);
        self.directory.deactivate(node);
    }

    /// Tears the node's protocol stack down and rebuilds it from scratch, as
    /// a crash-rejoin does: empty chunk store, fresh verification history,
    /// blank manager book (re-registered below) and a new session RNG stream.
    fn rebuild_stack(&mut self, node: NodeId) {
        let i = node.index();
        let session = self.hot.epochs[i] as u64;
        // A distinct, collision-free stream per (node, session): sessions ≥ 1
        // land past the builder's `1000 + i` block.
        let rng = derive_rng(self.config.seed, 1_000_000 + i as u64 + session * 1_000_003);
        let mut stack = NodeStack::with_streams(
            node,
            self.config.gossip,
            self.config.lifting,
            self.config.lifting_enabled,
            builder::adversary_for(&self.config, i, &self.coalition),
            rng,
            self.config.stream_count(),
        );
        // A crash loses the manager book; re-register this manager's charges
        // (their records restart — the other replicas of the min-vote still
        // hold the accumulated scores).
        for j in 1..self.config.nodes {
            let id = NodeId::new(j as u32);
            if self.assignment.managers_of(id).contains(&node) {
                stack.reputation.register(id);
            }
        }
        self.stacks[i] = stack;
        self.hot.refresh(node, &self.stacks[i]);
    }

    /// Executes one membership transition of the churn schedule.
    fn handle_churn(
        &mut self,
        node: NodeId,
        up: bool,
        epoch: u32,
        now: SimTime,
        ctx: &mut Context<Event>,
    ) {
        if node == NodeId::new(0) {
            return; // the broadcast source never churns
        }
        if !up && epoch != crate::message::CHURN_EPOCH_ANY && epoch != self.hot.epoch(node) {
            // A session-end departure from a previous session: a wave already
            // took this node down and a rejoin opened a new session in the
            // meantime. Firing it would fork a second departure/rejoin chain.
            return;
        }
        if up {
            if self.expelled[node.index()] || self.directory.is_active(node) {
                return; // expulsion is permanent; double joins are no-ops
            }
            self.directory.activate(node);
            self.network.set_cut_off(node, false);
            self.hot.epochs[node.index()] += 1;
            self.rebuild_stack(node);
            self.churn_rejoins += 1;
            self.churn_sessions += 1;
            let epoch = self.hot.epoch(node);
            ctx.schedule_at(now, Event::GossipTick { node, epoch });
            if self.config.audits_enabled {
                ctx.schedule_after(
                    self.config.audit_interval,
                    Event::AuditTick {
                        auditor: node,
                        epoch,
                    },
                );
            }
            if let Some(churn) = &mut self.churn {
                if churn.churners[node.index()] {
                    let schedule = self
                        .config
                        .churn
                        .as_ref()
                        .expect("churn runtime has config");
                    let session = schedule.session_length(&mut churn.rng);
                    ctx.schedule_after(
                        session,
                        Event::Churn {
                            node,
                            up: false,
                            epoch,
                        },
                    );
                }
            }
        } else {
            if self.expelled[node.index()] || !self.directory.is_active(node) {
                return; // already gone (expelled, or a wave hit a churned node)
            }
            self.directory.deactivate(node);
            self.network.set_cut_off(node, true);
            self.churn_departures += 1;
            if let Some(churn) = &mut self.churn {
                if churn.churners[node.index()] {
                    let schedule = self
                        .config
                        .churn
                        .as_ref()
                        .expect("churn runtime has config");
                    let offline = schedule.offline_length(&mut churn.rng);
                    ctx.schedule_after(
                        offline,
                        Event::Churn {
                            node,
                            up: true,
                            epoch: crate::message::CHURN_EPOCH_ANY,
                        },
                    );
                }
            }
        }
    }

    /// Executes one channel switch of the workload plan: the viewer leaves
    /// `from` and joins `to`. Pre-drawn switches targeting a departed or
    /// expelled viewer are dropped (the plan does not know who churn or the
    /// managers removed); the source never switches — it feeds every channel.
    fn handle_resubscribe(&mut self, node: NodeId, from: StreamId, to: StreamId) {
        if node == NodeId::new(0) || !self.directory.is_active(node) || from == to {
            return;
        }
        self.directory.unsubscribe(node, from);
        self.directory.subscribe(node, to);
        self.workload_switches += 1;
    }

    /// Channel switches executed so far by the workload plan (zap-style
    /// scenarios; 0 everywhere else).
    pub fn workload_switches(&self) -> u64 {
        self.workload_switches
    }

    /// The expulsion threshold applied at the most recent period end: the
    /// configured η, or the online-recalibrated value when that defense is
    /// active.
    pub fn effective_eta(&self) -> f64 {
        self.eta_live
    }

    /// Records the onset of a disruption (a partition wave beginning, a
    /// whitewash departure burst) in the recovery traces, capturing the
    /// detection quality just before the hit as the reconvergence baseline.
    fn register_wave(&mut self, kind: WaveKind) {
        let at_period = self.periods_elapsed;
        if let Some(recovery) = &mut self.recovery {
            let baseline_precision = recovery.period_precision.last().copied().unwrap_or(1.0);
            let baseline_recall = recovery.period_recall.last().copied().unwrap_or(0.0);
            recovery.waves.push(WaveRecovery {
                kind,
                at_period,
                baseline_precision,
                baseline_recall,
                reconverged_after: None,
            });
        }
    }

    /// Applies one scheduled fault-wave transition: partitions the wave's
    /// members on `begin`, releases them on heal. Hold counts make
    /// overlapping waves compose — a node stays partitioned until the last
    /// wave covering it heals.
    fn handle_fault(&mut self, wave: u32, begin: bool) {
        let Some(plan) = &self.fault_plan else {
            return;
        };
        let members = &plan.members[wave as usize];
        for (i, hit) in members.iter().enumerate() {
            if !hit {
                continue;
            }
            let node = NodeId::new(i as u32);
            if begin {
                self.partition_holds[i] += 1;
                if self.partition_holds[i] == 1 {
                    self.network.set_partitioned(node, true);
                }
            } else {
                self.partition_holds[i] = self.partition_holds[i].saturating_sub(1);
                if self.partition_holds[i] == 0 {
                    self.network.set_partitioned(node, false);
                }
            }
        }
        if begin {
            self.register_wave(WaveKind::Partition);
        }
    }

    fn handle_period_end(&mut self, _now: SimTime, ctx: &mut Context<Event>) {
        self.periods_elapsed += 1;
        if std::env::var_os("LIFTING_AUDIT_DEBUG").is_some() {
            let snap = self.score_snapshot(_now);
            let min = snap
                .outcomes
                .iter()
                .filter_map(|o| o.score)
                .fold(f64::INFINITY, f64::min);
            let fr_mean = {
                let v = snap.freerider_scores();
                v.iter().sum::<f64>() / v.len().max(1) as f64
            };
            eprintln!(
                "period end at {_now}: min score {min:.2}, freerider mean {fr_mean:.2}, expelled {}",
                self.expelled_count()
            );
        }
        if self.lifting_on() {
            let min_periods = self.config.lifting.min_periods_before_expulsion;
            // Score aging is churn-aware: a departed node is not being
            // observed, so it neither accrues periods nor collects the
            // per-period compensation while offline (otherwise leaving would
            // launder a bad score); departed managers' books freeze wholesale.
            // Expelled nodes keep aging, exactly as in a static population.
            //
            // The credit is per node: the sum of the per-stream compensations
            // over the channels the node subscribes to that are already on
            // air (a one-channel subscriber is only exposed to that
            // channel's wrongful blames, and a stream that has not started
            // yet cannot have produced any). With one stream this is the
            // same single value for everyone.
            let directory = &self.directory;
            let expelled = &self.expelled;
            let comp = &self.compensation_per_stream;
            let config = &self.config;
            let observed = |n: NodeId| directory.is_active(n) || expelled[n.index()];
            let credit = |n: NodeId| -> f64 {
                if comp.len() == 1 {
                    comp[0]
                } else {
                    comp.iter()
                        .enumerate()
                        .filter(|(s, _)| {
                            let stream = StreamId::new(*s as u16);
                            directory.is_subscribed(n, stream)
                                && _now >= SimTime::ZERO + config.stream_spec(stream).start_offset
                        })
                        .map(|(_, c)| *c)
                        .sum()
                }
            };
            for (i, stack) in self.stacks.iter_mut().enumerate() {
                let manager = NodeId::new(i as u32);
                if !directory.is_active(manager) && !expelled[i] {
                    continue; // departed manager: book frozen until rejoin
                }
                stack
                    .reputation
                    .end_period_credited(|n| observed(n).then(|| credit(n)));
            }
            // One post-aging score snapshot feeds every resilience feature of
            // this period (recalibration, closed-loop feedback, recovery
            // traces); legacy scenarios take none and pay nothing.
            let snap = (self.recovery.is_some()
                || self.config.online_recalibration.is_some()
                || self.config.adversary.closed_loop())
            .then(|| self.score_snapshot(_now));
            // Online defense: recalibrate the expulsion threshold from the
            // live score distribution with a robust low-outlier rule — trim
            // the suspected-freerider tail, then place the threshold `nmads`
            // MADs below the surviving bulk's median. A coalition throttling
            // just above the static η cannot drag the threshold down with it
            // (it is trimmed away), and the honest bulk cannot be eaten by a
            // fixed-quantile cut (the threshold tracks the bulk's own
            // spread); the EWMA smooths period-to-period jitter and the
            // static η stays a hard floor.
            if let Some(online) = self.config.online_recalibration {
                if self.periods_elapsed >= min_periods {
                    let snap = snap.as_ref().expect("snapshot taken when online is set");
                    let live: Vec<f64> = snap
                        .outcomes
                        .iter()
                        .filter(|o| !o.expelled && self.directory.is_active(o.node))
                        .filter_map(|o| o.score)
                        .collect();
                    if let Some(raw) = robust_outlier_threshold(&live, online.trim, online.nmads) {
                        self.eta_smoothed =
                            online.smoothing * raw + (1.0 - online.smoothing) * self.eta_smoothed;
                        self.eta_live = self.eta_smoothed.max(self.config.lifting.eta);
                    }
                }
            }
            // The threshold the managers apply this period: the configured η
            // unless the online recalibration moved it (`eta_live == η`
            // whenever that defense is off, keeping legacy runs bit-exact).
            let eta = self.eta_live;
            // Expulsion votes, attributed per manager. Departed managers are
            // skipped (a node that left cannot cast votes, mirroring the
            // frozen books above), and each (manager, target) pair counts at
            // most once toward the quorum even if the manager's rebuilt book
            // re-derives the vote after a rejoin.
            let mut votes = std::mem::take(&mut self.scratch_votes);
            votes.clear();
            let mut newly_voted = std::mem::take(&mut self.scratch_nodes);
            for (i, stack) in self.stacks.iter_mut().enumerate() {
                let manager = NodeId::new(i as u32);
                if !directory.is_active(manager) && !expelled[i] {
                    continue; // departed manager: no votes while offline
                }
                newly_voted.clear();
                stack
                    .reputation
                    .expulsion_votes_into(eta, min_periods, &mut newly_voted);
                votes.extend(newly_voted.drain(..).map(|target| (manager, target)));
            }
            self.scratch_nodes = newly_voted;
            let quorum = (self.config.lifting.expulsion_quorum
                * self.config.lifting.managers as f64)
                .ceil()
                .max(1.0) as usize;
            for (manager, target) in votes.drain(..) {
                let reached_quorum = {
                    let voters = &mut self.expulsion_voters[target.index()];
                    if voters.contains(&manager) {
                        continue; // a rejoined manager's re-vote does not stack
                    }
                    voters.push(manager);
                    voters.len() >= quorum
                };
                if reached_quorum {
                    self.expel(target);
                }
            }
            self.scratch_votes = votes;
            // Closed-loop adversaries read their own manager-score feedback —
            // the public score a freerider can probe for itself — and adapt.
            // The feedback hands them the *static* η: the paper's threshold
            // is public knowledge, the defender's recalibrated one is not.
            if self.config.adversary.closed_loop() {
                let snap = snap.as_ref().expect("snapshot taken for closed loop");
                let eta_static = self.config.lifting.eta;
                let mut departs: Vec<(NodeId, SimDuration)> = Vec::new();
                for o in &snap.outcomes {
                    let i = o.node.index();
                    if !o.is_freerider || self.expelled[i] || !self.directory.is_active(o.node) {
                        continue;
                    }
                    let adversary = &mut self.stacks[i].adversary;
                    if !adversary.wants_score_feedback() {
                        continue;
                    }
                    match adversary.on_score_feedback(self.periods_elapsed, o.score, eta_static) {
                        FeedbackAction::None => {}
                        FeedbackAction::Depart { offline } => departs.push((o.node, offline)),
                    }
                }
                if !departs.is_empty() {
                    // A whitewash burst is a disruption the detector must
                    // reconverge from, just like a partition wave.
                    self.register_wave(WaveKind::Whitewash);
                }
                for (node, offline) in departs {
                    self.handle_churn(node, false, CHURN_EPOCH_ANY, _now, ctx);
                    ctx.schedule_after(
                        offline,
                        Event::Churn {
                            node,
                            up: true,
                            epoch: CHURN_EPOCH_ANY,
                        },
                    );
                }
            }
            // Recovery traces: per-period detection precision/recall against
            // ground truth, the applied threshold, and per-wave reconvergence
            // (first period back within 5 points of the pre-wave baseline).
            if self.recovery.is_some() {
                let snap = snap.as_ref().expect("snapshot taken for recovery");
                let (mut tp, mut fp, mut freeriders) = (0u64, 0u64, 0u64);
                for o in &snap.outcomes {
                    if o.is_freerider {
                        freeriders += 1;
                    }
                    // Expulsions may have landed after the snapshot was read,
                    // so detection consults the live expulsion state.
                    let detected =
                        self.expelled[o.node.index()] || o.score.map(|s| s < eta).unwrap_or(false);
                    if detected {
                        if o.is_freerider {
                            tp += 1;
                        } else {
                            fp += 1;
                        }
                    }
                }
                let precision = if tp + fp == 0 {
                    1.0
                } else {
                    tp as f64 / (tp + fp) as f64
                };
                let recall = if freeriders == 0 {
                    1.0
                } else {
                    tp as f64 / freeriders as f64
                };
                let period = self.periods_elapsed;
                if let Some(recovery) = self.recovery.as_mut() {
                    recovery.period_precision.push(precision);
                    recovery.period_recall.push(recall);
                    recovery.eta_trace.push(eta);
                    for wave in &mut recovery.waves {
                        if wave.reconverged_after.is_none()
                            && period > wave.at_period
                            && precision >= wave.baseline_precision - 0.05
                            && recall >= wave.baseline_recall - 0.05
                        {
                            wave.reconverged_after = Some(period - wave.at_period);
                        }
                    }
                }
            }
        }
        ctx.schedule_after(self.config.gossip.gossip_period, Event::PeriodEnd);
    }

    fn handle_audit_tick(
        &mut self,
        auditor: NodeId,
        epoch: u32,
        now: SimTime,
        ctx: &mut Context<Event>,
    ) {
        if epoch != self.hot.epoch(auditor)
            || !self.config.audits_enabled
            || !self.directory.is_active(auditor)
        {
            return; // stale session, or the auditor left: the chain dies
        }
        // Pick the stream to audit (a draw that only exists in multi-channel
        // runs — single-stream runs must consume exactly their historical
        // RNG streams), then a random participant of that stream as target
        // (never the source, never self). The candidate list is staged in a
        // recycled buffer: audit ticks fire for every node every interval, so
        // this path must not allocate.
        let stream = if self.sources.len() > 1 {
            StreamId::new(self.mstream_rng.gen_range(0..self.sources.len() as u16))
        } else {
            StreamId::PRIMARY
        };
        let mut candidates = std::mem::take(&mut self.scratch_nodes);
        candidates.clear();
        candidates.extend(
            self.directory
                .participants(stream)
                .filter(|c| *c != auditor && *c != NodeId::new(0)),
        );
        if !candidates.is_empty() && self.lifting_on() {
            let target = candidates[self.rng.gen_range(0..candidates.len())];
            let outcome = self.audits.audit(
                &self.stacks,
                &mut self.network,
                &self.directory,
                auditor,
                target,
                stream,
                now,
            );
            match outcome {
                AuditOutcome::Expel => self.expel(target),
                AuditOutcome::Blame(blame) => self.route_blame(auditor, blame, now, ctx),
                AuditOutcome::Pass => {}
                AuditOutcome::Aborted => self.audits_aborted_by_departure += 1,
            }
            // Closed-loop colluders watch the audit plane: an accomplice that
            // just answered for its history is "burned" and the coalition
            // re-aims its cover-traffic bias elsewhere for a cooldown.
            if self.config.adversary.closed_loop() {
                let period = self.periods_elapsed;
                let freerider = &self.hot.freerider;
                for (i, stack) in self.stacks.iter_mut().enumerate() {
                    if freerider[i] && self.directory.is_active(NodeId::new(i as u32)) {
                        stack.adversary.on_audit_observed(target, period);
                    }
                }
            }
        }
        self.scratch_nodes = candidates;
        ctx.schedule_after(
            self.config.audit_interval,
            Event::AuditTick { auditor, epoch },
        );
    }
}

impl World for SystemWorld {
    type Event = Event;

    fn handle_event(&mut self, now: SimTime, event: Event, ctx: &mut Context<Event>) {
        match event {
            Event::SourceEmit { stream } => {
                let source = &mut self.sources[stream.index()];
                let chunk = source.emit();
                let next = source.next_emission();
                self.emitted[stream.index()].push(chunk);
                self.stacks[0]
                    .plane_mut(stream)
                    .gossip
                    .inject_source_chunk(chunk, now);
                ctx.schedule_at(next, Event::SourceEmit { stream });
            }
            Event::GossipTick { node, epoch } => {
                if epoch != self.hot.epoch(node) || !self.directory.is_active(node) {
                    return; // stale session, or expelled/departed: chain dies
                }
                let mut downcalls = std::mem::take(&mut self.scratch_downcalls);
                self.stacks[node.index()].on_gossip_tick(
                    node,
                    now,
                    &self.directory,
                    &mut downcalls,
                );
                self.process_downcalls(node, &mut downcalls, now, ctx);
                self.scratch_downcalls = downcalls;
                ctx.schedule_after(
                    self.config.gossip.gossip_period,
                    Event::GossipTick { node, epoch },
                );
            }
            Event::Deliver { from, to, message } => {
                if !self.directory.is_active(to) {
                    return; // receiver expelled or departed while in flight
                }
                let mut downcalls = std::mem::take(&mut self.scratch_downcalls);
                self.stacks[to.index()].on_message(
                    to,
                    from,
                    message,
                    now,
                    &self.directory,
                    &mut downcalls,
                );
                self.process_downcalls(to, &mut downcalls, now, ctx);
                self.scratch_downcalls = downcalls;
            }
            Event::Timer {
                node,
                stream,
                timer,
                epoch,
            } => {
                if epoch != self.hot.epoch(node)
                    || !self.directory.is_active(node)
                    || !self.lifting_on()
                {
                    // Stale timers must not fire into a rebuilt stack: the
                    // fresh verifier reissues tokens from zero, so a previous
                    // session's timer would collide with a live check.
                    return;
                }
                let mut downcalls = std::mem::take(&mut self.scratch_downcalls);
                self.stacks[node.index()].on_timer(
                    node,
                    stream,
                    timer,
                    now,
                    &self.directory,
                    &mut downcalls,
                );
                self.process_downcalls(node, &mut downcalls, now, ctx);
                self.scratch_downcalls = downcalls;
            }
            Event::PeriodEnd => self.handle_period_end(now, ctx),
            Event::AuditTick { auditor, epoch } => self.handle_audit_tick(auditor, epoch, now, ctx),
            Event::Churn { node, up, epoch } => self.handle_churn(node, up, epoch, now, ctx),
            Event::Resubscribe { node, from, to } => self.handle_resubscribe(node, from, to),
            Event::Fault { wave, begin } => self.handle_fault(wave, begin),
        }
    }
}

impl lifting_sim::ShardedWorld for SystemWorld {
    fn shard_count(&self) -> usize {
        self.shard_count()
    }

    /// Node-local events: handlers that mutate only the acting node's stack
    /// (plus its private RNG), with all cross-node effects expressed as
    /// downcalls. Everything else — source emissions, period ends, audits,
    /// churn, faults — is a barrier and runs solo through `handle_event`.
    fn local_node(&self, event: &Event) -> Option<NodeId> {
        match event {
            Event::GossipTick { node, .. } | Event::Timer { node, .. } => Some(*node),
            Event::Deliver { to, .. } => Some(*to),
            _ => None,
        }
    }

    fn handle_wave(&mut self, now: SimTime, wave: &mut Vec<Event>, ctx: &mut Context<Event>) {
        self.execute_wave(now, wave, ctx);
    }
}

impl std::fmt::Debug for SystemWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SystemWorld")
            .field("nodes", &self.stacks.len())
            .field("active", &self.directory.active_count())
            .field("expelled", &self.expelled_count())
            .field("streams", &self.sources.len())
            .field(
                "emitted_chunks",
                &self.emitted.iter().map(Vec::len).sum::<usize>(),
            )
            .finish()
    }
}
