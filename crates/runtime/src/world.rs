//! The simulated system: all nodes, the network, the reputation managers and
//! the glue between them.

use std::sync::Arc;

use lifting_analysis::entropy::calibrate_gamma;
use lifting_analysis::ProtocolParams;
use lifting_core::{
    AuditOracle, AuditVerdict, Auditor, Blame, CollusionConfig, VerificationMessage,
    VerifierAction,
};
use lifting_gossip::{Behavior, Chunk, ChunkId, GossipMessage, ProposePayload, RequestPayload,
    ServePayload, StreamHealth, StreamSource};
use lifting_membership::{Directory, PartnerSelector, SelectionPolicy};
use lifting_net::{DeliveryOutcome, Network, NodeCapability, TrafficCategory, Transport};
use lifting_reputation::{ManagerAssignment, ManagerState};
use lifting_sim::{derive_rng, Context, NodeId, SimDuration, SimTime, World};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::message::{Event, Message};
use crate::metrics::{NodeOutcome, RunOutcome, ScoreSnapshot};
use crate::node::SystemNode;
use crate::scenario::ScenarioConfig;

/// The whole simulated system.
pub struct SystemWorld {
    config: ScenarioConfig,
    directory: Directory,
    network: Network,
    nodes: Vec<SystemNode>,
    managers: Vec<ManagerState>,
    assignment: ManagerAssignment,
    auditor: Auditor,
    source: StreamSource,
    emitted_chunks: Vec<Chunk>,
    compensation_per_period: f64,
    expulsion_votes: Vec<usize>,
    expelled: Vec<bool>,
    rng: SmallRng,
}

impl SystemWorld {
    /// Builds the system described by `config`.
    pub fn new(config: ScenarioConfig) -> Self {
        config.validate();
        let n = config.nodes;
        let seed = config.seed;

        let directory = Directory::new(n);
        let mut network = Network::new(n, config.network.clone(), derive_rng(seed, 1));

        // Node capabilities: the source and a fraction of the honest nodes.
        let mut cap_rng = derive_rng(seed, 2);
        for i in 0..n {
            let default = match config.default_upload_bps {
                Some(bps) => NodeCapability::broadband(bps),
                None => NodeCapability::unconstrained(),
            };
            let cap = if i == 0 {
                // The source is always well provisioned.
                default
            } else if !config.is_freerider(i)
                && config.poor_node_fraction > 0.0
                && cap_rng.gen_bool(config.poor_node_fraction)
            {
                NodeCapability::poor(config.poor_upload_bps, config.poor_extra_loss)
            } else {
                default
            };
            network.set_capability(NodeId::new(i as u32), cap);
        }

        // Coalition: every freerider belongs to it when collusion is active.
        let coalition: Arc<Vec<NodeId>> = Arc::new(
            (0..n)
                .filter(|i| config.is_freerider(*i))
                .map(|i| NodeId::new(i as u32))
                .collect(),
        );

        let nodes: Vec<SystemNode> = (0..n)
            .map(|i| {
                let id = NodeId::new(i as u32);
                let is_freerider = config.is_freerider(i);
                let behavior = if is_freerider {
                    Behavior::Freerider(config.freeriders.expect("freeriders configured").degree)
                } else {
                    Behavior::Honest
                };
                let selector = if is_freerider && config.collusion.partner_bias > 0.0 {
                    PartnerSelector::new(SelectionPolicy::ColludingBias {
                        colluders: coalition.clone(),
                        pm: config.collusion.partner_bias,
                    })
                } else {
                    PartnerSelector::uniform()
                };
                let collusion = if is_freerider && config.collusion.is_active() {
                    CollusionConfig::coalition(
                        coalition.clone(),
                        config.collusion.cover_up,
                        config.collusion.man_in_the_middle,
                    )
                } else {
                    CollusionConfig::none()
                };
                SystemNode::new(
                    id,
                    config.gossip,
                    behavior,
                    config.lifting,
                    collusion,
                    selector,
                    derive_rng(seed, 1000 + i as u64),
                    is_freerider,
                )
            })
            .collect();

        let assignment = ManagerAssignment::new(n, config.lifting.managers, seed);
        let mut managers = vec![ManagerState::new(); n];
        // Register every scored node (the source is never scored or expelled).
        for i in 1..n {
            let id = NodeId::new(i as u32);
            for m in assignment.managers_of(id) {
                managers[m.index()].register(id);
            }
        }

        // Per-period compensation of wrongful blames (Equation 5, adapted to
        // the scenario's loss rate, fanout, request size and pdcc).
        let pr = config.network.loss.reception_probability();
        let chunks_per_period = config.stream_rate_bps as f64
            / (config.chunk_size as f64 * 8.0)
            * config.gossip.gossip_period.as_secs_f64();
        let requested = (chunks_per_period / config.gossip.fanout as f64).ceil().max(1.0) as usize;
        let params = ProtocolParams::new(config.gossip.fanout, requested, pr);
        let compensation_per_period = if config.lifting.compensate_wrongful_blames {
            params.expected_blame_direct_verification()
                + config.lifting.pdcc * params.expected_blame_cross_checking()
        } else {
            0.0
        };

        // Entropy threshold calibrated for this deployment's history size and
        // population (the paper's 8.95 corresponds to 600 entries / 10,000
        // nodes; smaller systems need a lower threshold).
        // The safety margin is generous (0.6 bits): honest histories in small
        // systems collide a lot, and a wrongful expulsion is far more costly
        // than a missed audit (freeriders are still caught by their much lower
        // entropy and by the score-based detection).
        let entries = config.lifting.history_periods * config.gossip.fanout;
        let gamma = calibrate_gamma(entries, n.max(2), 60, 0.6, seed ^ 0x5eed)
            .min(config.lifting.gamma)
            .max(0.1);
        let auditor = Auditor::with_threshold(config.lifting, config.gossip.fanout, gamma);

        let source = StreamSource::new(config.stream_rate_bps, config.chunk_size);

        SystemWorld {
            directory,
            network,
            nodes,
            managers,
            assignment,
            auditor,
            source,
            emitted_chunks: Vec::new(),
            compensation_per_period,
            expulsion_votes: vec![0; n],
            expelled: vec![false; n],
            rng: derive_rng(seed, 3),
            config,
        }
    }

    /// The scenario this world was built from.
    pub fn config(&self) -> &ScenarioConfig {
        &self.config
    }

    /// The per-period score compensation applied by the managers.
    pub fn compensation_per_period(&self) -> f64 {
        self.compensation_per_period
    }

    /// The chunks emitted by the source so far.
    pub fn emitted_chunks(&self) -> &[Chunk] {
        &self.emitted_chunks
    }

    /// The simulated network (traffic statistics, expulsions).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The nodes of the system.
    pub fn nodes(&self) -> &[SystemNode] {
        &self.nodes
    }

    /// Number of nodes expelled so far.
    pub fn expelled_count(&self) -> usize {
        self.expelled.iter().filter(|e| **e).count()
    }

    /// True if `node` has been expelled.
    pub fn is_expelled(&self, node: NodeId) -> bool {
        self.expelled[node.index()]
    }

    /// Schedules the initial events of a run.
    pub fn initial_events(&self) -> Vec<(SimTime, Event)> {
        let mut events = vec![(SimTime::ZERO, Event::SourceEmit)];
        let period = self.config.gossip.gossip_period;
        let n = self.config.nodes;
        for i in 0..n {
            // Stagger gossip phases uniformly over one period, as real
            // deployments do implicitly (nodes start at different times).
            let offset = SimDuration::from_micros(period.as_micros() * i as u64 / n as u64);
            events.push((
                SimTime::ZERO + offset,
                Event::GossipTick {
                    node: NodeId::new(i as u32),
                },
            ));
            if self.config.audits_enabled && i != 0 {
                let audit_offset = SimDuration::from_micros(
                    self.config.audit_interval.as_micros() * i as u64 / n as u64,
                );
                events.push((
                    SimTime::ZERO + self.config.audit_interval + audit_offset,
                    Event::AuditTick {
                        auditor: NodeId::new(i as u32),
                    },
                ));
            }
        }
        events.push((SimTime::ZERO + period, Event::PeriodEnd));
        events
    }

    fn lifting_on(&self) -> bool {
        self.config.lifting_enabled
    }

    fn send(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        message: Message,
        transport: Transport,
        ctx: &mut Context<Event>,
    ) {
        let outcome = self.network.send(
            now,
            from,
            to,
            message.wire_size(),
            transport,
            message.category(),
        );
        if let DeliveryOutcome::Deliver { at } = outcome {
            ctx.schedule_at(at, Event::Deliver { from, to, message });
        }
    }

    fn process_actions(
        &mut self,
        node: NodeId,
        actions: Vec<VerifierAction>,
        now: SimTime,
        ctx: &mut Context<Event>,
    ) {
        for action in actions {
            match action {
                VerifierAction::SendAck { to, ack } => {
                    self.send(
                        now,
                        node,
                        to,
                        Message::Verification(VerificationMessage::Ack(Box::new(ack))),
                        Transport::Udp,
                        ctx,
                    );
                }
                VerifierAction::SendConfirm { to, confirm } => {
                    self.send(
                        now,
                        node,
                        to,
                        Message::Verification(VerificationMessage::Confirm(Box::new(confirm))),
                        Transport::Udp,
                        ctx,
                    );
                }
                VerifierAction::SendConfirmResponse { to, response } => {
                    self.send(
                        now,
                        node,
                        to,
                        Message::Verification(VerificationMessage::ConfirmResponse(response)),
                        Transport::Udp,
                        ctx,
                    );
                }
                VerifierAction::Blame(blame) => {
                    self.route_blame(node, blame, now, ctx);
                }
                VerifierAction::StartTimer { timer, deadline } => {
                    ctx.schedule_at(deadline, Event::Timer { node, timer });
                }
            }
        }
    }

    fn route_blame(&mut self, from: NodeId, blame: Blame, now: SimTime, ctx: &mut Context<Event>) {
        if !self.lifting_on() || blame.target == NodeId::new(0) {
            return; // the source is not scored
        }
        let managers: Vec<NodeId> = self.assignment.managers_of(blame.target).to_vec();
        for manager in managers {
            self.send(
                now,
                from,
                manager,
                Message::Verification(VerificationMessage::Blame(blame)),
                Transport::Udp,
                ctx,
            );
        }
    }

    fn expel(&mut self, node: NodeId) {
        if node == NodeId::new(0) || self.expelled[node.index()] {
            return;
        }
        self.expelled[node.index()] = true;
        self.network.set_expelled(node, true);
        self.directory.deactivate(node);
    }

    fn handle_gossip_tick(&mut self, node: NodeId, now: SimTime, ctx: &mut Context<Event>) {
        let idx = node.index();
        if self.expelled[idx] {
            return; // expelled nodes stop participating
        }
        // Propose phase.
        let (round, period) = {
            let SystemNode {
                gossip,
                selector,
                rng,
                ..
            } = &mut self.nodes[idx];
            let fanout = gossip.desired_fanout(rng);
            let partners = selector.select(node, fanout, &self.directory, rng);
            let round = gossip.begin_propose_round(now, partners, rng);
            (round, gossip.period())
        };
        if self.lifting_on() {
            self.nodes[idx].verifier.begin_period(period);
        }
        if let Some(round) = round {
            if self.lifting_on() {
                let actions = self.nodes[idx].verifier.on_propose_round(&round, now);
                self.process_actions(node, actions, now, ctx);
            }
            let payload = ProposePayload {
                period: round.period,
                chunks: round.chunks.clone(),
            };
            for partner in &round.partners {
                self.send(
                    now,
                    node,
                    *partner,
                    Message::Gossip(GossipMessage::Propose(payload.clone())),
                    Transport::Udp,
                    ctx,
                );
            }
        }
        ctx.schedule_after(self.config.gossip.gossip_period, Event::GossipTick { node });
    }

    fn handle_deliver(
        &mut self,
        from: NodeId,
        to: NodeId,
        message: Message,
        now: SimTime,
        ctx: &mut Context<Event>,
    ) {
        if self.expelled[to.index()] {
            return;
        }
        match message {
            Message::Gossip(GossipMessage::Propose(p)) => {
                let wanted = {
                    let n = &mut self.nodes[to.index()];
                    if self.config.lifting_enabled {
                        n.verifier.on_propose_received(from, &p.chunks, now);
                    }
                    n.gossip.on_propose(from, &p.chunks, now)
                };
                if wanted.is_empty() {
                    return;
                }
                if self.lifting_on() {
                    let actions = self.nodes[to.index()].verifier.on_request_sent(from, &wanted, now);
                    self.process_actions(to, actions, now, ctx);
                }
                self.send(
                    now,
                    to,
                    from,
                    Message::Gossip(GossipMessage::Request(RequestPayload { chunks: wanted })),
                    Transport::Udp,
                    ctx,
                );
            }
            Message::Gossip(GossipMessage::Request(r)) => {
                let served = {
                    let SystemNode { gossip, rng, .. } = &mut self.nodes[to.index()];
                    gossip.on_request(from, &r.chunks, rng)
                };
                if served.is_empty() {
                    return;
                }
                let served_ids: Vec<ChunkId> = served.iter().map(|c| c.id).collect();
                if self.lifting_on() {
                    let actions =
                        self.nodes[to.index()].verifier.on_chunks_served(from, &served_ids, now);
                    self.process_actions(to, actions, now, ctx);
                }
                for chunk in served {
                    self.send(
                        now,
                        to,
                        from,
                        Message::Gossip(GossipMessage::Serve(ServePayload { chunk })),
                        Transport::Udp,
                        ctx,
                    );
                }
            }
            Message::Gossip(GossipMessage::Serve(s)) => {
                let n = &mut self.nodes[to.index()];
                n.gossip.on_serve(from, s.chunk, now);
                if self.config.lifting_enabled {
                    n.verifier.on_serve_received(from, s.chunk.id, now);
                }
            }
            Message::Verification(VerificationMessage::Ack(ack)) => {
                let actions = {
                    let SystemNode { verifier, rng, .. } = &mut self.nodes[to.index()];
                    verifier.on_ack(from, *ack, now, rng)
                };
                self.process_actions(to, actions, now, ctx);
            }
            Message::Verification(VerificationMessage::Confirm(confirm)) => {
                let actions = self.nodes[to.index()].verifier.on_confirm(from, *confirm, now);
                self.process_actions(to, actions, now, ctx);
            }
            Message::Verification(VerificationMessage::ConfirmResponse(resp)) => {
                self.nodes[to.index()].verifier.on_confirm_response(from, resp);
            }
            Message::Verification(VerificationMessage::Blame(blame)) => {
                self.managers[to.index()].apply_blame(blame.target, blame.value);
            }
            Message::Verification(VerificationMessage::HistoryRequest)
            | Message::Verification(VerificationMessage::HistoryResponse(_)) => {
                // Audits are executed synchronously in `handle_audit_tick`;
                // these messages only exist for traffic accounting.
            }
        }
    }

    fn handle_period_end(&mut self, _now: SimTime, ctx: &mut Context<Event>) {
        if std::env::var_os("LIFTING_AUDIT_DEBUG").is_some() {
            let snap = self.score_snapshot(_now);
            let min = snap
                .outcomes
                .iter()
                .filter_map(|o| o.score)
                .fold(f64::INFINITY, f64::min);
            let fr_mean = {
                let v = snap.freerider_scores();
                v.iter().sum::<f64>() / v.len().max(1) as f64
            };
            eprintln!(
                "period end at {_now}: min score {min:.2}, freerider mean {fr_mean:.2}, expelled {}",
                self.expelled_count()
            );
        }
        if self.lifting_on() {
            let eta = self.config.lifting.eta;
            let min_periods = self.config.lifting.min_periods_before_expulsion;
            for manager in &mut self.managers {
                manager.end_period(self.compensation_per_period);
            }
            let mut newly_voted: Vec<NodeId> = Vec::new();
            for manager in &mut self.managers {
                newly_voted.extend(manager.expulsion_votes(eta, min_periods));
            }
            let quorum = (self.config.lifting.expulsion_quorum
                * self.config.lifting.managers as f64)
                .ceil()
                .max(1.0) as usize;
            for target in newly_voted {
                self.expulsion_votes[target.index()] += 1;
                if self.expulsion_votes[target.index()] >= quorum {
                    self.expel(target);
                }
            }
        }
        ctx.schedule_after(self.config.gossip.gossip_period, Event::PeriodEnd);
    }

    fn handle_audit_tick(&mut self, auditor: NodeId, now: SimTime, ctx: &mut Context<Event>) {
        if !self.config.audits_enabled || self.expelled[auditor.index()] {
            return;
        }
        // Pick a random active target (never the source, never self).
        let candidates: Vec<NodeId> = self
            .directory
            .active_nodes()
            .filter(|c| *c != auditor && *c != NodeId::new(0))
            .collect();
        if !candidates.is_empty() && self.lifting_on() {
            let target = candidates[self.rng.gen_range(0..candidates.len())];
            self.perform_audit(auditor, target, now, ctx);
        }
        ctx.schedule_after(self.config.audit_interval, Event::AuditTick { auditor });
    }

    fn perform_audit(
        &mut self,
        auditor: NodeId,
        target: NodeId,
        now: SimTime,
        ctx: &mut Context<Event>,
    ) {
        // Account the TCP history transfer.
        let history = self.nodes[target.index()].verifier.history().clone();
        self.network.send(
            now,
            auditor,
            target,
            VerificationMessage::HistoryRequest.wire_size(),
            Transport::Tcp,
            TrafficCategory::Audit,
        );
        self.network.send(
            now,
            target,
            auditor,
            VerificationMessage::HistoryResponse(Box::new(history.clone())).wire_size(),
            Transport::Tcp,
            TrafficCategory::Audit,
        );

        // Poll the witnesses through the real node states, accounting traffic.
        let report = {
            let mut oracle = WorldAuditOracle {
                nodes: &self.nodes,
                network: &mut self.network,
                auditor,
                now,
            };
            self.auditor.audit(&history, &mut oracle)
        };

        if std::env::var_os("LIFTING_AUDIT_DEBUG").is_some() {
            eprintln!(
                "audit of {target}: fanout H={:.2}/thr {:.2} ({} entries), fanin H={:?}/thr {:?}, unconfirmed={}, phases {}/{}, verdict {:?}",
                report.fanout_entropy,
                report.applied_fanout_threshold,
                history.fanout_multiset().len(),
                report.fanin_entropy.map(|h| (h * 100.0).round() / 100.0),
                report.applied_fanin_threshold.map(|h| (h * 100.0).round() / 100.0),
                report.unconfirmed_pushes,
                report.observed_propose_phases,
                report.expected_propose_phases,
                report.verdict
            );
        }
        match report.verdict {
            AuditVerdict::Expel => self.expel(target),
            AuditVerdict::Blamed => {
                let blame = Blame::new(
                    target,
                    report.blame,
                    lifting_core::BlameReason::UnconfirmedHistoryEntry,
                );
                self.route_blame(auditor, blame, now, ctx);
            }
            AuditVerdict::Pass => {}
        }
    }

    /// Reads the current normalized score of every node (min vote over its
    /// managers) together with its expulsion status.
    pub fn score_snapshot(&self, at: SimTime) -> ScoreSnapshot {
        let outcomes = (1..self.config.nodes)
            .map(|i| {
                let id = NodeId::new(i as u32);
                let replies: Vec<f64> = self
                    .assignment
                    .managers_of(id)
                    .iter()
                    .filter_map(|m| self.managers[m.index()].normalized_score(id))
                    .collect();
                NodeOutcome {
                    node: id,
                    is_freerider: self.nodes[i].is_freerider,
                    score: lifting_reputation::aggregate_min(&replies),
                    expelled: self.expelled[i],
                }
            })
            .collect();
        ScoreSnapshot { at, outcomes }
    }

    /// Computes the stream-health curve (Figure 1) over the given lags, using
    /// only the chunks emitted at least `settle` before `now` so that chunks
    /// still in flight do not bias the result.
    pub fn stream_health(&self, now: SimTime, lags: &[SimDuration], settle: SimDuration) -> StreamHealth {
        let reference: Vec<Chunk> = self
            .emitted_chunks
            .iter()
            .copied()
            .filter(|c| c.emitted_at + settle <= now)
            .collect();
        let buffers: Vec<_> = self
            .nodes
            .iter()
            .skip(1)
            .map(|n| n.gossip.playout())
            .collect();
        StreamHealth::compute(
            &buffers,
            &reference,
            lags,
            self.config.gossip.clear_stream_threshold,
        )
    }

    /// Assembles the final outcome of a run.
    pub fn run_outcome(
        &self,
        now: SimTime,
        snapshots: Vec<ScoreSnapshot>,
        lags: &[SimDuration],
    ) -> RunOutcome {
        RunOutcome {
            finals: self.score_snapshot(now),
            snapshots,
            traffic: self.network.stats().report(),
            emitted_chunks: self.emitted_chunks.clone(),
            stream_health: self.stream_health(now, lags, SimDuration::from_secs(10)),
            expelled_count: self.expelled_count(),
            duration: now.saturating_since(SimTime::ZERO),
        }
    }
}

impl World for SystemWorld {
    type Event = Event;

    fn handle_event(&mut self, now: SimTime, event: Event, ctx: &mut Context<Event>) {
        match event {
            Event::SourceEmit => {
                let chunk = self.source.emit();
                self.emitted_chunks.push(chunk);
                self.nodes[0].gossip.inject_source_chunk(chunk, now);
                ctx.schedule_at(self.source.next_emission(), Event::SourceEmit);
            }
            Event::GossipTick { node } => self.handle_gossip_tick(node, now, ctx),
            Event::Deliver { from, to, message } => {
                self.handle_deliver(from, to, message, now, ctx)
            }
            Event::Timer { node, timer } => {
                if self.expelled[node.index()] || !self.lifting_on() {
                    return;
                }
                let actions = self.nodes[node.index()].verifier.on_timer(timer, now);
                self.process_actions(node, actions, now, ctx);
            }
            Event::PeriodEnd => self.handle_period_end(now, ctx),
            Event::AuditTick { auditor } => self.handle_audit_tick(auditor, now, ctx),
        }
    }
}

impl std::fmt::Debug for SystemWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SystemWorld")
            .field("nodes", &self.nodes.len())
            .field("expelled", &self.expelled_count())
            .field("emitted_chunks", &self.emitted_chunks.len())
            .finish()
    }
}

/// Audit oracle backed by the live node states; every poll is accounted as
/// audit traffic over TCP.
struct WorldAuditOracle<'a> {
    nodes: &'a [SystemNode],
    network: &'a mut Network,
    auditor: NodeId,
    now: SimTime,
}

impl AuditOracle for WorldAuditOracle<'_> {
    fn confirm_proposal(&mut self, witness: NodeId, subject: NodeId, chunks: &[ChunkId]) -> bool {
        self.network.send(
            self.now,
            self.auditor,
            witness,
            32 + 8 * chunks.len() as u64,
            Transport::Tcp,
            TrafficCategory::Audit,
        );
        self.network.send(
            self.now,
            witness,
            self.auditor,
            24,
            Transport::Tcp,
            TrafficCategory::Audit,
        );
        self.nodes[witness.index()]
            .verifier
            .answer_audit_poll(subject, chunks)
    }

    fn confirm_askers(&mut self, witness: NodeId, subject: NodeId) -> Vec<NodeId> {
        self.network.send(
            self.now,
            self.auditor,
            witness,
            32,
            Transport::Tcp,
            TrafficCategory::Audit,
        );
        let askers = self.nodes[witness.index()]
            .verifier
            .confirm_askers_about(subject);
        self.network.send(
            self.now,
            witness,
            self.auditor,
            24 + 6 * askers.len() as u64,
            Transport::Tcp,
            TrafficCategory::Audit,
        );
        askers
    }
}
