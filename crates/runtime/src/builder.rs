//! Builds a [`SystemWorld`] from a [`ScenarioConfig`]: wires the node
//! stacks, the adversaries, the network, the manager assignment and the
//! audit plane.
//!
//! The construction order (and in particular the order of RNG derivations)
//! is part of the determinism contract: existing scenarios must produce
//! bit-identical [`crate::RunOutcome`]s across refactors.

use std::sync::Arc;

use lifting_analysis::entropy::calibrate_gamma;
use lifting_analysis::ProtocolParams;
use lifting_core::Auditor;
use lifting_gossip::StreamSource;
use lifting_membership::{ChurnPlan, Directory, WorkloadAction, WorkloadPlan};
use lifting_net::provider::{capability_components, CapabilityClassAssigner};
use lifting_net::{FaultPlan, Network, NodeCapability};
use lifting_reputation::ManagerAssignment;
use lifting_sim::{
    derive_rng, NodeId, ParamMap, ParamValue, SeedSplitter, SimDuration, SimTime, StreamId,
};

use crate::components::{resolve_components, workload_components};
use crate::layers::{
    AdaptiveColluder, Adversary, AuditCoordinator, BlameSpammer, Colluder, Freerider,
    GradientFreerider, Honest, NodeStack, OnOffFreerider, SelectiveFreerider, Whitewasher,
};
use crate::message::{Event, CHURN_EPOCH_ANY};
use crate::scenario::{AdversaryScenario, ScenarioConfig};
use crate::world::{ChurnRuntime, SystemWorld};

/// Deterministic RNG stream indices of the churn engine. The plan stream is
/// consumed independently by [`build_world`] and [`initial_events`] (both
/// expand the same schedule to the identical plan); the schedule stream
/// drives the first-departure draws; the world stream feeds the live
/// session/offline draws as the run progresses.
const CHURN_PLAN_STREAM: u64 = 5;
const CHURN_SCHEDULE_STREAM: u64 = 6;
const CHURN_WORLD_STREAM: u64 = 7;
/// Fresh RNG stream for draws that only exist in multi-channel runs (the
/// audit plane's stream picks). Single-stream scenarios never read it, so
/// they consume exactly the streams they always did — the bit-compat
/// contract of the multistream refactor.
const MULTISTREAM_STREAM: u64 = 8;
/// Fresh RNG stream for the fault plan's membership draws. Consumed only
/// when the scenario schedules fault waves, so fault-free runs keep their
/// exact historical stream consumption.
const FAULT_PLAN_STREAM: u64 = 9;
/// Fresh RNG stream for the workload plan's draws. Like the churn plan
/// stream it is expanded independently by [`build_world`] and
/// [`initial_events`] (both see the identical plan), and it is only consumed
/// when the scenario declares a `workload` component — every pre-workload
/// scenario keeps its exact historical stream consumption.
const WORKLOAD_PLAN_STREAM: u64 = 10;

/// Expands the scenario's declared workload component into its pre-drawn
/// event plan (`None` when no workload component is declared). The expansion
/// is a pure function of `(seed, component spec, nodes, streams, duration)`,
/// so every call site sees the identical plan.
pub(crate) fn workload_plan(config: &ScenarioConfig) -> Option<WorkloadPlan> {
    let spec = config.components.workload.as_ref()?;
    let generator = workload_components()
        .build(
            &spec.name,
            &spec.params,
            &mut SeedSplitter::new(config.seed),
        )
        .unwrap_or_else(|e| panic!("workload component failed to resolve: {e}"));
    Some(generator.expand(
        config.nodes,
        config.stream_count(),
        config.duration,
        &mut derive_rng(config.seed, WORKLOAD_PLAN_STREAM),
    ))
}

/// The capability-class provider the builder assigns node attachments with:
/// the declared `capability` component, or the legacy poor-fraction fields
/// expressed as the equivalent registered component. Both paths consume the
/// capability RNG stream identically, so pre-registry scenarios stay
/// bit-identical.
fn capability_assigner(config: &ScenarioConfig) -> Box<dyn CapabilityClassAssigner> {
    let registry = capability_components();
    let mut seeds = SeedSplitter::new(config.seed);
    match &config.components.capability {
        Some(spec) => registry
            .build(&spec.name, &spec.params, &mut seeds)
            .unwrap_or_else(|e| panic!("capability component failed to resolve: {e}")),
        None => {
            let params = ParamMap::new()
                .with("fraction", ParamValue::Float(config.poor_node_fraction))
                .with(
                    "poor_upload_bps",
                    ParamValue::Int(config.poor_upload_bps as i64),
                )
                .with("poor_extra_loss", ParamValue::Float(config.poor_extra_loss));
            registry
                .build("poor-fraction", &params, &mut seeds)
                .expect("legacy capability fields are valid poor-fraction params")
        }
    }
}

/// Expands the scenario's fault schedule into its pre-drawn per-wave
/// membership (`None` when no faults are configured).
pub(crate) fn fault_plan(config: &ScenarioConfig) -> Option<FaultPlan> {
    config
        .faults
        .as_ref()
        .filter(|schedule| !schedule.waves.is_empty())
        .map(|schedule| {
            FaultPlan::generate(
                schedule,
                config.nodes,
                &mut derive_rng(config.seed, FAULT_PLAN_STREAM),
            )
        })
}

/// The multistream draw stream (consumed only when `stream_count > 1`).
pub(crate) fn multistream_rng(seed: u64) -> rand::rngs::SmallRng {
    derive_rng(seed, MULTISTREAM_STREAM)
}

/// Expands the scenario's churn schedule into its per-node plan, identically
/// wherever it is called from (the draw order is fixed by the plan stream).
pub(crate) fn churn_plan(config: &ScenarioConfig) -> Option<ChurnPlan> {
    config.churn.as_ref().map(|schedule| {
        ChurnPlan::generate(
            schedule,
            config.nodes,
            &mut derive_rng(config.seed, CHURN_PLAN_STREAM),
        )
    })
}

/// The adversary node `index` plays under `config`.
///
/// Node 0 (the source) and the honest population play [`Honest`]; the
/// freerider suffix plays whatever [`AdversaryScenario`] selects, defaulting
/// to the paper's independent-freerider / colluder wiring.
pub fn adversary_for(
    config: &ScenarioConfig,
    index: usize,
    coalition: &Arc<Vec<NodeId>>,
) -> Box<dyn Adversary> {
    if !config.is_freerider(index) {
        return Box::new(Honest);
    }
    let degree = config.freeriders.expect("freeriders configured").degree;
    match config.adversary {
        AdversaryScenario::Baseline => {
            if config.collusion.is_active() {
                Box::new(Colluder {
                    degree,
                    coalition: coalition.clone(),
                    partner_bias: config.collusion.partner_bias,
                    cover_up: config.collusion.cover_up,
                    man_in_the_middle: config.collusion.man_in_the_middle,
                })
            } else {
                Box::new(Freerider { degree })
            }
        }
        AdversaryScenario::OnOff {
            on_periods,
            off_periods,
        } => Box::new(OnOffFreerider {
            degree,
            on_periods,
            off_periods,
        }),
        AdversaryScenario::BlameSpam {
            blames_per_period,
            blame_value,
        } => Box::new(BlameSpammer {
            blames_per_period,
            blame_value,
        }),
        AdversaryScenario::SelectiveFreerider { silent_mask } => {
            Box::new(SelectiveFreerider { silent_mask })
        }
        AdversaryScenario::GradientFreerider { margin, step } => {
            Box::new(GradientFreerider::new(degree, margin, step))
        }
        AdversaryScenario::Whitewasher { margin, offline } => {
            Box::new(Whitewasher::new(degree, margin, offline))
        }
        AdversaryScenario::AdaptiveColluders {
            partner_bias,
            cooldown_periods,
        } => Box::new(AdaptiveColluder::new(
            degree,
            coalition.clone(),
            partner_bias,
            cooldown_periods,
        )),
    }
}

/// Builds the system described by `config`.
pub fn build_world(mut config: ScenarioConfig) -> SystemWorld {
    // Resolve the declarative component axes first: the transport, loss and
    // adversary components write back into their legacy fields, so the rest
    // of the construction (and `validate`) sees one source of truth.
    resolve_components(&mut config)
        .unwrap_or_else(|e| panic!("scenario component resolution failed: {e}"));
    let config = config;
    config.validate();
    let n = config.nodes;
    let seed = config.seed;

    // Membership: one directory for every channel. Single-stream scenarios
    // build the exact same subscription-less directory they always did;
    // multi-channel ones add per-stream subscription sets cut to each
    // stream's audience (the source always subscribes everywhere).
    let streams = config.stream_count();
    let mut directory = Directory::with_streams(n, streams);
    if streams > 1 {
        for stream in config.stream_ids() {
            let audience = config.stream_spec(stream).audience;
            for i in 1..n {
                if !audience.includes(i, n) {
                    directory.unsubscribe(NodeId::new(i as u32), stream);
                }
            }
        }
    }
    let mut network = Network::new(n, config.network.clone(), derive_rng(seed, 1));

    // Node capabilities: assigned per node by the scenario's capability-class
    // provider (the legacy poor-fraction loop is the default provider, draw
    // for draw).
    let assigner = capability_assigner(&config);
    let default_capability = match config.default_upload_bps {
        Some(bps) => NodeCapability::broadband(bps),
        None => NodeCapability::unconstrained(),
    };
    let mut cap_rng = derive_rng(seed, 2);
    for i in 0..n {
        let cap = assigner.assign(i, config.is_freerider(i), default_capability, &mut cap_rng);
        network.set_capability(NodeId::new(i as u32), cap);
    }

    // Coalition: every freerider belongs to it when collusion is active.
    let coalition: Arc<Vec<NodeId>> = Arc::new(
        (0..n)
            .filter(|i| config.is_freerider(*i))
            .map(|i| NodeId::new(i as u32))
            .collect(),
    );

    let stacks: Vec<NodeStack> = (0..n)
        .map(|i| {
            NodeStack::with_streams(
                NodeId::new(i as u32),
                config.gossip,
                config.lifting,
                config.lifting_enabled,
                adversary_for(&config, i, &coalition),
                derive_rng(seed, 1000 + i as u64),
                streams,
            )
        })
        .collect();

    let assignment = ManagerAssignment::new(n, config.lifting.managers, seed);
    let mut stacks = stacks;
    // Register every scored node (the source is never scored or expelled).
    for i in 1..n {
        let id = NodeId::new(i as u32);
        for m in assignment.managers_of(id) {
            stacks[m.index()].reputation.register(id);
        }
    }

    // Per-period compensation of wrongful blames (Equation 5, adapted to
    // each stream's loss rate, fanout, request size and pdcc). One value per
    // stream: a node's credit is the sum over the channels it subscribes to,
    // matching the blame exposure the channels create. Stream 0's value is
    // computed with the exact expression single-stream builds always used.
    let pr = config.network.loss.reception_probability();
    let compensation_per_stream: Vec<f64> = config
        .stream_ids()
        .map(|stream| {
            let spec = config.stream_spec(stream);
            let chunks_per_period = spec.rate_bps as f64 / (spec.chunk_size as f64 * 8.0)
                * config.gossip.gossip_period.as_secs_f64();
            let requested = (chunks_per_period / config.gossip.fanout as f64)
                .ceil()
                .max(1.0) as usize;
            let params = ProtocolParams::new(config.gossip.fanout, requested, pr);
            if config.lifting.compensate_wrongful_blames {
                params.expected_blame_direct_verification()
                    + config.lifting.pdcc * params.expected_blame_cross_checking()
            } else {
                0.0
            }
        })
        .collect();

    // Entropy threshold calibrated for this deployment's history size and
    // population (the paper's 8.95 corresponds to 600 entries / 10,000
    // nodes; smaller systems need a lower threshold).
    // The safety margin is generous (0.6 bits): honest histories in small
    // systems collide a lot, and a wrongful expulsion is far more costly
    // than a missed audit (freeriders are still caught by their much lower
    // entropy and by the score-based detection).
    let entries = config.lifting.history_periods * config.gossip.fanout;
    let gamma = calibrate_gamma(entries, n.max(2), 60, 0.6, seed ^ 0x5eed)
        .min(config.lifting.gamma)
        .max(0.1);
    let audits = AuditCoordinator::new(Auditor::with_threshold(
        config.lifting,
        config.gossip.fanout,
        gamma,
    ))
    .with_retry(config.audit_retry);

    let sources: Vec<StreamSource> = config
        .stream_ids()
        .map(|stream| {
            let spec = config.stream_spec(stream);
            StreamSource::new(stream, spec.rate_bps, spec.chunk_size)
                .starting_at(SimTime::ZERO + spec.start_offset)
        })
        .collect();

    // Membership dynamics: flash-crowd members are held offline from the
    // start (the directory is the single source of truth for activity, and
    // the network drops traffic of cut-off nodes); the per-node plan and the
    // live RNG stream move into the world, which executes the schedule.
    let mut initial_sessions = 0u64;
    let churn = churn_plan(&config).map(|plan| {
        for i in 1..n {
            if plan.starts_offline[i] {
                let node = NodeId::new(i as u32);
                directory.deactivate(node);
                network.set_cut_off(node, true);
            }
        }
        // Every non-source node that starts online opens a session; rejoins
        // add to the count as the run progresses.
        initial_sessions = directory.active_count() as u64 - 1;
        ChurnRuntime {
            churners: plan.churners,
            rng: derive_rng(seed, CHURN_WORLD_STREAM),
        }
    });

    // Workload plan: zap-style plans assign each viewer an initial home
    // channel — prune the other subscriptions so the directory starts where
    // the plan says (the events themselves are scheduled by
    // `initial_events`, which expands the identical plan).
    if let Some(plan) = workload_plan(&config) {
        if streams > 1 {
            for i in 1..n {
                if let Some(home) = plan.initial_stream[i] {
                    let node = NodeId::new(i as u32);
                    for stream in config.stream_ids() {
                        if stream != home {
                            directory.unsubscribe(node, stream);
                        }
                    }
                }
            }
        }
        // Workload-driven membership counts sessions like churn does: every
        // node online at the start opens one.
        if config.churn.is_none() {
            initial_sessions = directory.active_count() as u64 - 1;
        }
    }

    let hot = crate::hot::HotNodeState::from_stacks(&stacks);
    SystemWorld {
        directory,
        network,
        stacks,
        assignment,
        audits,
        sources,
        emitted: vec![Vec::new(); streams],
        compensation_per_stream,
        blame_counts: vec![0; n * streams],
        blame_values: vec![0.0; n * streams],
        expulsion_voters: vec![Vec::new(); n],
        expelled: vec![false; n],
        hot,
        wave_exec: None,
        churn,
        churn_departures: 0,
        churn_rejoins: 0,
        churn_sessions: initial_sessions,
        workload_switches: 0,
        audits_aborted_by_departure: 0,
        coalition,
        rng: derive_rng(seed, 3),
        mstream_rng: multistream_rng(seed),
        scratch_downcalls: Vec::new(),
        scratch_nodes: Vec::new(),
        scratch_votes: Vec::new(),
        fault_plan: fault_plan(&config),
        partition_holds: vec![0; n],
        periods_elapsed: 0,
        eta_live: config.lifting.eta,
        eta_smoothed: config.lifting.eta,
        recovery: config
            .resilience_active()
            .then(crate::metrics::RecoveryReport::default),
        config,
    }
}

/// The initial events of a run under `config`: the first source emission,
/// staggered gossip ticks, staggered audit ticks (when enabled), the first
/// period end and — when the scenario churns — the membership transitions of
/// the schedule (first departures, flash-crowd joins, the catastrophe wave).
pub fn initial_events(config: &ScenarioConfig) -> Vec<(SimTime, Event)> {
    // The primary stream's first emission is scheduled exactly where the
    // single-stream runtime always put it; extra channels follow at their
    // start offsets.
    let mut events = vec![(
        SimTime::ZERO,
        Event::SourceEmit {
            stream: StreamId::PRIMARY,
        },
    )];
    for stream in config.stream_ids().skip(1) {
        let spec = config.stream_spec(stream);
        events.push((
            SimTime::ZERO + spec.start_offset,
            Event::SourceEmit { stream },
        ));
    }
    let period = config.gossip.gossip_period;
    let n = config.nodes;
    for i in 0..n {
        // Stagger gossip phases uniformly over one period, as real
        // deployments do implicitly (nodes start at different times).
        let offset = SimDuration::from_micros(period.as_micros() * i as u64 / n as u64);
        events.push((
            SimTime::ZERO + offset,
            Event::GossipTick {
                node: NodeId::new(i as u32),
                epoch: 0,
            },
        ));
        if config.audits_enabled && i != 0 {
            let audit_offset =
                SimDuration::from_micros(config.audit_interval.as_micros() * i as u64 / n as u64);
            events.push((
                SimTime::ZERO + config.audit_interval + audit_offset,
                Event::AuditTick {
                    auditor: NodeId::new(i as u32),
                    epoch: 0,
                },
            ));
        }
    }
    events.push((SimTime::ZERO + period, Event::PeriodEnd));
    if let (Some(schedule), Some(plan)) = (&config.churn, churn_plan(config)) {
        let mut schedule_rng = derive_rng(config.seed, CHURN_SCHEDULE_STREAM);
        for i in 1..n {
            let node = NodeId::new(i as u32);
            if plan.starts_offline[i] {
                // Flash-crowd member: held offline by the builder, joins at
                // the wave instant (its steady churn, if any, starts there).
                let wave = schedule.flash_crowd.expect("plan implies a wave");
                events.push((
                    SimTime::ZERO + wave.at,
                    Event::Churn {
                        node,
                        up: true,
                        epoch: CHURN_EPOCH_ANY,
                    },
                ));
            } else if plan.churners[i] {
                let at = schedule.warmup + schedule.session_length(&mut schedule_rng);
                events.push((
                    SimTime::ZERO + at,
                    Event::Churn {
                        node,
                        up: false,
                        epoch: 0,
                    },
                ));
            }
            if plan.catastrophe_members[i] {
                let wave = schedule.catastrophe.expect("plan implies a wave");
                events.push((
                    SimTime::ZERO + wave.at,
                    Event::Churn {
                        node,
                        up: false,
                        epoch: CHURN_EPOCH_ANY,
                    },
                ));
            }
        }
    }
    // Workload plan: pre-drawn membership and channel-switch transitions.
    // Departures/rejoins ride the churn event path with the epoch wildcard
    // (the plan pre-draws every rejoin, so the world schedules no follow-ups);
    // switches ride their own barrier event.
    if let Some(plan) = workload_plan(config) {
        for event in &plan.events {
            let at = SimTime::ZERO + event.at;
            match event.action {
                WorkloadAction::Depart => events.push((
                    at,
                    Event::Churn {
                        node: event.node,
                        up: false,
                        epoch: CHURN_EPOCH_ANY,
                    },
                )),
                WorkloadAction::Rejoin => events.push((
                    at,
                    Event::Churn {
                        node: event.node,
                        up: true,
                        epoch: CHURN_EPOCH_ANY,
                    },
                )),
                WorkloadAction::Switch { from, to } => events.push((
                    at,
                    Event::Resubscribe {
                        node: event.node,
                        from,
                        to,
                    },
                )),
            }
        }
    }
    // Fault waves: each wave contributes its onset and its heal transition
    // (membership is pre-drawn by the plan, so both runs of a
    // parallel/sequential pair see the identical outage).
    if let Some(schedule) = &config.faults {
        for (i, wave) in schedule.waves.iter().enumerate() {
            events.push((
                SimTime::ZERO + wave.at,
                Event::Fault {
                    wave: i as u32,
                    begin: true,
                },
            ));
            events.push((
                SimTime::ZERO + wave.heals_at(),
                Event::Fault {
                    wave: i as u32,
                    begin: false,
                },
            ));
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{CollusionScenario, FreeriderScenario};
    use lifting_gossip::FreeriderConfig;

    #[test]
    fn baseline_wiring_matches_the_paper_adversaries() {
        let mut config = ScenarioConfig::small_test(10, 1).with_planetlab_freeriders(0.3);
        let coalition = Arc::new(vec![NodeId::new(7), NodeId::new(8), NodeId::new(9)]);
        assert_eq!(adversary_for(&config, 0, &coalition).name(), "honest");
        assert_eq!(adversary_for(&config, 7, &coalition).name(), "freerider");
        config.collusion = CollusionScenario {
            partner_bias: 0.3,
            cover_up: true,
            man_in_the_middle: false,
        };
        assert_eq!(adversary_for(&config, 7, &coalition).name(), "colluder");
        assert_eq!(adversary_for(&config, 1, &coalition).name(), "honest");
    }

    #[test]
    fn non_baseline_adversaries_replace_the_freerider_population() {
        let mut config = ScenarioConfig::small_test(10, 1);
        config.freeriders = Some(FreeriderScenario {
            count: 2,
            degree: FreeriderConfig::uniform(0.2),
        });
        config.adversary = AdversaryScenario::OnOff {
            on_periods: 2,
            off_periods: 2,
        };
        let coalition = Arc::new(Vec::new());
        assert_eq!(
            adversary_for(&config, 9, &coalition).name(),
            "on-off-freerider"
        );
        config.adversary = AdversaryScenario::BlameSpam {
            blames_per_period: 1,
            blame_value: 1.0,
        };
        assert_eq!(
            adversary_for(&config, 9, &coalition).name(),
            "blame-spammer"
        );
        assert_eq!(adversary_for(&config, 0, &coalition).name(), "honest");
    }

    #[test]
    fn initial_events_stagger_ticks_and_schedule_audits() {
        let mut config = ScenarioConfig::small_test(5, 3);
        config.audits_enabled = true;
        let events = initial_events(&config);
        let gossip_ticks = events
            .iter()
            .filter(|(_, e)| matches!(e, Event::GossipTick { .. }))
            .count();
        let audit_ticks = events
            .iter()
            .filter(|(_, e)| matches!(e, Event::AuditTick { .. }))
            .count();
        assert_eq!(gossip_ticks, 5);
        assert_eq!(audit_ticks, 4, "the source never audits");
        assert!(matches!(events[0], (t, Event::SourceEmit { .. }) if t == SimTime::ZERO));
    }
}
