//! Run outcomes and the metrics the experiments report.

use lifting_analysis::{detection_rate, false_positive_rate};
use lifting_gossip::{Chunk, StreamHealth};
use lifting_net::{TrafficCategory, TrafficReport};
use lifting_sim::{NodeId, SimDuration, SimTime, StreamId};
use serde::{Deserialize, Serialize};

/// The planes of the node protocol stack, for per-layer traffic breakdowns
/// (the paper's Table 3 splits overhead the same way).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StackLayer {
    /// Dissemination: stream data plus propose/request control traffic.
    Gossip,
    /// Direct verification and cross-checking (acks, confirms, responses).
    Verification,
    /// A-posteriori audits (history transfers and witness polls).
    Audit,
    /// Reputation management (blames to managers).
    Reputation,
    /// Peer sampling / membership maintenance.
    Membership,
}

impl StackLayer {
    /// All layers, in display order.
    pub const ALL: [StackLayer; 5] = [
        StackLayer::Gossip,
        StackLayer::Verification,
        StackLayer::Audit,
        StackLayer::Reputation,
        StackLayer::Membership,
    ];

    /// The traffic categories attributed to this layer.
    pub fn categories(self) -> &'static [TrafficCategory] {
        match self {
            StackLayer::Gossip => &[TrafficCategory::StreamData, TrafficCategory::GossipControl],
            StackLayer::Verification => &[TrafficCategory::Verification],
            StackLayer::Audit => &[TrafficCategory::Audit],
            StackLayer::Reputation => &[TrafficCategory::Blame],
            StackLayer::Membership => &[TrafficCategory::Membership],
        }
    }
}

/// Message/byte counters for one layer of the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerTraffic {
    /// The layer.
    pub layer: StackLayer,
    /// Messages sent (attempted; includes messages later lost).
    pub messages_sent: u64,
    /// Bytes sent (attempted).
    pub bytes_sent: u64,
    /// Messages actually delivered.
    pub messages_delivered: u64,
    /// Bytes actually delivered.
    pub bytes_delivered: u64,
}

/// Aggregates a per-category traffic report into per-layer counters
/// (gossip vs verification vs audit vs reputation traffic).
pub fn layer_breakdown(report: &TrafficReport) -> Vec<LayerTraffic> {
    StackLayer::ALL
        .iter()
        .map(|&layer| {
            let mut traffic = LayerTraffic {
                layer,
                messages_sent: 0,
                bytes_sent: 0,
                messages_delivered: 0,
                bytes_delivered: 0,
            };
            for (category, counters) in &report.per_category {
                if layer.categories().contains(category) {
                    traffic.messages_sent += counters.messages_sent;
                    traffic.bytes_sent += counters.bytes_sent;
                    traffic.messages_delivered += counters.messages_delivered;
                    traffic.bytes_delivered += counters.bytes_delivered;
                }
            }
            traffic
        })
        .collect()
}

/// Per-node outcome at the end of a run (or at a snapshot instant).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeOutcome {
    /// The node.
    pub node: NodeId,
    /// Ground truth: whether the node freerides.
    pub is_freerider: bool,
    /// The node's normalized score as read from its managers with a min vote
    /// (Equation 6), if any manager has observed it.
    pub score: Option<f64>,
    /// Whether the node has been expelled from the system.
    pub expelled: bool,
}

/// Scores of the whole population at one instant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScoreSnapshot {
    /// When the snapshot was taken.
    pub at: SimTime,
    /// Per-node outcomes (excluding the source, which is not scored).
    pub outcomes: Vec<NodeOutcome>,
}

impl ScoreSnapshot {
    /// Scores of the honest nodes (those with a score).
    pub fn honest_scores(&self) -> Vec<f64> {
        self.outcomes
            .iter()
            .filter(|o| !o.is_freerider)
            .filter_map(|o| o.score)
            .collect()
    }

    /// Scores of the freeriders (those with a score).
    pub fn freerider_scores(&self) -> Vec<f64> {
        self.outcomes
            .iter()
            .filter(|o| o.is_freerider)
            .filter_map(|o| o.score)
            .collect()
    }

    /// Fraction of freeriders whose score is below `eta` **or** that have been
    /// expelled (the probability of detection `α`).
    pub fn detection_rate(&self, eta: f64) -> f64 {
        let freeriders: Vec<&NodeOutcome> =
            self.outcomes.iter().filter(|o| o.is_freerider).collect();
        if freeriders.is_empty() {
            return 0.0;
        }
        let detected = freeriders
            .iter()
            .filter(|o| o.expelled || o.score.map(|s| s < eta).unwrap_or(false))
            .count();
        detected as f64 / freeriders.len() as f64
    }

    /// Fraction of honest nodes whose score is below `eta` or that have been
    /// expelled (the probability of false positives `β`).
    pub fn false_positive_rate(&self, eta: f64) -> f64 {
        let honest: Vec<&NodeOutcome> = self.outcomes.iter().filter(|o| !o.is_freerider).collect();
        if honest.is_empty() {
            return 0.0;
        }
        let flagged = honest
            .iter()
            .filter(|o| o.expelled || o.score.map(|s| s < eta).unwrap_or(false))
            .count();
        flagged as f64 / honest.len() as f64
    }
}

/// Membership dynamics observed during one run. All counters are zero for a
/// static population (`ScenarioConfig::churn = None`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ChurnStats {
    /// Online sessions begun: nodes that started online plus every rejoin.
    pub sessions: u64,
    /// Departures executed (steady churn plus catastrophe-wave crashes).
    pub departures: u64,
    /// Rejoins executed (steady churn plus the flash-crowd wave).
    pub rejoins: u64,
    /// Audits abandoned because a witness named in the audited history had
    /// departed before it could be polled (see
    /// [`crate::layers::AuditOutcome::Aborted`]).
    pub audits_aborted_by_departure: u64,
    /// Nodes offline (departed, not expelled) when the run ended.
    pub offline_at_end: usize,
}

/// What kind of disturbance a recovery wave marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WaveKind {
    /// A scheduled network partition began (a [`crate::FaultSchedule`] wave).
    /// Reconvergence is measured from the onset, so it spans the outage plus
    /// the healing transient.
    Partition,
    /// One or more whitewashers abandoned their sessions this period (the
    /// closed-loop churn attack).
    Whitewash,
}

/// Reconvergence readout for one disturbance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WaveRecovery {
    /// What happened.
    pub kind: WaveKind,
    /// The gossip period (1-based count of completed periods) during which
    /// the disturbance struck.
    pub at_period: u64,
    /// Detection precision just before the disturbance.
    pub baseline_precision: f64,
    /// Detection recall just before the disturbance.
    pub baseline_recall: f64,
    /// Completed periods until precision **and** recall were both back
    /// within 0.05 of their pre-disturbance baselines; `None` if the run
    /// ended first.
    pub reconverged_after: Option<u64>,
}

/// Per-period detection-quality traces plus per-disturbance reconvergence
/// times — the resilience plane's headline readout. Only assembled when the
/// scenario exercises that plane
/// ([`crate::ScenarioConfig::resilience_active`]).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Detection precision (TP / (TP + FP), 1.0 when nothing is flagged) at
    /// the end of each gossip period, against the effective threshold.
    pub period_precision: Vec<f64>,
    /// Detection recall (TP / freeriders) at the end of each gossip period.
    pub period_recall: Vec<f64>,
    /// The effective detection threshold per period: the static `η`, or the
    /// online-recalibrated value when that defence is enabled.
    pub eta_trace: Vec<f64>,
    /// One entry per disturbance (fault waves, whitewash departures), in
    /// onset order.
    pub waves: Vec<WaveRecovery>,
}

/// Per-stream readout of one run: each channel's dissemination quality over
/// its own audience, plus the blame volume its verification plane produced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamOutcome {
    /// The stream.
    pub stream: StreamId,
    /// Subscribers of this stream (excluding the source).
    pub subscribers: usize,
    /// Chunks the stream's source emitted during the run.
    pub emitted_chunks: usize,
    /// Stream health over the lag grid, computed over this stream's
    /// subscribers against its own reference set.
    pub stream_health: StreamHealth,
    /// Blames emitted by this stream's verification plane (cross-stream
    /// provenance; every blame lands in the shared per-node score).
    pub blames: u64,
    /// Total blame **value** this stream's verification booked (counts weigh
    /// a heavy missing-ack blame the same as a sliver of wrongful noise;
    /// values are what the scores actually sum).
    pub blame_value: f64,
    /// The part of `blame_value` booked against the misbehaving population —
    /// the per-channel footprint of the attack, separated from the wrongful
    /// noise honest nodes accrue.
    pub freerider_blame_value: f64,
}

/// Everything measured during one run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunOutcome {
    /// Final per-node outcomes.
    pub finals: ScoreSnapshot,
    /// Intermediate snapshots, if requested.
    pub snapshots: Vec<ScoreSnapshot>,
    /// Traffic accounting (Table 5's overhead ratio comes from here).
    pub traffic: TrafficReport,
    /// Per-layer message/byte counters: the same traffic attributed to the
    /// protocol-stack planes (Table 3's overhead breakdown).
    pub layer_traffic: Vec<LayerTraffic>,
    /// Every chunk the primary stream's source emitted (reference set for
    /// the headline stream-health curve).
    pub emitted_chunks: Vec<Chunk>,
    /// Primary-stream health over a grid of lags (Figure 1), computed at the
    /// end of the run over the chunks emitted during the measurement window.
    pub stream_health: StreamHealth,
    /// One readout per broadcast channel (a single entry mirroring
    /// `stream_health` in single-channel runs).
    pub per_stream: Vec<StreamOutcome>,
    /// Number of nodes expelled during the run.
    pub expelled_count: usize,
    /// Membership dynamics (sessions, rejoins, aborted audits).
    pub churn: ChurnStats,
    /// Hardened-confirm retry counters summed over every node and stream
    /// plane (all zero when `confirm_retries = 0`).
    pub confirm_retry: lifting_core::ConfirmRetryStats,
    /// Hardened audit-RPC counters (all zero without an
    /// [`crate::AuditRetryPolicy`]).
    pub audit_rpc: crate::layers::AuditRpcStats,
    /// Per-period recovery traces and reconvergence times; `None` unless the
    /// scenario exercises the resilience plane.
    pub recovery: Option<RecoveryReport>,
    /// Estimated heap bytes of protocol state per node at the end of the run
    /// (deterministic capacity walk — identical across worker and shard
    /// counts; see `SystemWorld::estimated_memory_bytes`).
    pub memory_per_node_bytes: f64,
    /// Simulated duration of the run.
    pub duration: SimDuration,
}

impl RunOutcome {
    /// Detection probability at the configured threshold, using the paper's
    /// definition (score below `η` or already expelled).
    pub fn detection_rate(&self, eta: f64) -> f64 {
        self.finals.detection_rate(eta)
    }

    /// False-positive probability at the configured threshold.
    pub fn false_positive_rate(&self, eta: f64) -> f64 {
        self.finals.false_positive_rate(eta)
    }

    /// Detection rate computed from raw scores only (ignoring expulsions),
    /// matching [`lifting_analysis::detection_rate`].
    pub fn score_only_detection_rate(&self, eta: f64) -> f64 {
        detection_rate(&self.finals.freerider_scores(), eta)
    }

    /// False-positive rate computed from raw scores only.
    pub fn score_only_false_positive_rate(&self, eta: f64) -> f64 {
        false_positive_rate(&self.finals.honest_scores(), eta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(id: u32, freerider: bool, score: Option<f64>, expelled: bool) -> NodeOutcome {
        NodeOutcome {
            node: NodeId::new(id),
            is_freerider: freerider,
            score,
            expelled,
        }
    }

    #[test]
    fn detection_and_false_positives_follow_the_definitions() {
        let snap = ScoreSnapshot {
            at: SimTime::from_secs(30),
            outcomes: vec![
                outcome(1, false, Some(-1.0), false),
                outcome(2, false, Some(-20.0), false), // honest but flagged
                outcome(3, false, None, false),
                outcome(4, true, Some(-30.0), false), // detected by score
                outcome(5, true, Some(-2.0), true),   // detected by expulsion
                outcome(6, true, Some(-3.0), false),  // missed
            ],
        };
        assert!((snap.detection_rate(-9.75) - 2.0 / 3.0).abs() < 1e-12);
        assert!((snap.false_positive_rate(-9.75) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(snap.honest_scores().len(), 2);
        assert_eq!(snap.freerider_scores().len(), 3);
    }

    #[test]
    fn empty_population_rates_are_zero() {
        let snap = ScoreSnapshot {
            at: SimTime::ZERO,
            outcomes: vec![],
        };
        assert_eq!(snap.detection_rate(-9.75), 0.0);
        assert_eq!(snap.false_positive_rate(-9.75), 0.0);
    }

    #[test]
    fn layer_breakdown_attributes_every_category_to_exactly_one_layer() {
        use lifting_net::{TrafficCategory, TrafficStats};
        let mut stats = TrafficStats::new();
        stats.record_sent(TrafficCategory::StreamData, 900);
        stats.record_sent(TrafficCategory::GossipControl, 100);
        stats.record_sent(TrafficCategory::Verification, 50);
        stats.record_sent(TrafficCategory::Blame, 30);
        stats.record_sent(TrafficCategory::Audit, 20);
        stats.record_delivered(TrafficCategory::StreamData, 900);
        let report = stats.report();
        let layers = layer_breakdown(&report);
        assert_eq!(layers.len(), StackLayer::ALL.len());
        let by_layer = |layer: StackLayer| layers.iter().find(|l| l.layer == layer).unwrap();
        // Gossip aggregates stream data + control; the LiFTinG planes split.
        assert_eq!(by_layer(StackLayer::Gossip).bytes_sent, 1_000);
        assert_eq!(by_layer(StackLayer::Gossip).messages_sent, 2);
        assert_eq!(by_layer(StackLayer::Gossip).bytes_delivered, 900);
        assert_eq!(by_layer(StackLayer::Verification).bytes_sent, 50);
        assert_eq!(by_layer(StackLayer::Reputation).bytes_sent, 30);
        assert_eq!(by_layer(StackLayer::Audit).bytes_sent, 20);
        assert_eq!(by_layer(StackLayer::Membership).bytes_sent, 0);
        // Nothing is double-counted: the per-layer sum equals the total.
        let total: u64 = layers.iter().map(|l| l.bytes_sent).sum();
        assert_eq!(total, report.total_bytes_sent);
        // Every category belongs to exactly one layer.
        for category in TrafficCategory::ALL {
            let owners = StackLayer::ALL
                .iter()
                .filter(|l| l.categories().contains(&category))
                .count();
            assert_eq!(owners, 1, "{category:?} must map to exactly one layer");
        }
    }
}
