//! Experiment scenarios.

use lifting_core::LiftingConfig;
use lifting_gossip::{FreeriderConfig, GossipConfig};
use lifting_net::NetworkConfig;
use lifting_sim::{ParamMap, ParamValue, SimDuration, StreamId};
use serde::{Deserialize, Serialize};

pub use lifting_membership::{ChurnSchedule, ChurnWave};
pub use lifting_net::{FaultSchedule, FaultWave};

/// One named component with its parameter overrides — an entry of the
/// declarative [`ScenarioConfig::components`] section. The name is looked up
/// in the axis's [`lifting_sim::ComponentRegistry`] and the parameters are
/// validated against the component's schema at resolution time (see
/// [`crate::components::resolve_components`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComponentSpec {
    /// Registered component name (e.g. `"tiered"`, `"diurnal"`).
    pub name: String,
    /// Parameter overrides; unset parameters take the schema's defaults.
    pub params: ParamMap,
}

impl ComponentSpec {
    /// A spec with no parameter overrides.
    pub fn new(name: impl Into<String>) -> Self {
        ComponentSpec {
            name: name.into(),
            params: ParamMap::new(),
        }
    }

    /// Adds a parameter override (builder style).
    pub fn with(mut self, key: &str, value: ParamValue) -> Self {
        self.params.set(key, value);
        self
    }
}

/// The declarative component composition of a scenario: which registered
/// component provides each axis of the system. Every field is optional — an
/// unset axis falls back to the legacy configuration fields, which keeps
/// every pre-registry scenario bit-identical while letting new scenarios
/// compose `transport + loss + capability + workload + adversary + exporter`
/// by name.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ComponentsSpec {
    /// Transport policy (see [`lifting_net::provider::transport_components`]).
    pub transport: Option<ComponentSpec>,
    /// Loss model (see [`lifting_net::provider::loss_components`]).
    pub loss: Option<ComponentSpec>,
    /// Per-node capability class assignment (see
    /// [`lifting_net::provider::capability_components`]).
    pub capability: Option<ComponentSpec>,
    /// Trace-driven workload generator (see
    /// [`crate::components::workload_components`]). Mutually exclusive with
    /// [`ScenarioConfig::churn`] — both drive membership transitions.
    pub workload: Option<ComponentSpec>,
    /// Adversary family (see [`crate::components::adversary_components`]);
    /// resolves into [`ScenarioConfig::adversary`].
    pub adversary: Option<ComponentSpec>,
    /// Outcome exporter the binaries render results through (see
    /// [`crate::components::exporter_components`]).
    pub exporter: Option<ComponentSpec>,
}

impl ComponentsSpec {
    /// True if no axis is declared (the scenario is fully legacy-configured).
    pub fn is_empty(&self) -> bool {
        self.transport.is_none()
            && self.loss.is_none()
            && self.capability.is_none()
            && self.workload.is_none()
            && self.adversary.is_none()
            && self.exporter.is_none()
    }
}

/// Bounded retry for the audit RPCs (history polls and witness
/// cross-checks) — the resilience hardening of the a-posteriori plane.
///
/// `None` in [`ScenarioConfig::audit_retry`] keeps the paper's behaviour:
/// audits assume the auditor can always reach its target and witnesses.
/// With a policy set, every audit RPC first checks reachability (departed,
/// expelled or *partitioned* peers cannot answer), re-issues the request up
/// to `attempts` times with a deterministic `backoff` between tries, and —
/// when the retries exhaust — degrades the audit to
/// [`crate::layers::AuditOutcome::Aborted`] instead of manufacturing a
/// verdict from missing evidence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AuditRetryPolicy {
    /// Maximum number of re-sends per unanswered RPC (≥ 1).
    pub attempts: u32,
    /// Deterministic delay between consecutive attempts.
    pub backoff: SimDuration,
}

impl AuditRetryPolicy {
    /// A conservative default: two retries, half a second apart.
    pub fn default_policy() -> Self {
        AuditRetryPolicy {
            attempts: 2,
            backoff: SimDuration::from_millis(500),
        }
    }

    /// Validates the policy.
    ///
    /// # Panics
    ///
    /// Panics if `attempts` is zero or the backoff is zero.
    pub fn validate(&self) {
        assert!(self.attempts >= 1, "audit retry needs at least one attempt");
        assert!(
            !self.backoff.is_zero(),
            "audit retry backoff must be positive"
        );
    }
}

/// Online recalibration of the detection threshold `η` — the closed-loop
/// *defence* of the resilience plane.
///
/// The paper calibrates `η = −9.75` offline, for a false-positive budget
/// `β < 1 %`, against a known honest score distribution. A closed-loop
/// adversary (e.g. [`AdversaryScenario::GradientFreerider`]) exploits
/// exactly that: it parks its score just above the static threshold. With
/// recalibration enabled the managers re-derive the threshold each period
/// from the *live* score stream — no ground truth splits honest from
/// freerider scores, so the rule must be robust to contamination: drop the
/// worst `trim` fraction (where adversaries congregate), estimate the
/// honest bulk's location and spread by the median and MAD of the
/// remainder, and place the threshold `nmads` (normal-consistent) MADs
/// below that median. An exponential moving average smooths
/// period-to-period jitter, and the effective threshold is
/// `max(η_static, η_online)` — the defence only ever *tightens* the static
/// calibration.
///
/// An outlier rule, not a quantile: a quantile of the kept sample sits at
/// the trim boundary by construction and expels a fixed fraction of the
/// population every period regardless of how the scores actually cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnlineRecalibration {
    /// Fraction of the worst scores discarded before estimating the bulk.
    pub trim: f64,
    /// How many (normal-consistent) MADs below the bulk median the
    /// recalibrated threshold sits. Smaller is more aggressive.
    pub nmads: f64,
    /// EMA smoothing factor in `(0, 1]` (1 = no smoothing).
    pub smoothing: f64,
}

impl OnlineRecalibration {
    /// Defaults matched to the PlanetLab deployment: 30 % trim (covers the
    /// paper's ≤ 25 % adversary fractions), a 4-MAD outlier cut
    /// (conservative enough that an honest score needs a large excursion
    /// below the bulk to be flagged), moderate smoothing.
    pub fn planetlab() -> Self {
        OnlineRecalibration {
            trim: 0.3,
            nmads: 4.0,
            smoothing: 0.3,
        }
    }

    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics if a fraction is out of range or `nmads` is not positive.
    pub fn validate(&self) {
        assert!((0.0..=0.5).contains(&self.trim), "trim out of range");
        assert!(self.nmads > 0.0, "nmads must be positive");
        assert!(
            self.smoothing > 0.0 && self.smoothing <= 1.0,
            "smoothing must be in (0, 1]"
        );
    }
}

/// Which nodes subscribe to a stream.
///
/// Audiences are expressed as population fractions so one scenario definition
/// scales from quick to paper populations. The broadcast source (node 0)
/// always subscribes to every stream — it feeds them all.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StreamAudience {
    /// Every node subscribes.
    All,
    /// Nodes whose index falls in `[floor(from·n), floor(to·n))` subscribe
    /// (plus the source).
    Slice {
        /// Lower population fraction (inclusive).
        from: f64,
        /// Upper population fraction (exclusive).
        to: f64,
    },
}

impl StreamAudience {
    /// True if node `node_index` of an `nodes`-node population subscribes.
    pub fn includes(&self, node_index: usize, nodes: usize) -> bool {
        if node_index == 0 {
            return true; // the source feeds every stream
        }
        match self {
            StreamAudience::All => true,
            StreamAudience::Slice { from, to } => {
                let lo = (from * nodes as f64).floor() as usize;
                let hi = (to * nodes as f64).floor() as usize;
                (lo..hi).contains(&node_index)
            }
        }
    }

    /// Number of subscribers (excluding the always-subscribed source).
    pub fn size(&self, nodes: usize) -> usize {
        (1..nodes).filter(|i| self.includes(*i, nodes)).count()
    }
}

/// One broadcast channel: its rate, chunking, start offset and audience.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamSpec {
    /// Stream rate in bits per second.
    pub rate_bps: u64,
    /// Chunk payload size in bytes.
    pub chunk_size: u32,
    /// Delay before the source starts emitting this stream (channels need
    /// not come on air together).
    pub start_offset: SimDuration,
    /// Which nodes subscribe.
    pub audience: StreamAudience,
}

impl StreamSpec {
    /// A full-audience stream starting at time zero.
    pub fn new(rate_bps: u64, chunk_size: u32) -> Self {
        StreamSpec {
            rate_bps,
            chunk_size,
            start_offset: SimDuration::ZERO,
            audience: StreamAudience::All,
        }
    }

    /// Restricts the audience (builder style).
    pub fn with_audience(mut self, audience: StreamAudience) -> Self {
        self.audience = audience;
        self
    }

    /// Delays the stream's start (builder style).
    pub fn starting_after(mut self, offset: SimDuration) -> Self {
        self.start_offset = offset;
        self
    }
}

/// Freerider population and behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FreeriderScenario {
    /// Number of freeriders (the last `count` node identifiers, never the
    /// source).
    pub count: usize,
    /// Dissemination-level degree of freeriding.
    pub degree: FreeriderConfig,
}

/// Collusion behaviour of the freeriders.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CollusionScenario {
    /// Probability with which a colluding freerider picks a coalition member
    /// as gossip partner (`pm` in Section 6.3.2); 0 disables biased selection.
    pub partner_bias: f64,
    /// Colluders vouch for each other during confirmations and never blame
    /// each other.
    pub cover_up: bool,
    /// Colluders mount the man-in-the-middle attack of Figure 8b.
    pub man_in_the_middle: bool,
}

impl CollusionScenario {
    /// No collusion at all: freeriders act independently.
    pub fn none() -> Self {
        CollusionScenario {
            partner_bias: 0.0,
            cover_up: false,
            man_in_the_middle: false,
        }
    }

    /// True if any collusion mechanism is enabled.
    pub fn is_active(&self) -> bool {
        self.partner_bias > 0.0 || self.cover_up || self.man_in_the_middle
    }
}

/// Which [`crate::layers::Adversary`] the misbehaving population plays.
///
/// `Baseline` reproduces the paper's wiring (freeriders of the configured
/// degree, colluding per [`CollusionScenario`]); the other variants plug in
/// adversaries the original `Behavior`/`CollusionConfig` combination could
/// not express.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AdversaryScenario {
    /// The paper's adversary: every node of the freerider population
    /// freerides with the configured degree; collusion per the scenario.
    Baseline,
    /// On-off freeriders: the population freerides for `on_periods` gossip
    /// periods, then behaves honestly for `off_periods`, diluting the blame
    /// it accumulates (exploits the `1/r` normalization of Equation 6).
    OnOff {
        /// Length of each freeriding window, in gossip periods (≥ 1).
        on_periods: u64,
        /// Length of each honest window, in gossip periods (≥ 1).
        off_periods: u64,
    },
    /// Blame spammers: the population disseminates honestly but floods the
    /// reputation plane with fabricated blames against random peers.
    BlameSpam {
        /// Fabricated blames emitted per gossip tick by each spammer.
        blames_per_period: u32,
        /// Value of each fabricated blame.
        blame_value: f64,
    },
    /// Selective freeriders for multi-channel runs: the population behaves
    /// honestly on some channels and goes **fully silent** (proposes to
    /// nobody, serves nothing) on the channels named in `silent_mask`. The
    /// attack probes whether reputation is per-channel: with cross-stream
    /// blame aggregation the silence on one channel costs the node its access
    /// to *all* of them.
    SelectiveFreerider {
        /// Bitmask of silenced streams (bit `s` = stream `s`).
        silent_mask: u64,
    },
    /// Gradient freeriders — **closed loop**: each period the population
    /// reads its own manager scores and throttles its freeriding intensity
    /// to ride just above the public threshold `η` (back off by `step` when
    /// `score < η + margin`, creep back up otherwise). Evades any static
    /// threshold; countered by [`OnlineRecalibration`].
    GradientFreerider {
        /// Safety margin above `η` the adversary tries to keep.
        margin: f64,
        /// Intensity decrement applied when the score nears `η`.
        step: f64,
    },
    /// Whitewashers — **closed loop**: the population freerides greedily,
    /// watches its own score trajectory, and departs once blame has dragged
    /// the score `margin` below its observed peak (a drawdown the node
    /// measures locally, without knowing the managers' threshold), rejoining
    /// after `offline` in the hope of a laundered reputation. Countered by
    /// the frozen-score carryover across sessions.
    Whitewasher {
        /// Departure trigger: leave once the score sits `margin` below its
        /// observed peak.
        margin: f64,
        /// Offline time before each rejoin.
        offline: SimDuration,
    },
    /// Adaptive colluders — **closed loop**: a cover-up coalition that
    /// watches which accomplices get audited and re-aims its biased partner
    /// selection away from them for `cooldown_periods`, dodging the entropy
    /// check's paper trail. Carries its own bias parameter so it does not
    /// overload [`CollusionScenario`] (which configures only the baseline).
    AdaptiveColluders {
        /// Probability of picking an (unscrutinized) coalition member as
        /// gossip partner.
        partner_bias: f64,
        /// Periods an audited accomplice stays off the bias list.
        cooldown_periods: u64,
    },
}

impl AdversaryScenario {
    /// Validates the adversary parameters.
    ///
    /// # Panics
    ///
    /// Panics if a window length is zero or a blame value is negative.
    pub fn validate(&self) {
        match self {
            AdversaryScenario::Baseline => {}
            AdversaryScenario::OnOff {
                on_periods,
                off_periods,
            } => {
                assert!(
                    *on_periods >= 1 && *off_periods >= 1,
                    "on-off windows must be at least one period"
                );
            }
            AdversaryScenario::BlameSpam { blame_value, .. } => {
                assert!(*blame_value >= 0.0, "blame value must be non-negative");
            }
            AdversaryScenario::SelectiveFreerider { silent_mask } => {
                assert!(
                    *silent_mask != 0,
                    "a selective freerider must silence at least one stream"
                );
            }
            AdversaryScenario::GradientFreerider { margin, step } => {
                assert!(*margin >= 0.0, "gradient margin must be non-negative");
                assert!(
                    *step > 0.0 && *step <= 1.0,
                    "gradient step must be in (0, 1]"
                );
            }
            AdversaryScenario::Whitewasher { margin, offline } => {
                assert!(*margin >= 0.0, "whitewash margin must be non-negative");
                assert!(
                    !offline.is_zero(),
                    "whitewash offline time must be positive"
                );
            }
            AdversaryScenario::AdaptiveColluders {
                partner_bias,
                cooldown_periods,
            } => {
                assert!(
                    (0.0..=1.0).contains(partner_bias),
                    "adaptive partner bias out of range"
                );
                assert!(
                    *cooldown_periods >= 1,
                    "adaptive cooldown must cover at least one period"
                );
            }
        }
    }

    /// True if this adversary reacts to runtime feedback (scores, audit
    /// observations) — i.e. the runtime must run the closed-loop upcalls.
    pub fn closed_loop(&self) -> bool {
        matches!(
            self,
            AdversaryScenario::GradientFreerider { .. }
                | AdversaryScenario::Whitewasher { .. }
                | AdversaryScenario::AdaptiveColluders { .. }
        )
    }
}

/// Complete description of one experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Number of nodes (node 0 is the broadcast source and is always honest).
    pub nodes: usize,
    /// Gossip protocol parameters.
    pub gossip: GossipConfig,
    /// LiFTinG parameters.
    pub lifting: LiftingConfig,
    /// Whether the LiFTinG verification layer runs at all (Figure 1 compares
    /// the system with and without it).
    pub lifting_enabled: bool,
    /// Whether a-posteriori audits run periodically.
    pub audits_enabled: bool,
    /// Interval between audits initiated by each node (when enabled).
    pub audit_interval: SimDuration,
    /// Network conditions.
    pub network: NetworkConfig,
    /// Rate of the primary stream in bits per second (674 kbps in the
    /// headline experiment).
    pub stream_rate_bps: u64,
    /// Chunk payload size of the primary stream in bytes.
    pub chunk_size: u32,
    /// Audience of the primary stream (`All` in every single-channel
    /// scenario).
    pub primary_audience: StreamAudience,
    /// Additional broadcast channels beyond the primary stream. Empty for
    /// the paper's single-channel experiments: stream 0 is always defined by
    /// `stream_rate_bps`/`chunk_size`/`primary_audience`, and entry `i` here
    /// is stream `i + 1`. All channels share the membership, verification
    /// parameters and reputation plane; each gets its own source, chunk
    /// stores, playout buffers and verification history.
    pub streams: Vec<StreamSpec>,
    /// Freerider population, if any.
    pub freeriders: Option<FreeriderScenario>,
    /// Collusion behaviour of the freeriders.
    pub collusion: CollusionScenario,
    /// The adversary the misbehaving population plays (see
    /// [`AdversaryScenario`]); `Baseline` reproduces the paper's wiring.
    pub adversary: AdversaryScenario,
    /// Membership dynamics: steady session/offline churn plus optional
    /// catastrophic-failure and flash-crowd waves. `None` keeps the
    /// population static (the paper's controlled experiments).
    pub churn: Option<ChurnSchedule>,
    /// Scheduled network-fault waves: each wave partitions a random fraction
    /// of the population (both transports cut) for its outage duration.
    /// `None` keeps the network fault-free beyond its loss model.
    pub faults: Option<FaultSchedule>,
    /// Bounded retry + timeout policy for audit RPCs; `None` keeps the
    /// paper's partition-oblivious audits.
    pub audit_retry: Option<AuditRetryPolicy>,
    /// Online recalibration of the detection threshold from the live score
    /// stream; `None` keeps the static `η` of [`LiftingConfig::eta`].
    pub online_recalibration: Option<OnlineRecalibration>,
    /// Fraction of honest nodes with poor connectivity (low uplink and extra
    /// loss) — the paper attributes most false positives to such nodes.
    pub poor_node_fraction: f64,
    /// Uplink of a well-provisioned node, bits per second (`None` =
    /// unconstrained).
    pub default_upload_bps: Option<u64>,
    /// Uplink of a poor node, bits per second.
    pub poor_upload_bps: u64,
    /// Extra access-link loss of a poor node.
    pub poor_extra_loss: f64,
    /// Declarative component composition: named providers for the transport,
    /// loss, capability, workload, adversary and exporter axes. Unset axes
    /// fall back to the legacy fields above, bit-identically.
    pub components: ComponentsSpec,
    /// Total simulated duration.
    pub duration: SimDuration,
    /// Master seed.
    pub seed: u64,
}

impl ScenarioConfig {
    /// The paper's PlanetLab deployment (Section 7.1): 300 nodes, 674 kbps,
    /// `f = 7`, `Tg = 500 ms`, `M = 25`, 4 % loss, 10 % freeriders with
    /// `Δ = (1/7, 0.1, 0.1)`.
    pub fn planetlab_baseline(seed: u64) -> Self {
        ScenarioConfig {
            nodes: 300,
            gossip: GossipConfig::planetlab(),
            lifting: LiftingConfig::planetlab(),
            lifting_enabled: true,
            audits_enabled: false,
            audit_interval: SimDuration::from_secs(10),
            network: NetworkConfig::planetlab(0.04),
            stream_rate_bps: 674_000,
            chunk_size: 4_096,
            primary_audience: StreamAudience::All,
            streams: Vec::new(),
            freeriders: None,
            collusion: CollusionScenario::none(),
            adversary: AdversaryScenario::Baseline,
            churn: None,
            faults: None,
            audit_retry: None,
            online_recalibration: None,
            poor_node_fraction: 0.1,
            default_upload_bps: Some(5_000_000),
            poor_upload_bps: 800_000,
            poor_extra_loss: 0.03,
            components: ComponentsSpec::default(),
            duration: SimDuration::from_secs(40),
            seed,
        }
    }

    /// Adds the paper's freerider population: 10 % of the nodes freeriding
    /// with `Δ = (1/7, 0.1, 0.1)`.
    pub fn with_planetlab_freeriders(mut self, fraction: f64) -> Self {
        let count = ((self.nodes as f64) * fraction).round() as usize;
        self.freeriders = Some(FreeriderScenario {
            count,
            degree: FreeriderConfig::planetlab(),
        });
        self
    }

    /// A small configuration for fast tests: `n` nodes, ideal network,
    /// unconstrained uplinks, few managers, short duration.
    pub fn small_test(n: usize, seed: u64) -> Self {
        let mut lifting = LiftingConfig::planetlab();
        lifting.managers = 5.min(n.saturating_sub(1)).max(1);
        ScenarioConfig {
            nodes: n,
            gossip: GossipConfig {
                fanout: 5,
                gossip_period: SimDuration::from_millis(500),
                clear_stream_threshold: 0.9,
            },
            lifting,
            lifting_enabled: true,
            audits_enabled: false,
            audit_interval: SimDuration::from_secs(5),
            network: NetworkConfig::ideal(),
            stream_rate_bps: 200_000,
            chunk_size: 2_500,
            primary_audience: StreamAudience::All,
            streams: Vec::new(),
            freeriders: None,
            collusion: CollusionScenario::none(),
            adversary: AdversaryScenario::Baseline,
            churn: None,
            faults: None,
            audit_retry: None,
            online_recalibration: None,
            poor_node_fraction: 0.0,
            default_upload_bps: None,
            poor_upload_bps: 500_000,
            poor_extra_loss: 0.0,
            components: ComponentsSpec::default(),
            duration: SimDuration::from_secs(15),
            seed,
        }
    }

    /// Number of broadcast channels (1 plus the extra `streams`).
    pub fn stream_count(&self) -> usize {
        1 + self.streams.len()
    }

    /// The specification of stream `s` (stream 0 is assembled from the
    /// legacy single-channel fields, so pre-multistream scenarios are
    /// untouched).
    pub fn stream_spec(&self, s: StreamId) -> StreamSpec {
        if s == StreamId::PRIMARY {
            StreamSpec {
                rate_bps: self.stream_rate_bps,
                chunk_size: self.chunk_size,
                start_offset: SimDuration::ZERO,
                audience: self.primary_audience,
            }
        } else {
            self.streams[s.index() - 1]
        }
    }

    /// Iterates over every stream id of the scenario.
    pub fn stream_ids(&self) -> impl Iterator<Item = StreamId> {
        (0..self.stream_count()).map(|s| StreamId::new(s as u16))
    }

    /// Adds an extra broadcast channel (builder style).
    pub fn with_stream(mut self, spec: StreamSpec) -> Self {
        self.streams.push(spec);
        self
    }

    /// Number of freeriders in the scenario.
    pub fn freerider_count(&self) -> usize {
        self.freeriders.map(|f| f.count).unwrap_or(0)
    }

    /// True if the node with this identifier is a freerider (the last
    /// `count` identifiers, never node 0).
    pub fn is_freerider(&self, node_index: usize) -> bool {
        let count = self.freerider_count();
        count > 0 && node_index != 0 && node_index >= self.nodes.saturating_sub(count)
    }

    /// Validates the scenario.
    ///
    /// # Panics
    ///
    /// Panics if the population is too small, the freerider count exceeds the
    /// population, or a fraction is out of range.
    pub fn validate(&self) {
        assert!(self.nodes >= 3, "at least three nodes are required");
        self.gossip.validate();
        self.lifting.validate();
        assert!(
            self.lifting.managers < self.nodes,
            "cannot assign {} managers among {} nodes",
            self.lifting.managers,
            self.nodes
        );
        assert!(
            self.freerider_count() < self.nodes,
            "freeriders must be a strict subset of the population"
        );
        assert!(
            (0.0..=1.0).contains(&self.poor_node_fraction),
            "poor-node fraction out of range"
        );
        assert!(
            (0.0..=1.0).contains(&self.collusion.partner_bias),
            "partner bias out of range"
        );
        assert!(
            self.stream_rate_bps > 0 && self.chunk_size > 0,
            "empty stream"
        );
        assert!(
            self.stream_count() <= 64,
            "at most 64 concurrent streams (the selective-freerider mask is a u64)"
        );
        for stream in self.stream_ids() {
            let spec = self.stream_spec(stream);
            assert!(
                spec.rate_bps > 0 && spec.chunk_size > 0,
                "stream {stream} is empty"
            );
            assert!(
                spec.audience.size(self.nodes) >= 2,
                "stream {stream}'s audience has fewer than two subscribers; \
                 gossip needs someone to talk to"
            );
        }
        assert!(!self.duration.is_zero(), "duration must be positive");
        assert!(
            self.components.workload.is_none() || self.churn.is_none(),
            "a workload generator and a churn schedule cannot drive membership simultaneously"
        );
        self.adversary.validate();
        if let Some(churn) = &self.churn {
            churn.validate();
            // Waves must leave enough of the population standing for gossip
            // to mean anything (and for the validate() invariants above).
            let wave_max = [churn.catastrophe, churn.flash_crowd]
                .into_iter()
                .flatten()
                .map(|w| w.fraction)
                .fold(0.0f64, f64::max);
            assert!(
                wave_max <= 0.9,
                "a churn wave may cover at most 90% of the population"
            );
        }
        if !matches!(self.adversary, AdversaryScenario::Baseline) {
            assert!(
                self.freerider_count() > 0,
                "a non-baseline adversary needs a misbehaving population (set `freeriders`)"
            );
            assert!(
                !self.collusion.is_active(),
                "collusion only composes with the baseline adversary; \
                 the on-off / blame-spam adversaries would silently ignore it"
            );
        }
        if let AdversaryScenario::SelectiveFreerider { silent_mask } = self.adversary {
            assert!(
                self.stream_count() > 1,
                "a selective freerider needs at least two streams to select between"
            );
            // With exactly 64 streams every bit of the mask is a valid
            // stream; the shift below would overflow, so skip it.
            assert!(
                self.stream_count() >= 64 || silent_mask >> self.stream_count() == 0,
                "the silent mask names streams the scenario does not run"
            );
        }
        if let AdversaryScenario::AdaptiveColluders { .. } = self.adversary {
            assert!(
                self.freerider_count() >= 2,
                "adaptive colluders need a coalition of at least two"
            );
        }
        if let Some(faults) = &self.faults {
            faults.validate();
            let wave_max = faults
                .waves
                .iter()
                .map(|w| w.fraction)
                .fold(0.0f64, f64::max);
            assert!(
                wave_max <= 0.9,
                "a fault wave may partition at most 90% of the population"
            );
        }
        if let Some(retry) = &self.audit_retry {
            retry.validate();
        }
        if let Some(online) = &self.online_recalibration {
            online.validate();
        }
        if let Some(f) = &self.freeriders {
            f.degree.validate();
        }
    }

    /// True if the scenario exercises the resilience plane (fault waves, a
    /// closed-loop adversary, or the online-recalibration defence) — the
    /// runtime then tracks per-period recovery metrics.
    pub fn resilience_active(&self) -> bool {
        self.faults.is_some() || self.online_recalibration.is_some() || self.adversary.closed_loop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planetlab_baseline_matches_the_paper() {
        let s = ScenarioConfig::planetlab_baseline(1);
        s.validate();
        assert_eq!(s.nodes, 300);
        assert_eq!(s.gossip.fanout, 7);
        assert_eq!(s.lifting.managers, 25);
        assert_eq!(s.stream_rate_bps, 674_000);
        assert_eq!(s.freerider_count(), 0);
        let with = s.with_planetlab_freeriders(0.1);
        with.validate();
        assert_eq!(with.freerider_count(), 30);
    }

    #[test]
    fn freerider_assignment_is_a_suffix_excluding_the_source() {
        let s = ScenarioConfig::small_test(10, 0).with_planetlab_freeriders(0.3);
        assert_eq!(s.freerider_count(), 3);
        let flags: Vec<bool> = (0..10).map(|i| s.is_freerider(i)).collect();
        assert_eq!(
            flags,
            vec![false, false, false, false, false, false, false, true, true, true]
        );
    }

    #[test]
    fn source_is_never_a_freerider() {
        let mut s = ScenarioConfig::small_test(4, 0);
        s.freeriders = Some(FreeriderScenario {
            count: 3,
            degree: FreeriderConfig::uniform(0.5),
        });
        s.validate();
        assert!(!s.is_freerider(0));
        assert!(s.is_freerider(1));
    }

    #[test]
    #[should_panic]
    fn too_many_freeriders_is_rejected() {
        let mut s = ScenarioConfig::small_test(4, 0);
        s.freeriders = Some(FreeriderScenario {
            count: 4,
            degree: FreeriderConfig::uniform(0.1),
        });
        s.validate();
    }

    #[test]
    #[should_panic(expected = "collusion only composes with the baseline adversary")]
    fn collusion_with_non_baseline_adversary_is_rejected() {
        let mut s = ScenarioConfig::small_test(10, 0).with_planetlab_freeriders(0.3);
        s.adversary = AdversaryScenario::OnOff {
            on_periods: 1,
            off_periods: 1,
        };
        s.collusion = CollusionScenario {
            partner_bias: 0.0,
            cover_up: true,
            man_in_the_middle: false,
        };
        s.validate();
    }

    #[test]
    fn collusion_scenario_activity_flag() {
        assert!(!CollusionScenario::none().is_active());
        assert!(CollusionScenario {
            partner_bias: 0.2,
            cover_up: false,
            man_in_the_middle: false
        }
        .is_active());
    }
}
