//! System runner: wires the gossip protocol, the LiFTinG verification layer,
//! the reputation managers and the simulated network into runnable scenarios.
//!
//! The runtime owns the event loop glue that the sans-IO protocol crates
//! deliberately avoid: it moves messages through [`lifting_net::Network`],
//! schedules verifier timers, routes blames to reputation managers, applies
//! per-period compensation and expulsion decisions, triggers a-posteriori
//! audits, and collects the metrics every experiment of the paper needs
//! (score distributions, detection / false-positive rates, stream health and
//! traffic overhead).
//!
//! Entry points:
//!
//! * [`ScenarioConfig`] describes an experiment (population, freeriders,
//!   collusion, stream rate, network conditions, LiFTinG parameters).
//! * [`run_scenario`] runs it to completion and returns a [`RunOutcome`].
//! * [`run_scenario_with_snapshots`] additionally records score snapshots at
//!   chosen instants (Figure 14 reads scores at 25, 30 and 35 seconds).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod message;
pub mod metrics;
pub mod node;
pub mod runner;
pub mod scenario;
pub mod world;

pub use message::{Event, Message};
pub use metrics::{NodeOutcome, RunOutcome, ScoreSnapshot};
pub use node::SystemNode;
pub use runner::{
    build_engine, run_jobs_parallel, run_scenario, run_scenario_with_snapshots,
    run_scenarios_parallel, run_scenarios_parallel_with_snapshots,
};
pub use scenario::{CollusionScenario, FreeriderScenario, ScenarioConfig};
pub use world::SystemWorld;
