//! System runner: wires the gossip protocol, the LiFTinG verification layer,
//! the reputation managers and the simulated network into runnable scenarios.
//!
//! Each node is a layered protocol stack ([`layers::NodeStack`]): a gossip
//! plane, a verification plane and a reputation plane connected by typed
//! upcalls/downcalls (see [`layers`] and `ARCHITECTURE.md`), with
//! misbehaviour plugged in through the [`layers::Adversary`] trait. The
//! [`SystemWorld`] owns the stacks and the event-loop glue the sans-IO
//! protocol crates deliberately avoid: it moves messages through
//! [`lifting_net::Network`], schedules verifier timers, routes blames to
//! reputation managers, applies per-period compensation and expulsion
//! decisions, triggers a-posteriori audits, and collects the metrics every
//! experiment of the paper needs (score distributions, detection /
//! false-positive rates, stream health and traffic overhead).
//!
//! Entry points:
//!
//! * [`ScenarioConfig`] describes an experiment (population, freeriders,
//!   collusion, adversary, stream rate, network conditions, LiFTinG
//!   parameters); the [`ScenarioRegistry`] maps experiment names
//!   (`"fig01/no-freeriders"`, …) to ready-made configurations.
//! * [`run_scenario`] runs it to completion and returns a [`RunOutcome`].
//! * [`run_scenario_with_snapshots`] additionally records score snapshots at
//!   chosen instants (Figure 14 reads scores at 25, 30 and 35 seconds).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod components;
pub(crate) mod hot;
pub mod layers;
pub mod message;
pub mod metrics;
pub mod observe;
pub mod registry;
pub mod runner;
pub mod scenario;
pub(crate) mod wave;
pub mod world;

pub use components::{
    adversary_components, component_summary, exporter_components, resolve_components,
    workload_components, OutcomeExporter,
};
pub use layers::{Adversary, AuditRpcStats, FeedbackAction, NodeStack};
pub use message::{Event, Message};
pub use metrics::{
    ChurnStats, LayerTraffic, NodeOutcome, RecoveryReport, RunOutcome, ScoreSnapshot, StackLayer,
    StreamOutcome, WaveKind, WaveRecovery,
};
pub use registry::{
    fig14_scenario_name, scenario_family, table03_scenario_name, table05_scenario_name, Scale,
    ScenarioRegistry, FIG14_PDCCS, TABLE03_PDCCS, TABLE05_PDCCS, TABLE05_STREAM_KBPS,
};
pub use runner::{
    build_engine, run_jobs_parallel, run_scenario, run_scenario_sharded,
    run_scenario_with_snapshots, run_scenario_with_snapshots_sharded, run_scenarios_parallel,
    run_scenarios_parallel_with_snapshots, SHARDS_ENV,
};
pub use scenario::{
    AdversaryScenario, AuditRetryPolicy, ChurnSchedule, ChurnWave, CollusionScenario,
    ComponentSpec, ComponentsSpec, FaultSchedule, FaultWave, FreeriderScenario,
    OnlineRecalibration, ScenarioConfig, StreamAudience, StreamSpec,
};
pub use world::SystemWorld;
