//! The scenario registry: one named builder per experiment configuration.
//!
//! Every figure and table of the paper used to hand-roll its own
//! `ScenarioConfig` block inside the bench binaries; the registry is the
//! single source of truth instead. A scenario is a *named builder*
//! `(Scale, seed) -> ScenarioConfig`, so callers (the nine experiment
//! binaries, `run_all_experiments`, tests) ask for `"fig01/no-freeriders"`
//! rather than re-assembling the configuration.

use std::sync::OnceLock;

use lifting_gossip::FreeriderConfig;
use lifting_sim::SimDuration;
use serde::{Deserialize, Serialize};

use crate::scenario::{
    AdversaryScenario, AuditRetryPolicy, ChurnSchedule, ChurnWave, ComponentSpec, FaultSchedule,
    FaultWave, OnlineRecalibration, ScenarioConfig, StreamAudience, StreamSpec,
};
use lifting_sim::ParamValue;

/// The family prefix of a scenario name: the part before the first `/`
/// (`"fig01"`, `"churn"`, `"workload"`, …). Scenario names are
/// `family/variant` by convention; a name without a slash is its own family.
pub fn scenario_family(name: &str) -> &str {
    name.split('/').next().unwrap_or(name)
}

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// The paper's population sizes and durations.
    Paper,
    /// A reduced scale for smoke runs and Criterion benches.
    Quick,
}

impl Scale {
    /// Picks the paper-scale or quick-scale value.
    pub fn pick(self, paper: usize, quick: usize) -> usize {
        match self {
            Scale::Paper => paper,
            Scale::Quick => quick,
        }
    }

    /// Picks the paper-scale or quick-scale duration, in seconds.
    pub fn secs(self, paper: u64, quick: u64) -> SimDuration {
        SimDuration::from_secs(match self {
            Scale::Paper => paper,
            Scale::Quick => quick,
        })
    }
}

/// The pdcc sweep of Table 3 (analytical vs measured verification messages).
pub const TABLE03_PDCCS: [f64; 4] = [0.0, 1.0 / 7.0, 0.5, 1.0];
/// The stream rates of Table 5, in kbps.
pub const TABLE05_STREAM_KBPS: [u64; 3] = [674, 1082, 2036];
/// The pdcc values of Table 5.
pub const TABLE05_PDCCS: [f64; 3] = [0.0, 0.5, 1.0];
/// The pdcc values of Figure 14.
pub const FIG14_PDCCS: [f64; 2] = [1.0, 0.5];

/// The registered name of the Table 3 scenario for `pdcc`.
pub fn table03_scenario_name(pdcc: f64) -> String {
    format!("table03/pdcc-{pdcc:.3}")
}

/// The registered name of the Table 5 scenario for `(stream_kbps, pdcc)`.
pub fn table05_scenario_name(stream_kbps: u64, pdcc: f64) -> String {
    format!("table05/{stream_kbps}kbps-pdcc-{pdcc}")
}

/// The registered name of the Figure 14 scenario for `pdcc`.
pub fn fig14_scenario_name(pdcc: f64) -> String {
    format!("fig14/planetlab-pdcc-{pdcc}")
}

type BuilderFn = Box<dyn Fn(Scale, u64) -> ScenarioConfig + Send + Sync>;

struct ScenarioEntry {
    name: String,
    description: String,
    builder: BuilderFn,
}

/// Name → scenario builder map.
///
/// [`ScenarioRegistry::builtin`] returns the registry of every scenario the
/// experiment suite uses; [`ScenarioRegistry::register`] adds custom ones.
#[derive(Default)]
pub struct ScenarioRegistry {
    entries: Vec<ScenarioEntry>,
}

impl ScenarioRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ScenarioRegistry::default()
    }

    /// Registers a scenario builder under `name` (replacing any previous
    /// entry with the same name).
    pub fn register(
        &mut self,
        name: impl Into<String>,
        description: impl Into<String>,
        builder: impl Fn(Scale, u64) -> ScenarioConfig + Send + Sync + 'static,
    ) {
        let name = name.into();
        self.entries.retain(|e| e.name != name);
        self.entries.push(ScenarioEntry {
            name,
            description: description.into(),
            builder: Box::new(builder),
        });
    }

    /// True if `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.iter().any(|e| e.name == name)
    }

    /// The registered scenario names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name.as_str()).collect()
    }

    /// The registry grouped by family prefix (see [`scenario_family`]), in
    /// first-appearance order — what `run_scenario --list` prints.
    pub fn families(&self) -> Vec<(&str, Vec<&str>)> {
        let mut grouped: Vec<(&str, Vec<&str>)> = Vec::new();
        for entry in &self.entries {
            let family = scenario_family(&entry.name);
            match grouped.iter_mut().find(|(f, _)| *f == family) {
                Some((_, members)) => members.push(entry.name.as_str()),
                None => grouped.push((family, vec![entry.name.as_str()])),
            }
        }
        grouped
    }

    /// The description of one scenario, if registered.
    pub fn description(&self, name: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.description.as_str())
    }

    /// Number of registered scenarios.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Builds the scenario registered under `name`, if any.
    pub fn try_build(&self, name: &str, scale: Scale, seed: u64) -> Option<ScenarioConfig> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .map(|e| (e.builder)(scale, seed))
    }

    /// Builds the scenario registered under `name`.
    ///
    /// # Panics
    ///
    /// Panics (listing the known names) if `name` is not registered.
    pub fn build(&self, name: &str, scale: Scale, seed: u64) -> ScenarioConfig {
        self.try_build(name, scale, seed).unwrap_or_else(|| {
            panic!(
                "unknown scenario {name:?}; registered scenarios: {:?}",
                self.names()
            )
        })
    }

    /// The shared registry of every built-in scenario (figures, tables, the
    /// headline run and the adversary showcases).
    pub fn builtin() -> &'static ScenarioRegistry {
        static BUILTIN: OnceLock<ScenarioRegistry> = OnceLock::new();
        BUILTIN.get_or_init(|| {
            let mut registry = ScenarioRegistry::new();
            register_builtin(&mut registry);
            registry
        })
    }
}

impl std::fmt::Debug for ScenarioRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioRegistry")
            .field("scenarios", &self.names())
            .finish()
    }
}

/// Shrinks a paper-scale PlanetLab configuration the way every experiment
/// does when run below 300 nodes: fewer managers, lighter stream.
fn shrink_below_planetlab(config: &mut ScenarioConfig) {
    if config.nodes < 300 {
        config.lifting.managers = 10;
        config.stream_rate_bps = 400_000;
    }
}

fn register_builtin(registry: &mut ScenarioRegistry) {
    // ------------------------------------------------------------------
    // Figure 1 — stream health with/without freeriders and LiFTinG.
    // ------------------------------------------------------------------
    let fig01 = |freeriders: bool, lifting: bool| {
        move |scale: Scale, seed: u64| {
            let mut config = ScenarioConfig::planetlab_baseline(seed);
            config.nodes = scale.pick(300, 80);
            config.duration = scale.secs(40, 20);
            config.lifting_enabled = lifting;
            shrink_below_planetlab(&mut config);
            if freeriders {
                config = config.with_planetlab_freeriders(0.25);
                if let Some(f) = &mut config.freeriders {
                    // "Wise" freeriders of the introduction: they shave ~45 %
                    // of their upload duty, enough to visibly hurt the stream.
                    f.degree = FreeriderConfig {
                        delta1: 2.0 / 7.0,
                        delta2: 0.15,
                        delta3: 0.15,
                        period_stretch: 1,
                    };
                }
            }
            config
        }
    };
    registry.register(
        "fig01/no-freeriders",
        "Figure 1 baseline: fully honest population, LiFTinG on",
        fig01(false, true),
    );
    registry.register(
        "fig01/freeriders-no-lifting",
        "Figure 1: 25% wise freeriders, LiFTinG off",
        fig01(true, false),
    );
    registry.register(
        "fig01/freeriders-lifting",
        "Figure 1: 25% wise freeriders, LiFTinG expelling them",
        fig01(true, true),
    );

    // ------------------------------------------------------------------
    // Figure 14 — the PlanetLab deployment at pdcc = 1 and 0.5.
    // ------------------------------------------------------------------
    for pdcc in FIG14_PDCCS {
        registry.register(
            fig14_scenario_name(pdcc),
            format!("Figure 14: PlanetLab run with 10% freeriders, pdcc = {pdcc}"),
            move |scale: Scale, seed: u64| {
                let mut config =
                    ScenarioConfig::planetlab_baseline(seed).with_planetlab_freeriders(0.1);
                config.lifting.pdcc = pdcc;
                config.nodes = scale.pick(300, 100);
                shrink_below_planetlab(&mut config);
                config.duration = scale.secs(36, 36);
                config
            },
        );
    }

    // ------------------------------------------------------------------
    // Table 3 — verification message overhead per pdcc.
    // ------------------------------------------------------------------
    for pdcc in TABLE03_PDCCS {
        registry.register(
            table03_scenario_name(pdcc),
            format!("Table 3: honest run measuring verification messages at pdcc = {pdcc:.3}"),
            move |scale: Scale, seed: u64| {
                let mut config = ScenarioConfig::planetlab_baseline(seed);
                config.nodes = scale.pick(150, 60);
                config.lifting.managers = 10;
                config.lifting.pdcc = pdcc;
                config.duration = scale.secs(20, 10);
                config.stream_rate_bps = 400_000;
                config
            },
        );
    }

    // ------------------------------------------------------------------
    // Table 5 — practical overhead per stream rate and pdcc.
    // ------------------------------------------------------------------
    for stream_kbps in TABLE05_STREAM_KBPS {
        for pdcc in TABLE05_PDCCS {
            registry.register(
                table05_scenario_name(stream_kbps, pdcc),
                format!("Table 5: overhead at {stream_kbps} kbps, pdcc = {pdcc}"),
                move |scale: Scale, seed: u64| {
                    let mut config = ScenarioConfig::planetlab_baseline(seed);
                    config.nodes = scale.pick(150, 60);
                    config.lifting.managers = if config.nodes >= 300 { 25 } else { 10 };
                    config.lifting.pdcc = pdcc;
                    config.stream_rate_bps = stream_kbps * 1_000;
                    config.duration = scale.secs(20, 10);
                    config.default_upload_bps = Some(10_000_000);
                    config
                },
            );
        }
    }

    // ------------------------------------------------------------------
    // The headline PlanetLab run (detection / false positives / overhead).
    // ------------------------------------------------------------------
    registry.register(
        "headline/planetlab",
        "The headline PlanetLab run: 10% freeriders, scores read after 30 s",
        |scale: Scale, seed: u64| {
            let mut config =
                ScenarioConfig::planetlab_baseline(seed).with_planetlab_freeriders(0.1);
            config.nodes = scale.pick(300, 100);
            shrink_below_planetlab(&mut config);
            config.duration = scale.secs(30, 20);
            config
        },
    );

    // ------------------------------------------------------------------
    // Adversary showcases: attacks the pre-refactor wiring could not express.
    // ------------------------------------------------------------------
    registry.register(
        "adversary/on-off-freeriders",
        "20% on-off freeriders (2 periods on, 2 off) dodging the score normalization",
        |scale: Scale, seed: u64| {
            let mut config = ScenarioConfig::planetlab_baseline(seed);
            config.nodes = scale.pick(300, 80);
            shrink_below_planetlab(&mut config);
            config = config.with_planetlab_freeriders(0.2);
            config.adversary = AdversaryScenario::OnOff {
                on_periods: 2,
                off_periods: 2,
            };
            config.duration = scale.secs(40, 20);
            config
        },
    );
    registry.register(
        "adversary/blame-spam",
        "10% blame spammers flooding the reputation plane with fabricated blames",
        |scale: Scale, seed: u64| {
            let mut config = ScenarioConfig::planetlab_baseline(seed);
            config.nodes = scale.pick(300, 80);
            shrink_below_planetlab(&mut config);
            config = config.with_planetlab_freeriders(0.1);
            config.adversary = AdversaryScenario::BlameSpam {
                blames_per_period: 5,
                blame_value: 5.0,
            };
            config.duration = scale.secs(30, 15);
            config
        },
    );

    // ------------------------------------------------------------------
    // Churn: dynamic membership under the PlanetLab deployment. The paper's
    // evaluation runs on PlanetLab, where nodes join, crash and rejoin
    // mid-stream; these scenarios exercise blame propagation, audit
    // timeouts and score-based expulsion under that dynamism.
    // ------------------------------------------------------------------
    let planetlab_churn = |nodes_paper: usize, duration: (u64, u64), freeriders: f64| {
        move |scale: Scale, seed: u64| {
            let mut config = ScenarioConfig::planetlab_baseline(seed);
            config.nodes = scale.pick(nodes_paper, 80);
            shrink_below_planetlab(&mut config);
            if freeriders > 0.0 {
                config = config.with_planetlab_freeriders(freeriders);
            }
            config.duration = scale.secs(duration.0, duration.1);
            config
        }
    };
    registry.register(
        "churn/steady-slow",
        "Steady churn, honest population: 25% of the nodes cycle 12s-mean sessions with 3s offline spells",
        move |scale: Scale, seed: u64| {
            let mut config = planetlab_churn(300, (40, 20), 0.0)(scale, seed);
            config.churn = Some(ChurnSchedule::steady(
                0.25,
                SimDuration::from_secs(12),
                SimDuration::from_secs(3),
                SimDuration::from_secs(3),
            ));
            config
        },
    );
    registry.register(
        "churn/steady-fast",
        "Aggressive churn with 10% freeriders and audits on: 40% of the nodes cycle 5s-mean sessions with 2s offline spells",
        move |scale: Scale, seed: u64| {
            let mut config = planetlab_churn(300, (40, 20), 0.1)(scale, seed);
            config.churn = Some(ChurnSchedule::steady(
                0.4,
                SimDuration::from_secs(5),
                SimDuration::from_secs(2),
                SimDuration::from_secs(2),
            ));
            // A-posteriori audits run here so the departed-witness timeout
            // path (audits aborted, not wedged into wrongful blame) is
            // exercised at system scale.
            config.audits_enabled = true;
            config.audit_interval = SimDuration::from_secs(4);
            config
        },
    );
    registry.register(
        "churn/catastrophe",
        "Catastrophic failure: 30% of the nodes (10% freeriders present) crash at mid-run and never return",
        move |scale: Scale, seed: u64| {
            let mut config = planetlab_churn(300, (40, 20), 0.1)(scale, seed);
            let mut schedule = ChurnSchedule::steady(
                0.0,
                SimDuration::from_secs(10),
                SimDuration::from_secs(3),
                SimDuration::ZERO,
            );
            schedule.catastrophe = Some(ChurnWave {
                at: SimDuration::from_micros(config.duration.as_micros() / 2),
                fraction: 0.3,
            });
            config.churn = Some(schedule);
            config
        },
    );
    registry.register(
        "churn/flash-crowd",
        "Flash crowd: 30% of the nodes start offline and all join a quarter into the stream",
        move |scale: Scale, seed: u64| {
            let mut config = planetlab_churn(300, (40, 20), 0.0)(scale, seed);
            let mut schedule = ChurnSchedule::steady(
                0.0,
                SimDuration::from_secs(10),
                SimDuration::from_secs(3),
                SimDuration::ZERO,
            );
            schedule.flash_crowd = Some(ChurnWave {
                at: SimDuration::from_micros(config.duration.as_micros() / 4),
                fraction: 0.3,
            });
            config.churn = Some(schedule);
            config
        },
    );
    registry.register(
        "churn/freeriders",
        "Churn x freeriders with audits on: 20% freeriders while 35% of the nodes cycle 8s-mean sessions",
        move |scale: Scale, seed: u64| {
            let mut config = planetlab_churn(300, (40, 20), 0.2)(scale, seed);
            config.churn = Some(ChurnSchedule::steady(
                0.35,
                SimDuration::from_secs(8),
                SimDuration::from_secs(2),
                SimDuration::from_secs(2),
            ));
            config.audits_enabled = true;
            config.audit_interval = SimDuration::from_secs(5);
            config
        },
    );

    // ------------------------------------------------------------------
    // Multi-channel streaming: several concurrent broadcasts over one
    // membership and reputation plane. Data planes are per-stream, blames
    // aggregate across streams into one score per node — the setting where
    // manager-based accountability pays off (a freerider on channel B is
    // expelled from channel A too).
    // ------------------------------------------------------------------
    let planetlab_multistream = |freeriders: f64| {
        move |scale: Scale, seed: u64| {
            let mut config = ScenarioConfig::planetlab_baseline(seed);
            config.nodes = scale.pick(300, 80);
            shrink_below_planetlab(&mut config);
            if freeriders > 0.0 {
                config = config.with_planetlab_freeriders(freeriders);
            }
            config.duration = scale.secs(30, 15);
            config
        }
    };
    registry.register(
        "multistream/disjoint-audiences",
        "Two channels with disjoint audiences (first vs second half of the population) over one membership plane",
        move |scale: Scale, seed: u64| {
            let mut config = planetlab_multistream(0.0)(scale, seed);
            config.primary_audience = StreamAudience::Slice { from: 0.0, to: 0.5 };
            let rate = config.stream_rate_bps;
            let chunk = config.chunk_size;
            config.streams.push(
                StreamSpec::new(rate, chunk)
                    .with_audience(StreamAudience::Slice { from: 0.5, to: 1.0 }),
            );
            config
        },
    );
    registry.register(
        "multistream/overlapping-audiences",
        "Two full-audience channels with 10% freeriders shirking on both; their blames aggregate into one score",
        move |scale: Scale, seed: u64| {
            let mut config = planetlab_multistream(0.1)(scale, seed);
            let chunk = config.chunk_size;
            config.streams.push(StreamSpec::new(300_000, chunk));
            config
        },
    );
    registry.register(
        "multistream/selective-freeriders",
        "15% selective freeriders: honest on channel 0, fully silent on channel 1 — cross-stream scoring expels them from both",
        move |scale: Scale, seed: u64| {
            let mut config = planetlab_multistream(0.15)(scale, seed);
            let chunk = config.chunk_size;
            config.streams.push(StreamSpec::new(300_000, chunk));
            config.adversary = AdversaryScenario::SelectiveFreerider { silent_mask: 0b10 };
            config
        },
    );
    registry.register(
        "multistream/rate-asymmetry",
        "Three channels at 400/200/100 kbps; the slow ones start mid-run and serve three-quarters of the population",
        move |scale: Scale, seed: u64| {
            let mut config = planetlab_multistream(0.0)(scale, seed);
            let chunk = config.chunk_size;
            config.streams.push(
                StreamSpec::new(200_000, chunk)
                    .with_audience(StreamAudience::Slice {
                        from: 0.25,
                        to: 1.0,
                    })
                    .starting_after(SimDuration::from_secs(4)),
            );
            config.streams.push(
                StreamSpec::new(100_000, chunk)
                    .with_audience(StreamAudience::Slice {
                        from: 0.25,
                        to: 1.0,
                    })
                    .starting_after(SimDuration::from_secs(8)),
            );
            config
        },
    );

    // ------------------------------------------------------------------
    // Resilience: closed-loop adversaries that react to the system's own
    // feedback, injected network faults, and the online defenses that have
    // to reconverge after each disturbance. These scenarios populate
    // `RunOutcome::recovery` with per-period precision/recall traces and
    // per-wave reconvergence times.
    // ------------------------------------------------------------------
    let planetlab_resilience = |freeriders: f64| {
        move |scale: Scale, seed: u64| {
            let mut config = ScenarioConfig::planetlab_baseline(seed);
            config.nodes = scale.pick(300, 80);
            shrink_below_planetlab(&mut config);
            if freeriders > 0.0 {
                config = config.with_planetlab_freeriders(freeriders);
            }
            config.duration = scale.secs(40, 20);
            config
        }
    };
    registry.register(
        "resilience/gradient-freerider",
        "15% closed-loop freeriders throttle their shirking to ride just above the static η — the evasion baseline",
        move |scale: Scale, seed: u64| {
            let mut config = planetlab_resilience(0.15)(scale, seed);
            config.adversary = AdversaryScenario::GradientFreerider {
                margin: 2.0,
                step: 0.25,
            };
            config
        },
    );
    registry.register(
        "resilience/gradient-freerider-online",
        "The same gradient freeriders against the online η recalibration (trimmed live-score quantile, EWMA-smoothed)",
        move |scale: Scale, seed: u64| {
            let mut config = planetlab_resilience(0.15)(scale, seed);
            config.adversary = AdversaryScenario::GradientFreerider {
                margin: 2.0,
                step: 0.25,
            };
            config.online_recalibration = Some(OnlineRecalibration::planetlab());
            config
        },
    );
    registry.register(
        "resilience/whitewasher",
        "10% whitewashers depart once blame drags their score 0.5 below its peak and rejoin under a rebuilt stack; frozen-score carryover catches them",
        move |scale: Scale, seed: u64| {
            let mut config = planetlab_resilience(0.1)(scale, seed);
            config.adversary = AdversaryScenario::Whitewasher {
                margin: 0.5,
                offline: SimDuration::from_secs(2),
            };
            config
        },
    );
    registry.register(
        "resilience/partition-waves",
        "Two partition waves hit 25% of the population mid-run; hardened audit and confirm RPCs abort instead of blaming the unreachable",
        move |scale: Scale, seed: u64| {
            let mut config = planetlab_resilience(0.1)(scale, seed);
            config.audits_enabled = true;
            config.audit_interval = SimDuration::from_secs(4);
            config.audit_retry = Some(AuditRetryPolicy::default_policy());
            config.lifting = config.lifting.with_confirm_retries(2);
            let third = SimDuration::from_micros(config.duration.as_micros() / 3);
            config.faults = Some(FaultSchedule {
                waves: vec![
                    FaultWave {
                        at: third,
                        outage: SimDuration::from_secs(4),
                        fraction: 0.25,
                    },
                    FaultWave {
                        at: third.saturating_mul(2),
                        outage: SimDuration::from_secs(4),
                        fraction: 0.25,
                    },
                ],
            });
            config
        },
    );
    registry.register(
        "resilience/bursty-loss",
        "Gilbert-Elliott bursty loss (≈7% stationary) plus delay spikes and duplication, with 10% freeriders and hardened confirms",
        move |scale: Scale, seed: u64| {
            let mut config = planetlab_resilience(0.1)(scale, seed);
            config.network.loss = lifting_net::LossModel::gilbert_elliott(0.05, 0.45, 0.02, 0.5);
            config.network.faults.delay_spike_probability = 0.05;
            config.network.faults.delay_spike = SimDuration::from_millis(300);
            config.network.faults.duplicate_probability = 0.02;
            config.lifting = config.lifting.with_confirm_retries(2);
            config
        },
    );
    registry.register(
        "resilience/adaptive-colluders",
        "15% colluders re-aim their cover-traffic bias away from recently audited accomplices; audits on",
        move |scale: Scale, seed: u64| {
            let mut config = planetlab_resilience(0.15)(scale, seed);
            config.audits_enabled = true;
            config.audit_interval = SimDuration::from_secs(4);
            config.adversary = AdversaryScenario::AdaptiveColluders {
                partner_bias: 0.6,
                cooldown_periods: 6,
            };
            config
        },
    );

    // ------------------------------------------------------------------
    // scale/ — beyond-paper populations. Figure 14's detection readout
    // (10% freeriders, pdcc = 1) pushed to 1k, 10k and 100k nodes, with a
    // lighter stream than PlanetLab's and durations that shrink as the
    // population grows so the whole sweep stays tractable on one machine.
    // ------------------------------------------------------------------
    let scale_family =
        |paper_nodes: usize, quick_nodes: usize, paper_secs: u64, quick_secs: u64| {
            move |scale: Scale, seed: u64| {
                let mut config =
                    ScenarioConfig::planetlab_baseline(seed).with_planetlab_freeriders(0.1);
                config.lifting.pdcc = 1.0;
                config.nodes = scale.pick(paper_nodes, quick_nodes);
                config.duration = scale.secs(paper_secs, quick_secs);
                // The paper's 674 kbps stream is not the point here; a lighter
                // stream keeps the 100k-node run inside laptop memory while the
                // detection statistics still have enough chunks to bite.
                config.stream_rate_bps = 400_000;
                shrink_below_planetlab(&mut config);
                config
            }
        };
    registry.register(
        "scale/1k",
        "Scale sweep: 1 000 nodes (3.3x the paper), 10% freeriders, pdcc = 1",
        scale_family(1_000, 200, 24, 6),
    );
    registry.register(
        "scale/10k",
        "Scale sweep: 10 000 nodes (33x the paper), 10% freeriders, pdcc = 1",
        scale_family(10_000, 400, 8, 4),
    );
    registry.register(
        "scale/100k",
        "Scale sweep: 100 000 nodes (333x the paper), 10% freeriders, pdcc = 1",
        scale_family(100_000, 800, 4, 3),
    );

    // ------------------------------------------------------------------
    // workload/ — trace-driven membership workloads expanded from registered
    // generator components (see `lifting_membership::workload` and the
    // component registry in `crate::components`). Where the churn/ family
    // draws sessions from exponential distributions, these replay shaped
    // audience behaviour: diurnal participation swings, correlated regional
    // outages, and zap-style channel surfing.
    // ------------------------------------------------------------------
    let planetlab_workload = |freeriders: f64| {
        move |scale: Scale, seed: u64| {
            let mut config = ScenarioConfig::planetlab_baseline(seed);
            config.nodes = scale.pick(300, 80);
            shrink_below_planetlab(&mut config);
            if freeriders > 0.0 {
                config = config.with_planetlab_freeriders(freeriders);
            }
            config.duration = scale.secs(40, 20);
            config
        }
    };
    registry.register(
        "workload/diurnal",
        "Diurnal audience: participation swings around 60% over a sinusoidal cycle, tiered access classes (fiber/cable/DSL/mobile), 10% freeriders",
        move |scale: Scale, seed: u64| {
            let mut config = planetlab_workload(0.1)(scale, seed);
            // The tiered capability component replaces the flat poor-node draw.
            config.poor_node_fraction = 0.0;
            config.components.capability = Some(ComponentSpec::new("tiered"));
            config.components.workload = Some(
                ComponentSpec::new("diurnal")
                    .with("participation", ParamValue::Float(0.6))
                    .with("cycle_secs", ParamValue::Float(12.0)),
            );
            config
        },
    );
    registry.register(
        "workload/regional-failure",
        "Regional-failure waves: the population splits into 4 regions and 2 correlated outages knock whole regions offline before they rejoin",
        move |scale: Scale, seed: u64| {
            let mut config = planetlab_workload(0.1)(scale, seed);
            config.components.workload = Some(
                ComponentSpec::new("regional-failure")
                    .with("regions", ParamValue::Int(4))
                    .with("waves", ParamValue::Int(2)),
            );
            config
        },
    );
    registry.register(
        "workload/zap",
        "Channel zapping: three channels, half the viewers surf between them with exponentially distributed dwell times",
        move |scale: Scale, seed: u64| {
            let mut config = planetlab_workload(0.1)(scale, seed);
            config.duration = scale.secs(30, 15);
            let chunk = config.chunk_size;
            config.streams.push(StreamSpec::new(300_000, chunk));
            config.streams.push(StreamSpec::new(200_000, chunk));
            config.components.workload = Some(
                ComponentSpec::new("zap").with("zappers", ParamValue::Float(0.5)),
            );
            config
        },
    );

    // ------------------------------------------------------------------
    // A small smoke scenario for tests and quick sanity checks.
    // ------------------------------------------------------------------
    registry.register(
        "smoke/small",
        "A 30-node ideal-network run with 20% planetlab freeriders",
        |scale: Scale, seed: u64| {
            let mut config =
                ScenarioConfig::small_test(scale.pick(60, 30), seed).with_planetlab_freeriders(0.2);
            config.duration = scale.secs(15, 8);
            config
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_registry_contains_every_figure_and_table() {
        let registry = ScenarioRegistry::builtin();
        for name in [
            "fig01/no-freeriders",
            "fig01/freeriders-no-lifting",
            "fig01/freeriders-lifting",
            "fig14/planetlab-pdcc-1",
            "fig14/planetlab-pdcc-0.5",
            "table03/pdcc-0.000",
            "table03/pdcc-0.143",
            "table03/pdcc-0.500",
            "table03/pdcc-1.000",
            "table05/674kbps-pdcc-0",
            "table05/2036kbps-pdcc-1",
            "headline/planetlab",
            "adversary/on-off-freeriders",
            "adversary/blame-spam",
            "churn/steady-slow",
            "churn/steady-fast",
            "churn/catastrophe",
            "churn/flash-crowd",
            "churn/freeriders",
            "multistream/disjoint-audiences",
            "multistream/overlapping-audiences",
            "multistream/selective-freeriders",
            "multistream/rate-asymmetry",
            "resilience/gradient-freerider",
            "resilience/gradient-freerider-online",
            "resilience/whitewasher",
            "resilience/partition-waves",
            "resilience/bursty-loss",
            "resilience/adaptive-colluders",
            "scale/1k",
            "scale/10k",
            "scale/100k",
            "workload/diurnal",
            "workload/regional-failure",
            "workload/zap",
            "smoke/small",
        ] {
            assert!(registry.contains(name), "missing scenario {name}");
            assert!(registry.description(name).is_some());
        }
        assert_eq!(registry.len(), 43);
    }

    #[test]
    fn families_group_names_in_first_appearance_order() {
        let registry = ScenarioRegistry::builtin();
        let families = registry.families();
        let family_names: Vec<&str> = families.iter().map(|(f, _)| *f).collect();
        assert_eq!(family_names.first(), Some(&"fig01"));
        assert_eq!(family_names.last(), Some(&"smoke"));
        let total: usize = families.iter().map(|(_, members)| members.len()).sum();
        assert_eq!(total, registry.len());
        let (_, workload) = families
            .iter()
            .find(|(f, _)| *f == "workload")
            .expect("workload family registered");
        assert_eq!(
            workload,
            &vec![
                "workload/diurnal",
                "workload/regional-failure",
                "workload/zap"
            ]
        );
        assert_eq!(scenario_family("smoke/small"), "smoke");
        assert_eq!(scenario_family("bare"), "bare");
    }

    #[test]
    fn every_builtin_scenario_validates_at_both_scales() {
        let registry = ScenarioRegistry::builtin();
        for name in registry.names() {
            for scale in [Scale::Paper, Scale::Quick] {
                let config = registry.build(name, scale, 7);
                config.validate();
                assert_eq!(config.seed, 7, "{name} must thread the seed through");
            }
        }
    }

    #[test]
    fn registration_replaces_same_name() {
        let mut registry = ScenarioRegistry::new();
        registry.register("x", "first", |_, seed| ScenarioConfig::small_test(10, seed));
        registry.register("x", "second", |_, seed| {
            ScenarioConfig::small_test(12, seed)
        });
        assert_eq!(registry.len(), 1);
        assert_eq!(registry.description("x"), Some("second"));
        assert_eq!(registry.build("x", Scale::Quick, 1).nodes, 12);
    }

    #[test]
    #[should_panic(expected = "unknown scenario")]
    fn unknown_scenario_panics_with_the_known_names() {
        ScenarioRegistry::builtin().build("no/such", Scale::Quick, 1);
    }
}
