//! A complete system participant: gossip node + LiFTinG verifier + partner
//! selector + its own deterministic RNG.

use lifting_core::{CollusionConfig, LiftingConfig, Verifier};
use lifting_gossip::{Behavior, GossipConfig, GossipNode};
use lifting_membership::PartnerSelector;
use lifting_sim::NodeId;
use rand::rngs::SmallRng;

/// One node of the simulated system.
#[derive(Debug)]
pub struct SystemNode {
    /// The three-phase gossip protocol state.
    pub gossip: GossipNode,
    /// The LiFTinG verification engine.
    pub verifier: Verifier,
    /// The partner-selection policy (uniform for honest nodes, biased for
    /// colluders).
    pub selector: PartnerSelector,
    /// The node's private RNG stream.
    pub rng: SmallRng,
    /// Ground truth: whether this node freerides (used only by the metrics,
    /// never by the protocol).
    pub is_freerider: bool,
}

impl SystemNode {
    /// Creates a node.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: NodeId,
        gossip_config: GossipConfig,
        behavior: Behavior,
        lifting_config: LiftingConfig,
        collusion: CollusionConfig,
        selector: PartnerSelector,
        rng: SmallRng,
        is_freerider: bool,
    ) -> Self {
        let fanout = gossip_config.fanout;
        SystemNode {
            gossip: GossipNode::new(id, gossip_config, behavior),
            verifier: Verifier::new(id, fanout, lifting_config, collusion),
            selector,
            rng,
            is_freerider,
        }
    }

    /// The node's identifier.
    pub fn id(&self) -> NodeId {
        self.gossip.id()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifting_sim::derive_rng;

    #[test]
    fn node_wires_gossip_and_verifier_with_the_same_identity() {
        let node = SystemNode::new(
            NodeId::new(4),
            GossipConfig::planetlab(),
            Behavior::Honest,
            LiftingConfig::planetlab(),
            CollusionConfig::none(),
            PartnerSelector::uniform(),
            derive_rng(1, 4),
            false,
        );
        assert_eq!(node.id(), NodeId::new(4));
        assert_eq!(node.gossip.id(), node.verifier.id());
        assert!(!node.is_freerider);
    }
}
