//! Metric readouts of a live [`SystemWorld`]: score snapshots, the
//! stream-health curve and the assembled [`RunOutcome`].
//!
//! Kept apart from `world.rs` so the world module stays focused on event
//! dispatch and the cross-layer glue.

use lifting_gossip::{Chunk, StreamHealth};
use lifting_sim::{NodeId, SimDuration, SimTime};

use crate::metrics::{layer_breakdown, ChurnStats, NodeOutcome, RunOutcome, ScoreSnapshot};
use crate::world::SystemWorld;

impl SystemWorld {
    /// Reads the current normalized score of every node (min vote over its
    /// managers) together with its expulsion status.
    pub fn score_snapshot(&self, at: SimTime) -> ScoreSnapshot {
        let outcomes = (1..self.config.nodes)
            .map(|i| {
                let id = NodeId::new(i as u32);
                let replies: Vec<f64> = self
                    .assignment
                    .managers_of(id)
                    .iter()
                    .filter_map(|m| self.stacks[m.index()].reputation.score(id))
                    .collect();
                NodeOutcome {
                    node: id,
                    is_freerider: self.stacks[i].is_freerider,
                    score: lifting_reputation::aggregate_min(&replies),
                    expelled: self.expelled[i],
                }
            })
            .collect();
        ScoreSnapshot { at, outcomes }
    }

    /// Computes the stream-health curve (Figure 1) over the given lags, using
    /// only the chunks emitted at least `settle` before `now` so that chunks
    /// still in flight do not bias the result.
    pub fn stream_health(
        &self,
        now: SimTime,
        lags: &[SimDuration],
        settle: SimDuration,
    ) -> StreamHealth {
        let reference: Vec<Chunk> = self
            .emitted_chunks
            .iter()
            .copied()
            .filter(|c| c.emitted_at + settle <= now)
            .collect();
        let buffers: Vec<_> = self
            .stacks
            .iter()
            .skip(1)
            .map(|s| s.gossip.node.playout())
            .collect();
        StreamHealth::compute(
            &buffers,
            &reference,
            lags,
            self.config.gossip.clear_stream_threshold,
        )
    }

    /// Membership dynamics observed so far (all zero in a static population).
    pub fn churn_stats(&self) -> ChurnStats {
        let expelled = self.expelled_count();
        ChurnStats {
            sessions: self.churn_sessions,
            departures: self.churn_departures,
            rejoins: self.churn_rejoins,
            audits_aborted_by_departure: self.audits_aborted_by_departure,
            offline_at_end: self.directory.len() - self.directory.active_count() - expelled,
        }
    }

    /// Assembles the final outcome of a run.
    pub fn run_outcome(
        &self,
        now: SimTime,
        snapshots: Vec<ScoreSnapshot>,
        lags: &[SimDuration],
    ) -> RunOutcome {
        let traffic = self.network.stats().report();
        RunOutcome {
            finals: self.score_snapshot(now),
            snapshots,
            layer_traffic: layer_breakdown(&traffic),
            traffic,
            emitted_chunks: self.emitted_chunks.clone(),
            stream_health: self.stream_health(now, lags, SimDuration::from_secs(10)),
            expelled_count: self.expelled_count(),
            churn: self.churn_stats(),
            duration: now.saturating_since(SimTime::ZERO),
        }
    }
}
