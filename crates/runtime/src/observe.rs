//! Metric readouts of a live [`SystemWorld`]: score snapshots, the
//! stream-health curves (aggregate and per stream) and the assembled
//! [`RunOutcome`].
//!
//! Kept apart from `world.rs` so the world module stays focused on event
//! dispatch and the cross-layer glue.

use lifting_gossip::{Chunk, StreamHealth};
use lifting_sim::{NodeId, SimDuration, SimTime, StreamId};

use crate::metrics::{
    layer_breakdown, ChurnStats, NodeOutcome, RunOutcome, ScoreSnapshot, StreamOutcome,
};
use crate::world::SystemWorld;

impl SystemWorld {
    /// Reads the current normalized score of every node (min vote over its
    /// managers) together with its expulsion status.
    pub fn score_snapshot(&self, at: SimTime) -> ScoreSnapshot {
        let outcomes = (1..self.config.nodes)
            .map(|i| {
                let id = NodeId::new(i as u32);
                let replies: Vec<f64> = self
                    .assignment
                    .managers_of(id)
                    .iter()
                    .filter_map(|m| self.stacks[m.index()].reputation.score(id))
                    .collect();
                NodeOutcome {
                    node: id,
                    is_freerider: self.hot.freerider[i],
                    score: lifting_reputation::aggregate_min(&replies),
                    expelled: self.expelled[i],
                }
            })
            .collect();
        ScoreSnapshot { at, outcomes }
    }

    /// Computes the primary stream's health curve (Figure 1) over the given
    /// lags, using only the chunks emitted at least `settle` before `now` so
    /// that chunks still in flight do not bias the result.
    pub fn stream_health(
        &self,
        now: SimTime,
        lags: &[SimDuration],
        settle: SimDuration,
    ) -> StreamHealth {
        self.stream_health_of(StreamId::PRIMARY, now, lags, settle)
    }

    /// The health curve of one stream, computed over that stream's
    /// subscribers only (a node that never tuned in cannot be "missing" the
    /// channel). In single-channel runs every node subscribes, so this is
    /// the historical whole-population curve.
    pub fn stream_health_of(
        &self,
        stream: StreamId,
        now: SimTime,
        lags: &[SimDuration],
        settle: SimDuration,
    ) -> StreamHealth {
        let reference: Vec<Chunk> = self.emitted[stream.index()]
            .iter()
            .copied()
            .filter(|c| c.emitted_at + settle <= now)
            .collect();
        let buffers: Vec<_> = self
            .stacks
            .iter()
            .skip(1)
            .filter(|s| self.directory.is_subscribed(s.id(), stream))
            .map(|s| s.plane(stream).gossip.node.playout())
            .collect();
        StreamHealth::compute(
            &buffers,
            &reference,
            lags,
            self.config.gossip.clear_stream_threshold,
        )
    }

    /// Estimated heap bytes of the whole simulated system's protocol state:
    /// every stack, the network's link tables, the directory, the manager
    /// assignment and the world-level dense columns. A deterministic capacity
    /// walk (no allocator queries), so the figure is bit-identical across
    /// worker counts and shard counts; executor scratch is deliberately
    /// excluded — it belongs to the runner, not to the simulated system.
    pub fn estimated_memory_bytes(&self) -> u64 {
        use std::mem::size_of;
        let stacks: usize = self.stacks.iter().map(|s| s.estimated_heap_bytes()).sum();
        let emitted: usize = self
            .emitted
            .iter()
            .map(|e| e.capacity() * size_of::<Chunk>())
            .sum();
        let voters: usize = self
            .expulsion_voters
            .iter()
            .map(|v| v.capacity() * size_of::<NodeId>())
            .sum();
        (stacks
            + self.stacks.capacity() * size_of::<crate::layers::NodeStack>()
            + self.network.estimated_heap_bytes()
            + self.directory.estimated_heap_bytes()
            + self.assignment.estimated_heap_bytes()
            + self.hot.estimated_heap_bytes()
            + emitted
            + voters
            + self.expulsion_voters.capacity() * size_of::<Vec<NodeId>>()
            + self.blame_counts.capacity() * size_of::<u64>()
            + self.blame_values.capacity() * size_of::<f64>()
            + self.expelled.capacity()
            + self.partition_holds.capacity()) as u64
    }

    /// [`estimated_memory_bytes`](Self::estimated_memory_bytes) divided by
    /// the population — the scale experiments' headline memory metric.
    pub fn memory_per_node_bytes(&self) -> f64 {
        self.estimated_memory_bytes() as f64 / self.config.nodes.max(1) as f64
    }

    /// Membership dynamics observed so far (all zero in a static population).
    pub fn churn_stats(&self) -> ChurnStats {
        let expelled = self.expelled_count();
        ChurnStats {
            sessions: self.churn_sessions,
            departures: self.churn_departures,
            rejoins: self.churn_rejoins,
            audits_aborted_by_departure: self.audits_aborted_by_departure,
            offline_at_end: self.directory.len() - self.directory.active_count() - expelled,
        }
    }

    /// Per-stream readouts: each channel's health over its own audience plus
    /// the blame volume its verification attributed.
    pub fn per_stream_outcomes(
        &self,
        now: SimTime,
        lags: &[SimDuration],
        settle: SimDuration,
    ) -> Vec<StreamOutcome> {
        (0..self.stream_count())
            .map(|s| {
                let stream = StreamId::new(s as u16);
                let subscribers = (1..self.config.nodes)
                    .filter(|i| self.directory.is_subscribed(NodeId::new(*i as u32), stream))
                    .count();
                let blames = (0..self.config.nodes)
                    .map(|i| self.blames_against(NodeId::new(i as u32), stream))
                    .sum();
                let blame_value = (0..self.config.nodes)
                    .map(|i| self.blame_value_against(NodeId::new(i as u32), stream))
                    .sum();
                let freerider_blame_value = (0..self.config.nodes)
                    .filter(|i| self.hot.freerider[*i])
                    .map(|i| self.blame_value_against(NodeId::new(i as u32), stream))
                    .sum();
                StreamOutcome {
                    stream,
                    subscribers,
                    emitted_chunks: self.emitted[s].len(),
                    stream_health: self.stream_health_of(stream, now, lags, settle),
                    blames,
                    blame_value,
                    freerider_blame_value,
                }
            })
            .collect()
    }

    /// Assembles the final outcome of a run.
    pub fn run_outcome(
        &self,
        now: SimTime,
        snapshots: Vec<ScoreSnapshot>,
        lags: &[SimDuration],
    ) -> RunOutcome {
        let traffic = self.network.stats().report();
        let settle = SimDuration::from_secs(10);
        // The headline curve is stream 0's: reuse the per-stream readout
        // rather than paying for the most expensive metric twice.
        let per_stream = self.per_stream_outcomes(now, lags, settle);
        let stream_health = per_stream[0].stream_health.clone();
        RunOutcome {
            finals: self.score_snapshot(now),
            snapshots,
            layer_traffic: layer_breakdown(&traffic),
            traffic,
            emitted_chunks: self.emitted[0].clone(),
            stream_health,
            per_stream,
            expelled_count: self.expelled_count(),
            churn: self.churn_stats(),
            confirm_retry: self.confirm_retry_totals(),
            audit_rpc: self.audits.rpc_stats(),
            recovery: self.recovery.clone(),
            memory_per_node_bytes: self.memory_per_node_bytes(),
            duration: now.saturating_since(SimTime::ZERO),
        }
    }

    /// Confirm-RPC hardening counters summed over every node's planes (all
    /// zero when `confirm_retries` is 0 — the paper's semantics).
    pub fn confirm_retry_totals(&self) -> lifting_core::ConfirmRetryStats {
        let mut total = lifting_core::ConfirmRetryStats::default();
        for stack in &self.stacks {
            let stats = stack.confirm_retry_stats();
            total.timeouts += stats.timeouts;
            total.resends += stats.resends;
            total.aborts += stats.aborts;
        }
        total
    }
}
