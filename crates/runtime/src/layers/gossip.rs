//! The dissemination plane: three-phase gossip plus partner selection.

use lifting_gossip::{
    Chunk, ChunkId, GossipMessage, GossipNode, ProposePayload, ProposeRound, RequestPayload,
    ServePayload,
};
use lifting_membership::PartnerSelector;
use lifting_sim::{NodeId, SimTime};

use super::{Downcall, Layer, LayerEnv};
use crate::message::Message;

/// Typed upcalls the gossip layer emits to the verification layer above it.
///
/// These are exactly the observation points LiFTinG instruments (Section 5):
/// the verification layer records history from them and arms its direct
/// verification / cross-checking timers.
#[derive(Debug)]
pub enum GossipUpcall {
    /// A new gossip period began (the node's period counter after the tick).
    PeriodBegan(u64),
    /// The node ran its propose phase; the round lists partners, chunks and
    /// the chunks' sources (used for acknowledgments).
    RoundStarted(ProposeRound),
    /// A proposal from `from` was received (recorded in the fanin history).
    ProposeReceived {
        /// The proposer.
        from: NodeId,
        /// Proposed chunk ids (shared with the wire payload and, once
        /// recorded, with the verification history — no copy on this path).
        chunks: std::sync::Arc<[ChunkId]>,
    },
    /// A request for `chunks` was sent to `to` (arms the serve check).
    RequestSent {
        /// The proposer the request goes to.
        to: NodeId,
        /// Requested chunk ids (shared with the wire payload).
        chunks: std::sync::Arc<[ChunkId]>,
    },
    /// This node served `chunks` to `to` (arms the ack check).
    ChunksServed {
        /// The requester.
        to: NodeId,
        /// Served chunk ids.
        chunks: Vec<ChunkId>,
    },
    /// A serve of `chunk` from `from` arrived (satisfies pending checks).
    ServeReceived {
        /// The server.
        from: NodeId,
        /// The chunk.
        chunk: ChunkId,
    },
}

/// The dissemination layer of one node: the sans-IO gossip state machine and
/// the partner-selection policy the adversary configured.
#[derive(Debug)]
pub struct GossipLayer {
    /// The three-phase gossip protocol state.
    pub node: GossipNode,
    /// The partner-selection policy (uniform for honest nodes, biased for
    /// colluders).
    pub selector: PartnerSelector,
}

impl GossipLayer {
    /// Creates the layer.
    pub fn new(node: GossipNode, selector: PartnerSelector) -> Self {
        GossipLayer { node, selector }
    }

    /// Runs one propose phase: picks the partners, starts the round, queues
    /// the propose messages, and reports what happened upward.
    ///
    /// Note the emission order: the upcalls describe the round *before* the
    /// propose sends are queued, but the stack appends the resulting
    /// verification downcalls ahead of `sends` — acknowledgments go on the
    /// wire before the proposals, exactly as the monolithic runtime did.
    pub fn on_tick(
        &mut self,
        env: &mut LayerEnv<'_>,
        sends: &mut Vec<Downcall>,
        upcalls: &mut Vec<GossipUpcall>,
    ) {
        let fanout = self.node.desired_fanout(env.rng);
        let partners = self
            .selector
            .select(env.me, fanout, env.directory, env.stream, env.rng);
        let round = self.node.begin_propose_round(env.now, partners, env.rng);
        if env.upcalls_consumed {
            upcalls.push(GossipUpcall::PeriodBegan(self.node.period()));
        }
        if let Some(round) = round {
            let payload = ProposePayload {
                period: round.period,
                chunks: round.chunks.clone(),
            };
            for partner in &round.partners {
                sends.push(Downcall::Send {
                    to: *partner,
                    message: Message::Gossip(GossipMessage::Propose(payload.clone())),
                });
            }
            if env.upcalls_consumed {
                upcalls.push(GossipUpcall::RoundStarted(round));
            }
        }
    }

    /// The chunks this node would serve `from` for `requested` (phase 3),
    /// applying the adversary-configured partial-serve behaviour.
    fn serve(&mut self, env: &mut LayerEnv<'_>, from: NodeId, requested: &[ChunkId]) -> Vec<Chunk> {
        self.node.on_request(from, requested, env.rng)
    }

    /// Stores a chunk the node itself produced (the stream source calls this).
    pub fn inject_source_chunk(&mut self, chunk: Chunk, now: SimTime) {
        self.node.inject_source_chunk(chunk, now);
    }
}

impl Layer for GossipLayer {
    type Inbound = GossipMessage;
    type Upcall = GossipUpcall;

    fn name(&self) -> &'static str {
        "gossip"
    }

    fn on_inbound(
        &mut self,
        env: &mut LayerEnv<'_>,
        from: NodeId,
        inbound: GossipMessage,
        out: &mut Vec<Downcall>,
        upcalls: &mut Vec<GossipUpcall>,
    ) {
        // When the verification plane is disabled the upcalls would be
        // discarded unheard; skip the clones they carry (this never changes
        // RNG draws or wire order — only allocations).
        let taps = env.upcalls_consumed;
        match inbound {
            GossipMessage::Propose(p) => {
                let wanted = self.node.on_propose(from, &p.chunks, env.now);
                if taps {
                    // The payload is owned here, so the upcall takes the
                    // chunk list by move — no per-propose clone.
                    upcalls.push(GossipUpcall::ProposeReceived {
                        from,
                        chunks: p.chunks,
                    });
                }
                if !wanted.is_empty() {
                    // One shared list serves the wire payload, the serve
                    // check and the upcall (refcounts, not copies).
                    let wanted: std::sync::Arc<[ChunkId]> = wanted.into();
                    if taps {
                        upcalls.push(GossipUpcall::RequestSent {
                            to: from,
                            chunks: wanted.clone(),
                        });
                    }
                    out.push(Downcall::Send {
                        to: from,
                        message: Message::Gossip(GossipMessage::Request(RequestPayload {
                            chunks: wanted,
                        })),
                    });
                }
            }
            GossipMessage::Request(r) => {
                let served = self.serve(env, from, &r.chunks);
                if served.is_empty() {
                    return;
                }
                if taps {
                    upcalls.push(GossipUpcall::ChunksServed {
                        to: from,
                        chunks: served.iter().map(|c| c.id).collect(),
                    });
                }
                for chunk in served {
                    out.push(Downcall::Send {
                        to: from,
                        message: Message::Gossip(GossipMessage::Serve(ServePayload { chunk })),
                    });
                }
            }
            GossipMessage::Serve(s) => {
                self.node.on_serve(from, s.chunk, env.now);
                if taps {
                    upcalls.push(GossipUpcall::ServeReceived {
                        from,
                        chunk: s.chunk.id,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifting_gossip::{Behavior, GossipConfig};
    use lifting_membership::Directory;
    use lifting_sim::derive_rng;

    fn env<'a>(
        me: u32,
        directory: &'a Directory,
        rng: &'a mut rand::rngs::SmallRng,
    ) -> LayerEnv<'a> {
        LayerEnv {
            me: NodeId::new(me),
            stream: lifting_sim::StreamId::PRIMARY,
            now: SimTime::ZERO,
            directory,
            rng,
            upcalls_consumed: true,
        }
    }

    #[test]
    fn tick_emits_period_and_round_with_propose_sends() {
        let directory = Directory::new(10);
        let mut rng = derive_rng(1, 0);
        let mut layer = GossipLayer::new(
            GossipNode::new(NodeId::new(0), GossipConfig::planetlab(), Behavior::Honest),
            PartnerSelector::uniform(),
        );
        layer.inject_source_chunk(
            Chunk::new(ChunkId::primary(1), 1_000, SimTime::ZERO),
            SimTime::ZERO,
        );
        let mut sends = Vec::new();
        let mut upcalls = Vec::new();
        layer.on_tick(&mut env(0, &directory, &mut rng), &mut sends, &mut upcalls);
        assert!(matches!(upcalls[0], GossipUpcall::PeriodBegan(1)));
        assert!(matches!(upcalls[1], GossipUpcall::RoundStarted(_)));
        assert_eq!(sends.len(), 7, "one propose per partner at fanout 7");
    }

    #[test]
    fn propose_inbound_produces_request_send_and_upcalls() {
        let directory = Directory::new(10);
        let mut rng = derive_rng(2, 0);
        let mut layer = GossipLayer::new(
            GossipNode::new(NodeId::new(1), GossipConfig::planetlab(), Behavior::Honest),
            PartnerSelector::uniform(),
        );
        let mut out = Vec::new();
        let mut upcalls = Vec::new();
        layer.on_inbound(
            &mut env(1, &directory, &mut rng),
            NodeId::new(0),
            GossipMessage::Propose(ProposePayload {
                period: 0,
                chunks: vec![ChunkId::primary(9)].into(),
            }),
            &mut out,
            &mut upcalls,
        );
        assert_eq!(upcalls.len(), 2, "propose-received then request-sent");
        assert!(matches!(
            &out[..],
            [Downcall::Send {
                message: Message::Gossip(GossipMessage::Request(_)),
                ..
            }]
        ));
    }

    #[test]
    fn disabled_verification_plane_skips_upcall_construction() {
        let directory = Directory::new(10);
        let mut rng = derive_rng(3, 0);
        let mut layer = GossipLayer::new(
            GossipNode::new(NodeId::new(1), GossipConfig::planetlab(), Behavior::Honest),
            PartnerSelector::uniform(),
        );
        let mut out = Vec::new();
        let mut upcalls = Vec::new();
        let mut env = env(1, &directory, &mut rng);
        env.upcalls_consumed = false;
        layer.on_inbound(
            &mut env,
            NodeId::new(0),
            GossipMessage::Propose(ProposePayload {
                period: 0,
                chunks: vec![ChunkId::primary(9)].into(),
            }),
            &mut out,
            &mut upcalls,
        );
        assert!(upcalls.is_empty(), "no verification plane, no upcalls");
        assert_eq!(out.len(), 1, "the request still goes on the wire");
    }
}
