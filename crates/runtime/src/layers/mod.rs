//! The layered node protocol stack.
//!
//! The paper structures each LiFTinG node as distinct planes: gossip
//! dissemination (Section 3), direct verification and a-posteriori audits
//! (Section 5), and score/reputation management (Section 5.4). This module
//! mirrors that structure as composable layers:
//!
//! ```text
//!                ┌─────────────────────────┐
//!                │     ReputationLayer     │  manager role: blames → scores
//!                ├─────────────────────────┤
//!                │    VerificationLayer    │  direct verification, acks,
//!                │                         │  cross-checking, audit answers
//!                ├─────────────────────────┤
//!                │       GossipLayer       │  propose / request / serve
//!                └───────────┬─────────────┘
//!                            │  Downcall (send / timer / blame)
//!                      lifting-net
//! ```
//!
//! * Each layer implements the [`Layer`] trait: wire traffic enters through
//!   `on_inbound`, **upcalls** (typed notifications) flow to the layer above,
//!   and **downcalls** ([`Downcall`]) flow to the [`NodeStack`], which routes
//!   them to the network and the event scheduler.
//! * Misbehaviour is not wired into the layers: an [`Adversary`]
//!   implementation reshapes each plane (dissemination behaviour, partner
//!   selection, verification collusion) and may inject traffic of its own,
//!   so attacks compose across layers instead of being scattered through the
//!   runtime.
//! * A-posteriori audits need cross-node state (the auditor polls witnesses),
//!   so they are coordinated by [`audit::AuditCoordinator`] over the whole
//!   stack array rather than inside a single node's stack.
//!
//! See `ARCHITECTURE.md` at the repository root for the full diagram and the
//! mapping from each layer to the paper section it implements.

pub mod adversary;
pub mod audit;
pub mod gossip;
pub mod reputation;
pub mod stack;
pub mod verification;

pub use adversary::{
    AdaptiveColluder, Adversary, BlameSpammer, Colluder, FeedbackAction, Freerider,
    GradientFreerider, Honest, OnOffFreerider, SelectiveFreerider, Whitewasher,
};
pub use audit::{AuditCoordinator, AuditOutcome, AuditRpcStats};
pub use gossip::{GossipLayer, GossipUpcall};
pub use reputation::ReputationLayer;
pub use stack::{NodeStack, StreamPlane};
pub use verification::VerificationLayer;

use lifting_core::{Blame, VerifierTimer};
use lifting_membership::Directory;
use lifting_sim::{NodeId, SimTime, StreamId};
use rand::rngs::SmallRng;

use crate::message::Message;

/// A request a layer hands down the stack for the runtime to execute.
///
/// Downcalls are collected in order: the order in which a stack emits them is
/// the order in which the runtime puts messages on the wire, which keeps the
/// network's RNG consumption — and therefore whole runs — deterministic.
#[derive(Debug)]
pub enum Downcall {
    /// Put a message on the wire (the transport is resolved from the
    /// network's per-category [`lifting_net::TransportPolicy`]).
    Send {
        /// Destination node.
        to: NodeId,
        /// The message.
        message: Message,
    },
    /// Arm a verifier timer for this node.
    StartTimer {
        /// The stream plane whose verifier owns the timer (tokens are
        /// plane-local; the runtime echoes the stream back on expiry).
        stream: StreamId,
        /// The timer to arm.
        timer: VerifierTimer,
        /// When it expires.
        deadline: SimTime,
    },
    /// Route a blame to the target's reputation managers.
    Blame(Blame),
}

/// Everything a layer may consult while handling traffic: the node's
/// identity, the simulated clock, the membership view and the node's private
/// RNG stream.
pub struct LayerEnv<'a> {
    /// The node this stack belongs to.
    pub me: NodeId,
    /// The stream plane currently being driven (partner selection and
    /// subscription checks are per-stream; the primary stream in every
    /// single-channel run).
    pub stream: StreamId,
    /// Current simulated time.
    pub now: SimTime,
    /// Membership view (read-only: layers never mutate the directory).
    pub directory: &'a Directory,
    /// The node's private deterministic RNG stream.
    pub rng: &'a mut SmallRng,
    /// True when the verification plane consumes upcalls in this run. Lower
    /// layers may skip *constructing* data-carrying upcalls when false (pure
    /// allocation avoidance — it must never change RNG draws or wire order).
    pub upcalls_consumed: bool,
}

/// One plane of the node protocol stack.
///
/// A layer consumes its own slice of the wire traffic (`Inbound`), emits
/// typed upcalls to the layer above, and pushes [`Downcall`]s for the runtime
/// into the output queue. Layers never touch the network or the scheduler
/// directly — that is what keeps them unit-testable sans-IO and the stack's
/// RNG consumption deterministic.
pub trait Layer {
    /// The wire messages this layer consumes.
    type Inbound;
    /// The typed notification this layer emits to the layer above it.
    type Upcall;

    /// Name of the layer, used in diagnostics and per-layer metrics.
    fn name(&self) -> &'static str;

    /// Handles a message addressed to this layer, pushing downcalls into
    /// `out` and upcalls for the layer above into `upcalls`. Both buffers
    /// are caller-owned scratch space recycled across events, keeping the
    /// hot path allocation-free.
    fn on_inbound(
        &mut self,
        env: &mut LayerEnv<'_>,
        from: NodeId,
        inbound: Self::Inbound,
        out: &mut Vec<Downcall>,
        upcalls: &mut Vec<Self::Upcall>,
    );
}
