//! The reputation plane: the manager role of one node.

use lifting_core::VerificationMessage;
use lifting_reputation::ManagerState;
use lifting_sim::NodeId;

use super::{Downcall, Layer, LayerEnv};

/// The reputation layer of one node: its manager score book (Section 5.4,
/// Alliatrust-style). Every node is potentially a manager for `m` other
/// nodes; the manager assignment decides which blames reach it.
#[derive(Debug, Default)]
pub struct ReputationLayer {
    /// The score records of the nodes this manager is responsible for.
    pub manager: ManagerState,
}

impl ReputationLayer {
    /// Creates an empty layer.
    pub fn new() -> Self {
        ReputationLayer {
            manager: ManagerState::new(),
        }
    }

    /// Registers `node` under this manager.
    pub fn register(&mut self, node: NodeId) {
        self.manager.register(node);
    }

    /// Ends one gossip period: increments `r` and credits the per-period
    /// compensation `b̃` for every managed node (Equation 5).
    pub fn end_period(&mut self, compensation_per_period: f64) {
        self.manager.end_period(compensation_per_period);
    }

    /// Churn-aware period end: only the managed nodes for which `observed`
    /// returns true age (departed nodes' scores freeze while they are
    /// offline; see [`lifting_reputation::ManagerState::end_period_filtered`]).
    pub fn end_period_filtered(
        &mut self,
        compensation_per_period: f64,
        observed: impl Fn(NodeId) -> bool,
    ) {
        self.manager
            .end_period_filtered(compensation_per_period, observed);
    }

    /// Per-node credited period end: `None` freezes the record (departed),
    /// `Some(c)` ages it and credits `c` — the multi-channel runtime passes
    /// each node's subscription-weighted compensation here. Returns the
    /// number of records visited (always the managed count, never the world
    /// size — see [`lifting_reputation::ManagerState::end_period_credited`]).
    pub fn end_period_credited(&mut self, credit: impl Fn(NodeId) -> Option<f64>) -> usize {
        self.manager.end_period_credited(credit)
    }

    /// Nodes newly voted for expulsion at the current scores (Equation 6).
    pub fn expulsion_votes(&mut self, eta: f64, min_periods: u64) -> Vec<NodeId> {
        self.manager.expulsion_votes(eta, min_periods)
    }

    /// Allocation-free variant of [`expulsion_votes`](Self::expulsion_votes):
    /// appends the newly voted nodes to `out` in ascending id order.
    pub fn expulsion_votes_into(&mut self, eta: f64, min_periods: u64, out: &mut Vec<NodeId>) {
        self.manager.expulsion_votes_into(eta, min_periods, out);
    }

    /// The normalized score this manager holds for `node`, if managed.
    pub fn score(&self, node: NodeId) -> Option<f64> {
        self.manager.normalized_score(node)
    }

    /// Heap bytes held by the manager book (capacity walk, deterministic).
    pub fn estimated_heap_bytes(&self) -> usize {
        self.manager.estimated_heap_bytes()
    }
}

impl Layer for ReputationLayer {
    /// The reputation layer consumes blame messages addressed to this node in
    /// its manager role.
    type Inbound = VerificationMessage;
    type Upcall = ();

    fn name(&self) -> &'static str {
        "reputation"
    }

    fn on_inbound(
        &mut self,
        _env: &mut LayerEnv<'_>,
        _from: NodeId,
        inbound: VerificationMessage,
        _out: &mut Vec<Downcall>,
        _upcalls: &mut Vec<()>,
    ) {
        if let VerificationMessage::Blame(blame) = inbound {
            self.manager.apply_blame(blame.target, blame.value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifting_core::{Blame, BlameReason};
    use lifting_membership::Directory;
    use lifting_sim::{derive_rng, SimTime};

    #[test]
    fn blames_lower_the_managed_score_and_trigger_votes() {
        let mut layer = ReputationLayer::new();
        let target = NodeId::new(3);
        layer.register(target);
        let directory = Directory::new(4);
        let mut rng = derive_rng(0, 0);
        let mut env = LayerEnv {
            me: NodeId::new(1),
            stream: lifting_sim::StreamId::PRIMARY,
            now: SimTime::ZERO,
            directory: &directory,
            rng: &mut rng,
            upcalls_consumed: true,
        };
        let mut out = Vec::new();
        layer.on_inbound(
            &mut env,
            NodeId::new(2),
            VerificationMessage::Blame(Blame::new(target, 30.0, BlameReason::MissingAck)),
            &mut out,
            &mut Vec::new(),
        );
        assert!(out.is_empty());
        layer.end_period(0.0);
        assert!(layer.score(target).unwrap() < -9.75);
        assert_eq!(layer.expulsion_votes(-9.75, 1), vec![target]);
        // A second sweep does not re-vote.
        assert!(layer.expulsion_votes(-9.75, 1).is_empty());
    }
}
