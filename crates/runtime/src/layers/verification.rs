//! The verification plane: LiFTinG direct verification and cross-checking.

use lifting_core::{VerificationMessage, Verifier, VerifierAction, VerifierTimer};
use lifting_sim::NodeId;

use super::{Downcall, GossipUpcall, Layer, LayerEnv};
use crate::message::Message;

/// The verification layer of one node: wraps the sans-IO [`Verifier`] state
/// machine, consumes the gossip layer's upcalls to build the node's history
/// and arm checks, and turns verifier actions into [`Downcall`]s.
///
/// When the layer is disabled (`lifting_enabled = false` in the scenario) it
/// swallows gossip upcalls without recording anything, reproducing the
/// paper's "gossip without LiFTinG" baseline of Figure 1.
#[derive(Debug)]
pub struct VerificationLayer {
    /// The LiFTinG verification engine.
    pub verifier: Verifier,
    enabled: bool,
    /// Recycled staging buffer for verifier actions: handlers append into it
    /// (via the `*_into` variants) instead of allocating a `Vec` per handled
    /// message, keeping the verification hot path allocation-free.
    scratch_actions: Vec<VerifierAction>,
}

impl VerificationLayer {
    /// Creates the layer; `enabled` mirrors the scenario's `lifting_enabled`.
    pub fn new(verifier: Verifier, enabled: bool) -> Self {
        VerificationLayer {
            verifier,
            enabled,
            scratch_actions: Vec::new(),
        }
    }

    /// True if the verification plane is active in this run.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The stream plane this layer verifies.
    pub fn stream(&self) -> lifting_sim::StreamId {
        self.verifier.stream()
    }

    /// Converts verifier actions into downcalls, preserving their order.
    /// Timers are tagged with this plane's stream so the runtime can route
    /// the expiry back into the right verifier (tokens are plane-local).
    fn push_actions(
        &self,
        actions: impl IntoIterator<Item = VerifierAction>,
        out: &mut Vec<Downcall>,
    ) {
        let stream = self.verifier.stream();
        for action in actions {
            out.push(match action {
                VerifierAction::SendAck { to, ack } => Downcall::Send {
                    to,
                    message: Message::Verification(VerificationMessage::Ack(Box::new(ack))),
                },
                VerifierAction::SendConfirm { to, confirm } => Downcall::Send {
                    to,
                    message: Message::Verification(VerificationMessage::Confirm(confirm)),
                },
                VerifierAction::SendConfirmResponse { to, response } => Downcall::Send {
                    to,
                    message: Message::Verification(VerificationMessage::ConfirmResponse(response)),
                },
                VerifierAction::Blame(blame) => Downcall::Blame(blame),
                VerifierAction::StartTimer { timer, deadline } => Downcall::StartTimer {
                    stream,
                    timer,
                    deadline,
                },
            });
        }
    }

    /// Consumes one gossip upcall: records history and arms direct
    /// verification / cross-checking checks (Section 5).
    pub fn on_gossip_upcall(
        &mut self,
        env: &mut LayerEnv<'_>,
        upcall: GossipUpcall,
        out: &mut Vec<Downcall>,
    ) {
        if !self.enabled {
            return;
        }
        let mut actions = std::mem::take(&mut self.scratch_actions);
        debug_assert!(actions.is_empty());
        match upcall {
            GossipUpcall::PeriodBegan(period) => self.verifier.begin_period(period),
            GossipUpcall::RoundStarted(round) => {
                self.verifier
                    .on_propose_round_into(&round, env.now, &mut actions);
            }
            GossipUpcall::ProposeReceived { from, chunks } => {
                self.verifier.on_propose_received(from, chunks, env.now);
            }
            GossipUpcall::RequestSent { to, chunks } => {
                self.verifier
                    .on_request_sent_into(to, chunks, env.now, &mut actions);
            }
            GossipUpcall::ChunksServed { to, chunks } => {
                self.verifier
                    .on_chunks_served_into(to, chunks, env.now, &mut actions);
            }
            GossipUpcall::ServeReceived { from, chunk } => {
                self.verifier.on_serve_received(from, chunk, env.now);
            }
        }
        self.push_actions(actions.drain(..), out);
        self.scratch_actions = actions;
    }

    /// A verifier timer expired.
    pub fn on_timer(
        &mut self,
        env: &mut LayerEnv<'_>,
        timer: VerifierTimer,
        out: &mut Vec<Downcall>,
    ) {
        let mut actions = std::mem::take(&mut self.scratch_actions);
        self.verifier.on_timer_into(timer, env.now, &mut actions);
        self.push_actions(actions.drain(..), out);
        self.scratch_actions = actions;
    }
}

impl Layer for VerificationLayer {
    type Inbound = VerificationMessage;
    /// Blames flow up to the reputation plane, but they are routed by the
    /// runtime (the managers live on *other* nodes), so the verification
    /// layer has no in-stack upcall.
    type Upcall = ();

    fn name(&self) -> &'static str {
        "verification"
    }

    fn on_inbound(
        &mut self,
        env: &mut LayerEnv<'_>,
        from: NodeId,
        inbound: VerificationMessage,
        out: &mut Vec<Downcall>,
        _upcalls: &mut Vec<()>,
    ) {
        match inbound {
            VerificationMessage::Ack(ack) => {
                let mut actions = std::mem::take(&mut self.scratch_actions);
                self.verifier
                    .on_ack_into(from, *ack, env.now, env.rng, &mut actions);
                self.push_actions(actions.drain(..), out);
                self.scratch_actions = actions;
            }
            VerificationMessage::Confirm(confirm) => {
                let mut actions = std::mem::take(&mut self.scratch_actions);
                self.verifier
                    .on_confirm_into(from, &confirm, env.now, &mut actions);
                self.push_actions(actions.drain(..), out);
                self.scratch_actions = actions;
            }
            VerificationMessage::ConfirmResponse(response) => {
                self.verifier.on_confirm_response(from, response);
            }
            VerificationMessage::Blame(_) => {
                unreachable!("blames are addressed to the reputation layer")
            }
            VerificationMessage::HistoryRequest | VerificationMessage::HistoryResponse(_) => {
                // Audits are executed synchronously by the audit coordinator;
                // these messages only exist for traffic accounting.
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifting_core::{CollusionConfig, LiftingConfig};
    use lifting_membership::Directory;
    use lifting_sim::{derive_rng, SimTime};

    #[test]
    fn disabled_layer_ignores_gossip_upcalls() {
        let verifier = Verifier::new(
            NodeId::new(1),
            7,
            LiftingConfig::planetlab(),
            CollusionConfig::none(),
        );
        let mut layer = VerificationLayer::new(verifier, false);
        let directory = Directory::new(4);
        let mut rng = derive_rng(1, 1);
        let mut env = LayerEnv {
            me: NodeId::new(1),
            stream: lifting_sim::StreamId::PRIMARY,
            now: SimTime::ZERO,
            directory: &directory,
            rng: &mut rng,
            upcalls_consumed: true,
        };
        let mut out = Vec::new();
        layer.on_gossip_upcall(
            &mut env,
            GossipUpcall::RequestSent {
                to: NodeId::new(2),
                chunks: vec![lifting_gossip::ChunkId::primary(1)].into(),
            },
            &mut out,
        );
        assert!(out.is_empty(), "disabled layer must not arm checks");
        assert_eq!(layer.verifier.pending_checks(), 0);
    }

    #[test]
    fn request_sent_arms_a_serve_check_timer() {
        let verifier = Verifier::new(
            NodeId::new(1),
            7,
            LiftingConfig::planetlab(),
            CollusionConfig::none(),
        );
        let mut layer = VerificationLayer::new(verifier, true);
        let directory = Directory::new(4);
        let mut rng = derive_rng(1, 2);
        let mut env = LayerEnv {
            me: NodeId::new(1),
            stream: lifting_sim::StreamId::PRIMARY,
            now: SimTime::ZERO,
            directory: &directory,
            rng: &mut rng,
            upcalls_consumed: true,
        };
        let mut out = Vec::new();
        layer.on_gossip_upcall(
            &mut env,
            GossipUpcall::RequestSent {
                to: NodeId::new(2),
                chunks: vec![lifting_gossip::ChunkId::primary(1)].into(),
            },
            &mut out,
        );
        assert!(matches!(&out[..], [Downcall::StartTimer { .. }]));
        assert_eq!(layer.verifier.pending_checks(), 1);
    }
}
