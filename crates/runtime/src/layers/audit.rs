//! The a-posteriori audit plane (Section 5.3).
//!
//! Audits are the one procedure that cannot live inside a single node's
//! stack: the auditor pulls the target's bounded history over TCP and then
//! polls *other* nodes (the witnesses) to cross-check it. The
//! [`AuditCoordinator`] therefore operates over the whole stack array and
//! the network, and hands the runtime a typed [`AuditOutcome`] to apply.
//!
//! The membership directory gates every witness poll: an expelled or
//! departed node is never contacted (it would be handed a witness slot
//! otherwise — the invariant `runtime/tests/churn_invariants.rs` pins), and
//! a negative verdict that relied on such a missing witness is downgraded to
//! [`AuditOutcome::Aborted`] — the silence of a node that left is
//! indistinguishable from misbehaviour, so the audit times out rather than
//! wedging the cross-check into a wrongful blame or expulsion.

use lifting_core::{AuditOracle, AuditVerdict, Auditor, Blame, BlameReason, VerificationMessage};
use lifting_gossip::ChunkId;
use lifting_membership::Directory;
use lifting_net::{Network, TrafficCategory};
use lifting_sim::{NodeId, SimTime, StreamId};
use serde::{Deserialize, Serialize};

use super::NodeStack;
use crate::scenario::AuditRetryPolicy;

/// What an audit concluded about its target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AuditOutcome {
    /// The history passed every check.
    Pass,
    /// Unconfirmed entries: blame the target proportionally.
    Blame(Blame),
    /// Entropy or phase-count checks failed hard: expel the target.
    Expel,
    /// A witness named in the history departed before it could be polled and
    /// the remaining evidence pointed at a negative verdict: the audit is
    /// abandoned without consequence (it would otherwise convert churn into
    /// blame). Counted per run as `audits_aborted_by_departure`.
    Aborted,
}

/// Counters of the hardened audit-RPC path ([`AuditRetryPolicy`]). All zero
/// when no retry policy is configured — the paper's partition-oblivious
/// behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuditRpcStats {
    /// Audit RPCs (history polls, witness cross-checks) that timed out
    /// because the peer was unreachable.
    pub rpc_timeouts: u64,
    /// RPCs re-sent after a timeout (deterministic backoff).
    pub rpc_retries: u64,
    /// Audits abandoned outright because the auditor or its target stayed
    /// unreachable through every retry.
    pub aborted_unreachable: u64,
}

/// Runs a-posteriori audits over the node stacks.
#[derive(Debug)]
pub struct AuditCoordinator {
    auditor: Auditor,
    retry: Option<AuditRetryPolicy>,
    stats: AuditRpcStats,
}

impl AuditCoordinator {
    /// Creates a coordinator around a configured [`Auditor`].
    pub fn new(auditor: Auditor) -> Self {
        AuditCoordinator {
            auditor,
            retry: None,
            stats: AuditRpcStats::default(),
        }
    }

    /// Enables (or disables, with `None`) the bounded-retry hardening: every
    /// audit RPC first checks reachability, re-sends up to
    /// `policy.attempts` times with deterministic backoff, and degrades the
    /// audit to [`AuditOutcome::Aborted`] when the peer stays unreachable.
    pub fn with_retry(mut self, retry: Option<AuditRetryPolicy>) -> Self {
        self.retry = retry;
        self
    }

    /// The entropy threshold the auditor applies.
    pub fn gamma(&self) -> f64 {
        self.auditor.gamma()
    }

    /// Counters of the hardened RPC path (all zero when the hardening is
    /// off).
    pub fn rpc_stats(&self) -> AuditRpcStats {
        self.stats
    }

    /// Audits `target`'s conduct **on one stream** on behalf of `auditor`:
    /// transfers that plane's history over the network (accounted as audit
    /// traffic), polls the witnesses through the live node states — skipping
    /// any witness the `directory` no longer lists as active — runs the
    /// entropy and cross-checks, and returns the outcome for the runtime to
    /// apply. Histories are plane-local, so an audit always answers for a
    /// specific channel; the blame it may produce carries that stream and
    /// still lands in the target's one cross-stream score.
    #[allow(clippy::too_many_arguments)]
    pub fn audit(
        &mut self,
        stacks: &[NodeStack],
        network: &mut Network,
        directory: &Directory,
        auditor: NodeId,
        target: NodeId,
        stream: StreamId,
        now: SimTime,
    ) -> AuditOutcome {
        // Hardened path: the history poll is an explicit RPC with a timeout.
        // A partitioned target (or auditor) cannot complete the TCP transfer;
        // the poll is re-sent `attempts` times with deterministic backoff —
        // the partition cannot heal mid-audit, so the retries model the
        // timeout traffic — and the audit then degrades to `Aborted` instead
        // of judging the target on evidence it never received.
        if let Some(policy) = self.retry {
            let unreachable = network.is_partitioned(auditor) || network.is_partitioned(target);
            if unreachable {
                let request = VerificationMessage::HistoryRequest.wire_size();
                for attempt in 0..=policy.attempts {
                    let at = now + policy.backoff.saturating_mul(attempt as u64);
                    network.send(at, auditor, target, request, TrafficCategory::Audit);
                    self.stats.rpc_timeouts += 1;
                    if attempt > 0 {
                        self.stats.rpc_retries += 1;
                    }
                }
                self.stats.aborted_unreachable += 1;
                return AuditOutcome::Aborted;
            }
        }
        // Account the TCP history transfer. The history is only read, so the
        // transfer is sized and the audit run entirely from a borrow — the
        // old wiring cloned the whole bounded history twice per audit.
        let history = stacks[target.index()]
            .plane(stream)
            .verification
            .verifier
            .history();
        network.send(
            now,
            auditor,
            target,
            VerificationMessage::HistoryRequest.wire_size(),
            TrafficCategory::Audit,
        );
        network.send(
            now,
            target,
            auditor,
            VerificationMessage::history_response_wire_size(history),
            TrafficCategory::Audit,
        );

        // Poll the witnesses through the real node states, accounting traffic.
        let (report, missing_witness) = {
            let mut oracle = StackAuditOracle {
                stacks,
                network,
                directory,
                auditor,
                stream,
                now,
                missing_witness: false,
                retry: self.retry,
                rpc_timeouts: 0,
                rpc_retries: 0,
            };
            let report = self.auditor.audit(history, &mut oracle);
            self.stats.rpc_timeouts += oracle.rpc_timeouts;
            self.stats.rpc_retries += oracle.rpc_retries;
            (report, oracle.missing_witness)
        };

        if std::env::var_os("LIFTING_AUDIT_DEBUG").is_some() {
            eprintln!(
                "audit of {target}: fanout H={:.2}/thr {:.2} ({} entries), fanin H={:?}/thr {:?}, unconfirmed={}, phases {}/{}, verdict {:?}, missing witness {missing_witness}",
                report.fanout_entropy,
                report.applied_fanout_threshold,
                history.fanout_multiset().len(),
                report.fanin_entropy.map(|h| (h * 100.0).round() / 100.0),
                report.applied_fanin_threshold.map(|h| (h * 100.0).round() / 100.0),
                report.unconfirmed_pushes,
                report.observed_propose_phases,
                report.expected_propose_phases,
                report.verdict
            );
        }
        match report.verdict {
            // Missing witnesses weaken the evidence (unconfirmed pushes, a
            // thinner fanin multiset): give the target the benefit of the
            // doubt rather than converting someone else's departure into a
            // blame or an expulsion. A clean pass stands either way.
            AuditVerdict::Expel | AuditVerdict::Blamed if missing_witness => AuditOutcome::Aborted,
            AuditVerdict::Expel => AuditOutcome::Expel,
            AuditVerdict::Blamed => AuditOutcome::Blame(Blame::on_stream(
                stream,
                target,
                report.blame,
                BlameReason::UnconfirmedHistoryEntry,
            )),
            AuditVerdict::Pass => AuditOutcome::Pass,
        }
    }
}

/// Audit oracle backed by the live node stacks; every poll is accounted as
/// audit traffic (TCP under the paper's transport policy). Inactive witnesses
/// are never contacted: no traffic, no answer, `missing_witness` raised.
struct StackAuditOracle<'a> {
    stacks: &'a [NodeStack],
    network: &'a mut Network,
    directory: &'a Directory,
    auditor: NodeId,
    stream: StreamId,
    now: SimTime,
    missing_witness: bool,
    /// Hardened per-RPC timeout policy (`None` = the paper's behaviour).
    retry: Option<AuditRetryPolicy>,
    rpc_timeouts: u64,
    rpc_retries: u64,
}

impl StackAuditOracle<'_> {
    /// Hardened reachability check for one witness poll of `request_bytes`.
    /// A partitioned witness is still listed by the directory, so the poll
    /// goes out — and times out; it is re-sent with deterministic backoff
    /// until the policy's attempts exhaust. Returns false when the witness
    /// cannot answer (departed, expelled, or partitioned through every
    /// retry).
    fn poll_reaches(&mut self, witness: NodeId, request_bytes: u64) -> bool {
        if !self.directory.is_active(witness) {
            // Departed or expelled: there is no endpoint to poll at all —
            // identical in both the legacy and the hardened path.
            return false;
        }
        let Some(policy) = self.retry else {
            return true;
        };
        if !self.network.is_partitioned(witness) && !self.network.is_partitioned(self.auditor) {
            return true;
        }
        for attempt in 0..=policy.attempts {
            let at = self.now + policy.backoff.saturating_mul(attempt as u64);
            self.network.send(
                at,
                self.auditor,
                witness,
                request_bytes,
                TrafficCategory::Audit,
            );
            self.rpc_timeouts += 1;
            if attempt > 0 {
                self.rpc_retries += 1;
            }
        }
        false
    }
}

impl AuditOracle for StackAuditOracle<'_> {
    fn confirm_proposal(&mut self, witness: NodeId, subject: NodeId, chunks: &[ChunkId]) -> bool {
        let request_bytes = 32 + 8 * chunks.len() as u64;
        if !self.poll_reaches(witness, request_bytes) {
            self.missing_witness = true;
            return false;
        }
        self.network.send(
            self.now,
            self.auditor,
            witness,
            request_bytes,
            TrafficCategory::Audit,
        );
        self.network
            .send(self.now, witness, self.auditor, 24, TrafficCategory::Audit);
        self.stacks[witness.index()]
            .plane(self.stream)
            .verification
            .verifier
            .answer_audit_poll(subject, chunks)
    }

    fn confirm_askers(&mut self, witness: NodeId, subject: NodeId) -> Vec<NodeId> {
        if !self.poll_reaches(witness, 32) {
            self.missing_witness = true;
            return Vec::new();
        }
        self.network
            .send(self.now, self.auditor, witness, 32, TrafficCategory::Audit);
        let askers = self.stacks[witness.index()]
            .plane(self.stream)
            .verification
            .verifier
            .confirm_askers_about(subject);
        self.network.send(
            self.now,
            witness,
            self.auditor,
            24 + 6 * askers.len() as u64,
            TrafficCategory::Audit,
        );
        askers
    }
}
