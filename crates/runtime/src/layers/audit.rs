//! The a-posteriori audit plane (Section 5.3).
//!
//! Audits are the one procedure that cannot live inside a single node's
//! stack: the auditor pulls the target's bounded history over TCP and then
//! polls *other* nodes (the witnesses) to cross-check it. The
//! [`AuditCoordinator`] therefore operates over the whole stack array and
//! the network, and hands the runtime a typed [`AuditOutcome`] to apply.

use lifting_core::{AuditOracle, AuditVerdict, Auditor, Blame, BlameReason, VerificationMessage};
use lifting_gossip::ChunkId;
use lifting_net::{Network, TrafficCategory};
use lifting_sim::{NodeId, SimTime};

use super::NodeStack;

/// What an audit concluded about its target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AuditOutcome {
    /// The history passed every check.
    Pass,
    /// Unconfirmed entries: blame the target proportionally.
    Blame(Blame),
    /// Entropy or phase-count checks failed hard: expel the target.
    Expel,
}

/// Runs a-posteriori audits over the node stacks.
#[derive(Debug)]
pub struct AuditCoordinator {
    auditor: Auditor,
}

impl AuditCoordinator {
    /// Creates a coordinator around a configured [`Auditor`].
    pub fn new(auditor: Auditor) -> Self {
        AuditCoordinator { auditor }
    }

    /// The entropy threshold the auditor applies.
    pub fn gamma(&self) -> f64 {
        self.auditor.gamma()
    }

    /// Audits `target` on behalf of `auditor`: transfers the history over the
    /// network (accounted as audit traffic), polls the witnesses through the
    /// live node states, runs the entropy and cross-checks, and returns the
    /// outcome for the runtime to apply.
    pub fn audit(
        &self,
        stacks: &[NodeStack],
        network: &mut Network,
        auditor: NodeId,
        target: NodeId,
        now: SimTime,
    ) -> AuditOutcome {
        // Account the TCP history transfer. The history is only read, so the
        // transfer is sized and the audit run entirely from a borrow — the
        // old wiring cloned the whole bounded history twice per audit.
        let history = stacks[target.index()].verification.verifier.history();
        network.send(
            now,
            auditor,
            target,
            VerificationMessage::HistoryRequest.wire_size(),
            TrafficCategory::Audit,
        );
        network.send(
            now,
            target,
            auditor,
            VerificationMessage::history_response_wire_size(history),
            TrafficCategory::Audit,
        );

        // Poll the witnesses through the real node states, accounting traffic.
        let report = {
            let mut oracle = StackAuditOracle {
                stacks,
                network,
                auditor,
                now,
            };
            self.auditor.audit(history, &mut oracle)
        };

        if std::env::var_os("LIFTING_AUDIT_DEBUG").is_some() {
            eprintln!(
                "audit of {target}: fanout H={:.2}/thr {:.2} ({} entries), fanin H={:?}/thr {:?}, unconfirmed={}, phases {}/{}, verdict {:?}",
                report.fanout_entropy,
                report.applied_fanout_threshold,
                history.fanout_multiset().len(),
                report.fanin_entropy.map(|h| (h * 100.0).round() / 100.0),
                report.applied_fanin_threshold.map(|h| (h * 100.0).round() / 100.0),
                report.unconfirmed_pushes,
                report.observed_propose_phases,
                report.expected_propose_phases,
                report.verdict
            );
        }
        match report.verdict {
            AuditVerdict::Expel => AuditOutcome::Expel,
            AuditVerdict::Blamed => AuditOutcome::Blame(Blame::new(
                target,
                report.blame,
                BlameReason::UnconfirmedHistoryEntry,
            )),
            AuditVerdict::Pass => AuditOutcome::Pass,
        }
    }
}

/// Audit oracle backed by the live node stacks; every poll is accounted as
/// audit traffic (TCP under the paper's transport policy).
struct StackAuditOracle<'a> {
    stacks: &'a [NodeStack],
    network: &'a mut Network,
    auditor: NodeId,
    now: SimTime,
}

impl AuditOracle for StackAuditOracle<'_> {
    fn confirm_proposal(&mut self, witness: NodeId, subject: NodeId, chunks: &[ChunkId]) -> bool {
        self.network.send(
            self.now,
            self.auditor,
            witness,
            32 + 8 * chunks.len() as u64,
            TrafficCategory::Audit,
        );
        self.network
            .send(self.now, witness, self.auditor, 24, TrafficCategory::Audit);
        self.stacks[witness.index()]
            .verification
            .verifier
            .answer_audit_poll(subject, chunks)
    }

    fn confirm_askers(&mut self, witness: NodeId, subject: NodeId) -> Vec<NodeId> {
        self.network
            .send(self.now, self.auditor, witness, 32, TrafficCategory::Audit);
        let askers = self.stacks[witness.index()]
            .verification
            .verifier
            .confirm_askers_about(subject);
        self.network.send(
            self.now,
            witness,
            self.auditor,
            24 + 6 * askers.len() as u64,
            TrafficCategory::Audit,
        );
        askers
    }
}
