//! Pluggable adversaries.
//!
//! Section 4 of the paper enumerates the ways a node can deviate in each
//! phase; the monolithic runtime used to hard-wire those deviations at
//! construction time (`if is_freerider` branches picking a `Behavior`, a
//! `PartnerSelector` and a `CollusionConfig`). The [`Adversary`] trait makes
//! misbehaviour a first-class, composable plug-in instead: an adversary
//! *configures* each plane of the stack when the node is built, and may keep
//! *reshaping* them as the run progresses (time-varying attacks) or inject
//! traffic of its own (fabricated blames).

use std::sync::Arc;

use lifting_core::{Blame, BlameReason, CollusionConfig};
use lifting_gossip::{Behavior, FreeriderConfig, GossipNode};
use lifting_membership::{PartnerSelector, SelectionPolicy};
use lifting_sim::{NodeId, SimDuration, StreamId};

use super::LayerEnv;

/// What a closed-loop adversary decides to do with its per-period score
/// feedback (see [`Adversary::on_score_feedback`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedbackAction {
    /// Keep running; the adversary may have retuned its internal state.
    None,
    /// Leave the system now and rejoin after `offline` — the whitewashing
    /// move: abandon a burned identity's session and come back hoping for a
    /// clean slate.
    Depart {
        /// How long the node stays offline before rejoining.
        offline: SimDuration,
    },
}

/// A node's strategy: how each plane of its protocol stack deviates (or not)
/// from the protocol.
///
/// The three `*_plane` methods are consulted once, when the stack is built;
/// the hooks run during the simulation. Every implementation must be
/// deterministic given the node's RNG stream.
pub trait Adversary: std::fmt::Debug + Send {
    /// Short name for diagnostics.
    fn name(&self) -> &'static str;

    /// Ground truth: whether this node misbehaves (used only by the metrics,
    /// never by the protocol).
    fn is_freerider(&self) -> bool {
        false
    }

    /// Dissemination-plane behaviour (fanout decrease, partial propose,
    /// partial serve, period stretching — Section 4.1).
    fn dissemination_plane(&self) -> Behavior {
        Behavior::Honest
    }

    /// Dissemination behaviour on one channel of a multi-stream stack.
    /// Defaults to the same deviation on every channel; stream-selective
    /// adversaries (honest on one channel, silent on another) override this.
    fn dissemination_plane_for(&self, _stream: StreamId) -> Behavior {
        self.dissemination_plane()
    }

    /// Membership-plane partner selection (colluders bias it towards the
    /// coalition — Section 4.1(iii)).
    fn membership_plane(&self) -> PartnerSelector {
        PartnerSelector::uniform()
    }

    /// Partner selection on one channel. Defaults to the same policy on
    /// every channel (each plane still gets its **own** selector instance:
    /// round-robin cursors and the like are plane-local state).
    fn membership_plane_for(&self, _stream: StreamId) -> PartnerSelector {
        self.membership_plane()
    }

    /// Verification-plane collusion (cover-up, man-in-the-middle —
    /// Section 5.2, Figure 8).
    fn verification_plane(&self) -> CollusionConfig {
        CollusionConfig::none()
    }

    /// Hook run at the start of every gossip tick, once per stream plane and
    /// before that plane's propose phase; `period` is the counter the
    /// upcoming propose round will carry (i.e. `ProposeRound::period`, the
    /// pre-increment value the verifier's history records for the round).
    /// Time-varying adversaries reshape the dissemination plane here.
    /// Implementations used by the paper's scenarios must not consume RNG.
    fn on_gossip_tick(&mut self, _stream: StreamId, _period: u64, _gossip: &mut GossipNode) {}

    /// Blames this node fabricates out of thin air at the end of its gossip
    /// tick (the blame-spamming attack on the reputation plane). Honest and
    /// paper adversaries return nothing and consume no RNG.
    fn fabricate_blames(&mut self, _env: &mut LayerEnv<'_>) -> Vec<Blame> {
        Vec::new()
    }

    /// Whether this adversary wants the per-period score feedback upcall.
    /// The runtime only pays for the feedback pass when a closed-loop
    /// scenario is configured, and within it only polls adversaries that
    /// return `true` here.
    fn wants_score_feedback(&self) -> bool {
        false
    }

    /// Closed-loop feedback: at the end of gossip period `period` the
    /// adversary learns its own aggregated manager score (`None` while no
    /// manager has a book for it yet) and the *public* detection threshold
    /// `η`. This models a rational freerider that probes its standing — e.g.
    /// by polling its managers — and adapts. Must be deterministic and must
    /// not consume RNG.
    fn on_score_feedback(
        &mut self,
        _period: u64,
        _score: Option<f64>,
        _eta: f64,
    ) -> FeedbackAction {
        FeedbackAction::None
    }

    /// Closed-loop observation: a coalition accomplice (`target`) was picked
    /// as an audit target during `period`. Adaptive colluders use this to
    /// steer cover traffic away from peers under scrutiny. Default: ignore.
    fn on_audit_observed(&mut self, _target: NodeId, _period: u64) {}

    /// Hook run right after [`on_gossip_tick`](Self::on_gossip_tick) with the
    /// plane's partner selector: adaptive adversaries re-pick their selection
    /// policy here (e.g. re-aim collusion bias away from recently audited
    /// accomplices). Must not consume RNG; the default keeps the selector
    /// untouched.
    fn retune_membership(
        &mut self,
        _stream: StreamId,
        _period: u64,
        _selector: &mut PartnerSelector,
    ) {
    }
}

/// Strict protocol compliance on every plane.
#[derive(Debug, Clone, Copy, Default)]
pub struct Honest;

impl Adversary for Honest {
    fn name(&self) -> &'static str {
        "honest"
    }
}

/// The paper's independent freerider: deviates at the dissemination plane
/// only, with degree `Δ = (δ1, δ2, δ3)` (Section 4.1).
#[derive(Debug, Clone, Copy)]
pub struct Freerider {
    /// The degree of freeriding.
    pub degree: FreeriderConfig,
}

impl Adversary for Freerider {
    fn name(&self) -> &'static str {
        "freerider"
    }

    fn is_freerider(&self) -> bool {
        true
    }

    fn dissemination_plane(&self) -> Behavior {
        Behavior::Freerider(self.degree)
    }
}

/// A coalition member: freerides at the dissemination plane and additionally
/// subverts partner selection and the verification procedures together with
/// its accomplices (Sections 4.1(iii) and 5.2).
#[derive(Debug, Clone)]
pub struct Colluder {
    /// The degree of freeriding.
    pub degree: FreeriderConfig,
    /// The whole coalition (including this node).
    pub coalition: Arc<Vec<NodeId>>,
    /// Probability of picking a coalition member as gossip partner (`pm`);
    /// 0 keeps the selection uniform.
    pub partner_bias: f64,
    /// Vouch for coalition members during confirmations, never blame them.
    pub cover_up: bool,
    /// Mount the man-in-the-middle attack of Figure 8b.
    pub man_in_the_middle: bool,
}

impl Adversary for Colluder {
    fn name(&self) -> &'static str {
        "colluder"
    }

    fn is_freerider(&self) -> bool {
        true
    }

    fn dissemination_plane(&self) -> Behavior {
        Behavior::Freerider(self.degree)
    }

    fn membership_plane(&self) -> PartnerSelector {
        if self.partner_bias > 0.0 {
            PartnerSelector::new(SelectionPolicy::ColludingBias {
                colluders: self.coalition.clone(),
                pm: self.partner_bias,
            })
        } else {
            PartnerSelector::uniform()
        }
    }

    fn verification_plane(&self) -> CollusionConfig {
        CollusionConfig::coalition(
            self.coalition.clone(),
            self.cover_up,
            self.man_in_the_middle,
        )
    }
}

/// An **on-off freerider** — a time-varying attack the old `Behavior` enum
/// could not express: the node freerides for `on_periods` gossip periods,
/// then behaves honestly for `off_periods`, and so on. Dodging detection this
/// way exploits the score's `1/r` normalization (Equation 6): blame collected
/// while "on" is diluted by the honest windows.
#[derive(Debug, Clone, Copy)]
pub struct OnOffFreerider {
    /// The degree of freeriding while "on".
    pub degree: FreeriderConfig,
    /// Length of the freeriding window, in gossip periods (≥ 1).
    pub on_periods: u64,
    /// Length of the honest window, in gossip periods (≥ 1).
    pub off_periods: u64,
}

impl OnOffFreerider {
    /// True if the node freerides during `period`.
    pub fn is_on(&self, period: u64) -> bool {
        let cycle = (self.on_periods + self.off_periods).max(1);
        period % cycle < self.on_periods
    }
}

impl Adversary for OnOffFreerider {
    fn name(&self) -> &'static str {
        "on-off-freerider"
    }

    fn is_freerider(&self) -> bool {
        true
    }

    fn dissemination_plane(&self) -> Behavior {
        Behavior::Freerider(self.degree)
    }

    fn on_gossip_tick(&mut self, _stream: StreamId, period: u64, gossip: &mut GossipNode) {
        let behavior = if self.is_on(period) {
            Behavior::Freerider(self.degree)
        } else {
            Behavior::Honest
        };
        if gossip.behavior() != &behavior {
            gossip.set_behavior(behavior);
        }
    }
}

/// A **blame spammer** — an attack on the reputation plane the old
/// construction could not express: the node participates honestly in the
/// dissemination but floods the managers with fabricated blames against
/// random peers, trying to drive honest nodes below the expulsion threshold
/// and erode trust in the scores. The per-period compensation `b̃`
/// (Equation 5) is LiFTinG's only systemic defence, which is exactly what
/// this adversary stresses.
#[derive(Debug, Clone, Copy)]
pub struct BlameSpammer {
    /// Fabricated blames emitted per gossip tick.
    pub blames_per_period: u32,
    /// Value of each fabricated blame.
    pub blame_value: f64,
}

impl Adversary for BlameSpammer {
    fn name(&self) -> &'static str {
        "blame-spammer"
    }

    fn is_freerider(&self) -> bool {
        true
    }

    fn fabricate_blames(&mut self, env: &mut LayerEnv<'_>) -> Vec<Blame> {
        (0..self.blames_per_period)
            .filter_map(|_| {
                let target = *env.directory.sample_uniform(env.rng, 1, env.me).first()?;
                Some(Blame::new(
                    target,
                    self.blame_value,
                    BlameReason::PartialServe,
                ))
            })
            .collect()
    }
}

/// A **selective freerider** — the multi-channel attack: the node behaves
/// honestly on some channels and goes fully silent (proposes to nobody,
/// serves nothing) on the channels named in its mask. With per-channel
/// reputation the node would keep its good standing — and its stream — on
/// the honest channels; because the managers aggregate blames *across*
/// channels into one score per node, the silence on one channel gets it
/// expelled from all of them.
#[derive(Debug, Clone, Copy)]
pub struct SelectiveFreerider {
    /// Bitmask of silenced streams (bit `s` = stream `s`).
    pub silent_mask: u64,
}

impl SelectiveFreerider {
    /// Full silence: never propose, never serve. The absent proposals starve
    /// the plane of acks (`MissingAck` blames, `f` each) and every request
    /// the node *does* make goes unserved nowhere — the strongest
    /// per-channel misbehaviour short of leaving.
    pub const SILENT: FreeriderConfig = FreeriderConfig {
        delta1: 1.0,
        delta2: 0.0,
        delta3: 1.0,
        period_stretch: 1,
    };

    /// True if the node is silent on `stream`.
    pub fn silences(&self, stream: StreamId) -> bool {
        (self.silent_mask >> stream.index()) & 1 == 1
    }
}

impl Adversary for SelectiveFreerider {
    fn name(&self) -> &'static str {
        "selective-freerider"
    }

    fn is_freerider(&self) -> bool {
        true
    }

    fn dissemination_plane(&self) -> Behavior {
        self.dissemination_plane_for(StreamId::PRIMARY)
    }

    fn dissemination_plane_for(&self, stream: StreamId) -> Behavior {
        if self.silences(stream) {
            Behavior::Freerider(Self::SILENT)
        } else {
            Behavior::Honest
        }
    }
}

/// A **gradient freerider** — the closed-loop version of the independent
/// freerider: each period it reads its own aggregated manager score and
/// throttles its freeriding *intensity* so the score rides just above the
/// public threshold `η`. When the score dips below `η + margin` it backs off
/// by `step`; while comfortably above, it creeps back up by `step / 2`
/// (back off fast, get greedy slowly). Against a static `η` this extracts
/// near-maximal gain while staying undetected; the online-recalibration
/// defence moves the effective threshold into the band the adversary is
/// hiding in.
#[derive(Debug, Clone, Copy)]
pub struct GradientFreerider {
    /// The maximal degree of freeriding, applied at intensity 1.
    pub degree: FreeriderConfig,
    /// Safety margin above `η` the adversary tries to keep.
    pub margin: f64,
    /// Intensity decrement applied when the score gets too close to `η`.
    pub step: f64,
    /// Current freeriding intensity in `[0, 1]`; scales all three deltas.
    intensity: f64,
}

impl GradientFreerider {
    /// A gradient freerider that starts fully greedy (intensity 1).
    pub fn new(degree: FreeriderConfig, margin: f64, step: f64) -> Self {
        GradientFreerider {
            degree,
            margin,
            step,
            intensity: 1.0,
        }
    }

    /// The current freeriding intensity.
    pub fn intensity(&self) -> f64 {
        self.intensity
    }

    /// The degree at the current intensity (all deltas scaled).
    fn scaled_degree(&self) -> FreeriderConfig {
        FreeriderConfig {
            delta1: self.degree.delta1 * self.intensity,
            delta2: self.degree.delta2 * self.intensity,
            delta3: self.degree.delta3 * self.intensity,
            period_stretch: self.degree.period_stretch,
        }
    }
}

impl Adversary for GradientFreerider {
    fn name(&self) -> &'static str {
        "gradient-freerider"
    }

    fn is_freerider(&self) -> bool {
        true
    }

    fn dissemination_plane(&self) -> Behavior {
        Behavior::Freerider(self.scaled_degree())
    }

    fn on_gossip_tick(&mut self, _stream: StreamId, _period: u64, gossip: &mut GossipNode) {
        let behavior = if self.intensity <= 0.0 {
            Behavior::Honest
        } else {
            Behavior::Freerider(self.scaled_degree())
        };
        if gossip.behavior() != &behavior {
            gossip.set_behavior(behavior);
        }
    }

    fn wants_score_feedback(&self) -> bool {
        true
    }

    fn on_score_feedback(&mut self, _period: u64, score: Option<f64>, eta: f64) -> FeedbackAction {
        if let Some(score) = score {
            if score < eta + self.margin {
                self.intensity = (self.intensity - self.step).max(0.0);
            } else {
                self.intensity = (self.intensity + self.step * 0.5).min(1.0);
            }
        }
        FeedbackAction::None
    }
}

/// A **whitewasher** — the churn-exploiting closed-loop attack: the node
/// freerides greedily and watches its own score trajectory; once blame has
/// dragged the score `margin` below the best value it has seen (a drawdown
/// it can measure locally, with no knowledge of the managers' threshold) it
/// *leaves* and rejoins after `offline`, betting that the rejoin launders
/// the bad reputation. The defence is the frozen-score carryover: departed
/// nodes' manager books are frozen (not deleted) and expulsion votes
/// persist, so the identity's history survives the wash cycle.
#[derive(Debug, Clone, Copy)]
pub struct Whitewasher {
    /// The degree of freeriding.
    pub degree: FreeriderConfig,
    /// Departure trigger: leave once the score has fallen `margin` below its
    /// observed peak.
    pub margin: f64,
    /// How long to stay offline before rejoining.
    pub offline: SimDuration,
    /// Best score observed so far (the drawdown baseline).
    peak: f64,
}

impl Whitewasher {
    /// A whitewasher of the given freeriding degree that washes after a
    /// `margin` drawdown and stays away for `offline`.
    pub fn new(degree: FreeriderConfig, margin: f64, offline: SimDuration) -> Self {
        Whitewasher {
            degree,
            margin,
            offline,
            peak: f64::NEG_INFINITY,
        }
    }
}

impl Adversary for Whitewasher {
    fn name(&self) -> &'static str {
        "whitewasher"
    }

    fn is_freerider(&self) -> bool {
        true
    }

    fn dissemination_plane(&self) -> Behavior {
        Behavior::Freerider(self.degree)
    }

    fn wants_score_feedback(&self) -> bool {
        true
    }

    fn on_score_feedback(&mut self, _period: u64, score: Option<f64>, _eta: f64) -> FeedbackAction {
        let Some(score) = score else {
            return FeedbackAction::None;
        };
        self.peak = self.peak.max(score);
        if self.peak - score > self.margin {
            // Rebaseline so the post-rejoin cycle measures a fresh drawdown
            // (the rejoin also rebuilds this adversary, which has the same
            // effect; this keeps the state machine correct on its own).
            self.peak = score;
            FeedbackAction::Depart {
                offline: self.offline,
            }
        } else {
            FeedbackAction::None
        }
    }
}

/// An **adaptive colluder** — a coalition member that watches which of its
/// accomplices get audited and re-aims its cover traffic away from them for
/// `cooldown_periods`: biased partner selection towards a peer whose history
/// is about to be entropy-checked is exactly what the `γ` test catches, so
/// the coalition rotates its bias towards unscrutinized members instead.
/// Pure reshaping of the membership plane; consumes no RNG.
#[derive(Debug, Clone)]
pub struct AdaptiveColluder {
    /// The degree of freeriding.
    pub degree: FreeriderConfig,
    /// The whole coalition (including this node).
    pub coalition: Arc<Vec<NodeId>>,
    /// Probability of picking a coalition member as gossip partner (`pm`).
    pub partner_bias: f64,
    /// How many gossip periods an audited accomplice stays off the bias list.
    pub cooldown_periods: u64,
    /// Accomplices recently picked as audit targets: `(member, period seen)`.
    recently_audited: Vec<(NodeId, u64)>,
}

impl AdaptiveColluder {
    /// A fresh adaptive colluder with an empty audit memory.
    pub fn new(
        degree: FreeriderConfig,
        coalition: Arc<Vec<NodeId>>,
        partner_bias: f64,
        cooldown_periods: u64,
    ) -> Self {
        AdaptiveColluder {
            degree,
            coalition,
            partner_bias,
            cooldown_periods,
            recently_audited: Vec::new(),
        }
    }

    /// Coalition members currently safe to bias towards (not audited within
    /// the cooldown window ending at `period`). Falls back to the full
    /// coalition when fewer than two members are unscrutinized — a bias list
    /// needs somebody on it.
    fn safe_coalition(&self, period: u64) -> Arc<Vec<NodeId>> {
        let burned = |n: &NodeId| {
            self.recently_audited
                .iter()
                .any(|(m, p)| m == n && period.saturating_sub(*p) < self.cooldown_periods)
        };
        let safe: Vec<NodeId> = self
            .coalition
            .iter()
            .filter(|n| !burned(n))
            .copied()
            .collect();
        if safe.len() < 2 {
            self.coalition.clone()
        } else {
            Arc::new(safe)
        }
    }
}

impl Adversary for AdaptiveColluder {
    fn name(&self) -> &'static str {
        "adaptive-colluder"
    }

    fn is_freerider(&self) -> bool {
        true
    }

    fn dissemination_plane(&self) -> Behavior {
        Behavior::Freerider(self.degree)
    }

    fn membership_plane(&self) -> PartnerSelector {
        PartnerSelector::new(SelectionPolicy::ColludingBias {
            colluders: self.coalition.clone(),
            pm: self.partner_bias,
        })
    }

    fn verification_plane(&self) -> CollusionConfig {
        CollusionConfig::coalition(self.coalition.clone(), true, false)
    }

    fn on_audit_observed(&mut self, target: NodeId, period: u64) {
        if !self.coalition.contains(&target) {
            return;
        }
        if let Some(entry) = self.recently_audited.iter_mut().find(|(m, _)| *m == target) {
            entry.1 = period;
        } else {
            self.recently_audited.push((target, period));
        }
    }

    fn retune_membership(
        &mut self,
        _stream: StreamId,
        period: u64,
        selector: &mut PartnerSelector,
    ) {
        self.recently_audited
            .retain(|(_, p)| period.saturating_sub(*p) < self.cooldown_periods);
        if self.recently_audited.is_empty() {
            // Nothing burned: only rebuild if a previous retune shrank the
            // bias list (cheap equality on the Arc'd full coalition).
            if let SelectionPolicy::ColludingBias { colluders, .. } = selector.policy() {
                if Arc::ptr_eq(colluders, &self.coalition) {
                    return;
                }
            }
        }
        *selector = PartnerSelector::new(SelectionPolicy::ColludingBias {
            colluders: self.safe_coalition(period),
            pm: self.partner_bias,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifting_gossip::GossipConfig;
    use lifting_membership::Directory;
    use lifting_sim::{derive_rng, SimTime};

    #[test]
    fn paper_adversaries_configure_the_planes_like_the_old_wiring() {
        let honest = Honest;
        assert!(!honest.is_freerider());
        assert_eq!(honest.dissemination_plane(), Behavior::Honest);
        assert!(!honest.verification_plane().covers_up());

        let freerider = Freerider {
            degree: FreeriderConfig::planetlab(),
        };
        assert!(freerider.is_freerider());
        assert!(freerider.dissemination_plane().is_freerider());
        assert!(!freerider.verification_plane().man_in_the_middle());

        let coalition = Arc::new(vec![NodeId::new(1), NodeId::new(2)]);
        let colluder = Colluder {
            degree: FreeriderConfig::planetlab(),
            coalition: coalition.clone(),
            partner_bias: 0.3,
            cover_up: true,
            man_in_the_middle: false,
        };
        assert!(colluder.verification_plane().covers_up());
        assert!(matches!(
            colluder.membership_plane().policy(),
            SelectionPolicy::ColludingBias { .. }
        ));
        let unbiased = Colluder {
            partner_bias: 0.0,
            ..colluder
        };
        assert!(matches!(
            unbiased.membership_plane().policy(),
            SelectionPolicy::Uniform
        ));
    }

    #[test]
    fn on_off_freerider_alternates_windows() {
        let mut adversary = OnOffFreerider {
            degree: FreeriderConfig::uniform(0.3),
            on_periods: 2,
            off_periods: 3,
        };
        let on: Vec<bool> = (0..10).map(|p| adversary.is_on(p)).collect();
        assert_eq!(
            on,
            vec![true, true, false, false, false, true, true, false, false, false]
        );
        let mut gossip = GossipNode::new(
            NodeId::new(4),
            GossipConfig::planetlab(),
            Behavior::Freerider(adversary.degree),
        );
        adversary.on_gossip_tick(StreamId::PRIMARY, 2, &mut gossip);
        assert_eq!(gossip.behavior(), &Behavior::Honest);
        adversary.on_gossip_tick(StreamId::PRIMARY, 5, &mut gossip);
        assert!(gossip.behavior().is_freerider());
    }

    #[test]
    fn selective_freerider_is_honest_per_channel() {
        let adversary = SelectiveFreerider { silent_mask: 0b10 };
        assert!(adversary.is_freerider());
        assert_eq!(
            adversary.dissemination_plane_for(StreamId::new(0)),
            Behavior::Honest
        );
        let silent = adversary.dissemination_plane_for(StreamId::new(1));
        assert!(silent.is_freerider());
        // Fully silent: zero effective fanout, zero serves.
        let mut rng = derive_rng(3, 0);
        assert_eq!(silent.effective_fanout(7, &mut rng), 0);
        assert_eq!(silent.effective_serve(4, &mut rng), 0);
    }

    #[test]
    fn gradient_freerider_rides_the_threshold() {
        let mut adversary = GradientFreerider::new(FreeriderConfig::uniform(0.4), 2.0, 0.25);
        assert!(adversary.is_freerider());
        assert!(adversary.wants_score_feedback());
        assert_eq!(adversary.intensity(), 1.0);
        // No score yet: nothing changes.
        assert_eq!(
            adversary.on_score_feedback(1, None, -9.75),
            FeedbackAction::None
        );
        assert_eq!(adversary.intensity(), 1.0);
        // Score in the danger zone (η + margin): back off by `step`.
        adversary.on_score_feedback(2, Some(-8.5), -9.75);
        assert_eq!(adversary.intensity(), 0.75);
        adversary.on_score_feedback(3, Some(-9.0), -9.75);
        assert_eq!(adversary.intensity(), 0.5);
        // Comfortable again: creep back up by `step / 2`, capped at 1.
        adversary.on_score_feedback(4, Some(-1.0), -9.75);
        assert_eq!(adversary.intensity(), 0.625);
        for _ in 0..10 {
            adversary.on_score_feedback(5, Some(-1.0), -9.75);
        }
        assert_eq!(adversary.intensity(), 1.0);
        // Intensity clamps at 0 and the plane degrades to honest behaviour.
        for _ in 0..10 {
            adversary.on_score_feedback(6, Some(-20.0), -9.75);
        }
        assert_eq!(adversary.intensity(), 0.0);
        let mut gossip = GossipNode::new(
            NodeId::new(4),
            GossipConfig::planetlab(),
            adversary.dissemination_plane(),
        );
        adversary.on_gossip_tick(StreamId::PRIMARY, 7, &mut gossip);
        assert_eq!(gossip.behavior(), &Behavior::Honest);
        // Scaled deltas: at intensity 0.5, half the configured degree.
        adversary.intensity = 0.5;
        match adversary.dissemination_plane() {
            Behavior::Freerider(d) => {
                assert!((d.delta1 - 0.2).abs() < 1e-12);
                assert!((d.delta2 - 0.2).abs() < 1e-12);
                assert!((d.delta3 - 0.2).abs() < 1e-12);
            }
            other => panic!("expected freerider behaviour, got {other:?}"),
        }
    }

    #[test]
    fn whitewasher_departs_on_drawdown_not_on_low_absolute_score() {
        let mut adversary =
            Whitewasher::new(FreeriderConfig::planetlab(), 1.0, SimDuration::from_secs(2));
        assert!(adversary.wants_score_feedback());
        // A low but *rising* score is not a drawdown — no wash, regardless of
        // how the absolute value compares to η.
        assert_eq!(
            adversary.on_score_feedback(3, Some(-5.0), -9.75),
            FeedbackAction::None
        );
        assert_eq!(
            adversary.on_score_feedback(4, None, -9.75),
            FeedbackAction::None
        );
        assert_eq!(
            adversary.on_score_feedback(5, Some(2.0), -9.75),
            FeedbackAction::None
        );
        // Blame drags the score 1.5 below the observed peak: wash.
        assert_eq!(
            adversary.on_score_feedback(6, Some(0.5), -9.75),
            FeedbackAction::Depart {
                offline: SimDuration::from_secs(2)
            }
        );
        // The trigger rebaselines: the same score right after is no drawdown.
        assert_eq!(
            adversary.on_score_feedback(7, Some(0.5), -9.75),
            FeedbackAction::None
        );
    }

    #[test]
    fn adaptive_colluder_rotates_bias_away_from_audited_accomplices() {
        let coalition = Arc::new(vec![NodeId::new(1), NodeId::new(2), NodeId::new(3)]);
        let mut adversary =
            AdaptiveColluder::new(FreeriderConfig::planetlab(), coalition.clone(), 0.6, 4);
        assert!(adversary.verification_plane().covers_up());
        let mut selector = adversary.membership_plane();
        // Audits outside the coalition are ignored.
        adversary.on_audit_observed(NodeId::new(9), 10);
        adversary.retune_membership(StreamId::PRIMARY, 10, &mut selector);
        match selector.policy() {
            SelectionPolicy::ColludingBias { colluders, .. } => {
                assert_eq!(colluders.len(), 3)
            }
            other => panic!("expected colluding bias, got {other:?}"),
        }
        // An audited accomplice drops off the bias list for the cooldown.
        adversary.on_audit_observed(NodeId::new(2), 11);
        adversary.retune_membership(StreamId::PRIMARY, 11, &mut selector);
        match selector.policy() {
            SelectionPolicy::ColludingBias { colluders, pm } => {
                assert_eq!(**colluders, vec![NodeId::new(1), NodeId::new(3)]);
                assert_eq!(*pm, 0.6);
            }
            other => panic!("expected colluding bias, got {other:?}"),
        }
        // ... and comes back once the cooldown expires.
        adversary.retune_membership(StreamId::PRIMARY, 15, &mut selector);
        match selector.policy() {
            SelectionPolicy::ColludingBias { colluders, .. } => {
                assert_eq!(colluders.len(), 3)
            }
            other => panic!("expected colluding bias, got {other:?}"),
        }
        // If (nearly) the whole coalition is under scrutiny there is nobody
        // safe to hide behind: fall back to the full coalition.
        adversary.on_audit_observed(NodeId::new(1), 20);
        adversary.on_audit_observed(NodeId::new(2), 20);
        adversary.retune_membership(StreamId::PRIMARY, 20, &mut selector);
        match selector.policy() {
            SelectionPolicy::ColludingBias { colluders, .. } => {
                assert_eq!(colluders.len(), 3)
            }
            other => panic!("expected colluding bias, got {other:?}"),
        }
    }

    #[test]
    fn blame_spammer_fabricates_the_configured_volume() {
        let mut adversary = BlameSpammer {
            blames_per_period: 3,
            blame_value: 10.0,
        };
        let directory = Directory::new(20);
        let mut rng = derive_rng(7, 0);
        let mut env = LayerEnv {
            me: NodeId::new(5),
            stream: StreamId::PRIMARY,
            now: SimTime::ZERO,
            directory: &directory,
            rng: &mut rng,
            upcalls_consumed: true,
        };
        let blames = adversary.fabricate_blames(&mut env);
        assert_eq!(blames.len(), 3);
        assert!(blames.iter().all(|b| b.target != NodeId::new(5)));
        assert!(blames.iter().all(|b| b.value == 10.0));
    }
}
