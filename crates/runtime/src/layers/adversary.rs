//! Pluggable adversaries.
//!
//! Section 4 of the paper enumerates the ways a node can deviate in each
//! phase; the monolithic runtime used to hard-wire those deviations at
//! construction time (`if is_freerider` branches picking a `Behavior`, a
//! `PartnerSelector` and a `CollusionConfig`). The [`Adversary`] trait makes
//! misbehaviour a first-class, composable plug-in instead: an adversary
//! *configures* each plane of the stack when the node is built, and may keep
//! *reshaping* them as the run progresses (time-varying attacks) or inject
//! traffic of its own (fabricated blames).

use std::sync::Arc;

use lifting_core::{Blame, BlameReason, CollusionConfig};
use lifting_gossip::{Behavior, FreeriderConfig, GossipNode};
use lifting_membership::{PartnerSelector, SelectionPolicy};
use lifting_sim::{NodeId, StreamId};

use super::LayerEnv;

/// A node's strategy: how each plane of its protocol stack deviates (or not)
/// from the protocol.
///
/// The three `*_plane` methods are consulted once, when the stack is built;
/// the hooks run during the simulation. Every implementation must be
/// deterministic given the node's RNG stream.
pub trait Adversary: std::fmt::Debug + Send {
    /// Short name for diagnostics.
    fn name(&self) -> &'static str;

    /// Ground truth: whether this node misbehaves (used only by the metrics,
    /// never by the protocol).
    fn is_freerider(&self) -> bool {
        false
    }

    /// Dissemination-plane behaviour (fanout decrease, partial propose,
    /// partial serve, period stretching — Section 4.1).
    fn dissemination_plane(&self) -> Behavior {
        Behavior::Honest
    }

    /// Dissemination behaviour on one channel of a multi-stream stack.
    /// Defaults to the same deviation on every channel; stream-selective
    /// adversaries (honest on one channel, silent on another) override this.
    fn dissemination_plane_for(&self, _stream: StreamId) -> Behavior {
        self.dissemination_plane()
    }

    /// Membership-plane partner selection (colluders bias it towards the
    /// coalition — Section 4.1(iii)).
    fn membership_plane(&self) -> PartnerSelector {
        PartnerSelector::uniform()
    }

    /// Partner selection on one channel. Defaults to the same policy on
    /// every channel (each plane still gets its **own** selector instance:
    /// round-robin cursors and the like are plane-local state).
    fn membership_plane_for(&self, _stream: StreamId) -> PartnerSelector {
        self.membership_plane()
    }

    /// Verification-plane collusion (cover-up, man-in-the-middle —
    /// Section 5.2, Figure 8).
    fn verification_plane(&self) -> CollusionConfig {
        CollusionConfig::none()
    }

    /// Hook run at the start of every gossip tick, once per stream plane and
    /// before that plane's propose phase; `period` is the counter the
    /// upcoming propose round will carry (i.e. `ProposeRound::period`, the
    /// pre-increment value the verifier's history records for the round).
    /// Time-varying adversaries reshape the dissemination plane here.
    /// Implementations used by the paper's scenarios must not consume RNG.
    fn on_gossip_tick(&mut self, _stream: StreamId, _period: u64, _gossip: &mut GossipNode) {}

    /// Blames this node fabricates out of thin air at the end of its gossip
    /// tick (the blame-spamming attack on the reputation plane). Honest and
    /// paper adversaries return nothing and consume no RNG.
    fn fabricate_blames(&mut self, _env: &mut LayerEnv<'_>) -> Vec<Blame> {
        Vec::new()
    }
}

/// Strict protocol compliance on every plane.
#[derive(Debug, Clone, Copy, Default)]
pub struct Honest;

impl Adversary for Honest {
    fn name(&self) -> &'static str {
        "honest"
    }
}

/// The paper's independent freerider: deviates at the dissemination plane
/// only, with degree `Δ = (δ1, δ2, δ3)` (Section 4.1).
#[derive(Debug, Clone, Copy)]
pub struct Freerider {
    /// The degree of freeriding.
    pub degree: FreeriderConfig,
}

impl Adversary for Freerider {
    fn name(&self) -> &'static str {
        "freerider"
    }

    fn is_freerider(&self) -> bool {
        true
    }

    fn dissemination_plane(&self) -> Behavior {
        Behavior::Freerider(self.degree)
    }
}

/// A coalition member: freerides at the dissemination plane and additionally
/// subverts partner selection and the verification procedures together with
/// its accomplices (Sections 4.1(iii) and 5.2).
#[derive(Debug, Clone)]
pub struct Colluder {
    /// The degree of freeriding.
    pub degree: FreeriderConfig,
    /// The whole coalition (including this node).
    pub coalition: Arc<Vec<NodeId>>,
    /// Probability of picking a coalition member as gossip partner (`pm`);
    /// 0 keeps the selection uniform.
    pub partner_bias: f64,
    /// Vouch for coalition members during confirmations, never blame them.
    pub cover_up: bool,
    /// Mount the man-in-the-middle attack of Figure 8b.
    pub man_in_the_middle: bool,
}

impl Adversary for Colluder {
    fn name(&self) -> &'static str {
        "colluder"
    }

    fn is_freerider(&self) -> bool {
        true
    }

    fn dissemination_plane(&self) -> Behavior {
        Behavior::Freerider(self.degree)
    }

    fn membership_plane(&self) -> PartnerSelector {
        if self.partner_bias > 0.0 {
            PartnerSelector::new(SelectionPolicy::ColludingBias {
                colluders: self.coalition.clone(),
                pm: self.partner_bias,
            })
        } else {
            PartnerSelector::uniform()
        }
    }

    fn verification_plane(&self) -> CollusionConfig {
        CollusionConfig::coalition(
            self.coalition.clone(),
            self.cover_up,
            self.man_in_the_middle,
        )
    }
}

/// An **on-off freerider** — a time-varying attack the old `Behavior` enum
/// could not express: the node freerides for `on_periods` gossip periods,
/// then behaves honestly for `off_periods`, and so on. Dodging detection this
/// way exploits the score's `1/r` normalization (Equation 6): blame collected
/// while "on" is diluted by the honest windows.
#[derive(Debug, Clone, Copy)]
pub struct OnOffFreerider {
    /// The degree of freeriding while "on".
    pub degree: FreeriderConfig,
    /// Length of the freeriding window, in gossip periods (≥ 1).
    pub on_periods: u64,
    /// Length of the honest window, in gossip periods (≥ 1).
    pub off_periods: u64,
}

impl OnOffFreerider {
    /// True if the node freerides during `period`.
    pub fn is_on(&self, period: u64) -> bool {
        let cycle = (self.on_periods + self.off_periods).max(1);
        period % cycle < self.on_periods
    }
}

impl Adversary for OnOffFreerider {
    fn name(&self) -> &'static str {
        "on-off-freerider"
    }

    fn is_freerider(&self) -> bool {
        true
    }

    fn dissemination_plane(&self) -> Behavior {
        Behavior::Freerider(self.degree)
    }

    fn on_gossip_tick(&mut self, _stream: StreamId, period: u64, gossip: &mut GossipNode) {
        let behavior = if self.is_on(period) {
            Behavior::Freerider(self.degree)
        } else {
            Behavior::Honest
        };
        if gossip.behavior() != &behavior {
            gossip.set_behavior(behavior);
        }
    }
}

/// A **blame spammer** — an attack on the reputation plane the old
/// construction could not express: the node participates honestly in the
/// dissemination but floods the managers with fabricated blames against
/// random peers, trying to drive honest nodes below the expulsion threshold
/// and erode trust in the scores. The per-period compensation `b̃`
/// (Equation 5) is LiFTinG's only systemic defence, which is exactly what
/// this adversary stresses.
#[derive(Debug, Clone, Copy)]
pub struct BlameSpammer {
    /// Fabricated blames emitted per gossip tick.
    pub blames_per_period: u32,
    /// Value of each fabricated blame.
    pub blame_value: f64,
}

impl Adversary for BlameSpammer {
    fn name(&self) -> &'static str {
        "blame-spammer"
    }

    fn is_freerider(&self) -> bool {
        true
    }

    fn fabricate_blames(&mut self, env: &mut LayerEnv<'_>) -> Vec<Blame> {
        (0..self.blames_per_period)
            .filter_map(|_| {
                let target = *env.directory.sample_uniform(env.rng, 1, env.me).first()?;
                Some(Blame::new(
                    target,
                    self.blame_value,
                    BlameReason::PartialServe,
                ))
            })
            .collect()
    }
}

/// A **selective freerider** — the multi-channel attack: the node behaves
/// honestly on some channels and goes fully silent (proposes to nobody,
/// serves nothing) on the channels named in its mask. With per-channel
/// reputation the node would keep its good standing — and its stream — on
/// the honest channels; because the managers aggregate blames *across*
/// channels into one score per node, the silence on one channel gets it
/// expelled from all of them.
#[derive(Debug, Clone, Copy)]
pub struct SelectiveFreerider {
    /// Bitmask of silenced streams (bit `s` = stream `s`).
    pub silent_mask: u64,
}

impl SelectiveFreerider {
    /// Full silence: never propose, never serve. The absent proposals starve
    /// the plane of acks (`MissingAck` blames, `f` each) and every request
    /// the node *does* make goes unserved nowhere — the strongest
    /// per-channel misbehaviour short of leaving.
    pub const SILENT: FreeriderConfig = FreeriderConfig {
        delta1: 1.0,
        delta2: 0.0,
        delta3: 1.0,
        period_stretch: 1,
    };

    /// True if the node is silent on `stream`.
    pub fn silences(&self, stream: StreamId) -> bool {
        (self.silent_mask >> stream.index()) & 1 == 1
    }
}

impl Adversary for SelectiveFreerider {
    fn name(&self) -> &'static str {
        "selective-freerider"
    }

    fn is_freerider(&self) -> bool {
        true
    }

    fn dissemination_plane(&self) -> Behavior {
        self.dissemination_plane_for(StreamId::PRIMARY)
    }

    fn dissemination_plane_for(&self, stream: StreamId) -> Behavior {
        if self.silences(stream) {
            Behavior::Freerider(Self::SILENT)
        } else {
            Behavior::Honest
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifting_gossip::GossipConfig;
    use lifting_membership::Directory;
    use lifting_sim::{derive_rng, SimTime};

    #[test]
    fn paper_adversaries_configure_the_planes_like_the_old_wiring() {
        let honest = Honest;
        assert!(!honest.is_freerider());
        assert_eq!(honest.dissemination_plane(), Behavior::Honest);
        assert!(!honest.verification_plane().covers_up());

        let freerider = Freerider {
            degree: FreeriderConfig::planetlab(),
        };
        assert!(freerider.is_freerider());
        assert!(freerider.dissemination_plane().is_freerider());
        assert!(!freerider.verification_plane().man_in_the_middle());

        let coalition = Arc::new(vec![NodeId::new(1), NodeId::new(2)]);
        let colluder = Colluder {
            degree: FreeriderConfig::planetlab(),
            coalition: coalition.clone(),
            partner_bias: 0.3,
            cover_up: true,
            man_in_the_middle: false,
        };
        assert!(colluder.verification_plane().covers_up());
        assert!(matches!(
            colluder.membership_plane().policy(),
            SelectionPolicy::ColludingBias { .. }
        ));
        let unbiased = Colluder {
            partner_bias: 0.0,
            ..colluder
        };
        assert!(matches!(
            unbiased.membership_plane().policy(),
            SelectionPolicy::Uniform
        ));
    }

    #[test]
    fn on_off_freerider_alternates_windows() {
        let mut adversary = OnOffFreerider {
            degree: FreeriderConfig::uniform(0.3),
            on_periods: 2,
            off_periods: 3,
        };
        let on: Vec<bool> = (0..10).map(|p| adversary.is_on(p)).collect();
        assert_eq!(
            on,
            vec![true, true, false, false, false, true, true, false, false, false]
        );
        let mut gossip = GossipNode::new(
            NodeId::new(4),
            GossipConfig::planetlab(),
            Behavior::Freerider(adversary.degree),
        );
        adversary.on_gossip_tick(StreamId::PRIMARY, 2, &mut gossip);
        assert_eq!(gossip.behavior(), &Behavior::Honest);
        adversary.on_gossip_tick(StreamId::PRIMARY, 5, &mut gossip);
        assert!(gossip.behavior().is_freerider());
    }

    #[test]
    fn selective_freerider_is_honest_per_channel() {
        let adversary = SelectiveFreerider { silent_mask: 0b10 };
        assert!(adversary.is_freerider());
        assert_eq!(
            adversary.dissemination_plane_for(StreamId::new(0)),
            Behavior::Honest
        );
        let silent = adversary.dissemination_plane_for(StreamId::new(1));
        assert!(silent.is_freerider());
        // Fully silent: zero effective fanout, zero serves.
        let mut rng = derive_rng(3, 0);
        assert_eq!(silent.effective_fanout(7, &mut rng), 0);
        assert_eq!(silent.effective_serve(4, &mut rng), 0);
    }

    #[test]
    fn blame_spammer_fabricates_the_configured_volume() {
        let mut adversary = BlameSpammer {
            blames_per_period: 3,
            blame_value: 10.0,
        };
        let directory = Directory::new(20);
        let mut rng = derive_rng(7, 0);
        let mut env = LayerEnv {
            me: NodeId::new(5),
            stream: StreamId::PRIMARY,
            now: SimTime::ZERO,
            directory: &directory,
            rng: &mut rng,
            upcalls_consumed: true,
        };
        let blames = adversary.fabricate_blames(&mut env);
        assert_eq!(blames.len(), 3);
        assert!(blames.iter().all(|b| b.target != NodeId::new(5)));
        assert!(blames.iter().all(|b| b.value == 10.0));
    }
}
