//! The per-node protocol stack: routes wire traffic and upcalls between the
//! gossip, verification and reputation layers.

use lifting_core::{LiftingConfig, Verifier, VerifierTimer};
use lifting_gossip::{GossipConfig, GossipNode};
use lifting_membership::Directory;
use lifting_sim::{NodeId, SimTime};
use rand::rngs::SmallRng;

use super::{
    Adversary, Downcall, GossipLayer, GossipUpcall, Layer, LayerEnv, ReputationLayer,
    VerificationLayer,
};
use crate::message::Message;

/// One node of the simulated system: the three protocol layers, the
/// adversary shaping them, and the node's private RNG stream.
#[derive(Debug)]
pub struct NodeStack {
    /// The dissemination plane.
    pub gossip: GossipLayer,
    /// The verification plane (direct verification + cross-checking).
    pub verification: VerificationLayer,
    /// The reputation plane (this node's manager role).
    pub reputation: ReputationLayer,
    /// The node's strategy; configured the planes and keeps reshaping them.
    pub adversary: Box<dyn Adversary>,
    /// The node's private RNG stream.
    pub rng: SmallRng,
    /// Ground truth for the metrics (from the adversary, cached).
    pub is_freerider: bool,
    /// Recycled scratch for the gossip layer's sends (allocation-free path).
    scratch_sends: Vec<Downcall>,
    /// Recycled scratch for the gossip layer's upcalls.
    scratch_upcalls: Vec<GossipUpcall>,
}

impl NodeStack {
    /// Builds a node stack: the adversary configures every plane.
    pub fn new(
        id: NodeId,
        gossip_config: GossipConfig,
        lifting_config: LiftingConfig,
        lifting_enabled: bool,
        adversary: Box<dyn Adversary>,
        rng: SmallRng,
    ) -> Self {
        let fanout = gossip_config.fanout;
        let is_freerider = adversary.is_freerider();
        let gossip = GossipLayer::new(
            GossipNode::new(id, gossip_config, adversary.dissemination_plane()),
            adversary.membership_plane(),
        );
        let verifier = Verifier::new(id, fanout, lifting_config, adversary.verification_plane());
        NodeStack {
            gossip,
            verification: VerificationLayer::new(verifier, lifting_enabled),
            reputation: ReputationLayer::new(),
            adversary,
            rng,
            is_freerider,
            scratch_sends: Vec::new(),
            scratch_upcalls: Vec::new(),
        }
    }

    /// The node's identifier.
    pub fn id(&self) -> NodeId {
        self.gossip.node.id()
    }

    /// Runs one gossip tick (the propose phase): the adversary may reshape
    /// the dissemination plane first, the gossip layer runs the phase, its
    /// upcalls drive the verification layer, and fabricated blames (if the
    /// adversary spams the reputation plane) are appended last.
    ///
    /// Downcall order mirrors the pre-refactor runtime exactly:
    /// verification traffic (acks, timers) first, then the propose sends,
    /// then adversarial extras.
    pub fn on_gossip_tick(
        &mut self,
        me: NodeId,
        now: SimTime,
        directory: &Directory,
        out: &mut Vec<Downcall>,
    ) {
        let mut gossip_sends = std::mem::take(&mut self.scratch_sends);
        let mut upcalls = std::mem::take(&mut self.scratch_upcalls);
        let mut env = LayerEnv {
            me,
            now,
            directory,
            rng: &mut self.rng,
            upcalls_consumed: self.verification.is_enabled(),
        };
        self.adversary
            .on_gossip_tick(self.gossip.node.period(), &mut self.gossip.node);
        self.gossip
            .on_tick(&mut env, &mut gossip_sends, &mut upcalls);
        for upcall in upcalls.drain(..) {
            self.verification.on_gossip_upcall(&mut env, upcall, out);
        }
        out.append(&mut gossip_sends);
        for blame in self.adversary.fabricate_blames(&mut env) {
            out.push(Downcall::Blame(blame));
        }
        self.scratch_sends = gossip_sends;
        self.scratch_upcalls = upcalls;
    }

    /// Routes one delivered message into the stack.
    pub fn on_message(
        &mut self,
        me: NodeId,
        from: NodeId,
        message: Message,
        now: SimTime,
        directory: &Directory,
        out: &mut Vec<Downcall>,
    ) {
        let mut gossip_sends = std::mem::take(&mut self.scratch_sends);
        let mut upcalls = std::mem::take(&mut self.scratch_upcalls);
        let mut env = LayerEnv {
            me,
            now,
            directory,
            rng: &mut self.rng,
            upcalls_consumed: self.verification.is_enabled(),
        };
        match message {
            Message::Gossip(gossip_message) => {
                self.gossip.on_inbound(
                    &mut env,
                    from,
                    gossip_message,
                    &mut gossip_sends,
                    &mut upcalls,
                );
                for upcall in upcalls.drain(..) {
                    self.verification.on_gossip_upcall(&mut env, upcall, out);
                }
                out.append(&mut gossip_sends);
            }
            Message::Verification(verification_message) => {
                let mut no_upcalls = Vec::new();
                if verification_message.is_blame() {
                    self.reputation.on_inbound(
                        &mut env,
                        from,
                        verification_message,
                        out,
                        &mut no_upcalls,
                    );
                } else {
                    self.verification.on_inbound(
                        &mut env,
                        from,
                        verification_message,
                        out,
                        &mut no_upcalls,
                    );
                }
            }
        }
        self.scratch_sends = gossip_sends;
        self.scratch_upcalls = upcalls;
    }

    /// A verifier timer owned by this node expired.
    pub fn on_timer(
        &mut self,
        me: NodeId,
        timer: VerifierTimer,
        now: SimTime,
        directory: &Directory,
        out: &mut Vec<Downcall>,
    ) {
        let mut env = LayerEnv {
            me,
            now,
            directory,
            rng: &mut self.rng,
            upcalls_consumed: self.verification.is_enabled(),
        };
        self.verification.on_timer(&mut env, timer, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Freerider, Honest};
    use lifting_core::CollusionConfig;
    use lifting_gossip::FreeriderConfig;
    use lifting_sim::derive_rng;

    fn stack(id: u32, adversary: Box<dyn Adversary>) -> NodeStack {
        NodeStack::new(
            NodeId::new(id),
            GossipConfig::planetlab(),
            LiftingConfig::planetlab(),
            true,
            adversary,
            derive_rng(1, id as u64),
        )
    }

    #[test]
    fn stack_wires_every_layer_with_the_same_identity() {
        let s = stack(4, Box::new(Honest));
        assert_eq!(s.id(), NodeId::new(4));
        assert_eq!(s.gossip.node.id(), s.verification.verifier.id());
        assert!(!s.is_freerider);
    }

    #[test]
    fn freerider_adversary_shapes_the_dissemination_plane() {
        let s = stack(
            2,
            Box::new(Freerider {
                degree: FreeriderConfig::planetlab(),
            }),
        );
        assert!(s.is_freerider);
        assert!(s.gossip.node.behavior().is_freerider());
        // Verification plane stays honest for an independent freerider.
        let collusion: &CollusionConfig = &CollusionConfig::none();
        assert_eq!(
            s.verification.verifier.config().managers,
            LiftingConfig::planetlab().managers
        );
        assert!(!collusion.covers_up());
    }

    #[test]
    fn gossip_tick_on_empty_node_still_begins_a_period() {
        let mut s = stack(1, Box::new(Honest));
        let directory = Directory::new(8);
        let mut out = Vec::new();
        s.on_gossip_tick(NodeId::new(1), SimTime::ZERO, &directory, &mut out);
        assert!(out.is_empty(), "nothing to propose, nothing on the wire");
    }
}
