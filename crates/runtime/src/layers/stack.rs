//! The per-node protocol stack: routes wire traffic and upcalls between the
//! per-stream gossip/verification planes and the shared reputation layer.
//!
//! A node participates in every stream of the scenario through a dedicated
//! [`StreamPlane`] — its own chunk store, playout buffer, partner selector,
//! verification history and timers — while a **single** [`ReputationLayer`]
//! books blames from all planes into one score per node. That asymmetry is
//! the point of the design: data planes are per-channel, accountability is
//! per-node, so misbehaving on one channel costs access to all of them.

use lifting_core::{LiftingConfig, Verifier, VerifierTimer};
use lifting_gossip::{GossipConfig, GossipNode};
use lifting_membership::Directory;
use lifting_sim::{NodeId, SimTime, StreamId};
use rand::rngs::SmallRng;

use super::{
    Adversary, Downcall, GossipLayer, GossipUpcall, Layer, LayerEnv, ReputationLayer,
    VerificationLayer,
};
use crate::message::Message;

/// One stream's data plane on one node: dissemination plus verification.
#[derive(Debug)]
pub struct StreamPlane {
    /// The stream this plane carries.
    pub stream: StreamId,
    /// The dissemination plane.
    pub gossip: GossipLayer,
    /// The verification plane (direct verification + cross-checking).
    pub verification: VerificationLayer,
}

/// One node of the simulated system: a protocol plane per stream, the shared
/// reputation plane, the adversary shaping them, and the node's private RNG
/// stream.
#[derive(Debug)]
pub struct NodeStack {
    /// Per-stream planes, indexed by [`StreamId`].
    pub planes: Vec<StreamPlane>,
    /// The reputation plane (this node's manager role) — one book per node,
    /// shared by every stream: blames aggregate across channels.
    pub reputation: ReputationLayer,
    /// The node's strategy; configured the planes and keeps reshaping them.
    pub adversary: Box<dyn Adversary>,
    /// The node's private RNG stream (shared by its planes; single-stream
    /// runs therefore consume exactly the draws they always did).
    pub rng: SmallRng,
    /// Ground truth for the metrics (from the adversary, cached).
    pub is_freerider: bool,
    /// Recycled scratch for the gossip layers' sends (allocation-free path).
    scratch_sends: Vec<Downcall>,
    /// Recycled scratch for the gossip layers' upcalls.
    scratch_upcalls: Vec<GossipUpcall>,
}

impl NodeStack {
    /// Builds a single-stream node stack: the adversary configures every
    /// plane. Identical to [`with_streams`](NodeStack::with_streams) with one
    /// stream.
    pub fn new(
        id: NodeId,
        gossip_config: GossipConfig,
        lifting_config: LiftingConfig,
        lifting_enabled: bool,
        adversary: Box<dyn Adversary>,
        rng: SmallRng,
    ) -> Self {
        NodeStack::with_streams(
            id,
            gossip_config,
            lifting_config,
            lifting_enabled,
            adversary,
            rng,
            1,
        )
    }

    /// Builds a node stack carrying `streams` concurrent channels. The
    /// adversary configures each plane (possibly differently per stream —
    /// see [`Adversary::dissemination_plane_for`]); the reputation book is
    /// one and shared.
    #[allow(clippy::too_many_arguments)]
    pub fn with_streams(
        id: NodeId,
        gossip_config: GossipConfig,
        lifting_config: LiftingConfig,
        lifting_enabled: bool,
        adversary: Box<dyn Adversary>,
        rng: SmallRng,
        streams: usize,
    ) -> Self {
        let fanout = gossip_config.fanout;
        let is_freerider = adversary.is_freerider();
        let planes = (0..streams.max(1))
            .map(|s| {
                let stream = StreamId::new(s as u16);
                let gossip = GossipLayer::new(
                    GossipNode::for_stream(
                        id,
                        stream,
                        gossip_config,
                        adversary.dissemination_plane_for(stream),
                    ),
                    adversary.membership_plane_for(stream),
                );
                let verifier =
                    Verifier::new(id, fanout, lifting_config, adversary.verification_plane())
                        .for_stream(stream);
                StreamPlane {
                    stream,
                    gossip,
                    verification: VerificationLayer::new(verifier, lifting_enabled),
                }
            })
            .collect();
        NodeStack {
            planes,
            reputation: ReputationLayer::new(),
            adversary,
            rng,
            is_freerider,
            scratch_sends: Vec::new(),
            scratch_upcalls: Vec::new(),
        }
    }

    /// The node's identifier.
    pub fn id(&self) -> NodeId {
        self.planes[0].gossip.node.id()
    }

    /// The plane carrying `stream`.
    pub fn plane(&self, stream: StreamId) -> &StreamPlane {
        &self.planes[stream.index()]
    }

    /// Mutable access to the plane carrying `stream`.
    pub fn plane_mut(&mut self, stream: StreamId) -> &mut StreamPlane {
        &mut self.planes[stream.index()]
    }

    /// The primary stream's plane (the only one in single-channel runs).
    pub fn primary(&self) -> &StreamPlane {
        &self.planes[0]
    }

    /// Outstanding verification checks across every plane (tests, leak
    /// detection).
    pub fn pending_checks(&self) -> usize {
        self.planes
            .iter()
            .map(|p| p.verification.verifier.pending_checks())
            .sum()
    }

    /// Blames emitted across every plane.
    pub fn blames_emitted(&self) -> u64 {
        self.planes
            .iter()
            .map(|p| p.verification.verifier.blames_emitted())
            .sum()
    }

    /// Heap bytes held by this node's whole protocol state: every stream
    /// plane's gossip and verification structures plus the shared manager
    /// book. A deterministic capacity walk — identical across worker and
    /// shard counts — feeding the `memory_per_node_bytes` metric.
    pub fn estimated_heap_bytes(&self) -> usize {
        use std::mem::size_of;
        let planes: usize = self
            .planes
            .iter()
            .map(|p| {
                p.gossip.node.estimated_heap_bytes()
                    + p.verification.verifier.estimated_heap_bytes()
            })
            .sum();
        planes
            + self.planes.capacity() * size_of::<StreamPlane>()
            + self.reputation.estimated_heap_bytes()
            + self.scratch_sends.capacity() * size_of::<Downcall>()
            + self.scratch_upcalls.capacity() * size_of::<GossipUpcall>()
    }

    /// Hardened-confirm retry counters summed across every plane.
    pub fn confirm_retry_stats(&self) -> lifting_core::ConfirmRetryStats {
        let mut total = lifting_core::ConfirmRetryStats::default();
        for plane in &self.planes {
            let stats = plane.verification.verifier.confirm_retry_stats();
            total.timeouts += stats.timeouts;
            total.resends += stats.resends;
            total.aborts += stats.aborts;
        }
        total
    }

    /// Runs one gossip tick: every subscribed plane runs its propose phase in
    /// stream order — the adversary may reshape each dissemination plane
    /// first, the gossip layer runs the phase, its upcalls drive the plane's
    /// verification layer — and fabricated blames (if the adversary spams the
    /// reputation plane) are appended once, last.
    ///
    /// Downcall order within a plane mirrors the pre-multistream runtime
    /// exactly: verification traffic (acks, timers) first, then the propose
    /// sends, then (after all planes) adversarial extras.
    pub fn on_gossip_tick(
        &mut self,
        me: NodeId,
        now: SimTime,
        directory: &Directory,
        out: &mut Vec<Downcall>,
    ) {
        let mut gossip_sends = std::mem::take(&mut self.scratch_sends);
        let mut upcalls = std::mem::take(&mut self.scratch_upcalls);
        for plane in &mut self.planes {
            if !directory.is_subscribed(me, plane.stream) {
                continue; // not this node's channel
            }
            let mut env = LayerEnv {
                me,
                stream: plane.stream,
                now,
                directory,
                rng: &mut self.rng,
                upcalls_consumed: plane.verification.is_enabled(),
            };
            self.adversary.on_gossip_tick(
                plane.stream,
                plane.gossip.node.period(),
                &mut plane.gossip.node,
            );
            self.adversary.retune_membership(
                plane.stream,
                plane.gossip.node.period(),
                &mut plane.gossip.selector,
            );
            plane
                .gossip
                .on_tick(&mut env, &mut gossip_sends, &mut upcalls);
            for upcall in upcalls.drain(..) {
                plane.verification.on_gossip_upcall(&mut env, upcall, out);
            }
            out.append(&mut gossip_sends);
        }
        let mut env = LayerEnv {
            me,
            stream: StreamId::PRIMARY,
            now,
            directory,
            rng: &mut self.rng,
            upcalls_consumed: true,
        };
        for blame in self.adversary.fabricate_blames(&mut env) {
            out.push(Downcall::Blame(blame));
        }
        self.scratch_sends = gossip_sends;
        self.scratch_upcalls = upcalls;
    }

    /// Routes one delivered message into the stack: gossip and verification
    /// traffic goes to the plane of the stream it belongs to (derived from
    /// the chunk identities it carries), blames to the shared reputation
    /// plane.
    pub fn on_message(
        &mut self,
        me: NodeId,
        from: NodeId,
        message: Message,
        now: SimTime,
        directory: &Directory,
        out: &mut Vec<Downcall>,
    ) {
        let mut gossip_sends = std::mem::take(&mut self.scratch_sends);
        let mut upcalls = std::mem::take(&mut self.scratch_upcalls);
        match message {
            Message::Gossip(gossip_message) => {
                let stream = gossip_message.stream().unwrap_or(StreamId::PRIMARY);
                let plane = &mut self.planes[stream.index()];
                let mut env = LayerEnv {
                    me,
                    stream,
                    now,
                    directory,
                    rng: &mut self.rng,
                    upcalls_consumed: plane.verification.is_enabled(),
                };
                plane.gossip.on_inbound(
                    &mut env,
                    from,
                    gossip_message,
                    &mut gossip_sends,
                    &mut upcalls,
                );
                for upcall in upcalls.drain(..) {
                    plane.verification.on_gossip_upcall(&mut env, upcall, out);
                }
                out.append(&mut gossip_sends);
            }
            Message::Verification(verification_message) => {
                let mut no_upcalls = Vec::new();
                if verification_message.is_blame() {
                    let mut env = LayerEnv {
                        me,
                        stream: StreamId::PRIMARY,
                        now,
                        directory,
                        rng: &mut self.rng,
                        upcalls_consumed: true,
                    };
                    self.reputation.on_inbound(
                        &mut env,
                        from,
                        verification_message,
                        out,
                        &mut no_upcalls,
                    );
                } else {
                    let stream = verification_message.stream().unwrap_or(StreamId::PRIMARY);
                    let plane = &mut self.planes[stream.index()];
                    let mut env = LayerEnv {
                        me,
                        stream,
                        now,
                        directory,
                        rng: &mut self.rng,
                        upcalls_consumed: plane.verification.is_enabled(),
                    };
                    plane.verification.on_inbound(
                        &mut env,
                        from,
                        verification_message,
                        out,
                        &mut no_upcalls,
                    );
                }
            }
        }
        self.scratch_sends = gossip_sends;
        self.scratch_upcalls = upcalls;
    }

    /// A verifier timer owned by one of this node's planes expired.
    pub fn on_timer(
        &mut self,
        me: NodeId,
        stream: StreamId,
        timer: VerifierTimer,
        now: SimTime,
        directory: &Directory,
        out: &mut Vec<Downcall>,
    ) {
        let plane = &mut self.planes[stream.index()];
        let mut env = LayerEnv {
            me,
            stream,
            now,
            directory,
            rng: &mut self.rng,
            upcalls_consumed: plane.verification.is_enabled(),
        };
        plane.verification.on_timer(&mut env, timer, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Freerider, Honest, SelectiveFreerider};
    use lifting_core::CollusionConfig;
    use lifting_gossip::FreeriderConfig;
    use lifting_sim::derive_rng;

    fn stack(id: u32, adversary: Box<dyn Adversary>) -> NodeStack {
        NodeStack::new(
            NodeId::new(id),
            GossipConfig::planetlab(),
            LiftingConfig::planetlab(),
            true,
            adversary,
            derive_rng(1, id as u64),
        )
    }

    #[test]
    fn stack_wires_every_layer_with_the_same_identity() {
        let s = stack(4, Box::new(Honest));
        assert_eq!(s.id(), NodeId::new(4));
        assert_eq!(s.primary().gossip.node.id(), NodeId::new(4));
        assert_eq!(
            s.primary().verification.verifier.id(),
            s.primary().gossip.node.id()
        );
        assert!(!s.is_freerider);
        assert_eq!(s.planes.len(), 1);
    }

    #[test]
    fn multistream_stack_keys_every_plane_by_its_stream() {
        let s = NodeStack::with_streams(
            NodeId::new(2),
            GossipConfig::planetlab(),
            LiftingConfig::planetlab(),
            true,
            Box::new(Honest),
            derive_rng(1, 2),
            3,
        );
        assert_eq!(s.planes.len(), 3);
        for (i, plane) in s.planes.iter().enumerate() {
            let stream = StreamId::new(i as u16);
            assert_eq!(plane.stream, stream);
            assert_eq!(plane.gossip.node.stream(), stream);
            assert_eq!(plane.verification.verifier.stream(), stream);
        }
        assert_eq!(s.plane(StreamId::new(2)).stream, StreamId::new(2));
    }

    #[test]
    fn selective_freerider_configures_planes_differently() {
        let s = NodeStack::with_streams(
            NodeId::new(3),
            GossipConfig::planetlab(),
            LiftingConfig::planetlab(),
            true,
            Box::new(SelectiveFreerider { silent_mask: 0b10 }),
            derive_rng(1, 3),
            2,
        );
        assert!(s.is_freerider);
        assert!(!s
            .plane(StreamId::new(0))
            .gossip
            .node
            .behavior()
            .is_freerider());
        assert!(s
            .plane(StreamId::new(1))
            .gossip
            .node
            .behavior()
            .is_freerider());
    }

    #[test]
    fn freerider_adversary_shapes_the_dissemination_plane() {
        let s = stack(
            2,
            Box::new(Freerider {
                degree: FreeriderConfig::planetlab(),
            }),
        );
        assert!(s.is_freerider);
        assert!(s.primary().gossip.node.behavior().is_freerider());
        // Verification plane stays honest for an independent freerider.
        let collusion: &CollusionConfig = &CollusionConfig::none();
        assert_eq!(
            s.primary().verification.verifier.config().managers,
            LiftingConfig::planetlab().managers
        );
        assert!(!collusion.covers_up());
    }

    #[test]
    fn gossip_tick_on_empty_node_still_begins_a_period() {
        let mut s = stack(1, Box::new(Honest));
        let directory = Directory::new(8);
        let mut out = Vec::new();
        s.on_gossip_tick(NodeId::new(1), SimTime::ZERO, &directory, &mut out);
        assert!(out.is_empty(), "nothing to propose, nothing on the wire");
    }
}
