//! Convenience entry points for running scenarios, sequentially or as a
//! multi-core fleet.

use lifting_sim::{pool, Engine, SimDuration, SimTime};

use crate::metrics::{RunOutcome, ScoreSnapshot};
use crate::scenario::ScenarioConfig;
use crate::world::SystemWorld;

/// Builds an engine ready to run the given scenario (all initial events are
/// scheduled). Use this directly when you need fine-grained control over the
/// run (e.g. injecting faults between segments).
pub fn build_engine(config: ScenarioConfig) -> Engine<SystemWorld> {
    let world = SystemWorld::new(config);
    let events = world.initial_events();
    let mut engine = Engine::new(world);
    for (time, event) in events {
        engine.schedule(time, event);
    }
    engine
}

/// The default lag grid used for the stream-health curve of Figure 1:
/// 0 to 30 seconds in 1-second steps.
pub fn default_lag_grid() -> Vec<SimDuration> {
    (0..=30).map(SimDuration::from_secs).collect()
}

/// Environment variable selecting the shard count used by the convenience
/// entry points ([`run_scenario`], [`run_scenario_with_snapshots`] and the
/// parallel fleets built on them). Outcomes are **bit-identical** at any
/// value — the knob only changes how node-local event waves are executed —
/// so CI runs the suite with and without it and diffs the numbers. The
/// explicit `_sharded` variants ignore the variable; tests pass shard counts
/// as parameters so concurrent tests cannot race on process environment.
pub const SHARDS_ENV: &str = "LIFTING_SHARDS";

fn env_shards() -> usize {
    std::env::var(SHARDS_ENV)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// Runs a scenario to completion and returns its outcome.
pub fn run_scenario(config: ScenarioConfig) -> RunOutcome {
    run_scenario_with_snapshots(config, &[])
}

/// Runs a scenario over `shards` shard-parallel node ranges. The outcome is
/// **bit-identical** to [`run_scenario`] at any shard count (`shards <= 1`
/// falls back to classic sequential dispatch); only wall-clock time differs.
pub fn run_scenario_sharded(config: ScenarioConfig, shards: usize) -> RunOutcome {
    run_scenario_with_snapshots_sharded(config, &[], shards)
}

/// Runs a scenario, additionally recording score snapshots at the requested
/// instants (e.g. 25 s, 30 s and 35 s for Figure 14).
pub fn run_scenario_with_snapshots(
    config: ScenarioConfig,
    snapshot_times: &[SimDuration],
) -> RunOutcome {
    run_scenario_with_snapshots_sharded(config, snapshot_times, env_shards())
}

/// The sharded variant of [`run_scenario_with_snapshots`]: same outcome,
/// bit for bit, with node-local event waves fanned out over `shards` shards.
pub fn run_scenario_with_snapshots_sharded(
    config: ScenarioConfig,
    snapshot_times: &[SimDuration],
    shards: usize,
) -> RunOutcome {
    let duration = config.duration;
    let mut engine = build_engine(config);
    engine.world_mut().set_shard_count(shards);
    let mut snapshot_times: Vec<SimDuration> = snapshot_times
        .iter()
        .copied()
        .filter(|t| *t <= duration)
        .collect();
    snapshot_times.sort_unstable();

    let mut snapshots: Vec<ScoreSnapshot> = Vec::with_capacity(snapshot_times.len());
    for t in snapshot_times {
        let at = SimTime::ZERO + t;
        engine.run_until_sharded(at);
        snapshots.push(engine.world().score_snapshot(at));
    }
    let end = SimTime::ZERO + duration;
    engine.run_until_sharded(end);
    let lags = default_lag_grid();
    engine.world().run_outcome(end, snapshots, &lags)
}

/// Runs a fleet of independent scenarios on a worker pool, one engine per
/// scenario, and returns their outcomes in input order.
///
/// Every scenario carries its own master seed and runs in a self-contained
/// engine, so the outcomes are **bit-identical** to running each scenario
/// through [`run_scenario`] sequentially — the pool only changes wall-clock
/// time, never results. Set `LIFTING_WORKERS=1` to force sequential
/// execution (e.g. for timing comparisons).
pub fn run_scenarios_parallel(configs: Vec<ScenarioConfig>) -> Vec<RunOutcome> {
    pool::run_indexed(configs.len(), |i| run_scenario(configs[i].clone()))
}

/// Like [`run_scenarios_parallel`], but each scenario also records score
/// snapshots at its requested instants.
pub fn run_scenarios_parallel_with_snapshots(
    jobs: Vec<(ScenarioConfig, Vec<SimDuration>)>,
) -> Vec<RunOutcome> {
    pool::run_indexed(jobs.len(), |i| {
        let (config, snaps) = &jobs[i];
        run_scenario_with_snapshots(config.clone(), snaps)
    })
}

/// Runs `jobs` arbitrary indexed jobs on the same worker pool the scenario
/// fleet uses, returning results in index order. This is the job-queue
/// primitive the experiment harness fans whole figures out through; results
/// are deterministic as long as `f(i)` depends only on `i`.
pub fn run_jobs_parallel<T, F>(jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    pool::run_indexed(jobs, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_fleet_matches_sequential_runs_bit_for_bit() {
        let configs: Vec<ScenarioConfig> = (0..4)
            .map(|i| {
                let mut c = ScenarioConfig::small_test(15 + i, 100 + i as u64);
                c.duration = SimDuration::from_secs(4);
                c
            })
            .collect();
        let parallel = run_scenarios_parallel(configs.clone());
        let sequential: Vec<RunOutcome> = configs.into_iter().map(run_scenario).collect();
        assert_eq!(parallel.len(), sequential.len());
        for (p, s) in parallel.iter().zip(&sequential) {
            assert_eq!(p.finals.outcomes, s.finals.outcomes);
            assert_eq!(p.traffic.total_bytes_sent, s.traffic.total_bytes_sent);
            assert_eq!(
                p.stream_health.fraction_clear,
                s.stream_health.fraction_clear
            );
            assert_eq!(p.expelled_count, s.expelled_count);
        }
    }

    #[test]
    fn parallel_snapshot_fleet_matches_sequential_runs() {
        let snaps = vec![SimDuration::from_secs(2), SimDuration::from_secs(4)];
        let jobs: Vec<(ScenarioConfig, Vec<SimDuration>)> = (0..3)
            .map(|i| {
                let mut c = ScenarioConfig::small_test(16 + i, 7 + i as u64);
                c.duration = SimDuration::from_secs(5);
                (c, snaps.clone())
            })
            .collect();
        let parallel = run_scenarios_parallel_with_snapshots(jobs.clone());
        for (p, (config, snaps)) in parallel.iter().zip(jobs) {
            let s = run_scenario_with_snapshots(config, &snaps);
            assert_eq!(p.snapshots.len(), 2);
            for (ps, ss) in p.snapshots.iter().zip(&s.snapshots) {
                assert_eq!(ps.at, ss.at);
                assert_eq!(ps.outcomes, ss.outcomes);
            }
            assert_eq!(p.finals.outcomes, s.finals.outcomes);
        }
    }

    #[test]
    fn sharded_execution_is_bit_identical_across_shard_counts() {
        // Freeriders on: blames, timers and verification traffic all flow, so
        // the wave executor's Phase B must reproduce every RNG draw exactly.
        let mut config = ScenarioConfig::small_test(40, 11).with_planetlab_freeriders(0.25);
        config.duration = SimDuration::from_secs(8);
        let sequential = run_scenario(config.clone());
        for shards in [2usize, 4, 8] {
            let sharded = run_scenario_sharded(config.clone(), shards);
            assert_eq!(
                sequential.finals.outcomes, sharded.finals.outcomes,
                "scores diverged at {shards} shards"
            );
            assert_eq!(
                sequential.traffic.total_bytes_sent, sharded.traffic.total_bytes_sent,
                "traffic diverged at {shards} shards"
            );
            assert_eq!(
                sequential.traffic.total_messages_sent,
                sharded.traffic.total_messages_sent
            );
            assert_eq!(
                sequential.stream_health.fraction_clear,
                sharded.stream_health.fraction_clear
            );
            assert_eq!(sequential.expelled_count, sharded.expelled_count);
        }
    }

    #[test]
    fn job_queue_preserves_index_order() {
        let out = run_jobs_parallel(32, |i| i * i);
        assert_eq!(out, (0..32).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn small_honest_system_disseminates_the_stream() {
        let config = ScenarioConfig::small_test(30, 42);
        let outcome = run_scenario(config);
        // Every chunk emitted early enough should have reached almost every node.
        let health = &outcome.stream_health;
        let last = *health.fraction_clear.last().unwrap();
        assert!(
            last > 0.9,
            "most nodes should view a clear stream at a large lag, got {last}"
        );
        assert_eq!(
            outcome.expelled_count, 0,
            "honest nodes must not be expelled"
        );
        // Honest nodes' compensated scores should not be wildly negative.
        let fp = outcome.false_positive_rate(-9.75);
        assert!(fp < 0.2, "false positives {fp}");
    }

    #[test]
    fn snapshots_are_recorded_in_order() {
        let mut config = ScenarioConfig::small_test(20, 7);
        config.duration = SimDuration::from_secs(10);
        let outcome = run_scenario_with_snapshots(
            config,
            &[SimDuration::from_secs(4), SimDuration::from_secs(8)],
        );
        assert_eq!(outcome.snapshots.len(), 2);
        assert!(outcome.snapshots[0].at < outcome.snapshots[1].at);
        assert_eq!(outcome.finals.outcomes.len(), 19); // source is not scored
    }

    #[test]
    fn freeriders_score_worse_than_honest_nodes() {
        let mut config = ScenarioConfig::small_test(40, 11).with_planetlab_freeriders(0.25);
        config.duration = SimDuration::from_secs(20);
        let outcome = run_scenario(config);
        let honest = outcome.finals.honest_scores();
        let freeriders = outcome.finals.freerider_scores();
        assert!(!honest.is_empty() && !freeriders.is_empty());
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&freeriders) < mean(&honest),
            "freeriders {:.2} should score below honest {:.2}",
            mean(&freeriders),
            mean(&honest)
        );
    }

    #[test]
    fn disabling_lifting_removes_verification_traffic() {
        let mut config = ScenarioConfig::small_test(20, 3);
        config.lifting_enabled = false;
        config.duration = SimDuration::from_secs(8);
        let outcome = run_scenario(config);
        assert_eq!(outcome.traffic.overhead_ratio, 0.0);
        assert!(outcome
            .finals
            .outcomes
            .iter()
            .all(|o| o.score.unwrap_or(0.0) == 0.0));
    }
}
