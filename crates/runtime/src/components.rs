//! Runtime-level component registries: workload generators, adversaries and
//! outcome exporters, plus the resolution glue that turns a
//! [`ScenarioConfig`]'s declarative `components` section into live providers.
//!
//! Together with the network registries of [`lifting_net::provider`]
//! (transports, loss models, capability classes), these registries make
//! scenario construction compositional: a registry entry picks named
//! components and parameter maps instead of hand-assembling enums, and every
//! axis can be extended by registering a new component — no builder surgery.
//!
//! Resolution happens in [`crate::builder::build_world`] via
//! [`resolve_components`]; everything a component resolves to is derived
//! from the same [`lifting_sim::SeedSplitter`] streams the legacy fields
//! used, so a scenario re-expressed through components stays bit-identical.

use std::sync::OnceLock;

use lifting_membership::{DiurnalCycle, RegionalFailureWaves, WorkloadGenerator, ZapSwitching};
use lifting_net::provider::{capability_components, loss_components, transport_components};
use lifting_sim::{
    Component, ComponentError, ComponentRegistry, ParamKind, ParamMap, ParamSpec, ParamValue,
    ParamsSchema, SeedSplitter, SimDuration,
};

use crate::metrics::RunOutcome;
use crate::scenario::{AdversaryScenario, ComponentSpec, ScenarioConfig};

fn float_param(params: &ParamMap, key: &str) -> f64 {
    match params.get(key) {
        Some(ParamValue::Float(x)) => *x,
        Some(ParamValue::Int(x)) => *x as f64,
        _ => unreachable!("schema-validated float param `{key}`"),
    }
}

fn int_param(params: &ParamMap, key: &str) -> i64 {
    match params.get(key) {
        Some(ParamValue::Int(x)) => *x,
        _ => unreachable!("schema-validated int param `{key}`"),
    }
}

fn fraction_param(component: &str, params: &ParamMap, key: &str) -> Result<f64, ComponentError> {
    let x = float_param(params, key);
    if !(0.0..=1.0).contains(&x) {
        return Err(ComponentError::InvalidParam {
            component: component.to_string(),
            key: key.to_string(),
            reason: format!("{x} is not in [0, 1]"),
        });
    }
    Ok(x)
}

fn positive_secs(
    component: &str,
    params: &ParamMap,
    key: &str,
) -> Result<SimDuration, ComponentError> {
    let x = float_param(params, key);
    // NaN must fail too, so the check is written as "not known-positive".
    if x.is_nan() || x <= 0.0 {
        return Err(ComponentError::InvalidParam {
            component: component.to_string(),
            key: key.to_string(),
            reason: format!("{x} seconds is not positive"),
        });
    }
    Ok(SimDuration::from_secs_f64(x))
}

fn positive_int(component: &str, params: &ParamMap, key: &str) -> Result<i64, ComponentError> {
    let x = int_param(params, key);
    if x < 1 {
        return Err(ComponentError::InvalidParam {
            component: component.to_string(),
            key: key.to_string(),
            reason: format!("{x} must be at least 1"),
        });
    }
    Ok(x)
}

// ---------------------------------------------------------------------------
// Workload components.
// ---------------------------------------------------------------------------

struct DiurnalComponent;

impl Component<Box<dyn WorkloadGenerator>> for DiurnalComponent {
    fn name(&self) -> &'static str {
        "diurnal"
    }
    fn description(&self) -> &'static str {
        "Diurnal audience cycles: a fraction of the viewers departs and returns each cycle"
    }
    fn params_schema(&self) -> ParamsSchema {
        ParamsSchema::of(vec![
            ParamSpec::optional(
                "participation",
                ParamKind::Float,
                ParamValue::Float(0.6),
                "fraction of the viewers subject to the cycle",
            ),
            ParamSpec::optional(
                "cycle_secs",
                ParamKind::Float,
                ParamValue::Float(12.0),
                "length of one audience cycle, seconds",
            ),
            ParamSpec::optional(
                "offline_fraction",
                ParamKind::Float,
                ParamValue::Float(0.35),
                "fraction of each cycle a participating viewer spends offline",
            ),
            ParamSpec::optional(
                "warmup_secs",
                ParamKind::Float,
                ParamValue::Float(4.0),
                "quiet start before the first departure, seconds",
            ),
        ])
    }
    fn build(
        &self,
        params: &ParamMap,
        _: &mut SeedSplitter,
    ) -> Result<Box<dyn WorkloadGenerator>, ComponentError> {
        Ok(Box::new(DiurnalCycle {
            participation: fraction_param("diurnal", params, "participation")?,
            cycle: positive_secs("diurnal", params, "cycle_secs")?,
            offline_fraction: fraction_param("diurnal", params, "offline_fraction")?,
            warmup: positive_secs("diurnal", params, "warmup_secs")?,
        }))
    }
}

struct RegionalFailureComponent;

impl Component<Box<dyn WorkloadGenerator>> for RegionalFailureComponent {
    fn name(&self) -> &'static str {
        "regional-failure"
    }
    fn description(&self) -> &'static str {
        "Correlated regional failures: whole geographic regions crash together and return"
    }
    fn params_schema(&self) -> ParamsSchema {
        ParamsSchema::of(vec![
            ParamSpec::optional(
                "regions",
                ParamKind::Int,
                ParamValue::Int(4),
                "number of equal-size regions the viewers are split into",
            ),
            ParamSpec::optional(
                "waves",
                ParamKind::Int,
                ParamValue::Int(2),
                "number of failure waves over the run",
            ),
            ParamSpec::optional(
                "outage_secs",
                ParamKind::Float,
                ParamValue::Float(4.0),
                "how long each failed region stays dark, seconds",
            ),
            ParamSpec::optional(
                "warmup_secs",
                ParamKind::Float,
                ParamValue::Float(5.0),
                "quiet start before the first wave may hit, seconds",
            ),
        ])
    }
    fn build(
        &self,
        params: &ParamMap,
        _: &mut SeedSplitter,
    ) -> Result<Box<dyn WorkloadGenerator>, ComponentError> {
        Ok(Box::new(RegionalFailureWaves {
            regions: positive_int("regional-failure", params, "regions")? as usize,
            waves: positive_int("regional-failure", params, "waves")? as usize,
            outage: positive_secs("regional-failure", params, "outage_secs")?,
            warmup: positive_secs("regional-failure", params, "warmup_secs")?,
        }))
    }
}

struct ZapComponent;

impl Component<Box<dyn WorkloadGenerator>> for ZapComponent {
    fn name(&self) -> &'static str {
        "zap"
    }
    fn description(&self) -> &'static str {
        "Zap-style channel switching: viewers hop between channels with exponential dwells"
    }
    fn params_schema(&self) -> ParamsSchema {
        ParamsSchema::of(vec![
            ParamSpec::optional(
                "zappers",
                ParamKind::Float,
                ParamValue::Float(0.4),
                "fraction of the viewers that zap between channels",
            ),
            ParamSpec::optional(
                "mean_dwell_secs",
                ParamKind::Float,
                ParamValue::Float(6.0),
                "mean time a zapper stays on one channel, seconds",
            ),
            ParamSpec::optional(
                "warmup_secs",
                ParamKind::Float,
                ParamValue::Float(3.0),
                "quiet start before the first switch, seconds",
            ),
        ])
    }
    fn build(
        &self,
        params: &ParamMap,
        _: &mut SeedSplitter,
    ) -> Result<Box<dyn WorkloadGenerator>, ComponentError> {
        Ok(Box::new(ZapSwitching {
            zappers: fraction_param("zap", params, "zappers")?,
            mean_dwell: positive_secs("zap", params, "mean_dwell_secs")?,
            warmup: positive_secs("zap", params, "warmup_secs")?,
        }))
    }
}

/// The registry of workload-generator components: `diurnal`,
/// `regional-failure`, `zap`.
pub fn workload_components() -> &'static ComponentRegistry<Box<dyn WorkloadGenerator>> {
    static REGISTRY: OnceLock<ComponentRegistry<Box<dyn WorkloadGenerator>>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut registry = ComponentRegistry::new("workload");
        registry
            .register(Box::new(DiurnalComponent))
            .expect("unique workload component");
        registry
            .register(Box::new(RegionalFailureComponent))
            .expect("unique workload component");
        registry
            .register(Box::new(ZapComponent))
            .expect("unique workload component");
        registry
    })
}

// ---------------------------------------------------------------------------
// Adversary components.
// ---------------------------------------------------------------------------

/// One adversary family as a component: builds the [`AdversaryScenario`]
/// value the per-node wiring of [`crate::builder::adversary_for`] consumes.
struct AdversaryComponent {
    name: &'static str,
    description: &'static str,
    schema: fn() -> ParamsSchema,
    build: fn(&ParamMap) -> Result<AdversaryScenario, ComponentError>,
}

impl Component<AdversaryScenario> for AdversaryComponent {
    fn name(&self) -> &'static str {
        self.name
    }
    fn description(&self) -> &'static str {
        self.description
    }
    fn params_schema(&self) -> ParamsSchema {
        (self.schema)()
    }
    fn build(
        &self,
        params: &ParamMap,
        _: &mut SeedSplitter,
    ) -> Result<AdversaryScenario, ComponentError> {
        (self.build)(params)
    }
}

/// The registry of adversary components, one per [`AdversaryScenario`]
/// family: `baseline`, `on-off`, `blame-spam`, `selective-freerider`,
/// `gradient-freerider`, `whitewasher`, `adaptive-colluders`.
pub fn adversary_components() -> &'static ComponentRegistry<AdversaryScenario> {
    static REGISTRY: OnceLock<ComponentRegistry<AdversaryScenario>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut registry = ComponentRegistry::new("adversary");
        let entries: Vec<AdversaryComponent> = vec![
            AdversaryComponent {
                name: "baseline",
                description:
                    "The paper's adversary: independent freeriders, collusion per the scenario",
                schema: ParamsSchema::empty,
                build: |_| Ok(AdversaryScenario::Baseline),
            },
            AdversaryComponent {
                name: "on-off",
                description: "Freeride for `on_periods`, behave for `off_periods`, diluting blame",
                schema: || {
                    ParamsSchema::of(vec![
                        ParamSpec::optional(
                            "on_periods",
                            ParamKind::Int,
                            ParamValue::Int(2),
                            "length of each freeriding window, gossip periods",
                        ),
                        ParamSpec::optional(
                            "off_periods",
                            ParamKind::Int,
                            ParamValue::Int(2),
                            "length of each honest window, gossip periods",
                        ),
                    ])
                },
                build: |params| {
                    Ok(AdversaryScenario::OnOff {
                        on_periods: positive_int("on-off", params, "on_periods")? as u64,
                        off_periods: positive_int("on-off", params, "off_periods")? as u64,
                    })
                },
            },
            AdversaryComponent {
                name: "blame-spam",
                description: "Disseminate honestly but flood the managers with fabricated blames",
                schema: || {
                    ParamsSchema::of(vec![
                        ParamSpec::optional(
                            "blames_per_period",
                            ParamKind::Int,
                            ParamValue::Int(5),
                            "fabricated blames per gossip tick per spammer",
                        ),
                        ParamSpec::optional(
                            "blame_value",
                            ParamKind::Float,
                            ParamValue::Float(5.0),
                            "value of each fabricated blame (non-negative)",
                        ),
                    ])
                },
                build: |params| {
                    let blame_value = float_param(params, "blame_value");
                    if blame_value < 0.0 {
                        return Err(ComponentError::InvalidParam {
                            component: "blame-spam".to_string(),
                            key: "blame_value".to_string(),
                            reason: format!("{blame_value} is negative"),
                        });
                    }
                    Ok(AdversaryScenario::BlameSpam {
                        blames_per_period: positive_int("blame-spam", params, "blames_per_period")?
                            as u32,
                        blame_value,
                    })
                },
            },
            AdversaryComponent {
                name: "selective-freerider",
                description: "Honest on some channels, fully silent on the masked ones",
                schema: || {
                    ParamsSchema::of(vec![ParamSpec::optional(
                        "silent_mask",
                        ParamKind::Int,
                        ParamValue::Int(0b10),
                        "bitmask of silenced streams (bit s = stream s, nonzero)",
                    )])
                },
                build: |params| {
                    let silent_mask = int_param(params, "silent_mask");
                    if silent_mask == 0 {
                        return Err(ComponentError::InvalidParam {
                            component: "selective-freerider".to_string(),
                            key: "silent_mask".to_string(),
                            reason: "mask must silence at least one stream".to_string(),
                        });
                    }
                    Ok(AdversaryScenario::SelectiveFreerider {
                        silent_mask: silent_mask as u64,
                    })
                },
            },
            AdversaryComponent {
                name: "gradient-freerider",
                description: "Closed loop: throttle freeriding to ride just above the public η",
                schema: || {
                    ParamsSchema::of(vec![
                        ParamSpec::optional(
                            "margin",
                            ParamKind::Float,
                            ParamValue::Float(2.0),
                            "safety margin above η the adversary keeps",
                        ),
                        ParamSpec::optional(
                            "step",
                            ParamKind::Float,
                            ParamValue::Float(0.25),
                            "intensity decrement when the score nears η, in (0, 1]",
                        ),
                    ])
                },
                build: |params| {
                    let margin = float_param(params, "margin");
                    let step = float_param(params, "step");
                    if margin < 0.0 {
                        return Err(ComponentError::InvalidParam {
                            component: "gradient-freerider".to_string(),
                            key: "margin".to_string(),
                            reason: format!("{margin} is negative"),
                        });
                    }
                    if !(step > 0.0 && step <= 1.0) {
                        return Err(ComponentError::InvalidParam {
                            component: "gradient-freerider".to_string(),
                            key: "step".to_string(),
                            reason: format!("{step} is not in (0, 1]"),
                        });
                    }
                    Ok(AdversaryScenario::GradientFreerider { margin, step })
                },
            },
            AdversaryComponent {
                name: "whitewasher",
                description:
                    "Closed loop: depart on a score drawdown, rejoin hoping for a clean slate",
                schema: || {
                    ParamsSchema::of(vec![
                        ParamSpec::optional(
                            "margin",
                            ParamKind::Float,
                            ParamValue::Float(0.5),
                            "drawdown below the observed peak that triggers departure",
                        ),
                        ParamSpec::optional(
                            "offline_secs",
                            ParamKind::Float,
                            ParamValue::Float(2.0),
                            "offline time before each rejoin, seconds",
                        ),
                    ])
                },
                build: |params| {
                    let margin = float_param(params, "margin");
                    if margin < 0.0 {
                        return Err(ComponentError::InvalidParam {
                            component: "whitewasher".to_string(),
                            key: "margin".to_string(),
                            reason: format!("{margin} is negative"),
                        });
                    }
                    Ok(AdversaryScenario::Whitewasher {
                        margin,
                        offline: positive_secs("whitewasher", params, "offline_secs")?,
                    })
                },
            },
            AdversaryComponent {
                name: "adaptive-colluders",
                description: "Closed loop: re-aim cover-traffic bias away from audited accomplices",
                schema: || {
                    ParamsSchema::of(vec![
                        ParamSpec::optional(
                            "partner_bias",
                            ParamKind::Float,
                            ParamValue::Float(0.6),
                            "probability of picking an unscrutinized accomplice as partner",
                        ),
                        ParamSpec::optional(
                            "cooldown_periods",
                            ParamKind::Int,
                            ParamValue::Int(6),
                            "periods an audited accomplice stays off the bias list",
                        ),
                    ])
                },
                build: |params| {
                    Ok(AdversaryScenario::AdaptiveColluders {
                        partner_bias: fraction_param("adaptive-colluders", params, "partner_bias")?,
                        cooldown_periods: positive_int(
                            "adaptive-colluders",
                            params,
                            "cooldown_periods",
                        )? as u64,
                    })
                },
            },
        ];
        for entry in entries {
            registry
                .register(Box::new(entry))
                .expect("unique adversary component");
        }
        registry
    })
}

// ---------------------------------------------------------------------------
// Outcome exporters.
// ---------------------------------------------------------------------------

/// Renders a finished run's [`RunOutcome`] for a consumer: full JSON, a
/// one-line summary, or a content digest.
pub trait OutcomeExporter: Send + Sync {
    /// The registered name.
    fn name(&self) -> &'static str;
    /// Renders the outcome of `scenario` as a string (the binaries decide
    /// where it goes: stdout, a file, a report).
    fn export(&self, scenario: &str, eta: f64, outcome: &RunOutcome) -> String;
}

struct JsonExporter;

impl OutcomeExporter for JsonExporter {
    fn name(&self) -> &'static str {
        "json"
    }
    fn export(&self, _scenario: &str, _eta: f64, outcome: &RunOutcome) -> String {
        serde_json::to_string_pretty(outcome).unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"))
    }
}

struct SummaryLineExporter;

impl OutcomeExporter for SummaryLineExporter {
    fn name(&self) -> &'static str {
        "summary-line"
    }
    fn export(&self, scenario: &str, eta: f64, outcome: &RunOutcome) -> String {
        format!(
            "{scenario}: detection {:.1}% fp {:.2}% expelled {} health {:.3} chunks {} msgs {}",
            outcome.detection_rate(eta) * 100.0,
            outcome.false_positive_rate(eta) * 100.0,
            outcome.expelled_count,
            outcome
                .stream_health
                .fraction_clear
                .iter()
                .copied()
                .sum::<f64>()
                / outcome.stream_health.fraction_clear.len().max(1) as f64,
            outcome.emitted_chunks.len(),
            outcome.traffic.total_messages_sent,
        )
    }
}

struct DigestExporter;

impl OutcomeExporter for DigestExporter {
    fn name(&self) -> &'static str {
        "digest"
    }
    fn export(&self, scenario: &str, _eta: f64, outcome: &RunOutcome) -> String {
        // FNV-1a over the canonical JSON rendering: a stable content hash
        // (the golden-digest tests pin the same idea over the raw fields).
        let rendered = serde_json::to_string(outcome).unwrap_or_default();
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in rendered.as_bytes() {
            hash ^= *byte as u64;
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        format!("{scenario}: 0x{hash:016x}")
    }
}

/// The registry of outcome exporters: `json`, `summary-line`, `digest`.
pub fn exporter_components() -> &'static ComponentRegistry<Box<dyn OutcomeExporter>> {
    static REGISTRY: OnceLock<ComponentRegistry<Box<dyn OutcomeExporter>>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut registry = ComponentRegistry::new("exporter");
        for entry in [
            ("json", "Full RunOutcome as pretty-printed JSON"),
            (
                "summary-line",
                "One line: detection, false positives, expulsions, stream health",
            ),
            (
                "digest",
                "FNV-1a content hash of the outcome (regression pinning)",
            ),
        ] {
            let component: Box<dyn Component<Box<dyn OutcomeExporter>>> = match entry.0 {
                "json" => Box::new(ExporterComponent {
                    name: entry.0,
                    description: entry.1,
                    make: || Box::new(JsonExporter),
                }),
                "summary-line" => Box::new(ExporterComponent {
                    name: entry.0,
                    description: entry.1,
                    make: || Box::new(SummaryLineExporter),
                }),
                _ => Box::new(ExporterComponent {
                    name: entry.0,
                    description: entry.1,
                    make: || Box::new(DigestExporter),
                }),
            };
            registry.register(component).expect("unique exporter");
        }
        registry
    })
}

struct ExporterComponent {
    name: &'static str,
    description: &'static str,
    make: fn() -> Box<dyn OutcomeExporter>,
}

impl Component<Box<dyn OutcomeExporter>> for ExporterComponent {
    fn name(&self) -> &'static str {
        self.name
    }
    fn description(&self) -> &'static str {
        self.description
    }
    fn build(
        &self,
        _: &ParamMap,
        _: &mut SeedSplitter,
    ) -> Result<Box<dyn OutcomeExporter>, ComponentError> {
        Ok((self.make)())
    }
}

// ---------------------------------------------------------------------------
// Resolution.
// ---------------------------------------------------------------------------

/// Resolves the config's declarative `components` section into the concrete
/// values the builder consumes: the transport policy, the loss model and the
/// adversary are written back into their legacy fields (so the rest of the
/// pipeline — and serialization — sees one source of truth), while the
/// capability and workload providers are built on demand by the builder.
///
/// Returns a structured error naming the offending component or key; no
/// registry path panics.
pub fn resolve_components(config: &mut ScenarioConfig) -> Result<(), ComponentError> {
    let mut seeds = SeedSplitter::new(config.seed);
    if let Some(spec) = config.components.transport.clone() {
        config.network.transports =
            transport_components().build(&spec.name, &spec.params, &mut seeds)?;
    }
    if let Some(spec) = config.components.loss.clone() {
        config.network.loss = loss_components().build(&spec.name, &spec.params, &mut seeds)?;
    }
    if let Some(spec) = config.components.adversary.clone() {
        config.adversary = adversary_components().build(&spec.name, &spec.params, &mut seeds)?;
    }
    // Capability, workload and exporter specs are validated here (shape and
    // ranges) even though their providers are instantiated later, so a bad
    // spec fails at resolution with a structured error rather than deep in
    // the builder.
    if let Some(spec) = &config.components.capability {
        capability_components().build(&spec.name, &spec.params, &mut seeds)?;
    }
    if let Some(spec) = &config.components.workload {
        workload_components().build(&spec.name, &spec.params, &mut seeds)?;
    }
    if let Some(spec) = &config.components.exporter {
        exporter_components().build(&spec.name, &spec.params, &mut seeds)?;
    }
    Ok(())
}

/// The scenario's composition across every component axis, legacy fields
/// included: explicit `components` entries verbatim, the rest derived from
/// the fields the axis would otherwise be configured by. This is what
/// `run_scenario --list` prints next to each scenario.
pub fn component_summary(config: &ScenarioConfig) -> Vec<(&'static str, String)> {
    let spec_of = |spec: &ComponentSpec| {
        if spec.params.is_empty() {
            spec.name.clone()
        } else {
            format!("{}{{{}}}", spec.name, spec.params.render())
        }
    };
    let transport = match &config.components.transport {
        Some(spec) => spec_of(spec),
        None => {
            use lifting_net::TransportPolicy;
            if config.network.transports == TransportPolicy::all_udp() {
                "all-udp".to_string()
            } else if config.network.transports == TransportPolicy::all_tcp() {
                "all-tcp".to_string()
            } else {
                "paper".to_string()
            }
        }
    };
    let loss = match &config.components.loss {
        Some(spec) => spec_of(spec),
        None => match config.network.loss {
            lifting_net::LossModel::None => "none".to_string(),
            lifting_net::LossModel::Bernoulli { pl } => format!("bernoulli{{pl={pl}}}"),
            lifting_net::LossModel::GilbertElliott { p_gb, p_bg, .. } => {
                format!("gilbert-elliott{{p_gb={p_gb},p_bg={p_bg}}}")
            }
        },
    };
    let capability = match &config.components.capability {
        Some(spec) => spec_of(spec),
        None if config.poor_node_fraction > 0.0 => {
            format!("poor-fraction{{fraction={}}}", config.poor_node_fraction)
        }
        None => "uniform".to_string(),
    };
    let workload = match &config.components.workload {
        Some(spec) => spec_of(spec),
        None if config.churn.is_some() => "churn-schedule".to_string(),
        None => "static".to_string(),
    };
    let adversary = match &config.components.adversary {
        Some(spec) => spec_of(spec),
        None => match config.adversary {
            AdversaryScenario::Baseline if config.freerider_count() == 0 => "none".to_string(),
            AdversaryScenario::Baseline if config.collusion.is_active() => "colluders".to_string(),
            AdversaryScenario::Baseline => "baseline".to_string(),
            AdversaryScenario::OnOff { .. } => "on-off".to_string(),
            AdversaryScenario::BlameSpam { .. } => "blame-spam".to_string(),
            AdversaryScenario::SelectiveFreerider { .. } => "selective-freerider".to_string(),
            AdversaryScenario::GradientFreerider { .. } => "gradient-freerider".to_string(),
            AdversaryScenario::Whitewasher { .. } => "whitewasher".to_string(),
            AdversaryScenario::AdaptiveColluders { .. } => "adaptive-colluders".to_string(),
        },
    };
    let exporter = match &config.components.exporter {
        Some(spec) => spec_of(spec),
        None => "summary-line".to_string(),
    };
    vec![
        ("transport", transport),
        ("loss", loss),
        ("capability", capability),
        ("workload", workload),
        ("adversary", adversary),
        ("exporter", exporter),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ComponentSpec;

    #[test]
    fn adversary_components_cover_every_family() {
        let registry = adversary_components();
        let mut seeds = SeedSplitter::new(1);
        assert_eq!(
            registry
                .build("baseline", &ParamMap::new(), &mut seeds)
                .unwrap(),
            AdversaryScenario::Baseline
        );
        let on_off = registry
            .build("on-off", &ParamMap::new(), &mut seeds)
            .unwrap();
        assert_eq!(
            on_off,
            AdversaryScenario::OnOff {
                on_periods: 2,
                off_periods: 2
            }
        );
        assert!(registry.names().any(|n| n == "whitewasher"));
        assert_eq!(registry.len(), 7);
    }

    #[test]
    fn bad_adversary_params_are_structured_errors() {
        let registry = adversary_components();
        let mut seeds = SeedSplitter::new(1);
        let params = ParamMap::new().with("step", ParamValue::Float(0.0));
        let err = registry
            .build("gradient-freerider", &params, &mut seeds)
            .map(|_| ())
            .unwrap_err();
        assert!(err.to_string().contains("step"), "{err}");
        let params = ParamMap::new().with("silent_mask", ParamValue::Int(0));
        let err = registry
            .build("selective-freerider", &params, &mut seeds)
            .map(|_| ())
            .unwrap_err();
        assert!(err.to_string().contains("silent_mask"), "{err}");
    }

    #[test]
    fn workload_components_build_their_generators() {
        let registry = workload_components();
        let mut seeds = SeedSplitter::new(1);
        for name in ["diurnal", "regional-failure", "zap"] {
            let generator = registry.build(name, &ParamMap::new(), &mut seeds).unwrap();
            assert_eq!(generator.name(), name);
        }
        let params = ParamMap::new().with("cycle_secs", ParamValue::Float(-1.0));
        assert!(registry.build("diurnal", &params, &mut seeds).is_err());
    }

    #[test]
    fn resolution_writes_back_into_the_legacy_fields() {
        let mut config = crate::scenario::ScenarioConfig::small_test(10, 3);
        config.components.transport = Some(ComponentSpec::new("all-tcp"));
        config.components.loss =
            Some(ComponentSpec::new("bernoulli").with("pl", ParamValue::Float(0.02)));
        resolve_components(&mut config).unwrap();
        assert_eq!(
            config.network.transports,
            lifting_net::TransportPolicy::all_tcp()
        );
        assert_eq!(
            config.network.loss,
            lifting_net::LossModel::Bernoulli { pl: 0.02 }
        );
    }

    #[test]
    fn resolution_rejects_unknown_components_cleanly() {
        let mut config = crate::scenario::ScenarioConfig::small_test(10, 3);
        config.components.workload = Some(ComponentSpec::new("tidal"));
        let err = resolve_components(&mut config).unwrap_err();
        assert!(matches!(err, ComponentError::UnknownComponent { .. }));
        assert!(err.to_string().contains("tidal"), "{err}");
    }

    #[test]
    fn summary_covers_every_axis() {
        let config = crate::scenario::ScenarioConfig::planetlab_baseline(1);
        let summary = component_summary(&config);
        let axes: Vec<&str> = summary.iter().map(|(k, _)| *k).collect();
        assert_eq!(
            axes,
            vec![
                "transport",
                "loss",
                "capability",
                "workload",
                "adversary",
                "exporter"
            ]
        );
    }
}
