//! The shard-parallel wave executor: processes a same-timestamp batch of
//! node-local events across the worker pool, bit-identically to sequential
//! dispatch.
//!
//! # How a wave runs
//!
//! The engine hands [`SystemWorld`] a **wave**: the maximal run of due events
//! that share one timestamp and are all *node-local* (`GossipTick`,
//! `Deliver`, `Timer` — events whose handler mutates only the acting node's
//! stack). Execution splits into two phases:
//!
//! * **Phase A (shard-parallel).** Events are grouped by the shard owning
//!   their acting node ([`lifting_sim::ShardMap`], contiguous id ranges) and
//!   each shard's group is processed on the worker pool against a disjoint
//!   `&mut [NodeStack]` slice. A shard runs its events in ascending wave
//!   position, evaluates the epoch/activity gates and runs the stack
//!   handlers; every effect the handler wants to have on the rest of the
//!   world — a wire send, a timer, a blame, the tick reschedule — is staged
//!   as a [`WaveAction`] keyed by `(wave position, emission index)` instead
//!   of being applied.
//! * **Phase B (sequential commit).** The staged actions are routed through
//!   [`lifting_sim::ShardMailboxes`] (sends to the destination node's shard,
//!   everything else to the source shard), merged back into ascending key
//!   order — exactly the order a sequential run emits them — and committed
//!   through the same `send` / `schedule` / `route_blame` paths sequential
//!   dispatch uses, consuming the network RNG in the identical order.
//!
//! # Why this is bit-identical
//!
//! Within one wave, a stack handler reads only its own stack, its private
//! RNG, the directory and the epoch column — none of which any same-wave
//! event mutates (membership, epochs and expulsions only change at barrier
//! events, which never join a wave; two events on the *same* node run on the
//! same shard in wave order). Everything order-sensitive — network RNG
//! draws, blame booking, event scheduling — happens in Phase B in the merged
//! sequential order. The registry-wide shard-invariance proptest and the
//! golden digests pin this end to end.

use lifting_core::Blame;
use lifting_sim::{run_owned, Context, MailKey, NodeId, ShardMailboxes, ShardMap, SimTime};

use crate::layers::{Downcall, NodeStack};
use crate::message::{Event, Message};
use crate::world::SystemWorld;

/// One staged side effect of a wave event, committed sequentially in Phase B.
#[derive(Debug)]
pub(crate) enum WaveAction {
    /// A wire send (network RNG is consumed at commit time).
    Send { to: NodeId, message: Message },
    /// An event to schedule (verifier timers, the gossip-tick reschedule).
    Schedule { at: SimTime, event: Event },
    /// A blame to route to the target's managers.
    Blame(Blame),
}

/// A staged action plus the node it acts for.
#[derive(Debug)]
pub(crate) struct WaveEntry {
    pub(crate) node: NodeId,
    pub(crate) action: WaveAction,
}

/// Reusable per-shard buffers (events in, staged actions out).
#[derive(Debug, Default)]
struct ShardScratch {
    /// This shard's slice of the wave: `(wave position, event)`.
    events: Vec<(u32, Event)>,
    /// Downcall staging for one handler invocation.
    downcalls: Vec<Downcall>,
    /// Staged actions: `(key, destination shard, entry)`, ascending by key.
    outbox: Vec<(MailKey, u32, WaveEntry)>,
}

/// Persistent sharded-execution state, created by
/// [`SystemWorld::set_shard_count`]. Holds the shard map, the cross-shard
/// mailboxes and the recycled per-shard scratch, so steady-state waves
/// allocate nothing.
#[derive(Debug)]
pub(crate) struct WaveExec {
    pub(crate) map: ShardMap,
    mailboxes: ShardMailboxes<WaveEntry>,
    /// Recycled merge buffer for Phase B.
    merged: Vec<(MailKey, WaveEntry)>,
    shards: Vec<ShardScratch>,
    /// Multi-event waves executed so far.
    pub(crate) waves: u64,
    /// Events processed through those waves.
    pub(crate) wave_events: u64,
}

impl WaveExec {
    pub(crate) fn new(map: ShardMap) -> Self {
        WaveExec {
            map,
            mailboxes: ShardMailboxes::new(map.shards()),
            merged: Vec::new(),
            shards: std::iter::repeat_with(ShardScratch::default)
                .take(map.shards())
                .collect(),
            waves: 0,
            wave_events: 0,
        }
    }

    /// Cumulative staged entries over all waves: `(intra-shard, cross-shard)`.
    pub(crate) fn mailbox_totals(&self) -> (u64, u64) {
        self.mailboxes.pushed_totals()
    }

    /// Cumulative staged entries for one `(src, dst)` shard pair.
    pub(crate) fn mailbox_pushed(&self, src: usize, dst: usize) -> u64 {
        self.mailboxes.pushed(src, dst)
    }
}

/// A shard's unit of Phase A work: its scratch plus its disjoint stack slice.
struct ShardJob<'a> {
    shard: u32,
    /// First node id owned by this shard (`stacks[i]` is node `base + i`).
    base: u32,
    stacks: &'a mut [NodeStack],
    scratch: ShardScratch,
}

/// Converts one handler invocation's downcalls into staged actions, keyed
/// `(pos, 0..)`, mirroring `SystemWorld::process_downcalls` exactly: sends
/// keep their payload, `StartTimer` becomes the same `Timer` event that
/// sequential dispatch would schedule (stamped with the node's *current*
/// epoch, which no same-wave event can change), blames stay blames. Returns
/// the next free emission index.
fn stage_downcalls(
    map: &ShardMap,
    node: NodeId,
    epoch: u32,
    pos: u32,
    shard: u32,
    downcalls: &mut Vec<Downcall>,
    outbox: &mut Vec<(MailKey, u32, WaveEntry)>,
) -> u32 {
    let mut emit = 0u32;
    for downcall in downcalls.drain(..) {
        let (dst, action) = match downcall {
            Downcall::Send { to, message } => {
                (map.shard_of(to) as u32, WaveAction::Send { to, message })
            }
            Downcall::StartTimer {
                stream,
                timer,
                deadline,
            } => (
                shard,
                WaveAction::Schedule {
                    at: deadline,
                    event: Event::Timer {
                        node,
                        stream,
                        timer,
                        epoch,
                    },
                },
            ),
            Downcall::Blame(blame) => (shard, WaveAction::Blame(blame)),
        };
        outbox.push((MailKey::new(pos, emit), dst, WaveEntry { node, action }));
        emit += 1;
    }
    emit
}

impl SystemWorld {
    /// Executes one same-timestamp wave of node-local events (Phase A on the
    /// worker pool, Phase B sequentially). See the module docs for the
    /// determinism argument.
    pub(crate) fn execute_wave(
        &mut self,
        now: SimTime,
        wave: &mut Vec<Event>,
        ctx: &mut Context<Event>,
    ) {
        let mut exec = self
            .wave_exec
            .take()
            .expect("execute_wave requires sharded execution state");
        let map = exec.map;
        exec.waves += 1;
        exec.wave_events += wave.len() as u64;

        // Group the wave per owning shard, remembering each event's global
        // (sequential) position — the high half of every staged action's key.
        for scratch in &mut exec.shards {
            scratch.events.clear();
        }
        for (pos, event) in wave.drain(..).enumerate() {
            let node = match &event {
                Event::GossipTick { node, .. } | Event::Timer { node, .. } => *node,
                Event::Deliver { to, .. } => *to,
                _ => unreachable!("waves contain only node-local events"),
            };
            exec.shards[map.shard_of(node)]
                .events
                .push((pos as u32, event));
        }

        // Split the stacks into disjoint per-shard ranges and fan Phase A out
        // over the pool. The shared columns the handlers read (directory,
        // epochs, config scalars) travel by `&`; each job owns its slice.
        let gossip_period = self.config.gossip.gossip_period;
        let lifting_on = self.config.lifting_enabled;
        let directory = &self.directory;
        let epochs = &self.hot.epochs;
        let mut jobs: Vec<ShardJob> = Vec::with_capacity(map.shards());
        let mut rest: &mut [NodeStack] = &mut self.stacks;
        let mut consumed = 0usize;
        for (shard, scratch) in exec.shards.drain(..).enumerate() {
            let end = map.range(shard).end as usize;
            let slice = std::mem::take(&mut rest);
            let (head, tail) = slice.split_at_mut(end - consumed);
            rest = tail;
            jobs.push(ShardJob {
                shard: shard as u32,
                base: consumed as u32,
                stacks: head,
                scratch,
            });
            consumed = end;
        }

        let mut results = run_owned(jobs, |_, mut job| {
            let base = job.base as usize;
            let mut events = std::mem::take(&mut job.scratch.events);
            for (pos, event) in events.drain(..) {
                match event {
                    Event::GossipTick { node, epoch } => {
                        if epoch != epochs[node.index()] || !directory.is_active(node) {
                            continue; // stale session or gone: chain dies
                        }
                        job.stacks[node.index() - base].on_gossip_tick(
                            node,
                            now,
                            directory,
                            &mut job.scratch.downcalls,
                        );
                        let emit = stage_downcalls(
                            &map,
                            node,
                            epoch,
                            pos,
                            job.shard,
                            &mut job.scratch.downcalls,
                            &mut job.scratch.outbox,
                        );
                        // The tick reschedule comes after the downcalls, as in
                        // sequential dispatch.
                        job.scratch.outbox.push((
                            MailKey::new(pos, emit),
                            job.shard,
                            WaveEntry {
                                node,
                                action: WaveAction::Schedule {
                                    at: now + gossip_period,
                                    event: Event::GossipTick { node, epoch },
                                },
                            },
                        ));
                    }
                    Event::Deliver { from, to, message } => {
                        if !directory.is_active(to) {
                            continue; // receiver left while in flight
                        }
                        job.stacks[to.index() - base].on_message(
                            to,
                            from,
                            message,
                            now,
                            directory,
                            &mut job.scratch.downcalls,
                        );
                        stage_downcalls(
                            &map,
                            to,
                            epochs[to.index()],
                            pos,
                            job.shard,
                            &mut job.scratch.downcalls,
                            &mut job.scratch.outbox,
                        );
                    }
                    Event::Timer {
                        node,
                        stream,
                        timer,
                        epoch,
                    } => {
                        if epoch != epochs[node.index()]
                            || !directory.is_active(node)
                            || !lifting_on
                        {
                            continue; // stale timers must not fire
                        }
                        job.stacks[node.index() - base].on_timer(
                            node,
                            stream,
                            timer,
                            now,
                            directory,
                            &mut job.scratch.downcalls,
                        );
                        stage_downcalls(
                            &map,
                            node,
                            epoch,
                            pos,
                            job.shard,
                            &mut job.scratch.downcalls,
                            &mut job.scratch.outbox,
                        );
                    }
                    _ => unreachable!("waves contain only node-local events"),
                }
            }
            job.scratch.events = events;
            job
        });

        // Phase B: route every shard's staged actions into the mailboxes
        // (each outbox is ascending, so each (src, dst) run is ascending),
        // merge back to the global sequential order, and commit through the
        // exact code paths sequential dispatch uses.
        for mut job in results.drain(..) {
            for (key, dst, entry) in job.scratch.outbox.drain(..) {
                exec.mailboxes
                    .push(job.shard as usize, dst as usize, key, entry);
            }
            exec.shards.push(job.scratch); // drops the stack slice
        }
        drop(results);
        let mut merged = std::mem::take(&mut exec.merged);
        exec.mailboxes.drain_ordered(&mut merged);
        for (_, WaveEntry { node, action }) in merged.drain(..) {
            match action {
                WaveAction::Send { to, message } => self.send(now, node, to, message, ctx),
                WaveAction::Schedule { at, event } => ctx.schedule_at(at, event),
                WaveAction::Blame(blame) => self.route_blame(node, blame, now, ctx),
            }
        }
        exec.merged = merged;
        self.wave_exec = Some(exec);
    }
}
