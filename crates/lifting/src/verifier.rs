//! Direct verification and direct cross-checking (Section 5.2).
//!
//! [`Verifier`] is the per-node verification engine. Like the gossip node it
//! is written sans-IO: every handler returns [`VerifierAction`]s (messages to
//! send, blames to emit, timers to start) that the runtime materializes. A
//! node plays three roles at once:
//!
//! * **requester** — after requesting chunks it checks that they are served
//!   (direct verification, blame `f·(|R|-|S|)/|R|`);
//! * **server / verifier** — after serving chunks it expects an
//!   acknowledgment naming the receiver's `f` partners and, with probability
//!   `pdcc`, polls those witnesses with confirm requests (direct
//!   cross-checking, Figure 7);
//! * **witness** — it answers confirm requests about other nodes from its own
//!   record of received proposals.
//!
//! Colluders deviate exactly as Section 5.2 describes: they vouch for
//! coalition members when acting as witnesses or verifiers, and the
//! man-in-the-middle variant names accomplices instead of its real partners
//! in its acknowledgments (Figure 8b).

use std::sync::Arc;

use lifting_sim::collections::FastHashMap;

use lifting_gossip::{ChunkId, ProposeRound};
use lifting_sim::{InlineVec, NodeId, SimTime, StreamId};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::blame::{schedule, Blame, BlameReason};
use crate::collusion::CollusionConfig;
use crate::config::LiftingConfig;
use crate::history::NodeHistory;
use crate::messages::{AckPayload, ConfirmPayload, ConfirmResponsePayload};

/// A timer the runtime must schedule on behalf of the verifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VerifierTimer {
    /// Direct verification: check that the requested chunks were served.
    ServeCheck {
        /// Token identifying the pending request.
        token: u64,
    },
    /// Cross-checking: check that the receiver acknowledged the serve.
    AckCheck {
        /// Token identifying the pending acknowledgment.
        token: u64,
    },
    /// Cross-checking: check that the witnesses confirmed the forwarding.
    ConfirmCheck {
        /// Token identifying the pending confirmation round.
        token: u64,
    },
}

/// An action the runtime must carry out for the verifier.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifierAction {
    /// Send an acknowledgment to the node that served us chunks (UDP).
    SendAck {
        /// Destination (the server being acknowledged).
        to: NodeId,
        /// Acknowledgment content.
        ack: AckPayload,
    },
    /// Send a confirm request to a witness (UDP).
    SendConfirm {
        /// Destination witness.
        to: NodeId,
        /// Confirm content (one allocation shared by the whole round).
        confirm: Arc<ConfirmPayload>,
    },
    /// Send a confirm response back to a verifier (UDP).
    SendConfirmResponse {
        /// Destination verifier.
        to: NodeId,
        /// Response content.
        response: ConfirmResponsePayload,
    },
    /// Emit a blame against a node (to be routed to its managers).
    Blame(Blame),
    /// Start a timer expiring at `deadline`.
    StartTimer {
        /// The timer to schedule.
        timer: VerifierTimer,
        /// When it fires.
        deadline: SimTime,
    },
}

#[derive(Debug)]
struct PendingServe {
    proposer: NodeId,
    /// Shared with the request message that armed this check.
    requested: Arc<[ChunkId]>,
    /// Distinct chunks received so far; at most `|requested|` entries, so an
    /// inline set replaces a heap-allocated hash set per pending request.
    received: InlineVec<ChunkId, 8>,
}

#[derive(Debug)]
struct PendingAck {
    receiver: NodeId,
    chunks: Vec<ChunkId>,
}

#[derive(Debug)]
struct PendingConfirm {
    subject: NodeId,
    /// Shared with the acknowledgment the check was derived from.
    witnesses: Arc<[NodeId]>,
    /// Witnesses that confirmed; bounded by the fanout (≈ 7), kept inline.
    confirmed: InlineVec<NodeId, 8>,
    /// Witnesses that *explicitly denied* (answered `confirmed: false`).
    /// Only consulted by the hardened confirm path (`confirm_retries > 0`),
    /// where silence is retried but a recorded denial is hard contradiction
    /// evidence.
    denied: InlineVec<NodeId, 8>,
    /// The chunk list of the acknowledgment, kept so a retry can re-send the
    /// identical confirm payload (shared refcount, no copy).
    chunks: Arc<[ChunkId]>,
    /// Re-send attempts made so far (hardened path only).
    attempt: u32,
}

/// Counters of the hardened confirm path (`LiftingConfig::confirm_retries`).
/// All zero when the hardening is off — the paper's single-shot behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfirmRetryStats {
    /// Confirm timers that expired with at least one still-silent witness.
    pub timeouts: u64,
    /// Confirm requests re-sent to silent witnesses.
    pub resends: u64,
    /// Checks abandoned without blame after the retries exhausted (the
    /// silent witnesses stayed silent — indistinguishable from loss or
    /// partition, so no contradiction is inferred).
    pub aborts: u64,
}

/// The per-node LiFTinG verification engine.
#[derive(Debug)]
pub struct Verifier {
    id: NodeId,
    /// The stream this verification plane covers: its history, checks and
    /// timers are all plane-local, and every blame it emits is tagged with
    /// this stream (cross-stream provenance for the shared reputation plane).
    stream: StreamId,
    config: LiftingConfig,
    fanout: usize,
    collusion: CollusionConfig,
    history: NodeHistory,
    current_period: u64,
    // Token-keyed bookkeeping: iteration only ever mutates or collects
    // entries content-wise (never feeds wire order), so the fast hasher is
    // safe here — see `lifting_sim::collections`.
    pending_serves: FastHashMap<u64, PendingServe>,
    pending_acks: FastHashMap<u64, PendingAck>,
    pending_confirms: FastHashMap<u64, PendingConfirm>,
    next_token: u64,
    blames_emitted: u64,
    retry_stats: ConfirmRetryStats,
}

impl Verifier {
    /// Creates a verifier for node `id` with protocol fanout `fanout`.
    pub fn new(
        id: NodeId,
        fanout: usize,
        config: LiftingConfig,
        collusion: CollusionConfig,
    ) -> Self {
        config.validate();
        let history = NodeHistory::new(id, config.history_periods);
        Verifier {
            id,
            stream: StreamId::PRIMARY,
            config,
            fanout,
            collusion,
            history,
            current_period: 0,
            pending_serves: FastHashMap::default(),
            pending_acks: FastHashMap::default(),
            pending_confirms: FastHashMap::default(),
            next_token: 0,
            blames_emitted: 0,
            retry_stats: ConfirmRetryStats::default(),
        }
    }

    /// Rekeys the verifier to one plane of a multi-channel stack (builder
    /// style, applied right after [`new`](Verifier::new)).
    pub fn for_stream(mut self, stream: StreamId) -> Self {
        self.stream = stream;
        self
    }

    /// This node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The stream this verification plane covers.
    pub fn stream(&self) -> StreamId {
        self.stream
    }

    /// The node's accountability history.
    pub fn history(&self) -> &NodeHistory {
        &self.history
    }

    /// The verification configuration.
    pub fn config(&self) -> &LiftingConfig {
        &self.config
    }

    /// Number of blames this verifier has emitted so far.
    pub fn blames_emitted(&self) -> u64 {
        self.blames_emitted
    }

    /// Counters of the hardened confirm path (all zero when
    /// `confirm_retries` is 0).
    pub fn confirm_retry_stats(&self) -> ConfirmRetryStats {
        self.retry_stats
    }

    /// Answers an a-posteriori audit poll: did this node receive a proposal
    /// from `subject` containing `chunks`? Colluders vouch for coalition
    /// members here too.
    pub fn answer_audit_poll(&self, subject: NodeId, chunks: &[ChunkId]) -> bool {
        if self.collusion.covers_up() && self.collusion.is_colluder(subject) {
            return true;
        }
        self.history.received_proposal_with(subject, chunks)
    }

    /// Reports the verifiers that asked this node to confirm proposals of
    /// `subject` (used by auditors to build the fanin multiset `F'h`).
    pub fn confirm_askers_about(&self, subject: NodeId) -> Vec<NodeId> {
        self.history.confirm_askers_about(subject)
    }

    /// Number of outstanding verification checks (pending serves, acks and
    /// confirmations) — useful for tests and leak detection.
    pub fn pending_checks(&self) -> usize {
        self.pending_serves.len() + self.pending_acks.len() + self.pending_confirms.len()
    }

    /// Heap bytes held by the verification plane: the bounded history plus
    /// the outstanding-check tables and their payloads (capacity walk,
    /// deterministic; shared `Arc` lists attributed to every holder).
    pub fn estimated_heap_bytes(&self) -> usize {
        use std::mem::size_of;
        let tables = self
            .pending_serves
            .capacity()
            .saturating_mul(size_of::<(u64, PendingServe)>())
            + self
                .pending_acks
                .capacity()
                .saturating_mul(size_of::<(u64, PendingAck)>())
            + self
                .pending_confirms
                .capacity()
                .saturating_mul(size_of::<(u64, PendingConfirm)>());
        let serves: usize = self
            .pending_serves
            .values()
            .map(|p| p.requested.len() * size_of::<ChunkId>())
            .sum();
        let acks: usize = self
            .pending_acks
            .values()
            .map(|p| p.chunks.capacity() * size_of::<ChunkId>())
            .sum();
        let confirms: usize = self
            .pending_confirms
            .values()
            .map(|p| {
                p.witnesses.len() * size_of::<NodeId>() + p.chunks.len() * size_of::<ChunkId>()
            })
            .sum();
        tables + serves + acks + confirms + self.history.estimated_heap_bytes()
    }

    fn token(&mut self) -> u64 {
        let t = self.next_token;
        self.next_token += 1;
        t
    }

    fn blame(&mut self, target: NodeId, value: f64, reason: BlameReason) -> Option<VerifierAction> {
        if value <= 0.0 {
            return None;
        }
        // A colluding verifier never blames a coalition member.
        if self.collusion.covers_up() && self.collusion.is_colluder(target) {
            return None;
        }
        self.blames_emitted += 1;
        Some(VerifierAction::Blame(Blame::on_stream(
            self.stream,
            target,
            value,
            reason,
        )))
    }

    /// Advances the verifier's notion of the current gossip period (used to
    /// index history records for events received between propose phases).
    pub fn begin_period(&mut self, period: u64) {
        self.current_period = period;
    }

    // ------------------------------------------------------------------
    // Requester role: direct verification.
    // ------------------------------------------------------------------

    /// Called after sending a request for `requested` chunks to `proposer`.
    /// Registers the pending check (taking ownership of the chunk list — no
    /// copy) and returns the timer to schedule.
    pub fn on_request_sent(
        &mut self,
        proposer: NodeId,
        requested: Arc<[ChunkId]>,
        now: SimTime,
    ) -> Vec<VerifierAction> {
        let mut actions = Vec::new();
        self.on_request_sent_into(proposer, requested, now, &mut actions);
        actions
    }

    /// Allocation-free variant of [`on_request_sent`](Self::on_request_sent):
    /// appends the resulting actions to `actions` (the runtime's recycled
    /// scratch buffer).
    pub fn on_request_sent_into(
        &mut self,
        proposer: NodeId,
        requested: Arc<[ChunkId]>,
        now: SimTime,
        actions: &mut Vec<VerifierAction>,
    ) {
        if requested.is_empty() {
            return;
        }
        let token = self.token();
        self.pending_serves.insert(
            token,
            PendingServe {
                proposer,
                requested,
                received: InlineVec::new(),
            },
        );
        actions.push(VerifierAction::StartTimer {
            timer: VerifierTimer::ServeCheck { token },
            deadline: now + self.config.serve_timeout,
        });
    }

    /// Called when a serve of `chunk` from `from` is received. Records the
    /// reception in the history (fanin) and satisfies pending checks.
    pub fn on_serve_received(&mut self, from: NodeId, chunk: ChunkId, _now: SimTime) {
        self.history
            .record_serve_received(self.current_period, from, chunk);
        for pending in self.pending_serves.values_mut() {
            if pending.proposer == from && pending.requested.contains(&chunk) {
                pending.received.insert_unique(chunk);
            }
        }
    }

    /// Called when a proposal from `from` is received (needed to answer
    /// confirm requests and audit polls truthfully). The shared chunk list
    /// goes straight into the history — no copy.
    pub fn on_propose_received(&mut self, from: NodeId, chunks: Arc<[ChunkId]>, _now: SimTime) {
        self.history
            .record_proposal_received(self.current_period, from, chunks);
    }

    // ------------------------------------------------------------------
    // Receiver role: acknowledgments after forwarding.
    // ------------------------------------------------------------------

    /// Called right after this node's propose phase. Records the proposal in
    /// the history and produces the acknowledgments owed to the nodes that
    /// served the forwarded chunks (cross-checking, Figure 7).
    pub fn on_propose_round(&mut self, round: &ProposeRound, now: SimTime) -> Vec<VerifierAction> {
        let mut actions = Vec::new();
        self.on_propose_round_into(round, now, &mut actions);
        actions
    }

    /// Allocation-free variant of [`on_propose_round`](Self::on_propose_round).
    pub fn on_propose_round_into(
        &mut self,
        round: &ProposeRound,
        _now: SimTime,
        actions: &mut Vec<VerifierAction>,
    ) {
        self.current_period = round.period;
        self.history
            .record_proposal_sent(round.period, &round.partners, &round.chunks);
        // The honest partner list is identical in every ack of this round;
        // share one allocation across them (built lazily: rounds that owe no
        // ack allocate nothing).
        let mut real_partners: Option<Arc<[NodeId]>> = None;
        for (source, chunks) in &round.by_source {
            if *source == self.id {
                continue; // chunks we produced ourselves need no acknowledgment
            }
            // Man-in-the-middle attack (Figure 8b): name accomplices instead
            // of the real partners so the server's confirm requests go to
            // colluders who will vouch for us.
            let partners: Arc<[NodeId]> =
                if self.collusion.man_in_the_middle() && !self.collusion.is_colluder(*source) {
                    let mut accomplices = self.collusion.accomplices(self.id);
                    accomplices.truncate(self.fanout.max(round.partners.len()));
                    if accomplices.is_empty() {
                        round.partners.as_slice().into()
                    } else {
                        accomplices.into()
                    }
                } else {
                    real_partners
                        .get_or_insert_with(|| round.partners.as_slice().into())
                        .clone()
                };
            actions.push(VerifierAction::SendAck {
                to: *source,
                ack: AckPayload {
                    chunks: Arc::from(chunks.as_slice()),
                    partners,
                    period: round.period,
                },
            });
        }
    }

    // ------------------------------------------------------------------
    // Server / verifier role: cross-checking.
    // ------------------------------------------------------------------

    /// Called after serving `chunks` to `to`. Registers the expectation of an
    /// acknowledgment (taking ownership of the chunk list — no copy) and
    /// returns the timer to schedule.
    pub fn on_chunks_served(
        &mut self,
        to: NodeId,
        chunks: Vec<ChunkId>,
        now: SimTime,
    ) -> Vec<VerifierAction> {
        let mut actions = Vec::new();
        self.on_chunks_served_into(to, chunks, now, &mut actions);
        actions
    }

    /// Allocation-free variant of [`on_chunks_served`](Self::on_chunks_served).
    pub fn on_chunks_served_into(
        &mut self,
        to: NodeId,
        chunks: Vec<ChunkId>,
        now: SimTime,
        actions: &mut Vec<VerifierAction>,
    ) {
        if chunks.is_empty() {
            return;
        }
        let token = self.token();
        self.pending_acks.insert(
            token,
            PendingAck {
                receiver: to,
                chunks,
            },
        );
        actions.push(VerifierAction::StartTimer {
            timer: VerifierTimer::AckCheck { token },
            deadline: now + self.config.ack_timeout,
        });
    }

    /// Called when an acknowledgment arrives from `from`. Clears the matching
    /// pending expectation, checks the acknowledged fanout, and (with
    /// probability `pdcc`) launches confirm requests towards the witnesses.
    pub fn on_ack<R: Rng + ?Sized>(
        &mut self,
        from: NodeId,
        ack: AckPayload,
        now: SimTime,
        rng: &mut R,
    ) -> Vec<VerifierAction> {
        let mut actions = Vec::new();
        self.on_ack_into(from, ack, now, rng, &mut actions);
        actions
    }

    /// Allocation-free variant of [`on_ack`](Self::on_ack).
    pub fn on_ack_into<R: Rng + ?Sized>(
        &mut self,
        from: NodeId,
        ack: AckPayload,
        now: SimTime,
        rng: &mut R,
        actions: &mut Vec<VerifierAction>,
    ) {
        // Clear every pending expectation this acknowledgment satisfies
        // (collected on the stack: an ack rarely satisfies more than one).
        let satisfied: InlineVec<u64, 8> = self
            .pending_acks
            .iter()
            .filter(|(_, p)| p.receiver == from && p.chunks.iter().all(|c| ack.chunks.contains(c)))
            .map(|(t, _)| *t)
            .collect();
        for t in satisfied.iter() {
            self.pending_acks.remove(t);
        }

        // A colluding verifier does not check coalition members.
        if self.collusion.covers_up() && self.collusion.is_colluder(from) {
            return;
        }

        // Quantitative correctness: the receiver must have forwarded to f nodes.
        let decrease = schedule::fanout_decrease(self.fanout, ack.partners.len());
        if let Some(b) = self.blame(from, decrease, BlameReason::FanoutDecrease) {
            actions.push(b);
        }

        // Causality: cross-check with the witnesses, with probability pdcc.
        if !ack.partners.is_empty() && rng.gen_bool(self.config.pdcc) {
            let token = self.token();
            self.pending_confirms.insert(
                token,
                PendingConfirm {
                    subject: from,
                    witnesses: ack.partners.clone(),
                    confirmed: InlineVec::new(),
                    denied: InlineVec::new(),
                    chunks: ack.chunks.clone(),
                    attempt: 0,
                },
            );
            let confirm = Arc::new(ConfirmPayload {
                subject: from,
                chunks: ack.chunks.clone(),
                token,
            });
            for witness in ack.partners.iter() {
                actions.push(VerifierAction::SendConfirm {
                    to: *witness,
                    confirm: confirm.clone(),
                });
            }
            actions.push(VerifierAction::StartTimer {
                timer: VerifierTimer::ConfirmCheck { token },
                deadline: now + self.config.confirm_timeout,
            });
        }
    }

    /// Called when a confirm response arrives from a witness.
    pub fn on_confirm_response(&mut self, from: NodeId, response: ConfirmResponsePayload) {
        if let Some(pending) = self.pending_confirms.get_mut(&response.token) {
            if !pending.witnesses.contains(&from) {
                return;
            }
            if response.confirmed {
                pending.confirmed.insert_unique(from);
            } else {
                // An explicit denial. The hardened path distinguishes it
                // from silence (a denial is contradiction evidence, silence
                // is retried); the paper's single-shot path treats both the
                // same, so recording it is inert there.
                pending.denied.insert_unique(from);
            }
        }
    }

    // ------------------------------------------------------------------
    // Witness role.
    // ------------------------------------------------------------------

    /// Called when a confirm request arrives from a verifier. Answers from the
    /// node's own record of received proposals; colluders vouch for coalition
    /// members unconditionally.
    pub fn on_confirm(
        &mut self,
        from: NodeId,
        confirm: &ConfirmPayload,
        now: SimTime,
    ) -> Vec<VerifierAction> {
        let mut actions = Vec::new();
        self.on_confirm_into(from, confirm, now, &mut actions);
        actions
    }

    /// Allocation-free variant of [`on_confirm`](Self::on_confirm).
    pub fn on_confirm_into(
        &mut self,
        from: NodeId,
        confirm: &ConfirmPayload,
        _now: SimTime,
        actions: &mut Vec<VerifierAction>,
    ) {
        self.history
            .record_confirm_received(self.current_period, from, confirm.subject);
        let truthful = self
            .history
            .received_proposal_with(confirm.subject, &confirm.chunks);
        let confirmed = if self.collusion.covers_up() && self.collusion.is_colluder(confirm.subject)
        {
            true
        } else {
            truthful
        };
        actions.push(VerifierAction::SendConfirmResponse {
            to: from,
            response: ConfirmResponsePayload {
                subject: confirm.subject,
                stream: self.stream,
                token: confirm.token,
                confirmed,
            },
        });
    }

    // ------------------------------------------------------------------
    // Timers.
    // ------------------------------------------------------------------

    /// Handles an expired timer and returns any blame it produces.
    pub fn on_timer(&mut self, timer: VerifierTimer, now: SimTime) -> Vec<VerifierAction> {
        let mut actions = Vec::new();
        self.on_timer_into(timer, now, &mut actions);
        actions
    }

    /// Allocation-free variant of [`on_timer`](Self::on_timer).
    pub fn on_timer_into(
        &mut self,
        timer: VerifierTimer,
        now: SimTime,
        actions: &mut Vec<VerifierAction>,
    ) {
        match timer {
            VerifierTimer::ServeCheck { token } => {
                if let Some(pending) = self.pending_serves.remove(&token) {
                    let value = schedule::partial_serve(
                        self.fanout,
                        pending.requested.len(),
                        pending.received.len(),
                    );
                    if let Some(b) = self.blame(pending.proposer, value, BlameReason::PartialServe)
                    {
                        actions.push(b);
                    }
                }
            }
            VerifierTimer::AckCheck { token } => {
                if let Some(pending) = self.pending_acks.remove(&token) {
                    let value = schedule::missing_ack(self.fanout);
                    if let Some(b) = self.blame(pending.receiver, value, BlameReason::MissingAck) {
                        actions.push(b);
                    }
                }
            }
            VerifierTimer::ConfirmCheck { token } => {
                if self.config.confirm_retries > 0 {
                    self.on_confirm_check_hardened(token, now, actions);
                } else if let Some(pending) = self.pending_confirms.remove(&token) {
                    // The paper's single-shot path: every witness still
                    // unconfirmed at the first expiry — silent or denying —
                    // counts as a contradiction.
                    let contradictions = pending
                        .witnesses
                        .iter()
                        .filter(|w| !pending.confirmed.contains(w))
                        .count();
                    let value = schedule::contradicted_proposal(contradictions);
                    if let Some(b) =
                        self.blame(pending.subject, value, BlameReason::ContradictedProposal)
                    {
                        actions.push(b);
                    }
                }
            }
        }
    }

    /// The hardened confirm-check expiry (`confirm_retries > 0`): silent
    /// witnesses are re-asked up to the retry budget with a deterministic
    /// linear backoff; when it exhausts, only *explicit denials* convert
    /// into a contradicted-proposal blame — witnesses that stayed silent
    /// through every attempt are indistinguishable from loss or partition,
    /// so their check is aborted without blame (counted in
    /// [`ConfirmRetryStats`]). A lost `ConfirmResponse` therefore times out
    /// and retries instead of wrongly blaming the subject.
    fn on_confirm_check_hardened(
        &mut self,
        token: u64,
        now: SimTime,
        actions: &mut Vec<VerifierAction>,
    ) {
        let Some(pending) = self.pending_confirms.get(&token) else {
            return;
        };
        let silent: InlineVec<NodeId, 8> = pending
            .witnesses
            .iter()
            .filter(|w| !pending.confirmed.contains(w) && !pending.denied.contains(w))
            .copied()
            .collect();
        if !silent.is_empty() && pending.attempt < self.config.confirm_retries {
            // Retry: re-send the identical confirm to the still-silent
            // witnesses and re-arm the timer with a linear backoff
            // (attempt i waits confirm_timeout · (i + 1)).
            let pending = self
                .pending_confirms
                .get_mut(&token)
                .expect("checked above");
            pending.attempt += 1;
            let attempt = pending.attempt;
            let confirm = Arc::new(ConfirmPayload {
                subject: pending.subject,
                chunks: pending.chunks.clone(),
                token,
            });
            self.retry_stats.timeouts += 1;
            self.retry_stats.resends += silent.len() as u64;
            for witness in silent.iter() {
                actions.push(VerifierAction::SendConfirm {
                    to: *witness,
                    confirm: confirm.clone(),
                });
            }
            actions.push(VerifierAction::StartTimer {
                timer: VerifierTimer::ConfirmCheck { token },
                deadline: now
                    + self
                        .config
                        .confirm_timeout
                        .saturating_mul(attempt as u64 + 1),
            });
            return;
        }
        let pending = self.pending_confirms.remove(&token).expect("checked above");
        if !silent.is_empty() {
            // Retries exhausted with witnesses still silent: graceful
            // degradation — no contradiction is inferred from silence.
            self.retry_stats.timeouts += 1;
            self.retry_stats.aborts += 1;
        }
        let value = schedule::contradicted_proposal(pending.denied.len());
        if let Some(b) = self.blame(pending.subject, value, BlameReason::ContradictedProposal) {
            actions.push(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifting_sim::{derive_rng, SimDuration};
    use std::sync::Arc;

    fn ids(xs: &[u64]) -> Vec<ChunkId> {
        xs.iter().map(|x| ChunkId::primary(*x)).collect()
    }

    fn verifier(id: u32) -> Verifier {
        Verifier::new(
            NodeId::new(id),
            7,
            LiftingConfig::planetlab(),
            CollusionConfig::none(),
        )
    }

    fn blames(actions: &[VerifierAction]) -> Vec<Blame> {
        actions
            .iter()
            .filter_map(|a| match a {
                VerifierAction::Blame(b) => Some(*b),
                _ => None,
            })
            .collect()
    }

    fn timers(actions: &[VerifierAction]) -> Vec<VerifierTimer> {
        actions
            .iter()
            .filter_map(|a| match a {
                VerifierAction::StartTimer { timer, .. } => Some(*timer),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn direct_verification_blames_partial_serves() {
        let mut v = verifier(1);
        let proposer = NodeId::new(2);
        let actions = v.on_request_sent(proposer, ids(&[1, 2, 3, 4]).into(), SimTime::ZERO);
        let timer = timers(&actions)[0];
        // Only two of the four requested chunks arrive.
        v.on_serve_received(proposer, ChunkId::primary(1), SimTime::from_millis(100));
        v.on_serve_received(proposer, ChunkId::primary(3), SimTime::from_millis(120));
        let out = v.on_timer(timer, SimTime::from_millis(500));
        let bs = blames(&out);
        assert_eq!(bs.len(), 1);
        assert_eq!(bs[0].target, proposer);
        assert!((bs[0].value - 7.0 * 2.0 / 4.0).abs() < 1e-12);
        assert_eq!(bs[0].reason, BlameReason::PartialServe);
        assert_eq!(v.pending_checks(), 0);
    }

    #[test]
    fn secondary_stream_verifier_tags_its_blames() {
        let mut v = verifier(1).for_stream(StreamId::new(2));
        assert_eq!(v.stream(), StreamId::new(2));
        let proposer = NodeId::new(2);
        let requested: Vec<ChunkId> = (0..3).map(|i| ChunkId::new(StreamId::new(2), i)).collect();
        let actions = v.on_request_sent(proposer, requested.into(), SimTime::ZERO);
        let out = v.on_timer(timers(&actions)[0], SimTime::from_millis(500));
        let bs = blames(&out);
        assert_eq!(bs.len(), 1);
        assert_eq!(bs[0].stream, StreamId::new(2), "blame carries its channel");
        // The default verifier blames on the primary stream.
        assert_eq!(
            Blame::new(proposer, 1.0, BlameReason::MissingAck).stream,
            StreamId::PRIMARY
        );
    }

    #[test]
    fn full_serves_produce_no_blame() {
        let mut v = verifier(1);
        let proposer = NodeId::new(2);
        let actions = v.on_request_sent(proposer, ids(&[1, 2]).into(), SimTime::ZERO);
        v.on_serve_received(proposer, ChunkId::primary(1), SimTime::from_millis(10));
        v.on_serve_received(proposer, ChunkId::primary(2), SimTime::from_millis(20));
        let out = v.on_timer(timers(&actions)[0], SimTime::from_millis(500));
        assert!(blames(&out).is_empty());
        assert_eq!(v.blames_emitted(), 0);
    }

    #[test]
    fn missing_ack_is_blamed_by_f() {
        let mut v = verifier(1);
        let receiver = NodeId::new(5);
        let actions = v.on_chunks_served(receiver, ids(&[1, 2]), SimTime::ZERO);
        let out = v.on_timer(timers(&actions)[0], SimTime::from_secs(2));
        let bs = blames(&out);
        assert_eq!(bs.len(), 1);
        assert_eq!(bs[0].value, 7.0);
        assert_eq!(bs[0].reason, BlameReason::MissingAck);
    }

    #[test]
    fn ack_clears_the_pending_expectation_and_triggers_confirms() {
        let mut rng = derive_rng(1, 0);
        let mut v = verifier(1);
        let receiver = NodeId::new(5);
        let served = ids(&[1, 2]);
        let actions = v.on_chunks_served(receiver, served.clone(), SimTime::ZERO);
        let ack_timer = timers(&actions)[0];
        let witnesses: Vec<NodeId> = (10..17).map(NodeId::new).collect();
        let ack = AckPayload {
            chunks: served.clone().into(),
            partners: witnesses.clone().into(),
            period: 1,
        };
        let out = v.on_ack(receiver, ack, SimTime::from_millis(900), &mut rng);
        // pdcc = 1: confirms to all 7 witnesses plus a confirm timer, no blame.
        let confirms: Vec<&VerifierAction> = out
            .iter()
            .filter(|a| matches!(a, VerifierAction::SendConfirm { .. }))
            .collect();
        assert_eq!(confirms.len(), 7);
        assert!(blames(&out).is_empty());
        // The ack timer no longer produces a blame.
        assert!(blames(&v.on_timer(ack_timer, SimTime::from_secs(2))).is_empty());
    }

    #[test]
    fn undersized_ack_is_blamed_for_fanout_decrease() {
        let mut rng = derive_rng(2, 0);
        let mut v = verifier(1);
        let receiver = NodeId::new(5);
        v.on_chunks_served(receiver, ids(&[1]), SimTime::ZERO);
        let ack = AckPayload {
            chunks: ids(&[1]).into(),
            partners: (10..16).map(NodeId::new).collect::<Vec<_>>().into(), // only 6 of 7
            period: 1,
        };
        let out = v.on_ack(receiver, ack, SimTime::from_millis(900), &mut rng);
        let bs = blames(&out);
        assert_eq!(bs.len(), 1);
        assert_eq!(bs[0].value, 1.0);
        assert_eq!(bs[0].reason, BlameReason::FanoutDecrease);
    }

    #[test]
    fn unconfirmed_witnesses_are_blamed_one_each() {
        let mut rng = derive_rng(3, 0);
        let mut v = verifier(1);
        let receiver = NodeId::new(5);
        v.on_chunks_served(receiver, ids(&[1]), SimTime::ZERO);
        let witnesses: Vec<NodeId> = (10..17).map(NodeId::new).collect();
        let out = v.on_ack(
            receiver,
            AckPayload {
                chunks: ids(&[1]).into(),
                partners: witnesses.clone().into(),
                period: 1,
            },
            SimTime::from_millis(900),
            &mut rng,
        );
        let confirm_timer = *timers(&out)
            .iter()
            .find(|t| matches!(t, VerifierTimer::ConfirmCheck { .. }))
            .unwrap();
        let token = match confirm_timer {
            VerifierTimer::ConfirmCheck { token } => token,
            _ => unreachable!(),
        };
        // Four witnesses confirm, three stay silent / contradict.
        for w in &witnesses[..4] {
            v.on_confirm_response(
                *w,
                ConfirmResponsePayload {
                    subject: receiver,
                    stream: StreamId::PRIMARY,
                    token,
                    confirmed: true,
                },
            );
        }
        let out = v.on_timer(confirm_timer, SimTime::from_secs(2));
        let bs = blames(&out);
        assert_eq!(bs.len(), 1);
        assert_eq!(bs[0].value, 3.0);
        assert_eq!(bs[0].reason, BlameReason::ContradictedProposal);
    }

    /// Launches a confirm round against 7 witnesses and returns the token.
    fn launch_confirm_round(v: &mut Verifier, receiver: NodeId, rng: &mut impl Rng) -> u64 {
        v.on_chunks_served(receiver, ids(&[1]), SimTime::ZERO);
        let out = v.on_ack(
            receiver,
            AckPayload {
                chunks: ids(&[1]).into(),
                partners: (10..17).map(NodeId::new).collect::<Vec<_>>().into(),
                period: 1,
            },
            SimTime::from_millis(900),
            rng,
        );
        match *timers(&out)
            .iter()
            .find(|t| matches!(t, VerifierTimer::ConfirmCheck { .. }))
            .unwrap()
        {
            VerifierTimer::ConfirmCheck { token } => token,
            _ => unreachable!(),
        }
    }

    fn confirm_resends(actions: &[VerifierAction]) -> usize {
        actions
            .iter()
            .filter(|a| matches!(a, VerifierAction::SendConfirm { .. }))
            .count()
    }

    #[test]
    fn hardened_confirm_retries_silence_then_aborts_without_blame() {
        let mut rng = derive_rng(4, 0);
        let mut v = Verifier::new(
            NodeId::new(1),
            7,
            LiftingConfig::planetlab().with_confirm_retries(2),
            CollusionConfig::none(),
        );
        let receiver = NodeId::new(5);
        let token = launch_confirm_round(&mut v, receiver, &mut rng);
        let timer = VerifierTimer::ConfirmCheck { token };
        // Five witnesses confirm; two stay silent for the whole round.
        for w in (10..15).map(NodeId::new) {
            v.on_confirm_response(
                w,
                ConfirmResponsePayload {
                    subject: receiver,
                    stream: StreamId::PRIMARY,
                    token,
                    confirmed: true,
                },
            );
        }
        // First expiry: re-send to the two silent witnesses, re-arm with a
        // longer (linear backoff) deadline.
        let out = v.on_timer(timer, SimTime::from_secs(2));
        assert_eq!(confirm_resends(&out), 2);
        assert!(blames(&out).is_empty());
        let deadline = out
            .iter()
            .find_map(|a| match a {
                VerifierAction::StartTimer { deadline, .. } => Some(*deadline),
                _ => None,
            })
            .unwrap();
        let backoff = LiftingConfig::planetlab().confirm_timeout.saturating_mul(2);
        assert_eq!(deadline, SimTime::from_secs(2) + backoff);
        // Second expiry: one retry left.
        let out = v.on_timer(timer, deadline);
        assert_eq!(confirm_resends(&out), 2);
        assert!(blames(&out).is_empty());
        // Third expiry: retries exhausted — abort, no wrongful blame.
        let out = v.on_timer(timer, SimTime::from_secs(10));
        assert!(
            blames(&out).is_empty(),
            "silence must never convert to blame"
        );
        assert_eq!(v.pending_checks(), 0);
        let stats = v.confirm_retry_stats();
        assert_eq!(stats.timeouts, 3);
        assert_eq!(stats.resends, 4);
        assert_eq!(stats.aborts, 1);
    }

    #[test]
    fn hardened_confirm_blames_only_explicit_denials() {
        let mut rng = derive_rng(5, 0);
        let mut v = Verifier::new(
            NodeId::new(1),
            7,
            LiftingConfig::planetlab().with_confirm_retries(1),
            CollusionConfig::none(),
        );
        let receiver = NodeId::new(5);
        let token = launch_confirm_round(&mut v, receiver, &mut rng);
        let timer = VerifierTimer::ConfirmCheck { token };
        // Four confirm, two explicitly deny, one stays silent.
        for (i, w) in (10..16).map(NodeId::new).enumerate() {
            v.on_confirm_response(
                w,
                ConfirmResponsePayload {
                    subject: receiver,
                    stream: StreamId::PRIMARY,
                    token,
                    confirmed: i < 4,
                },
            );
        }
        // First expiry retries only the silent witness, not the deniers.
        let out = v.on_timer(timer, SimTime::from_secs(2));
        assert_eq!(confirm_resends(&out), 1);
        assert!(blames(&out).is_empty());
        // Exhaustion: the two denials are contradictions and are blamed; the
        // silent witness is written off as loss.
        let out = v.on_timer(timer, SimTime::from_secs(5));
        let bs = blames(&out);
        assert_eq!(bs.len(), 1);
        assert_eq!(bs[0].target, receiver);
        assert_eq!(bs[0].value, 2.0);
        assert_eq!(bs[0].reason, BlameReason::ContradictedProposal);
        assert_eq!(v.confirm_retry_stats().aborts, 1);
    }

    #[test]
    fn lost_confirm_responses_never_wrongly_blame_at_paper_loss() {
        // Regression for the resilience hardening: at the paper's 7 % UDP
        // loss, a lost `ConfirmResponse` must end in timeout/abort — never in
        // a contradicted-proposal blame of an honest proposer. The legacy
        // path (retries = 0) is the wrongful-blame baseline the hardening
        // must beat.
        let loss = 0.07;
        let rounds = 300;
        let mut wrongful_legacy = 0u64;
        for (retries, wrongful_expected_zero) in [(0u32, false), (2u32, true)] {
            let mut rng = derive_rng(6, u64::from(retries));
            let mut v = Verifier::new(
                NodeId::new(1),
                7,
                LiftingConfig::planetlab().with_confirm_retries(retries),
                CollusionConfig::none(),
            );
            let receiver = NodeId::new(5);
            for _ in 0..rounds {
                let token = launch_confirm_round(&mut v, receiver, &mut rng);
                let timer = VerifierTimer::ConfirmCheck { token };
                let mut silent: Vec<NodeId> = (10..17).map(NodeId::new).collect();
                let mut now = SimTime::from_secs(2);
                // Every attempt, each still-silent witness answers honestly
                // but the response is lost with the paper's probability.
                for _ in 0..=retries {
                    silent.retain(|w| {
                        if rng.gen_bool(loss) {
                            return true; // response lost
                        }
                        v.on_confirm_response(
                            *w,
                            ConfirmResponsePayload {
                                subject: receiver,
                                stream: StreamId::PRIMARY,
                                token,
                                confirmed: true,
                            },
                        );
                        false
                    });
                    v.on_timer(timer, now);
                    now += SimDuration::from_secs(2);
                }
            }
            if wrongful_expected_zero {
                assert_eq!(
                    v.blames_emitted(),
                    0,
                    "hardened path must never blame silence"
                );
                let stats = v.confirm_retry_stats();
                assert!(
                    stats.timeouts > 0 && stats.resends > 0,
                    "loss must exercise retries"
                );
            } else {
                wrongful_legacy = v.blames_emitted();
            }
        }
        assert!(
            wrongful_legacy > 0,
            "baseline must show the wrongful blames the hardening removes"
        );
    }

    #[test]
    fn witness_answers_from_its_own_record() {
        let mut v = verifier(2);
        let subject = NodeId::new(1);
        // The witness received a proposal for chunks 1 and 2 from the subject.
        v.on_propose_received(subject, ids(&[1, 2]).into(), SimTime::ZERO);
        let yes = v.on_confirm(
            NodeId::new(0),
            &ConfirmPayload {
                subject,
                chunks: ids(&[1, 2]).into(),
                token: 7,
            },
            SimTime::from_millis(10),
        );
        match &yes[0] {
            VerifierAction::SendConfirmResponse { to, response } => {
                assert_eq!(*to, NodeId::new(0));
                assert!(response.confirmed);
                assert_eq!(response.token, 7);
            }
            other => panic!("unexpected action {other:?}"),
        }
        let no = v.on_confirm(
            NodeId::new(0),
            &ConfirmPayload {
                subject,
                chunks: ids(&[9]).into(),
                token: 8,
            },
            SimTime::from_millis(20),
        );
        match &no[0] {
            VerifierAction::SendConfirmResponse { response, .. } => assert!(!response.confirmed),
            other => panic!("unexpected action {other:?}"),
        }
        // The confirm requests were recorded (for later audits of the subject).
        assert_eq!(
            v.history().confirm_askers_about(subject),
            vec![NodeId::new(0), NodeId::new(0)]
        );
    }

    #[test]
    fn colluding_witness_covers_up_coalition_members() {
        let coalition = Arc::new(vec![NodeId::new(1), NodeId::new(2)]);
        let mut v = Verifier::new(
            NodeId::new(2),
            7,
            LiftingConfig::planetlab(),
            CollusionConfig::coalition(coalition, true, false),
        );
        // Never received anything from node 1, yet vouches for it.
        let out = v.on_confirm(
            NodeId::new(0),
            &ConfirmPayload {
                subject: NodeId::new(1),
                chunks: ids(&[5]).into(),
                token: 1,
            },
            SimTime::ZERO,
        );
        match &out[0] {
            VerifierAction::SendConfirmResponse { response, .. } => assert!(response.confirmed),
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn colluding_verifier_never_blames_accomplices() {
        let coalition = Arc::new(vec![NodeId::new(1), NodeId::new(5)]);
        let mut v = Verifier::new(
            NodeId::new(1),
            7,
            LiftingConfig::planetlab(),
            CollusionConfig::coalition(coalition, true, false),
        );
        let actions = v.on_chunks_served(NodeId::new(5), ids(&[1]), SimTime::ZERO);
        // The accomplice never acknowledges, but no blame is emitted.
        let out = v.on_timer(timers(&actions)[0], SimTime::from_secs(2));
        assert!(blames(&out).is_empty());
        assert_eq!(v.blames_emitted(), 0);
    }

    #[test]
    fn man_in_the_middle_names_accomplices_in_acks() {
        let coalition = Arc::new(vec![NodeId::new(1), NodeId::new(7), NodeId::new(8)]);
        let mut v = Verifier::new(
            NodeId::new(1),
            7,
            LiftingConfig::planetlab(),
            CollusionConfig::coalition(coalition, true, true),
        );
        let round = ProposeRound {
            period: 3,
            chunks: ids(&[1, 2]).into(),
            partners: vec![NodeId::new(20), NodeId::new(21)],
            by_source: vec![(NodeId::new(10), ids(&[1, 2]))],
            dropped_sources: vec![],
        };
        let actions = v.on_propose_round(&round, SimTime::ZERO);
        let ack = actions
            .iter()
            .find_map(|a| match a {
                VerifierAction::SendAck { to, ack } => Some((*to, ack.clone())),
                _ => None,
            })
            .expect("an ack is owed to the server");
        assert_eq!(ack.0, NodeId::new(10));
        // The acknowledged partners are the accomplices, not the real targets.
        assert_eq!(&ack.1.partners[..], &[NodeId::new(7), NodeId::new(8)]);
    }

    #[test]
    fn honest_ack_names_the_real_partners_and_skips_own_chunks() {
        let mut v = verifier(1);
        let round = ProposeRound {
            period: 2,
            chunks: ids(&[1, 2, 3]).into(),
            partners: vec![NodeId::new(20), NodeId::new(21)],
            by_source: vec![
                (NodeId::new(10), ids(&[1])),
                (NodeId::new(1), ids(&[2])), // our own chunk (we are the source)
                (NodeId::new(11), ids(&[3])),
            ],
            dropped_sources: vec![],
        };
        let actions = v.on_propose_round(&round, SimTime::ZERO);
        let acks: Vec<(NodeId, AckPayload)> = actions
            .iter()
            .filter_map(|a| match a {
                VerifierAction::SendAck { to, ack } => Some((*to, ack.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(acks.len(), 2);
        assert!(acks
            .iter()
            .all(|(_, a)| a.partners[..] == round.partners[..]));
        // The proposal went into the history.
        assert_eq!(v.history().fanout_multiset().len(), 2);
    }

    #[test]
    fn low_pdcc_rarely_triggers_confirms() {
        let mut rng = derive_rng(9, 0);
        let mut v = Verifier::new(
            NodeId::new(1),
            7,
            LiftingConfig::planetlab().with_pdcc(0.1),
            CollusionConfig::none(),
        );
        let mut confirm_rounds = 0;
        for i in 0..200 {
            let receiver = NodeId::new(100 + i);
            v.on_chunks_served(receiver, ids(&[i as u64]), SimTime::ZERO);
            let out = v.on_ack(
                receiver,
                AckPayload {
                    chunks: ids(&[i as u64]).into(),
                    partners: (10..17).map(NodeId::new).collect::<Vec<_>>().into(),
                    period: 1,
                },
                SimTime::from_millis(500),
                &mut rng,
            );
            if out
                .iter()
                .any(|a| matches!(a, VerifierAction::SendConfirm { .. }))
            {
                confirm_rounds += 1;
            }
        }
        assert!(
            (10..=40).contains(&confirm_rounds),
            "≈10% of 200 acks should be cross-checked, got {confirm_rounds}"
        );
    }
}
