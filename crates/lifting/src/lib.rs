//! LiFTinG: Lightweight Freerider-Tracking in Gossip — the paper's
//! contribution (Section 5).
//!
//! LiFTinG layers distributed verifications on top of the three-phase gossip
//! protocol of `lifting-gossip`:
//!
//! * **Direct verification** — a requester checks that requested chunks are
//!   actually served and blames the proposer `f/|R|` per missing chunk
//!   ([`verifier`]).
//! * **Direct cross-checking** — after serving chunks, a node expects an
//!   acknowledgment naming the `f` partners the receiver forwarded them to,
//!   and (with probability `pdcc`) polls those witnesses with confirm
//!   messages; contradictions, undersized partner lists and missing acks are
//!   blamed according to Table 1 ([`verifier`], [`blame`]).
//! * **A-posteriori auditing** — a suspected node uploads its bounded history;
//!   the auditor cross-checks each logged proposal with the alleged receivers
//!   and runs entropy checks on the fanout and fanin multisets against the
//!   threshold `γ`, expelling nodes whose partner selection is biased — the
//!   defence against colluders covering each other up ([`audit`],
//!   [`history`]).
//! * **Blame schedule and scoring** — blame values are comparable across
//!   procedures and are accumulated by the reputation managers of
//!   `lifting-reputation`; wrongful blames caused by message loss are
//!   compensated using the closed forms of `lifting-analysis`.
//!
//! Collusion behaviours (covering up coalition members during confirmations,
//! and the man-in-the-middle attack of Figure 8b) are modelled in
//! [`collusion`] so the experiments can reproduce the paper's adversary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod blame;
pub mod collusion;
pub mod config;
pub mod history;
pub mod messages;
pub mod verifier;

pub use audit::{AuditOracle, AuditReport, AuditVerdict, Auditor};
pub use blame::{Blame, BlameReason};
pub use collusion::CollusionConfig;
pub use config::LiftingConfig;
pub use history::{NodeHistory, PeriodRecord, ProposalRecord};
pub use messages::{AckPayload, ConfirmPayload, ConfirmResponsePayload, VerificationMessage};
pub use verifier::{ConfirmRetryStats, Verifier, VerifierAction, VerifierTimer};

pub use lifting_sim::NodeId;
