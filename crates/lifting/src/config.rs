//! LiFTinG configuration.

use lifting_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Static parameters of the LiFTinG verification layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LiftingConfig {
    /// Probability `pdcc` of triggering a direct cross-check after each serve
    /// (Section 5). 0 when the system is considered healthy, 1 when it must be
    /// purged from freeriders.
    pub pdcc: f64,
    /// Number of reputation managers `M` per node (25 in the deployment).
    pub managers: usize,
    /// Score-based detection threshold `η` (the paper uses −9.75, calibrated
    /// for a false-positive probability below 1 %).
    pub eta: f64,
    /// Entropy-based detection threshold `γ` (the paper uses 8.95 for
    /// `nh·f = 600` history entries).
    pub gamma: f64,
    /// History length `nh` in gossip periods kept for a-posteriori audits
    /// (50 in the paper's entropy experiments).
    pub history_periods: usize,
    /// How long a requester waits for requested chunks before running direct
    /// verification (the paper checks at the next gossip period).
    pub serve_timeout: SimDuration,
    /// How long a server waits for the receiver's acknowledgment before
    /// blaming it by `f` (the acknowledgment follows the receiver's next
    /// propose phase, so a bit more than two gossip periods).
    pub ack_timeout: SimDuration,
    /// How long a verifier waits for confirm responses from the witnesses.
    pub confirm_timeout: SimDuration,
    /// Bounded retries for unanswered cross-check confirms (resilience
    /// hardening). `0` — the paper's behaviour — converts every witness
    /// still unconfirmed at the first timeout into a contradicted-proposal
    /// blame, which under message loss wrongly blames honest proposers
    /// (Figure 10's σ). `k > 0` re-sends the confirm to the still-silent
    /// witnesses up to `k` times with a deterministic linear backoff
    /// (attempt `i` waits `confirm_timeout · (i + 1)`), and when the retries
    /// exhaust **aborts the check without blame**: a silent witness is then
    /// indistinguishable from a partitioned one, so contradiction evidence
    /// is left to the a-posteriori audit plane instead of being guessed.
    pub confirm_retries: u32,
    /// Minimum number of observed gossip periods before a node can be expelled
    /// on its score (a joining node's score is not yet comparable,
    /// Section 6.2).
    pub min_periods_before_expulsion: u64,
    /// Fraction of a node's managers that must vote for expulsion before the
    /// node is actually cut off.
    pub expulsion_quorum: f64,
    /// Whether wrongful blames are compensated each period using the expected
    /// value from the loss rate (Equation 5). Disabling this is an ablation.
    pub compensate_wrongful_blames: bool,
}

impl LiftingConfig {
    /// The PlanetLab deployment parameters of Section 7.1.
    pub fn planetlab() -> Self {
        let tg = SimDuration::from_millis(500);
        LiftingConfig {
            pdcc: 1.0,
            managers: 25,
            eta: -9.75,
            gamma: 8.95,
            history_periods: 50,
            serve_timeout: tg,
            ack_timeout: tg.saturating_mul(3),
            confirm_timeout: tg.saturating_mul(2),
            confirm_retries: 0,
            min_periods_before_expulsion: 10,
            expulsion_quorum: 0.5,
            compensate_wrongful_blames: true,
        }
    }

    /// Same as [`planetlab`](LiftingConfig::planetlab) but with a different
    /// cross-checking probability.
    pub fn with_pdcc(mut self, pdcc: f64) -> Self {
        self.pdcc = pdcc;
        self
    }

    /// Enables the hardened confirm path: up to `retries` re-sends of an
    /// unanswered cross-check confirm before the check is abandoned without
    /// blame (see [`confirm_retries`](Self::confirm_retries)).
    pub fn with_confirm_retries(mut self, retries: u32) -> Self {
        self.confirm_retries = retries;
        self
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if a probability is out of range, the thresholds have the wrong
    /// sign, or a timeout is zero.
    pub fn validate(&self) {
        assert!((0.0..=1.0).contains(&self.pdcc), "pdcc out of range");
        assert!(
            (0.0..=1.0).contains(&self.expulsion_quorum),
            "expulsion quorum out of range"
        );
        assert!(self.managers > 0, "at least one manager is required");
        assert!(self.eta < 0.0, "η must be negative");
        assert!(self.gamma > 0.0, "γ must be positive");
        assert!(self.history_periods > 0, "history must cover ≥ 1 period");
        assert!(
            !self.serve_timeout.is_zero(),
            "serve timeout must be positive"
        );
        assert!(!self.ack_timeout.is_zero(), "ack timeout must be positive");
        assert!(
            !self.confirm_timeout.is_zero(),
            "confirm timeout must be positive"
        );
    }
}

impl Default for LiftingConfig {
    fn default() -> Self {
        LiftingConfig::planetlab()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planetlab_preset_matches_the_paper() {
        let c = LiftingConfig::planetlab();
        assert_eq!(c.pdcc, 1.0);
        assert_eq!(c.managers, 25);
        assert_eq!(c.eta, -9.75);
        assert_eq!(c.gamma, 8.95);
        assert_eq!(c.history_periods, 50);
        c.validate();
        let half = c.with_pdcc(0.5);
        assert_eq!(half.pdcc, 0.5);
        half.validate();
    }

    #[test]
    #[should_panic]
    fn positive_eta_is_rejected() {
        let mut c = LiftingConfig::planetlab();
        c.eta = 3.0;
        c.validate();
    }

    #[test]
    #[should_panic]
    fn out_of_range_pdcc_is_rejected() {
        let mut c = LiftingConfig::planetlab();
        c.pdcc = 1.5;
        c.validate();
    }
}
