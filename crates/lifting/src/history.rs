//! Accountability: the bounded local history every node maintains
//! (Section 5, "each node maintains a digest of its past interactions").
//!
//! The history covers the last `nh` gossip periods and records, per period,
//! the proposals sent (partners and chunk ids), the serves received (source
//! and chunk), the proposals received (needed to answer confirm requests and
//! audit polls truthfully) and the confirm requests received (needed to build
//! the fanin multiset `F'h` during audits of *other* nodes).

use std::collections::VecDeque;
use std::sync::Arc;

use lifting_gossip::ChunkId;
use lifting_sim::collections::FastHashMap;
use lifting_sim::{InlineVec, NodeId};
use serde::{Deserialize, Serialize, Value};

use crate::messages::{CHUNK_ID_BYTES, NODE_ID_BYTES};

/// One proposal sent during a period.
///
/// Partner and chunk lists are inline small vectors: the protocol fanout is
/// 7, so recording a proposal in the history allocates nothing in the common
/// case (larger chunk batches spill to the heap transparently).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProposalRecord {
    /// The partners the proposal was sent to.
    pub partners: InlineVec<NodeId, 8>,
    /// The chunk ids proposed.
    pub chunks: InlineVec<ChunkId, 8>,
}

/// Everything recorded during one gossip period.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PeriodRecord {
    /// The node's period counter.
    pub period: u64,
    /// Proposals sent during this period (at most one per the protocol, but
    /// the record does not enforce it).
    pub proposals_sent: Vec<ProposalRecord>,
    /// Chunks received, with the node that served each.
    pub serves_received: Vec<(NodeId, ChunkId)>,
    /// Proposals received: `(proposer, chunk ids)`. The chunk lists are
    /// shared with the propose payloads they arrived in.
    pub proposals_received: Vec<(NodeId, Arc<[ChunkId]>)>,
    /// Confirm requests received: `(asker, subject)`.
    pub confirms_received: Vec<(NodeId, NodeId)>,
}

/// The bounded history of one node.
#[derive(Debug, Clone)]
pub struct NodeHistory {
    owner: NodeId,
    capacity_periods: usize,
    periods: VecDeque<PeriodRecord>,
    /// Live count of each `(proposer, chunk)` pair among the recorded
    /// `proposals_received`, maintained incrementally as periods are recorded
    /// and evicted. [`received_proposal_with`] answers from this index in
    /// O(chunks) — it used to scan every proposal of every period, and that
    /// scan (run once per confirm request, i.e. per cross-check witness)
    /// dominated whole-system runs at `pdcc = 1`.
    ///
    /// Derived state: deliberately excluded from equality and serialization.
    ///
    /// [`received_proposal_with`]: NodeHistory::received_proposal_with
    received_index: FastHashMap<(NodeId, ChunkId), u32>,
}

impl PartialEq for NodeHistory {
    fn eq(&self, other: &Self) -> bool {
        // The index is derived from `periods`; comparing it would be
        // redundant (and needlessly order-sensitive).
        self.owner == other.owner
            && self.capacity_periods == other.capacity_periods
            && self.periods == other.periods
    }
}

impl Serialize for NodeHistory {
    fn to_json_value(&self) -> Value {
        // Same shape the derive produced before the index existed.
        Value::Object(vec![
            ("owner".to_string(), self.owner.to_json_value()),
            (
                "capacity_periods".to_string(),
                self.capacity_periods.to_json_value(),
            ),
            ("periods".to_string(), self.periods.to_json_value()),
        ])
    }
}

impl Deserialize for NodeHistory {}

impl NodeHistory {
    /// Creates an empty history covering at most `capacity_periods` gossip
    /// periods (`nh` in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `capacity_periods` is zero.
    pub fn new(owner: NodeId, capacity_periods: usize) -> Self {
        assert!(
            capacity_periods > 0,
            "history must cover at least one period"
        );
        NodeHistory {
            owner,
            capacity_periods,
            periods: VecDeque::new(),
            received_index: FastHashMap::default(),
        }
    }

    /// The node this history belongs to.
    pub fn owner(&self) -> NodeId {
        self.owner
    }

    /// Heap bytes held by the recorded periods and the derived index
    /// (capacity walk, deterministic; shared `Arc` chunk lists are attributed
    /// to every holder).
    pub fn estimated_heap_bytes(&self) -> usize {
        use std::mem::size_of;
        let mut bytes = self.periods.capacity() * size_of::<PeriodRecord>()
            + self
                .received_index
                .capacity()
                .saturating_mul(size_of::<((NodeId, ChunkId), u32)>());
        for p in &self.periods {
            bytes += p.proposals_sent.capacity() * size_of::<ProposalRecord>()
                + p.serves_received.capacity() * size_of::<(NodeId, ChunkId)>()
                + p.proposals_received.capacity() * size_of::<(NodeId, Arc<[ChunkId]>)>()
                + p.confirms_received.capacity() * size_of::<(NodeId, NodeId)>();
            for (_, chunks) in &p.proposals_received {
                bytes += chunks.len() * size_of::<ChunkId>();
            }
        }
        bytes
    }

    /// Number of periods currently recorded.
    pub fn len(&self) -> usize {
        self.periods.len()
    }

    /// True if nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.periods.is_empty()
    }

    /// The maximum number of periods kept (`nh`).
    pub fn capacity(&self) -> usize {
        self.capacity_periods
    }

    fn current_mut(&mut self, period: u64) -> &mut PeriodRecord {
        let needs_new = match self.periods.back() {
            Some(last) => last.period != period,
            None => true,
        };
        if needs_new {
            self.periods.push_back(PeriodRecord {
                period,
                ..PeriodRecord::default()
            });
            while self.periods.len() > self.capacity_periods {
                if let Some(evicted) = self.periods.pop_front() {
                    // Keep the received-proposal index in sync with eviction.
                    for (proposer, ids) in &evicted.proposals_received {
                        for id in ids.iter() {
                            if let Some(count) = self.received_index.get_mut(&(*proposer, *id)) {
                                *count -= 1;
                                if *count == 0 {
                                    self.received_index.remove(&(*proposer, *id));
                                }
                            }
                        }
                    }
                }
            }
        }
        self.periods.back_mut().expect("just pushed")
    }

    /// Records a proposal sent during `period`. The lists are copied into
    /// inline storage, so callers pass borrowed slices instead of cloning.
    pub fn record_proposal_sent(&mut self, period: u64, partners: &[NodeId], chunks: &[ChunkId]) {
        self.current_mut(period)
            .proposals_sent
            .push(ProposalRecord {
                partners: InlineVec::from_slice(partners),
                chunks: InlineVec::from_slice(chunks),
            });
    }

    /// Records a chunk served to this node by `source` during `period`.
    pub fn record_serve_received(&mut self, period: u64, source: NodeId, chunk: ChunkId) {
        self.current_mut(period)
            .serves_received
            .push((source, chunk));
    }

    /// Records a proposal received from `proposer` during `period`.
    pub fn record_proposal_received(
        &mut self,
        period: u64,
        proposer: NodeId,
        chunks: Arc<[ChunkId]>,
    ) {
        for id in chunks.iter() {
            *self.received_index.entry((proposer, *id)).or_insert(0) += 1;
        }
        self.current_mut(period)
            .proposals_received
            .push((proposer, chunks));
    }

    /// Records a confirm request received from `asker` about `subject` during
    /// `period`.
    pub fn record_confirm_received(&mut self, period: u64, asker: NodeId, subject: NodeId) {
        self.current_mut(period)
            .confirms_received
            .push((asker, subject));
    }

    /// Iterates over the recorded periods, oldest first.
    pub fn periods(&self) -> impl Iterator<Item = &PeriodRecord> + '_ {
        self.periods.iter()
    }

    /// The fanout multiset `Fh`: every partner of every proposal sent in the
    /// history (with multiplicity).
    pub fn fanout_multiset(&self) -> Vec<NodeId> {
        self.periods
            .iter()
            .flat_map(|p| p.proposals_sent.iter())
            .flat_map(|pr| pr.partners.iter().copied())
            .collect()
    }

    /// The fanin multiset recorded locally: the node that served each received
    /// chunk (with multiplicity).
    pub fn fanin_multiset(&self) -> Vec<NodeId> {
        self.periods
            .iter()
            .flat_map(|p| p.serves_received.iter().map(|(s, _)| *s))
            .collect()
    }

    /// The nodes that asked this node to confirm proposals of `subject`
    /// (used by an auditor of `subject` to build `F'h`).
    pub fn confirm_askers_about(&self, subject: NodeId) -> Vec<NodeId> {
        self.periods
            .iter()
            .flat_map(|p| p.confirms_received.iter())
            .filter(|(_, s)| *s == subject)
            .map(|(asker, _)| *asker)
            .collect()
    }

    /// Number of propose phases recorded (gossip-period check of Section 5.3).
    pub fn propose_phase_count(&self) -> usize {
        self.periods
            .iter()
            .filter(|p| !p.proposals_sent.is_empty())
            .count()
    }

    /// True if this node received a proposal from `proposer` containing every
    /// chunk in `chunks` (possibly across several proposals). Used to answer
    /// confirm requests and a-posteriori audit polls.
    ///
    /// Answered from the incremental index in O(|chunks|); the set of live
    /// `(proposer, chunk)` pairs is identical to what a scan over
    /// `proposals_received` would find.
    pub fn received_proposal_with(&self, proposer: NodeId, chunks: &[ChunkId]) -> bool {
        chunks
            .iter()
            .all(|needle| self.received_index.contains_key(&(proposer, *needle)))
    }

    /// Approximate wire size of the history when uploaded for an audit.
    pub fn wire_size(&self) -> u64 {
        let mut bytes = 8; // period count
        for p in &self.periods {
            bytes += 16; // period header
            for pr in &p.proposals_sent {
                bytes += 4
                    + NODE_ID_BYTES * pr.partners.len() as u64
                    + CHUNK_ID_BYTES * pr.chunks.len() as u64;
            }
            bytes += (NODE_ID_BYTES + CHUNK_ID_BYTES) * p.serves_received.len() as u64;
            for (_, ids) in &p.proposals_received {
                bytes += NODE_ID_BYTES + 4 + CHUNK_ID_BYTES * ids.len() as u64;
            }
            bytes += 2 * NODE_ID_BYTES * p.confirms_received.len() as u64;
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(xs: &[u64]) -> Vec<ChunkId> {
        xs.iter().map(|x| ChunkId::primary(*x)).collect()
    }

    fn nodes(xs: &[u32]) -> Vec<NodeId> {
        xs.iter().map(|x| NodeId::new(*x)).collect()
    }

    #[test]
    fn history_is_bounded_to_nh_periods() {
        let mut h = NodeHistory::new(NodeId::new(0), 3);
        for period in 0..10u64 {
            h.record_proposal_sent(period, &nodes(&[1, 2]), &ids(&[period]));
        }
        assert_eq!(h.len(), 3);
        let kept: Vec<u64> = h.periods().map(|p| p.period).collect();
        assert_eq!(kept, vec![7, 8, 9]);
        assert_eq!(h.capacity(), 3);
        assert_eq!(h.owner(), NodeId::new(0));
    }

    #[test]
    fn fanout_and_fanin_multisets_have_multiplicity() {
        let mut h = NodeHistory::new(NodeId::new(0), 10);
        h.record_proposal_sent(0, &nodes(&[1, 2, 3]), &ids(&[10]));
        h.record_proposal_sent(1, &nodes(&[2, 4]), &ids(&[11]));
        h.record_serve_received(0, NodeId::new(9), ChunkId::primary(10));
        h.record_serve_received(1, NodeId::new(9), ChunkId::primary(11));
        h.record_serve_received(1, NodeId::new(5), ChunkId::primary(12));
        let fanout = h.fanout_multiset();
        assert_eq!(fanout.len(), 5);
        assert_eq!(fanout.iter().filter(|n| **n == NodeId::new(2)).count(), 2);
        let fanin = h.fanin_multiset();
        assert_eq!(fanin.len(), 3);
        assert_eq!(fanin.iter().filter(|n| **n == NodeId::new(9)).count(), 2);
    }

    #[test]
    fn confirm_askers_are_tracked_per_subject() {
        let mut h = NodeHistory::new(NodeId::new(2), 10);
        h.record_confirm_received(0, NodeId::new(10), NodeId::new(1));
        h.record_confirm_received(0, NodeId::new(11), NodeId::new(1));
        h.record_confirm_received(1, NodeId::new(12), NodeId::new(5));
        assert_eq!(h.confirm_askers_about(NodeId::new(1)), nodes(&[10, 11]));
        assert_eq!(h.confirm_askers_about(NodeId::new(5)), nodes(&[12]));
        assert!(h.confirm_askers_about(NodeId::new(9)).is_empty());
    }

    #[test]
    fn received_proposal_lookup_matches_subsets() {
        let mut h = NodeHistory::new(NodeId::new(3), 10);
        h.record_proposal_received(4, NodeId::new(7), ids(&[1, 2, 3]).into());
        h.record_proposal_received(5, NodeId::new(7), ids(&[4]).into());
        assert!(h.received_proposal_with(NodeId::new(7), &ids(&[1, 3])));
        assert!(h.received_proposal_with(NodeId::new(7), &ids(&[1, 4])));
        assert!(!h.received_proposal_with(NodeId::new(7), &ids(&[9])));
        assert!(!h.received_proposal_with(NodeId::new(8), &ids(&[1])));
        assert!(h.received_proposal_with(NodeId::new(8), &[]));
    }

    #[test]
    fn propose_phase_count_ignores_empty_periods() {
        let mut h = NodeHistory::new(NodeId::new(0), 10);
        h.record_proposal_sent(0, &nodes(&[1]), &ids(&[1]));
        h.record_serve_received(1, NodeId::new(2), ChunkId::primary(5)); // period without proposal
        h.record_proposal_sent(2, &nodes(&[1]), &ids(&[2]));
        assert_eq!(h.propose_phase_count(), 2);
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn wire_size_grows_with_content() {
        let mut h = NodeHistory::new(NodeId::new(0), 50);
        let empty = h.wire_size();
        h.record_proposal_sent(0, &nodes(&[1, 2, 3, 4, 5, 6, 7]), &ids(&[1, 2, 3]));
        let one = h.wire_size();
        assert!(one > empty);
        h.record_serve_received(0, NodeId::new(9), ChunkId::primary(1));
        assert!(h.wire_size() > one);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_is_rejected() {
        let _ = NodeHistory::new(NodeId::new(0), 0);
    }

    /// The incremental received-proposal index must agree with a full scan of
    /// `proposals_received` at every step, including across period eviction.
    #[test]
    fn received_index_matches_a_full_scan_across_eviction() {
        let mut h = NodeHistory::new(NodeId::new(0), 3);
        let scan = |h: &NodeHistory, proposer: NodeId, needle: ChunkId| {
            h.periods().any(|p| {
                p.proposals_received
                    .iter()
                    .any(|(from, ids)| *from == proposer && ids.contains(&needle))
            })
        };
        for period in 0..10u64 {
            let proposer = NodeId::new((period % 4) as u32 + 1);
            h.record_proposal_received(period, proposer, ids(&[period, period + 100]).into());
            // A second proposal repeating an old chunk id from the same
            // proposer (duplicate index entries must survive one eviction).
            if period >= 2 {
                h.record_proposal_received(period, proposer, ids(&[period - 2]).into());
            }
            for probe_period in 0..10u64 {
                for probe_proposer in 1..=4u32 {
                    for probe in [probe_period, probe_period + 100] {
                        let (p, c) = (NodeId::new(probe_proposer), ChunkId::primary(probe));
                        assert_eq!(
                            h.received_proposal_with(p, &[c]),
                            scan(&h, p, c),
                            "index and scan disagree on ({p}, {c}) at period {period}"
                        );
                    }
                }
            }
        }
    }
}
