//! Blame values (Table 1 of the paper).
//!
//! A blame's value is proportional to the number of invalid pushes, which
//! makes blames emitted by different verification procedures directly
//! comparable and summable into a single score.

use lifting_sim::{NodeId, StreamId};
use serde::{Deserialize, Serialize};

/// Why a blame was emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BlameReason {
    /// Some requested chunks were never served (direct verification).
    PartialServe,
    /// No acknowledgment was received after serving chunks (cross-checking).
    MissingAck,
    /// The acknowledgment listed fewer than `f` partners (fanout decrease).
    FanoutDecrease,
    /// A witness contradicted the acknowledged proposal, or never answered
    /// (cross-checking).
    ContradictedProposal,
    /// A proposal logged in the audited history was not confirmed by its
    /// alleged receiver (a-posteriori cross-check).
    UnconfirmedHistoryEntry,
    /// The audited history contains fewer propose phases than the protocol
    /// mandates (gossip-period stretching).
    MissingProposePhases,
}

/// A blame against a node.
///
/// The `stream` field records which channel's verification produced the
/// blame. It is provenance only: the reputation managers aggregate blames
/// from *every* stream into one score per node (that cross-stream
/// aggregation is what lets misbehaviour on one channel cost access to all
/// of them), so scoring never reads the field — metrics and invariant tests
/// do.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Blame {
    /// The node being blamed.
    pub target: NodeId,
    /// The blame value (non-negative; see [`schedule`]).
    pub value: f64,
    /// The reason the blame was emitted.
    pub reason: BlameReason,
    /// The stream whose verification emitted the blame.
    pub stream: StreamId,
}

impl Blame {
    /// Creates a blame on the primary stream, clamping negative values to
    /// zero.
    pub fn new(target: NodeId, value: f64, reason: BlameReason) -> Self {
        Blame::on_stream(StreamId::PRIMARY, target, value, reason)
    }

    /// Creates a blame attributed to `stream`, clamping negative values to
    /// zero.
    pub fn on_stream(stream: StreamId, target: NodeId, value: f64, reason: BlameReason) -> Self {
        Blame {
            target,
            value: value.max(0.0),
            reason,
            stream,
        }
    }
}

/// The blame schedule of Table 1.
pub mod schedule {
    /// Blame applied by the requester when only `served` of the `requested`
    /// chunks arrived: `f·(|R| - |S|)/|R|`, i.e. `f` when nothing arrived.
    ///
    /// Returns 0 when nothing was requested.
    pub fn partial_serve(fanout: usize, requested: usize, served: usize) -> f64 {
        if requested == 0 {
            return 0.0;
        }
        let missing = requested.saturating_sub(served);
        fanout as f64 * missing as f64 / requested as f64
    }

    /// Blame applied by a verifier when no acknowledgment arrives: `f`.
    pub fn missing_ack(fanout: usize) -> f64 {
        fanout as f64
    }

    /// Blame applied by a verifier when the acknowledgment names only `f̂ < f`
    /// partners: `f - f̂`.
    pub fn fanout_decrease(fanout: usize, acknowledged: usize) -> f64 {
        fanout.saturating_sub(acknowledged) as f64
    }

    /// Blame applied per witness that contradicts (or fails to confirm) the
    /// acknowledged proposal: 1 per invalid proposal.
    pub fn contradicted_proposal(contradictions: usize) -> f64 {
        contradictions as f64
    }

    /// Blame applied per proposal in an audited history that its alleged
    /// receiver does not acknowledge: 1 each.
    pub fn unconfirmed_history_entries(count: usize) -> f64 {
        count as f64
    }

    /// Blame applied when the audited history contains `found` propose phases
    /// where `expected` were mandated: `f` per missing phase (one whole
    /// proposal's worth of pushes skipped per phase).
    pub fn missing_propose_phases(fanout: usize, expected: usize, found: usize) -> f64 {
        fanout as f64 * expected.saturating_sub(found) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partial_serve_follows_table_1() {
        // f = 7, |R| = 4: one missing chunk costs 7/4, all missing costs 7.
        assert!((schedule::partial_serve(7, 4, 3) - 1.75).abs() < 1e-12);
        assert!((schedule::partial_serve(7, 4, 0) - 7.0).abs() < 1e-12);
        assert_eq!(schedule::partial_serve(7, 4, 4), 0.0);
        assert_eq!(schedule::partial_serve(7, 0, 0), 0.0);
        // Serving more than requested never yields negative blame.
        assert_eq!(schedule::partial_serve(7, 4, 9), 0.0);
    }

    #[test]
    fn fanout_decrease_follows_table_1() {
        assert_eq!(schedule::fanout_decrease(7, 6), 1.0);
        assert_eq!(schedule::fanout_decrease(7, 7), 0.0);
        assert_eq!(schedule::fanout_decrease(7, 9), 0.0);
        assert_eq!(schedule::missing_ack(7), 7.0);
    }

    #[test]
    fn audit_blames_count_invalid_entries() {
        assert_eq!(schedule::contradicted_proposal(3), 3.0);
        assert_eq!(schedule::unconfirmed_history_entries(12), 12.0);
        assert_eq!(schedule::missing_propose_phases(7, 50, 45), 35.0);
        assert_eq!(schedule::missing_propose_phases(7, 50, 50), 0.0);
        assert_eq!(schedule::missing_propose_phases(7, 50, 60), 0.0);
    }

    #[test]
    fn blames_are_never_negative() {
        let b = Blame::new(NodeId::new(1), -4.0, BlameReason::PartialServe);
        assert_eq!(b.value, 0.0);
        let b = Blame::new(NodeId::new(1), 2.5, BlameReason::MissingAck);
        assert_eq!(b.value, 2.5);
        assert_eq!(b.target, NodeId::new(1));
    }
}
