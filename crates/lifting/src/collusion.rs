//! Verification-layer collusion behaviours (Section 5.2, Figure 8).
//!
//! Colluding freeriders not only freeride at the dissemination layer; they
//! also subvert the verification procedures:
//!
//! * **Cover-up** — a colluding witness answers confirm requests about a
//!   coalition member positively regardless of what it actually received, and
//!   a colluding verifier never blames a coalition member.
//! * **Man-in-the-middle (Figure 8b)** — a freerider acknowledges a colluder
//!   as the destination of its forwarding, so the honest server's confirm
//!   requests go to a colluder who vouches for it.
//!
//! The entropy checks of the a-posteriori audit are designed to defeat both.

use std::sync::Arc;

use lifting_sim::NodeId;

/// Collusion configuration of one node's verification layer.
#[derive(Debug, Clone, Default)]
pub struct CollusionConfig {
    coalition: Arc<Vec<NodeId>>,
    cover_up: bool,
    mitm: bool,
}

impl CollusionConfig {
    /// A node that does not collude (honest verification behaviour).
    pub fn none() -> Self {
        CollusionConfig::default()
    }

    /// A coalition member.
    ///
    /// * `cover_up` — vouch for coalition members during confirmations and
    ///   never blame them.
    /// * `mitm` — name colluders instead of the real partners in
    ///   acknowledgments (the man-in-the-middle attack).
    pub fn coalition(coalition: Arc<Vec<NodeId>>, cover_up: bool, mitm: bool) -> Self {
        CollusionConfig {
            coalition,
            cover_up,
            mitm,
        }
    }

    /// True if `node` belongs to the coalition.
    pub fn is_colluder(&self, node: NodeId) -> bool {
        self.coalition.contains(&node)
    }

    /// True if this node covers up coalition members.
    pub fn covers_up(&self) -> bool {
        self.cover_up && !self.coalition.is_empty()
    }

    /// True if this node mounts the man-in-the-middle attack.
    pub fn man_in_the_middle(&self) -> bool {
        self.mitm && !self.coalition.is_empty()
    }

    /// The coalition members other than `me`, used to fabricate partner lists
    /// for the man-in-the-middle attack.
    pub fn accomplices(&self, me: NodeId) -> Vec<NodeId> {
        self.coalition
            .iter()
            .copied()
            .filter(|c| *c != me)
            .collect()
    }

    /// Size of the coalition.
    pub fn coalition_size(&self) -> usize {
        self.coalition.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coalition(ids: &[u32]) -> Arc<Vec<NodeId>> {
        Arc::new(ids.iter().map(|i| NodeId::new(*i)).collect())
    }

    #[test]
    fn non_colluder_has_no_special_behaviour() {
        let c = CollusionConfig::none();
        assert!(!c.covers_up());
        assert!(!c.man_in_the_middle());
        assert!(!c.is_colluder(NodeId::new(3)));
        assert_eq!(c.coalition_size(), 0);
    }

    #[test]
    fn coalition_membership_and_accomplices() {
        let c = CollusionConfig::coalition(coalition(&[1, 2, 3]), true, true);
        assert!(c.is_colluder(NodeId::new(2)));
        assert!(!c.is_colluder(NodeId::new(9)));
        assert!(c.covers_up());
        assert!(c.man_in_the_middle());
        assert_eq!(
            c.accomplices(NodeId::new(2)),
            vec![NodeId::new(1), NodeId::new(3)]
        );
        assert_eq!(c.coalition_size(), 3);
    }

    #[test]
    fn flags_require_a_coalition() {
        let c = CollusionConfig::coalition(Arc::new(Vec::new()), true, true);
        assert!(!c.covers_up());
        assert!(!c.man_in_the_middle());
    }
}
