//! A-posteriori auditing: local history audit, a-posteriori cross-checking and
//! entropy checks (Sections 5.3 and 6.3.2).
//!
//! An audit pulls the suspected node's bounded history over TCP and then:
//!
//! 1. checks the Shannon entropy of the fanout multiset `Fh` (the partners of
//!    every logged proposal) against the threshold `γ`;
//! 2. builds the fanin multiset `F'h` by polling the nodes named in `Fh` for
//!    the identities of the verifiers that asked them to confirm the audited
//!    node's proposals, and checks its entropy against `γ` as well — this is
//!    what defeats the man-in-the-middle cover-up of Figure 8b;
//! 3. cross-checks every logged proposal with its alleged receivers, blaming 1
//!    per unconfirmed push;
//! 4. counts the logged propose phases to catch gossip-period stretching.
//!
//! Failing either entropy check means expulsion; the other findings translate
//! into blames. The thresholds are scaled to the amount of history actually
//! available so that freshly joined nodes are not wrongfully expelled.

use lifting_analysis::shannon_entropy;
use lifting_gossip::ChunkId;
use lifting_sim::NodeId;
use serde::{Deserialize, Serialize};

use crate::blame::schedule;
use crate::config::LiftingConfig;
use crate::history::NodeHistory;

/// Oracle used by the auditor to poll third parties.
///
/// In the deployed system these polls are TCP exchanges with the nodes named
/// in the audited history; `lifting-runtime` implements the trait over the
/// simulated network (accounting the traffic as audit overhead), and tests
/// implement it over in-memory tables.
pub trait AuditOracle {
    /// Asks `witness` whether it received a proposal from `subject` containing
    /// `chunks`.
    fn confirm_proposal(&mut self, witness: NodeId, subject: NodeId, chunks: &[ChunkId]) -> bool;

    /// Asks `witness` which nodes requested confirmations about `subject`
    /// (used to build the fanin multiset `F'h`).
    fn confirm_askers(&mut self, witness: NodeId, subject: NodeId) -> Vec<NodeId>;
}

/// Outcome category of an audit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AuditVerdict {
    /// Nothing suspicious.
    Pass,
    /// The history cross-check produced blames but no expulsion.
    Blamed,
    /// An entropy check failed: the node is expelled outright.
    Expel,
}

/// Detailed result of one audit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditReport {
    /// The audited node.
    pub subject: NodeId,
    /// Entropy of the fanout multiset `Fh`.
    pub fanout_entropy: f64,
    /// Entropy of the fanin multiset `F'h` (confirm askers reported by the
    /// witnesses), if any was observed.
    pub fanin_entropy: Option<f64>,
    /// Thresholds actually applied (scaled for the available history size).
    pub applied_fanout_threshold: f64,
    /// Threshold applied to the fanin entropy, if the check ran.
    pub applied_fanin_threshold: Option<f64>,
    /// Number of `(proposal, receiver)` pushes not confirmed by the receiver.
    pub unconfirmed_pushes: usize,
    /// Number of propose phases found in the history.
    pub observed_propose_phases: usize,
    /// Number of propose phases the protocol mandates over the same span.
    pub expected_propose_phases: usize,
    /// Total blame produced by the audit (cross-check + period check).
    pub blame: f64,
    /// The verdict.
    pub verdict: AuditVerdict,
}

/// The a-posteriori auditor.
#[derive(Debug, Clone)]
pub struct Auditor {
    config: LiftingConfig,
    fanout: usize,
    gamma: f64,
}

impl Auditor {
    /// Creates an auditor for a system with protocol fanout `fanout`, using
    /// the threshold `γ` from the configuration.
    ///
    /// The configured `γ` must be calibrated for the deployment's history size
    /// `nh·f` and population `n` (the paper's 8.95 corresponds to 600 entries
    /// in a 10,000-node system); use
    /// [`lifting_analysis::calibrate_gamma`](lifting_analysis::entropy::calibrate_gamma)
    /// and [`with_threshold`](Auditor::with_threshold) for other deployments.
    pub fn new(config: LiftingConfig, fanout: usize) -> Self {
        let gamma = config.gamma;
        Auditor::with_threshold(config, fanout, gamma)
    }

    /// Creates an auditor with an explicitly calibrated entropy threshold.
    pub fn with_threshold(config: LiftingConfig, fanout: usize, gamma: f64) -> Self {
        config.validate();
        assert!(fanout > 0, "fanout must be positive");
        assert!(gamma > 0.0, "entropy threshold must be positive");
        Auditor {
            config,
            fanout,
            gamma,
        }
    }

    /// The entropy threshold this auditor applies to full-size histories.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// The nominal history size `nh·f` the thresholds were calibrated for.
    fn nominal_entries(&self) -> f64 {
        (self.config.history_periods * self.fanout) as f64
    }

    /// Scales the configured threshold `γ` to a history of `entries` entries:
    /// the maximum achievable entropy is `log2(entries)` instead of
    /// `log2(nh·f)`, so the threshold shrinks proportionally. Returns `None`
    /// if there is too little history for the check to be meaningful (fewer
    /// than two entries or less than a quarter of a full history).
    fn scaled_threshold(&self, entries: usize) -> Option<f64> {
        if entries < 2 || (entries as f64) < 0.25 * self.nominal_entries() {
            return None;
        }
        let scale = (entries as f64).log2() / self.nominal_entries().log2();
        Some(self.gamma * scale.min(1.0))
    }

    /// Audits `history` using `oracle` for the third-party polls.
    pub fn audit(&self, history: &NodeHistory, oracle: &mut dyn AuditOracle) -> AuditReport {
        let subject = history.owner();

        // 1. Entropy of the fanout multiset Fh.
        let fanout_multiset = history.fanout_multiset();
        let fanout_entropy = shannon_entropy(fanout_multiset.iter().copied());
        let fanout_threshold = self.scaled_threshold(fanout_multiset.len());
        let fanout_fails = fanout_threshold
            .map(|thr| fanout_entropy < thr)
            .unwrap_or(false);

        // 2. Entropy of the fanin multiset F'h, gathered from the witnesses.
        // The entropy and size of Fh are already taken, so the multiset
        // buffer itself becomes the deduplicated witness list — no per-audit
        // clone of the whole multiset.
        let mut witnesses = fanout_multiset;
        witnesses.sort_unstable();
        witnesses.dedup();
        let mut fanin_multiset: Vec<NodeId> = Vec::new();
        for w in &witnesses {
            fanin_multiset.extend(oracle.confirm_askers(*w, subject));
        }
        // The fanin multiset is intrinsically noisier than the fanout one: its
        // size fluctuates, each serve contributes several identical asker
        // entries, and in small systems the dissemination tree concentrates a
        // node's servers on a few upstream peers — the paper's Figure 13b
        // already shows the fanin entropy spreading wider than the fanout one.
        // The check therefore (i) waits for at least half a nominal history
        // and (ii) only expels when the entropy falls below half the threshold
        // (coalition-level concentration), which keeps honest nodes safe while
        // still catching the man-in-the-middle cover-up.
        const FANIN_THRESHOLD_FRACTION: f64 = 0.5;
        let fanin_applicable = (fanin_multiset.len() as f64) >= 0.5 * self.nominal_entries()
            && fanin_multiset.len() >= 2;
        let (fanin_entropy, fanin_threshold, fanin_fails) = if fanin_multiset.is_empty() {
            (None, None, false)
        } else {
            let h = shannon_entropy(fanin_multiset.iter().copied());
            let thr = if fanin_applicable {
                self.scaled_threshold(fanin_multiset.len())
                    .map(|t| t * FANIN_THRESHOLD_FRACTION)
            } else {
                None
            };
            let fails = thr.map(|t| h < t).unwrap_or(false);
            (Some(h), thr, fails)
        };

        // 3. A-posteriori cross-check of every logged push.
        let mut unconfirmed = 0usize;
        for period in history.periods() {
            for proposal in &period.proposals_sent {
                for partner in &proposal.partners {
                    if !oracle.confirm_proposal(*partner, subject, &proposal.chunks) {
                        unconfirmed += 1;
                    }
                }
            }
        }

        // 4. Gossip-period check: every recorded period should contain a
        // propose phase (the analysis assumes a node always has something to
        // forward).
        let expected = history.len();
        let observed = history.propose_phase_count();

        let blame = schedule::unconfirmed_history_entries(unconfirmed)
            + schedule::missing_propose_phases(self.fanout, expected, observed);

        let verdict = if fanout_fails || fanin_fails {
            AuditVerdict::Expel
        } else if blame > 0.0 {
            AuditVerdict::Blamed
        } else {
            AuditVerdict::Pass
        };

        AuditReport {
            subject,
            fanout_entropy,
            fanin_entropy,
            applied_fanout_threshold: fanout_threshold.unwrap_or(0.0),
            applied_fanin_threshold: fanin_threshold,
            unconfirmed_pushes: unconfirmed,
            observed_propose_phases: observed,
            expected_propose_phases: expected,
            blame,
            verdict,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifting_sim::collections::DetHashMap;
    use lifting_sim::derive_rng;
    use rand::seq::SliceRandom;
    use rand::Rng;

    /// Oracle backed by in-memory tables. Deterministic maps, like every
    /// other map in the workspace: `values_mut` walks below must visit
    /// entries in a reproducible order for the test runs to be repeatable.
    #[derive(Default)]
    struct TableOracle {
        /// (witness, subject) → askers reported.
        askers: DetHashMap<(NodeId, NodeId), Vec<NodeId>>,
        /// (witness, subject) → whether proposals are confirmed.
        confirms: DetHashMap<(NodeId, NodeId), bool>,
        default_confirm: bool,
    }

    impl AuditOracle for TableOracle {
        fn confirm_proposal(
            &mut self,
            witness: NodeId,
            subject: NodeId,
            _chunks: &[ChunkId],
        ) -> bool {
            *self
                .confirms
                .get(&(witness, subject))
                .unwrap_or(&self.default_confirm)
        }

        fn confirm_askers(&mut self, witness: NodeId, subject: NodeId) -> Vec<NodeId> {
            self.askers
                .get(&(witness, subject))
                .cloned()
                .unwrap_or_default()
        }
    }

    fn config() -> LiftingConfig {
        LiftingConfig::planetlab() // nh = 50, f = 7 ⇒ 350 nominal entries
    }

    /// An auditor whose entropy threshold is calibrated for the test systems
    /// below: 350-entry histories drawn from a 1,000-node population.
    fn auditor() -> Auditor {
        let gamma = lifting_analysis::entropy::calibrate_gamma(350, 1_000, 100, 0.15, 99);
        Auditor::with_threshold(config(), 7, gamma)
    }

    /// Builds a history of `periods` propose phases with uniformly random
    /// partners over a population of `n` nodes, and fills the oracle so that
    /// (a) every push is confirmed and (b) each witness reports uniformly
    /// random askers (an honest fanin).
    fn honest_history(
        subject: u32,
        n: u32,
        periods: u64,
        fanout: usize,
        oracle: &mut TableOracle,
        seed: u64,
    ) -> NodeHistory {
        let mut rng = derive_rng(seed, 0);
        let mut h = NodeHistory::new(NodeId::new(subject), 50);
        let population: Vec<NodeId> = (0..n).filter(|i| *i != subject).map(NodeId::new).collect();
        for p in 0..periods {
            let mut partners = population.clone();
            partners.shuffle(&mut rng);
            partners.truncate(fanout);
            h.record_proposal_sent(p, &partners, &[ChunkId::primary(p)]);
            for w in partners {
                // The witness reports a uniformly random asker per confirm.
                let asker = population[rng.gen_range(0..population.len())];
                oracle
                    .askers
                    .entry((w, NodeId::new(subject)))
                    .or_default()
                    .push(asker);
            }
        }
        oracle.default_confirm = true;
        h
    }

    #[test]
    fn honest_history_passes_the_audit() {
        let mut oracle = TableOracle::default();
        let history = honest_history(0, 1_000, 50, 7, &mut oracle, 1);
        let auditor = auditor();
        let report = auditor.audit(&history, &mut oracle);
        assert_eq!(report.verdict, AuditVerdict::Pass);
        assert_eq!(report.blame, 0.0);
        assert!(report.fanout_entropy > report.applied_fanout_threshold);
        assert!(report.fanin_entropy.unwrap() > report.applied_fanin_threshold.unwrap());
        assert_eq!(report.unconfirmed_pushes, 0);
    }

    #[test]
    fn biased_partner_selection_is_expelled() {
        // The freerider proposes only to its 10-node coalition, over and over.
        let mut oracle = TableOracle {
            default_confirm: true,
            ..Default::default()
        };
        let coalition: Vec<NodeId> = (1..=10).map(NodeId::new).collect();
        let mut h = NodeHistory::new(NodeId::new(0), 50);
        let mut rng = derive_rng(2, 0);
        for p in 0..50u64 {
            let mut partners = coalition.clone();
            partners.shuffle(&mut rng);
            partners.truncate(7);
            // Witnesses (colluders) dutifully report honest-looking askers so
            // only the fanout entropy can catch the bias.
            for w in &partners {
                oracle
                    .askers
                    .entry((*w, NodeId::new(0)))
                    .or_default()
                    .push(NodeId::new(rng.gen_range(100..1000)));
            }
            h.record_proposal_sent(p, &partners, &[ChunkId::primary(p)]);
        }
        let auditor = auditor();
        let report = auditor.audit(&h, &mut oracle);
        assert_eq!(report.verdict, AuditVerdict::Expel);
        assert!(report.fanout_entropy < report.applied_fanout_threshold);
    }

    #[test]
    fn man_in_the_middle_is_caught_by_the_fanin_check() {
        // The freerider's own fanout looks uniform, but the witnesses report
        // that only the two accomplices ever asked for confirmations.
        let mut oracle = TableOracle::default();
        let mut history = honest_history(0, 1_000, 50, 7, &mut oracle, 3);
        // Overwrite the asker tables: every witness only ever saw colluders.
        for askers in oracle.askers.values_mut() {
            let k = askers.len();
            *askers = (0..k)
                .map(|i| NodeId::new(2_000 + (i % 2) as u32))
                .collect();
        }
        let auditor = auditor();
        let report = auditor.audit(&history, &mut oracle);
        assert_eq!(report.verdict, AuditVerdict::Expel);
        assert!(report.fanin_entropy.unwrap() < report.applied_fanin_threshold.unwrap());
        // Sanity: the fanout side alone would have passed.
        assert!(report.fanout_entropy >= report.applied_fanout_threshold);
        // Keep the borrow checker honest about the unused variable warning.
        history.record_serve_received(51, NodeId::new(1), ChunkId::primary(1));
    }

    #[test]
    fn unconfirmed_pushes_are_blamed_one_each() {
        let mut oracle = TableOracle::default();
        let history = honest_history(0, 1_000, 50, 7, &mut oracle, 4);
        // Two witnesses deny ever having received proposals from the subject.
        let denied: Vec<NodeId> = history.fanout_multiset().into_iter().take(2).collect();
        for w in &denied {
            oracle.confirms.insert((*w, NodeId::new(0)), false);
        }
        let auditor = auditor();
        let report = auditor.audit(&history, &mut oracle);
        assert_eq!(report.verdict, AuditVerdict::Blamed);
        assert!(report.unconfirmed_pushes >= 2);
        assert!(report.blame >= 2.0);
    }

    #[test]
    fn period_stretching_is_blamed() {
        let mut oracle = TableOracle {
            default_confirm: true,
            ..Default::default()
        };
        let mut h = NodeHistory::new(NodeId::new(0), 50);
        let mut rng = derive_rng(5, 0);
        // 50 periods of activity but proposals in only 25 of them.
        for p in 0..50u64 {
            h.record_serve_received(p, NodeId::new(rng.gen_range(1..1000)), ChunkId::primary(p));
            if p % 2 == 0 {
                let partners: Vec<NodeId> = (0..7)
                    .map(|_| NodeId::new(rng.gen_range(1..1000)))
                    .collect();
                for w in &partners {
                    oracle
                        .askers
                        .entry((*w, NodeId::new(0)))
                        .or_default()
                        .push(NodeId::new(rng.gen_range(1..1000)));
                }
                h.record_proposal_sent(p, &partners, &[ChunkId::primary(p)]);
            }
        }
        let auditor = auditor();
        let report = auditor.audit(&h, &mut oracle);
        assert_eq!(report.observed_propose_phases, 25);
        assert_eq!(report.expected_propose_phases, 50);
        assert!(report.blame >= 7.0 * 25.0);
        assert_ne!(report.verdict, AuditVerdict::Pass);
    }

    #[test]
    fn short_histories_are_not_expelled() {
        // A node that just joined has only a few entries: the entropy check
        // must not fire.
        let mut oracle = TableOracle {
            default_confirm: true,
            ..Default::default()
        };
        let mut h = NodeHistory::new(NodeId::new(0), 50);
        h.record_proposal_sent(0, &[NodeId::new(1), NodeId::new(2)], &[ChunkId::primary(1)]);
        let auditor = auditor();
        let report = auditor.audit(&h, &mut oracle);
        assert_eq!(report.verdict, AuditVerdict::Pass);
        assert_eq!(report.applied_fanout_threshold, 0.0);
    }
}
