//! LiFTinG verification messages and their wire-size model.
//!
//! Direct cross-checking exchanges (ack / confirm / confirm response) are
//! small and travel over UDP (Section 5.2); blame messages go to the
//! reputation managers over UDP as well; history transfers for a-posteriori
//! audits use TCP (Section 5.3). Sizes feed the overhead accounting of
//! Table 5.

use std::sync::Arc;

use lifting_gossip::ChunkId;
use lifting_sim::{NodeId, StreamId};
use serde::{Deserialize, Serialize};

use crate::blame::Blame;
use crate::history::NodeHistory;

/// Fixed application-level header of every verification message.
pub const MESSAGE_HEADER_BYTES: u64 = 16;
/// Wire size of one chunk identifier.
pub const CHUNK_ID_BYTES: u64 = 8;
/// Wire size of one node identifier (IPv4 + port).
pub const NODE_ID_BYTES: u64 = 6;
/// Wire size of one blame value.
pub const BLAME_VALUE_BYTES: u64 = 8;

/// Acknowledgment sent by a receiver to the node that served it chunks,
/// naming the partners to which the chunks were further proposed
/// (`ack[i](p2, p3)` in Figure 7).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AckPayload {
    /// The chunks (served by the destination of this ack) that were proposed.
    /// Shared, not owned: the verifier forwards the same list into each of
    /// the `f` confirm requests it derives from this ack.
    pub chunks: Arc<[ChunkId]>,
    /// The partners the proposal was sent to (shared across the acks of one
    /// propose round and with the verifier's pending-confirm witness set).
    pub partners: Arc<[NodeId]>,
    /// The gossip period of the propose phase that forwarded the chunks.
    pub period: u64,
}

/// Confirm request sent by a verifier to a witness: "did `subject` propose
/// these chunks to you?".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfirmPayload {
    /// The node whose forwarding is being verified.
    pub subject: NodeId,
    /// The chunks the subject acknowledged having proposed (shared with the
    /// ack they came from and with the other witnesses' confirms).
    pub chunks: Arc<[ChunkId]>,
    /// Token correlating the responses with the verifier's pending check.
    pub token: u64,
}

/// A witness's answer to a confirm request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfirmResponsePayload {
    /// The node whose forwarding was being verified.
    pub subject: NodeId,
    /// The stream whose forwarding was being verified. Carried explicitly —
    /// this is the one verification payload with no chunk ids to derive it
    /// from, and the receiving stack needs it to route the response into the
    /// right plane's pending-confirm table (tokens are plane-local). On the
    /// wire it rides in the fixed message header, so the size model is
    /// unchanged.
    pub stream: StreamId,
    /// Token copied from the confirm request.
    pub token: u64,
    /// True if the witness indeed received a proposal from the subject
    /// containing the chunks.
    pub confirmed: bool,
}

/// Any LiFTinG verification message.
///
/// The two payload-heavy variants are boxed so that the enum — and every
/// simulation event carrying it through the scheduler's binary heap — stays
/// small: the box is allocated when the payload (which already owns `Vec`s)
/// is built, not on the per-event hot path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum VerificationMessage {
    /// Acknowledgment from a receiver to its server (UDP).
    Ack(Box<AckPayload>),
    /// Confirm request from a verifier to a witness (UDP). One payload is
    /// shared (refcounted) by all the witnesses of a cross-check round.
    Confirm(Arc<ConfirmPayload>),
    /// Confirm response from a witness to the verifier (UDP).
    ConfirmResponse(ConfirmResponsePayload),
    /// Blame sent to one of the target's reputation managers (UDP).
    Blame(Blame),
    /// Request for a node's history (a-posteriori audit, TCP).
    HistoryRequest,
    /// A node's history uploaded to the auditor (TCP).
    HistoryResponse(Box<NodeHistory>),
}

impl VerificationMessage {
    /// True if this message is addressed to the reputation plane (a blame
    /// for one of the target's managers) rather than the verification plane.
    pub fn is_blame(&self) -> bool {
        matches!(self, VerificationMessage::Blame(_))
    }

    /// Application-level payload size in bytes.
    pub fn wire_size(&self) -> u64 {
        match self {
            VerificationMessage::Ack(a) => {
                MESSAGE_HEADER_BYTES
                    + CHUNK_ID_BYTES * a.chunks.len() as u64
                    + NODE_ID_BYTES * a.partners.len() as u64
            }
            VerificationMessage::Confirm(c) => {
                MESSAGE_HEADER_BYTES + NODE_ID_BYTES + CHUNK_ID_BYTES * c.chunks.len() as u64
            }
            VerificationMessage::ConfirmResponse(_) => MESSAGE_HEADER_BYTES + NODE_ID_BYTES + 1,
            VerificationMessage::Blame(_) => {
                MESSAGE_HEADER_BYTES + NODE_ID_BYTES + BLAME_VALUE_BYTES
            }
            VerificationMessage::HistoryRequest => MESSAGE_HEADER_BYTES,
            VerificationMessage::HistoryResponse(h) => Self::history_response_wire_size(h),
        }
    }

    /// Wire size of a [`HistoryResponse`](Self::HistoryResponse) carrying
    /// `history`, computable from a borrow — audit accounting uses this so it
    /// never has to clone a whole history just to size the upload.
    pub fn history_response_wire_size(history: &NodeHistory) -> u64 {
        MESSAGE_HEADER_BYTES + history.wire_size()
    }

    /// The stream this message verifies, when it is addressed to a specific
    /// verification plane: derived from the chunk ids for acks and confirms,
    /// carried explicitly by confirm responses. `None` for blames (addressed
    /// to the stream-agnostic reputation plane) and history transfers (the
    /// audit coordinator already knows which plane it is auditing).
    pub fn stream(&self) -> Option<StreamId> {
        match self {
            VerificationMessage::Ack(a) => a.chunks.first().map(|c| c.stream()),
            VerificationMessage::Confirm(c) => c.chunks.first().map(|c| c.stream()),
            VerificationMessage::ConfirmResponse(r) => Some(r.stream),
            VerificationMessage::Blame(_)
            | VerificationMessage::HistoryRequest
            | VerificationMessage::HistoryResponse(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blame::BlameReason;

    #[test]
    fn ack_size_scales_with_chunks_and_partners() {
        let ack = VerificationMessage::Ack(Box::new(AckPayload {
            chunks: vec![ChunkId::primary(1), ChunkId::primary(2)].into(),
            partners: vec![NodeId::new(3); 7].into(),
            period: 1,
        }));
        assert_eq!(ack.wire_size(), 16 + 2 * 8 + 7 * 6);
    }

    #[test]
    fn confirm_and_response_are_small() {
        let confirm = VerificationMessage::Confirm(Arc::new(ConfirmPayload {
            subject: NodeId::new(1),
            chunks: vec![ChunkId::primary(1)].into(),
            token: 9,
        }));
        assert_eq!(confirm.wire_size(), 16 + 6 + 8);
        let resp = VerificationMessage::ConfirmResponse(ConfirmResponsePayload {
            subject: NodeId::new(1),
            stream: StreamId::PRIMARY,
            token: 9,
            confirmed: true,
        });
        assert_eq!(resp.wire_size(), 16 + 6 + 1);
        assert_eq!(resp.stream(), Some(StreamId::PRIMARY));
        assert_eq!(confirm.stream(), Some(StreamId::PRIMARY));
    }

    #[test]
    fn blame_message_has_fixed_size() {
        let blame =
            VerificationMessage::Blame(Blame::new(NodeId::new(8), 3.5, BlameReason::PartialServe));
        assert_eq!(blame.wire_size(), 16 + 6 + 8);
        assert_eq!(VerificationMessage::HistoryRequest.wire_size(), 16);
    }
}
