//! Registered network components: transport policies, loss models and
//! per-node capability *classes*.
//!
//! Scenario construction used to hard-code the network axis: a
//! [`TransportPolicy`] picked by constructor, a [`LossModel`] assembled
//! inline, and one "poor fraction" capability loop in the runtime's world
//! builder. This module turns each axis into named
//! [`lifting_sim::Component`]s behind [`lifting_sim::ComponentRegistry`]s, so
//! scenarios compose `transport:paper + loss:bernoulli + capability:tiered`
//! declaratively and new classes slot in without touching the builder.
//!
//! The capability axis is *per node*, not per category: a
//! [`CapabilityClassAssigner`] maps every node to a [`NodeCapability`]
//! (uplink rate, access-link loss, latency class) from one shared RNG
//! stream. The `poor-fraction` assigner replicates, draw for draw, the
//! historical builder loop — the bit-compatibility anchor for every
//! pre-registry scenario.

use std::sync::OnceLock;

use lifting_sim::{
    Component, ComponentError, ComponentRegistry, ParamKind, ParamMap, ParamSpec, ParamValue,
    ParamsSchema, SeedSplitter,
};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::bandwidth::NodeCapability;
use crate::loss::LossModel;
use crate::transport::TransportPolicy;

/// Assigns every node its [`NodeCapability`] — the per-node heterogeneity
/// provider.
///
/// The builder walks nodes in ascending order and calls `assign` once per
/// node with the *same* RNG; implementations must keep their draw order a
/// pure function of `(index, is_freerider)` so the assignment is
/// deterministic and insertion-order independent.
pub trait CapabilityClassAssigner: Send + Sync {
    /// The capability of node `index`. `default` is the scenario's baseline
    /// attachment (derived from its `default_upload_bps`); node 0 — the
    /// broadcast source — must always get `default`.
    fn assign(
        &self,
        index: usize,
        is_freerider: bool,
        default: NodeCapability,
        rng: &mut SmallRng,
    ) -> NodeCapability;
}

fn float_param(params: &ParamMap, key: &str) -> f64 {
    match params.get(key) {
        Some(ParamValue::Float(x)) => *x,
        Some(ParamValue::Int(x)) => *x as f64,
        _ => unreachable!("schema-validated float param `{key}`"),
    }
}

fn int_param(params: &ParamMap, key: &str) -> i64 {
    match params.get(key) {
        Some(ParamValue::Int(x)) => *x,
        _ => unreachable!("schema-validated int param `{key}`"),
    }
}

fn fraction_param(component: &str, params: &ParamMap, key: &str) -> Result<f64, ComponentError> {
    let x = float_param(params, key);
    if !(0.0..=1.0).contains(&x) {
        return Err(ComponentError::InvalidParam {
            component: component.to_string(),
            key: key.to_string(),
            reason: format!("{x} is not in [0, 1]"),
        });
    }
    Ok(x)
}

// ---------------------------------------------------------------------------
// Transport components.
// ---------------------------------------------------------------------------

struct TransportComponent {
    name: &'static str,
    description: &'static str,
    policy: fn() -> TransportPolicy,
}

impl Component<TransportPolicy> for TransportComponent {
    fn name(&self) -> &'static str {
        self.name
    }
    fn description(&self) -> &'static str {
        self.description
    }
    fn build(
        &self,
        _params: &ParamMap,
        _seeds: &mut SeedSplitter,
    ) -> Result<TransportPolicy, ComponentError> {
        Ok((self.policy)())
    }
}

/// The registry of transport-policy components: `paper`, `all-udp`,
/// `all-tcp`.
pub fn transport_components() -> &'static ComponentRegistry<TransportPolicy> {
    static REGISTRY: OnceLock<ComponentRegistry<TransportPolicy>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut registry = ComponentRegistry::new("transport");
        for (name, description, policy) in [
            (
                "paper",
                "Section 5.3 mapping: audits over TCP, everything else over UDP",
                TransportPolicy::paper as fn() -> TransportPolicy,
            ),
            (
                "all-udp",
                "Everything over UDP, audits included (cheaper, lossy)",
                TransportPolicy::all_udp,
            ),
            (
                "all-tcp",
                "Everything over TCP (loss-free control plane, for ablations)",
                TransportPolicy::all_tcp,
            ),
        ] {
            registry
                .register(Box::new(TransportComponent {
                    name,
                    description,
                    policy,
                }))
                .expect("built-in transport components have unique names");
        }
        registry
    })
}

// ---------------------------------------------------------------------------
// Loss components.
// ---------------------------------------------------------------------------

struct NoLoss;

impl Component<LossModel> for NoLoss {
    fn name(&self) -> &'static str {
        "none"
    }
    fn description(&self) -> &'static str {
        "No message loss at all"
    }
    fn build(&self, _: &ParamMap, _: &mut SeedSplitter) -> Result<LossModel, ComponentError> {
        Ok(LossModel::None)
    }
}

struct BernoulliLoss;

impl Component<LossModel> for BernoulliLoss {
    fn name(&self) -> &'static str {
        "bernoulli"
    }
    fn description(&self) -> &'static str {
        "Independent per-message loss with probability `pl` (the paper's model)"
    }
    fn params_schema(&self) -> ParamsSchema {
        ParamsSchema::of(vec![ParamSpec::optional(
            "pl",
            ParamKind::Float,
            ParamValue::Float(0.04),
            "loss probability in [0, 1]",
        )])
    }
    fn build(&self, params: &ParamMap, _: &mut SeedSplitter) -> Result<LossModel, ComponentError> {
        let pl = fraction_param("bernoulli", params, "pl")?;
        Ok(LossModel::Bernoulli { pl })
    }
}

struct GilbertElliottLoss;

impl Component<LossModel> for GilbertElliottLoss {
    fn name(&self) -> &'static str {
        "gilbert-elliott"
    }
    fn description(&self) -> &'static str {
        "Bursty two-state Markov loss (good/bad states with per-state loss rates)"
    }
    fn params_schema(&self) -> ParamsSchema {
        ParamsSchema::of(vec![
            ParamSpec::optional(
                "p_gb",
                ParamKind::Float,
                ParamValue::Float(0.05),
                "good-to-bad transition probability",
            ),
            ParamSpec::optional(
                "p_bg",
                ParamKind::Float,
                ParamValue::Float(0.45),
                "bad-to-good transition probability",
            ),
            ParamSpec::optional(
                "loss_good",
                ParamKind::Float,
                ParamValue::Float(0.02),
                "loss probability in the good state",
            ),
            ParamSpec::optional(
                "loss_bad",
                ParamKind::Float,
                ParamValue::Float(0.5),
                "loss probability in the bad state",
            ),
        ])
    }
    fn build(&self, params: &ParamMap, _: &mut SeedSplitter) -> Result<LossModel, ComponentError> {
        let p_gb = fraction_param("gilbert-elliott", params, "p_gb")?;
        let p_bg = fraction_param("gilbert-elliott", params, "p_bg")?;
        let loss_good = fraction_param("gilbert-elliott", params, "loss_good")?;
        let loss_bad = fraction_param("gilbert-elliott", params, "loss_bad")?;
        if p_gb + p_bg <= 0.0 {
            return Err(ComponentError::InvalidParam {
                component: "gilbert-elliott".to_string(),
                key: "p_bg".to_string(),
                reason: "both transition probabilities are zero; the chain never mixes".to_string(),
            });
        }
        Ok(LossModel::GilbertElliott {
            p_gb,
            p_bg,
            loss_good,
            loss_bad,
        })
    }
}

/// The registry of loss-model components: `none`, `bernoulli`,
/// `gilbert-elliott`.
pub fn loss_components() -> &'static ComponentRegistry<LossModel> {
    static REGISTRY: OnceLock<ComponentRegistry<LossModel>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut registry = ComponentRegistry::new("loss");
        registry
            .register(Box::new(NoLoss))
            .expect("unique loss component");
        registry
            .register(Box::new(BernoulliLoss))
            .expect("unique loss component");
        registry
            .register(Box::new(GilbertElliottLoss))
            .expect("unique loss component");
        registry
    })
}

// ---------------------------------------------------------------------------
// Capability-class components.
// ---------------------------------------------------------------------------

/// Everyone gets the scenario's default attachment (no heterogeneity).
struct UniformAssigner;

impl CapabilityClassAssigner for UniformAssigner {
    fn assign(
        &self,
        _index: usize,
        _is_freerider: bool,
        default: NodeCapability,
        _rng: &mut SmallRng,
    ) -> NodeCapability {
        default
    }
}

struct UniformComponent;

impl Component<Box<dyn CapabilityClassAssigner>> for UniformComponent {
    fn name(&self) -> &'static str {
        "uniform"
    }
    fn description(&self) -> &'static str {
        "Every node gets the scenario's default attachment"
    }
    fn build(
        &self,
        _: &ParamMap,
        _: &mut SeedSplitter,
    ) -> Result<Box<dyn CapabilityClassAssigner>, ComponentError> {
        Ok(Box::new(UniformAssigner))
    }
}

/// The historical heterogeneity model: a fraction of the *honest* population
/// is poorly connected. Draw-for-draw identical to the pre-registry builder
/// loop: the source never draws, freeriders never draw (the short-circuit is
/// part of the RNG contract), and a zero fraction consumes nothing.
struct PoorFractionAssigner {
    fraction: f64,
    poor_upload_bps: u64,
    poor_extra_loss: f64,
}

impl CapabilityClassAssigner for PoorFractionAssigner {
    fn assign(
        &self,
        index: usize,
        is_freerider: bool,
        default: NodeCapability,
        rng: &mut SmallRng,
    ) -> NodeCapability {
        if index == 0 {
            // The source is always well provisioned.
            default
        } else if !is_freerider && self.fraction > 0.0 && rng.gen_bool(self.fraction) {
            NodeCapability::poor(self.poor_upload_bps, self.poor_extra_loss)
        } else {
            default
        }
    }
}

struct PoorFractionComponent;

impl Component<Box<dyn CapabilityClassAssigner>> for PoorFractionComponent {
    fn name(&self) -> &'static str {
        "poor-fraction"
    }
    fn description(&self) -> &'static str {
        "A fraction of the honest nodes is poorly connected (the paper's false-positive source)"
    }
    fn params_schema(&self) -> ParamsSchema {
        ParamsSchema::of(vec![
            ParamSpec::optional(
                "fraction",
                ParamKind::Float,
                ParamValue::Float(0.1),
                "fraction of honest nodes with a poor attachment",
            ),
            ParamSpec::optional(
                "poor_upload_bps",
                ParamKind::Int,
                ParamValue::Int(800_000),
                "uplink of a poor node, bits per second",
            ),
            ParamSpec::optional(
                "poor_extra_loss",
                ParamKind::Float,
                ParamValue::Float(0.03),
                "extra access-link loss of a poor node",
            ),
        ])
    }
    fn build(
        &self,
        params: &ParamMap,
        _: &mut SeedSplitter,
    ) -> Result<Box<dyn CapabilityClassAssigner>, ComponentError> {
        Ok(Box::new(PoorFractionAssigner {
            fraction: fraction_param("poor-fraction", params, "fraction")?,
            poor_upload_bps: int_param(params, "poor_upload_bps").max(1) as u64,
            poor_extra_loss: fraction_param("poor-fraction", params, "poor_extra_loss")?,
        }))
    }
}

/// Heterogeneous access-technology tiers: every non-source node draws one of
/// four classes — fiber, cable, DSL, mobile — with per-class uplink rate,
/// access loss and latency scale. The per-node draw happens unconditionally
/// (freeriders included) so the class stream is a pure function of the node
/// order.
struct TieredAssigner {
    fiber: f64,
    cable: f64,
    dsl: f64,
}

impl TieredAssigner {
    const FIBER: NodeCapability = NodeCapability {
        upload_bps: Some(50_000_000),
        extra_loss: 0.0,
        latency_scale: 0.8,
    };
    const CABLE: NodeCapability = NodeCapability {
        upload_bps: Some(10_000_000),
        extra_loss: 0.0,
        latency_scale: 1.0,
    };
    const DSL: NodeCapability = NodeCapability {
        upload_bps: Some(2_000_000),
        extra_loss: 0.01,
        latency_scale: 1.3,
    };
    const MOBILE: NodeCapability = NodeCapability {
        upload_bps: Some(1_000_000),
        extra_loss: 0.03,
        latency_scale: 2.0,
    };
}

impl CapabilityClassAssigner for TieredAssigner {
    fn assign(
        &self,
        index: usize,
        _is_freerider: bool,
        default: NodeCapability,
        rng: &mut SmallRng,
    ) -> NodeCapability {
        if index == 0 {
            return default; // the source is always well provisioned
        }
        let draw: f64 = rng.gen_range(0.0..1.0);
        if draw < self.fiber {
            TieredAssigner::FIBER
        } else if draw < self.fiber + self.cable {
            TieredAssigner::CABLE
        } else if draw < self.fiber + self.cable + self.dsl {
            TieredAssigner::DSL
        } else {
            TieredAssigner::MOBILE
        }
    }
}

struct TieredComponent;

impl Component<Box<dyn CapabilityClassAssigner>> for TieredComponent {
    fn name(&self) -> &'static str {
        "tiered"
    }
    fn description(&self) -> &'static str {
        "Per-node access tiers: fiber/cable/DSL/mobile classes with uplink, loss and latency"
    }
    fn params_schema(&self) -> ParamsSchema {
        ParamsSchema::of(vec![
            ParamSpec::optional(
                "fiber",
                ParamKind::Float,
                ParamValue::Float(0.15),
                "fraction of fiber nodes (50 Mbps up, 0.8x latency)",
            ),
            ParamSpec::optional(
                "cable",
                ParamKind::Float,
                ParamValue::Float(0.45),
                "fraction of cable nodes (10 Mbps up)",
            ),
            ParamSpec::optional(
                "dsl",
                ParamKind::Float,
                ParamValue::Float(0.3),
                "fraction of DSL nodes (2 Mbps up, 1% access loss, 1.3x latency)",
            ),
        ])
    }
    fn build(
        &self,
        params: &ParamMap,
        _: &mut SeedSplitter,
    ) -> Result<Box<dyn CapabilityClassAssigner>, ComponentError> {
        let fiber = fraction_param("tiered", params, "fiber")?;
        let cable = fraction_param("tiered", params, "cable")?;
        let dsl = fraction_param("tiered", params, "dsl")?;
        if fiber + cable + dsl > 1.0 {
            return Err(ComponentError::InvalidParam {
                component: "tiered".to_string(),
                key: "dsl".to_string(),
                reason: format!(
                    "class fractions sum to {} > 1 (the remainder is the mobile class)",
                    fiber + cable + dsl
                ),
            });
        }
        Ok(Box::new(TieredAssigner { fiber, cable, dsl }))
    }
}

/// The registry of capability-class components: `uniform`, `poor-fraction`,
/// `tiered`.
pub fn capability_components() -> &'static ComponentRegistry<Box<dyn CapabilityClassAssigner>> {
    static REGISTRY: OnceLock<ComponentRegistry<Box<dyn CapabilityClassAssigner>>> =
        OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut registry = ComponentRegistry::new("capability");
        registry
            .register(Box::new(UniformComponent))
            .expect("unique capability component");
        registry
            .register(Box::new(PoorFractionComponent))
            .expect("unique capability component");
        registry
            .register(Box::new(TieredComponent))
            .expect("unique capability component");
        registry
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifting_sim::derive_rng;

    #[test]
    fn transport_components_build_their_policies() {
        let registry = transport_components();
        let mut seeds = SeedSplitter::new(1);
        assert_eq!(
            registry
                .build("paper", &ParamMap::new(), &mut seeds)
                .unwrap(),
            TransportPolicy::paper()
        );
        assert_eq!(
            registry
                .build("all-tcp", &ParamMap::new(), &mut seeds)
                .unwrap(),
            TransportPolicy::all_tcp()
        );
        assert!(matches!(
            registry.build("carrier-pigeon", &ParamMap::new(), &mut seeds),
            Err(ComponentError::UnknownComponent { .. })
        ));
    }

    #[test]
    fn loss_components_validate_their_fractions() {
        let registry = loss_components();
        let mut seeds = SeedSplitter::new(1);
        let params = ParamMap::new().with("pl", ParamValue::Float(0.07));
        assert_eq!(
            registry.build("bernoulli", &params, &mut seeds).unwrap(),
            LossModel::Bernoulli { pl: 0.07 }
        );
        let bad = ParamMap::new().with("pl", ParamValue::Float(1.5));
        let err = registry.build("bernoulli", &bad, &mut seeds).unwrap_err();
        assert!(matches!(err, ComponentError::InvalidParam { ref key, .. } if key == "pl"));
    }

    #[test]
    fn poor_fraction_assigner_replays_the_legacy_draw_order() {
        // The assigner must consume the RNG exactly like the historical
        // builder loop: one draw per honest non-source node when the
        // fraction is positive, none otherwise.
        let registry = capability_components();
        let mut seeds = SeedSplitter::new(9);
        let params = ParamMap::new()
            .with("fraction", ParamValue::Float(0.5))
            .with("poor_upload_bps", ParamValue::Int(700_000))
            .with("poor_extra_loss", ParamValue::Float(0.02));
        let assigner = registry
            .build("poor-fraction", &params, &mut seeds)
            .unwrap();
        let default = NodeCapability::broadband(5_000_000);

        let mut expected_rng = derive_rng(42, 2);
        let mut actual_rng = derive_rng(42, 2);
        for i in 0..50 {
            let is_freerider = i >= 40;
            let expected = if i == 0 {
                default
            } else if !is_freerider && expected_rng.gen_bool(0.5) {
                NodeCapability::poor(700_000, 0.02)
            } else {
                default
            };
            let actual = assigner.assign(i, is_freerider, default, &mut actual_rng);
            assert_eq!(actual, expected, "node {i}");
        }
    }

    #[test]
    fn tiered_assigner_is_deterministic_and_covers_all_classes() {
        let registry = capability_components();
        let mut seeds = SeedSplitter::new(9);
        let assigner = registry
            .build("tiered", &ParamMap::new(), &mut seeds)
            .unwrap();
        let default = NodeCapability::unconstrained();
        let assign_all = || {
            let mut rng = derive_rng(7, 2);
            (0..200)
                .map(|i| assigner.assign(i, false, default, &mut rng))
                .collect::<Vec<_>>()
        };
        let a = assign_all();
        assert_eq!(a, assign_all());
        assert_eq!(a[0], default, "the source keeps the default");
        for class in [
            TieredAssigner::FIBER,
            TieredAssigner::CABLE,
            TieredAssigner::DSL,
            TieredAssigner::MOBILE,
        ] {
            assert!(a.contains(&class), "missing {class:?}");
        }
    }

    #[test]
    fn tiered_fractions_over_one_are_rejected() {
        let registry = capability_components();
        let mut seeds = SeedSplitter::new(1);
        let params = ParamMap::new()
            .with("fiber", ParamValue::Float(0.6))
            .with("cable", ParamValue::Float(0.6));
        let Err(err) = registry.build("tiered", &params, &mut seeds) else {
            panic!("fractions summing over 1 must be rejected");
        };
        assert!(matches!(err, ComponentError::InvalidParam { .. }));
    }
}
