//! One-way latency models.

use lifting_sim::{NodeId, SimDuration};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One-way propagation-delay model between two nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LatencyModel {
    /// Every message takes exactly this long.
    Constant(SimDuration),
    /// Latency drawn uniformly in `[min, max]` per message.
    Uniform {
        /// Lower bound.
        min: SimDuration,
        /// Upper bound (inclusive).
        max: SimDuration,
    },
    /// PlanetLab-like model: each node has a deterministic "region offset"
    /// derived from its identifier; the pairwise base latency is the sum of
    /// the two offsets plus a per-message jitter. This produces the broad,
    /// heterogeneous RTT spread typical of wide-area testbeds while remaining
    /// fully reproducible.
    PlanetLab {
        /// Minimum one-way base latency.
        base: SimDuration,
        /// Maximum extra per-node offset (each endpoint contributes up to this).
        spread: SimDuration,
        /// Maximum per-message jitter.
        jitter: SimDuration,
    },
}

impl LatencyModel {
    /// A reasonable wide-area default: 30 ms base, up to 60 ms per-endpoint
    /// spread, 10 ms jitter — one-way delays between 30 and 160 ms.
    pub fn planetlab_default() -> Self {
        LatencyModel::PlanetLab {
            base: SimDuration::from_millis(30),
            spread: SimDuration::from_millis(60),
            jitter: SimDuration::from_millis(10),
        }
    }

    /// Deterministic per-node latency offset used by the PlanetLab model.
    fn node_offset(node: NodeId, spread: SimDuration) -> SimDuration {
        if spread.is_zero() {
            return SimDuration::ZERO;
        }
        // Spread node offsets deterministically over [0, spread) using a
        // multiplicative hash of the identifier.
        let h = (u64::from(u32::from(node)).wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 32;
        let frac = h as f64 / u32::MAX as f64;
        spread.mul_f64(frac / 2.0)
    }

    /// Samples the one-way latency for a message from `from` to `to`.
    pub fn sample<R: Rng + ?Sized>(&self, from: NodeId, to: NodeId, rng: &mut R) -> SimDuration {
        match self {
            LatencyModel::Constant(d) => *d,
            LatencyModel::Uniform { min, max } => {
                let lo = min.as_micros();
                let hi = max.as_micros().max(lo);
                SimDuration::from_micros(rng.gen_range(lo..=hi))
            }
            LatencyModel::PlanetLab {
                base,
                spread,
                jitter,
            } => {
                let mut d =
                    *base + Self::node_offset(from, *spread) + Self::node_offset(to, *spread);
                if !jitter.is_zero() {
                    d += SimDuration::from_micros(rng.gen_range(0..=jitter.as_micros()));
                }
                d
            }
        }
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::Constant(SimDuration::from_millis(50))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifting_sim::derive_rng;

    #[test]
    fn constant_is_constant() {
        let m = LatencyModel::Constant(SimDuration::from_millis(80));
        let mut rng = derive_rng(0, 0);
        for _ in 0..10 {
            assert_eq!(
                m.sample(NodeId::new(1), NodeId::new(2), &mut rng),
                SimDuration::from_millis(80)
            );
        }
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let m = LatencyModel::Uniform {
            min: SimDuration::from_millis(10),
            max: SimDuration::from_millis(100),
        };
        let mut rng = derive_rng(1, 0);
        for _ in 0..1000 {
            let d = m.sample(NodeId::new(3), NodeId::new(4), &mut rng);
            assert!(d >= SimDuration::from_millis(10) && d <= SimDuration::from_millis(100));
        }
    }

    #[test]
    fn planetlab_is_heterogeneous_but_bounded() {
        let m = LatencyModel::planetlab_default();
        let mut rng = derive_rng(2, 0);
        let mut seen = Vec::new();
        for i in 0..50u32 {
            for j in 0..5u32 {
                let d = m.sample(NodeId::new(i), NodeId::new(1000 + j), &mut rng);
                assert!(d >= SimDuration::from_millis(30));
                assert!(d <= SimDuration::from_millis(30 + 60 + 10));
                seen.push(d.as_micros());
            }
        }
        seen.sort_unstable();
        seen.dedup();
        assert!(seen.len() > 20, "latencies should vary across pairs");
    }

    #[test]
    fn planetlab_pair_base_is_stable() {
        // Without jitter the pairwise latency must be a pure function of the pair.
        let m = LatencyModel::PlanetLab {
            base: SimDuration::from_millis(30),
            spread: SimDuration::from_millis(60),
            jitter: SimDuration::ZERO,
        };
        let mut rng = derive_rng(3, 0);
        let a = m.sample(NodeId::new(7), NodeId::new(9), &mut rng);
        let b = m.sample(NodeId::new(7), NodeId::new(9), &mut rng);
        assert_eq!(a, b);
    }
}
