//! The simulated network: decides, for each send, whether and when the
//! message is delivered, and accounts the traffic.

use lifting_sim::{NodeId, SimTime};
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::bandwidth::{NodeCapability, UplinkState};
use crate::latency::LatencyModel;
use crate::loss::LossModel;
use crate::traffic::{TrafficCategory, TrafficStats};
use crate::transport::{Transport, TransportPolicy};

/// Static configuration of the simulated network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Loss model applied to UDP messages.
    pub loss: LossModel,
    /// One-way latency model.
    pub latency: LatencyModel,
    /// Per-message header bytes added to UDP payloads (IP + UDP headers).
    pub udp_header_bytes: u64,
    /// Per-message header bytes added to TCP payloads (IP + TCP headers;
    /// connection setup cost is amortized and ignored, as in the paper).
    pub tcp_header_bytes: u64,
    /// Default capability assigned to nodes that are not given one explicitly.
    pub default_capability: NodeCapability,
    /// Which transport each traffic category travels over (Section 5.3:
    /// audits over TCP, everything else over UDP).
    pub transports: TransportPolicy,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            loss: LossModel::None,
            latency: LatencyModel::default(),
            udp_header_bytes: 28,
            tcp_header_bytes: 40,
            default_capability: NodeCapability::unconstrained(),
            transports: TransportPolicy::paper(),
        }
    }
}

impl NetworkConfig {
    /// A PlanetLab-like configuration: 4 % loss, wide-area latency spread.
    pub fn planetlab(loss: f64) -> Self {
        NetworkConfig {
            loss: LossModel::bernoulli(loss),
            latency: LatencyModel::planetlab_default(),
            ..NetworkConfig::default()
        }
    }

    /// An ideal network for pure Monte-Carlo experiments: no loss, constant
    /// small latency, unconstrained uplinks.
    pub fn ideal() -> Self {
        NetworkConfig {
            loss: LossModel::None,
            latency: LatencyModel::Constant(lifting_sim::SimDuration::from_millis(10)),
            ..NetworkConfig::default()
        }
    }
}

/// Outcome of a send decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryOutcome {
    /// The message will arrive at the destination at the given instant.
    Deliver {
        /// Arrival time at the destination.
        at: SimTime,
    },
    /// The message is lost in transit and will never arrive.
    Lost,
}

impl DeliveryOutcome {
    /// True if the message is delivered.
    pub fn is_delivered(&self) -> bool {
        matches!(self, DeliveryOutcome::Deliver { .. })
    }
}

/// The simulated network.
///
/// The network does not own the event queue: callers ask it to adjudicate a
/// send (`send`) and then schedule the resulting delivery event themselves.
/// This keeps the network reusable from unit tests without an engine.
#[derive(Debug)]
pub struct Network {
    config: NetworkConfig,
    capabilities: Vec<NodeCapability>,
    uplinks: Vec<UplinkState>,
    expelled: Vec<bool>,
    stats: TrafficStats,
    rng: SmallRng,
}

impl Network {
    /// Creates a network for `n` nodes with the given configuration and seed.
    pub fn new(n: usize, config: NetworkConfig, rng: SmallRng) -> Self {
        Network {
            capabilities: vec![config.default_capability; n],
            uplinks: vec![UplinkState::new(); n],
            expelled: vec![false; n],
            config,
            stats: TrafficStats::new(),
            rng,
        }
    }

    /// Number of nodes attached to the network.
    pub fn len(&self) -> usize {
        self.capabilities.len()
    }

    /// True if the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.capabilities.is_empty()
    }

    /// The network configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Overrides the capability of one node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn set_capability(&mut self, node: NodeId, capability: NodeCapability) {
        self.capabilities[node.index()] = capability;
    }

    /// The capability of one node.
    pub fn capability(&self, node: NodeId) -> NodeCapability {
        self.capabilities[node.index()]
    }

    /// Marks a node as expelled: all traffic from and to it is dropped. This
    /// is how the blaming architecture's expulsion decision takes effect.
    pub fn set_expelled(&mut self, node: NodeId, expelled: bool) {
        self.expelled[node.index()] = expelled;
    }

    /// Cuts a node off the network (or reconnects it): all traffic from and
    /// to it is dropped while cut off. Same mechanism as an expulsion, but
    /// reversible — the churn engine uses it for departed nodes, which may
    /// later rejoin.
    pub fn set_cut_off(&mut self, node: NodeId, cut_off: bool) {
        self.expelled[node.index()] = cut_off;
    }

    /// True if the node is currently cut off (departed or expelled).
    pub fn is_cut_off(&self, node: NodeId) -> bool {
        self.expelled[node.index()]
    }

    /// True if the node has been expelled from the system.
    pub fn is_expelled(&self, node: NodeId) -> bool {
        self.expelled[node.index()]
    }

    /// Number of nodes currently expelled.
    pub fn expelled_count(&self) -> usize {
        self.expelled.iter().filter(|e| **e).count()
    }

    /// Accumulated traffic statistics.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Resets the traffic statistics (e.g. after a warm-up phase).
    pub fn reset_stats(&mut self) {
        self.stats = TrafficStats::new();
    }

    /// Adjudicates the transmission of a message of `payload_bytes` from
    /// `from` to `to`, returning when (and whether) it arrives.
    ///
    /// The transport is resolved from the configured [`TransportPolicy`]:
    /// call sites only name the [`TrafficCategory`], so audits-over-TCP vs
    /// gossip-over-UDP is configuration rather than a per-call decision.
    /// The message is accounted to `category` whatever the outcome. Expelled
    /// endpoints, UDP loss and the sender's uplink serialization are all
    /// applied here.
    pub fn send(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        payload_bytes: u64,
        category: TrafficCategory,
    ) -> DeliveryOutcome {
        let transport: Transport = self.config.transports.transport_for(category);
        let header = match transport {
            Transport::Udp => self.config.udp_header_bytes,
            Transport::Tcp => self.config.tcp_header_bytes,
        };
        let wire_bytes = payload_bytes + header;
        self.stats.record_sent(category, wire_bytes);

        if self.expelled[from.index()] || self.expelled[to.index()] {
            return DeliveryOutcome::Lost;
        }

        // Uplink serialization at the sender.
        let capability = self.capabilities[from.index()];
        let leaves_at = self.uplinks[from.index()].enqueue(now, wire_bytes, &capability);

        // Loss: network-wide plus sender/receiver access-link loss, UDP only.
        if transport.is_lossy() {
            let sender_extra = capability.extra_loss;
            let receiver_extra = self.capabilities[to.index()].extra_loss;
            if self.config.loss.is_lost(&mut self.rng)
                || (sender_extra > 0.0 && self.rng.gen_bool(sender_extra.clamp(0.0, 1.0)))
                || (receiver_extra > 0.0 && self.rng.gen_bool(receiver_extra.clamp(0.0, 1.0)))
            {
                return DeliveryOutcome::Lost;
            }
        }

        let latency = self.config.latency.sample(from, to, &mut self.rng);
        let at = leaves_at + latency;
        self.stats.record_delivered(category, wire_bytes);
        DeliveryOutcome::Deliver { at }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifting_sim::{derive_rng, SimDuration};

    fn net(n: usize, config: NetworkConfig) -> Network {
        Network::new(n, config, derive_rng(1234, 0))
    }

    #[test]
    fn ideal_network_delivers_everything() {
        let mut net = net(4, NetworkConfig::ideal());
        let mut delivered = 0;
        for i in 0..100 {
            let out = net.send(
                SimTime::ZERO,
                NodeId::new(i % 4),
                NodeId::new((i + 1) % 4),
                100,
                TrafficCategory::GossipControl,
            );
            if out.is_delivered() {
                delivered += 1;
            }
        }
        assert_eq!(delivered, 100);
    }

    #[test]
    fn loss_applies_to_udp_but_not_tcp() {
        let config = NetworkConfig {
            loss: LossModel::bernoulli(0.5),
            latency: LatencyModel::Constant(SimDuration::from_millis(10)),
            ..NetworkConfig::default()
        };
        let mut net = net(2, config);
        let udp_delivered = (0..2000)
            .filter(|_| {
                net.send(
                    SimTime::ZERO,
                    NodeId::new(0),
                    NodeId::new(1),
                    100,
                    TrafficCategory::Verification,
                )
                .is_delivered()
            })
            .count();
        let tcp_delivered = (0..2000)
            .filter(|_| {
                net.send(
                    SimTime::ZERO,
                    NodeId::new(0),
                    NodeId::new(1),
                    100,
                    TrafficCategory::Audit,
                )
                .is_delivered()
            })
            .count();
        assert!(
            udp_delivered > 800 && udp_delivered < 1200,
            "{udp_delivered}"
        );
        assert_eq!(tcp_delivered, 2000);
    }

    #[test]
    fn expelled_nodes_are_cut_off() {
        let mut net = net(3, NetworkConfig::ideal());
        net.set_expelled(NodeId::new(1), true);
        assert!(net.is_expelled(NodeId::new(1)));
        assert_eq!(net.expelled_count(), 1);
        let to_expelled = net.send(
            SimTime::ZERO,
            NodeId::new(0),
            NodeId::new(1),
            10,
            TrafficCategory::GossipControl,
        );
        let from_expelled = net.send(
            SimTime::ZERO,
            NodeId::new(1),
            NodeId::new(2),
            10,
            TrafficCategory::GossipControl,
        );
        assert_eq!(to_expelled, DeliveryOutcome::Lost);
        assert_eq!(from_expelled, DeliveryOutcome::Lost);
    }

    #[test]
    fn uplink_capacity_delays_delivery() {
        let config = NetworkConfig {
            latency: LatencyModel::Constant(SimDuration::from_millis(5)),
            ..NetworkConfig::ideal()
        };
        let mut net = net(2, config);
        // 1 Mbit/s uplink; 1222-byte payload + 28-byte header = 1250 bytes = 10 ms.
        net.set_capability(NodeId::new(0), NodeCapability::broadband(1_000_000));
        let first = net.send(
            SimTime::ZERO,
            NodeId::new(0),
            NodeId::new(1),
            1_222,
            TrafficCategory::StreamData,
        );
        let second = net.send(
            SimTime::ZERO,
            NodeId::new(0),
            NodeId::new(1),
            1_222,
            TrafficCategory::StreamData,
        );
        assert_eq!(
            first,
            DeliveryOutcome::Deliver {
                at: SimTime::from_millis(15)
            }
        );
        assert_eq!(
            second,
            DeliveryOutcome::Deliver {
                at: SimTime::from_millis(25)
            }
        );
    }

    #[test]
    fn traffic_is_accounted_with_headers() {
        let mut net = net(2, NetworkConfig::ideal());
        net.send(
            SimTime::ZERO,
            NodeId::new(0),
            NodeId::new(1),
            100,
            TrafficCategory::StreamData,
        );
        let c = net.stats().category(TrafficCategory::StreamData);
        assert_eq!(c.bytes_sent, 128);
        assert_eq!(c.messages_sent, 1);
        assert_eq!(c.bytes_delivered, 128);
    }

    #[test]
    fn lost_messages_count_as_sent_but_not_delivered() {
        let config = NetworkConfig {
            loss: LossModel::bernoulli(1.0),
            ..NetworkConfig::ideal()
        };
        let mut net = net(2, config);
        let out = net.send(
            SimTime::ZERO,
            NodeId::new(0),
            NodeId::new(1),
            100,
            TrafficCategory::Verification,
        );
        assert_eq!(out, DeliveryOutcome::Lost);
        let c = net.stats().category(TrafficCategory::Verification);
        assert_eq!(c.messages_sent, 1);
        assert_eq!(c.messages_delivered, 0);
    }
}
