//! The simulated network: decides, for each send, whether and when the
//! message is delivered, and accounts the traffic.

use lifting_sim::{NodeId, SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::bandwidth::{NodeCapability, UplinkState};
use crate::latency::LatencyModel;
use crate::loss::{BurstState, LossModel};
use crate::traffic::{TrafficCategory, TrafficStats};
use crate::transport::{Transport, TransportPolicy};

/// Deterministic link-fault knobs applied on top of the loss model: latency
/// spikes (a message occasionally takes a detour) and duplication (a message
/// occasionally arrives twice — retransmission artifacts, routing loops).
/// Both default to off and consume RNG draws **only when enabled**, so
/// configurations without them stay bit-identical to the pre-fault runtime.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct LinkFaults {
    /// Probability that a delivered message suffers a delay spike.
    pub delay_spike_probability: f64,
    /// The extra one-way delay a spiked message incurs.
    pub delay_spike: SimDuration,
    /// Probability that a delivered message is duplicated (the copy takes an
    /// independently sampled latency).
    pub duplicate_probability: f64,
}

impl LinkFaults {
    /// True if every knob is off (the default).
    pub fn is_inert(&self) -> bool {
        self.delay_spike_probability <= 0.0 && self.duplicate_probability <= 0.0
    }

    /// Validates the knobs.
    ///
    /// # Panics
    ///
    /// Panics if a probability is outside `[0, 1]`.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.delay_spike_probability),
            "delay-spike probability out of range"
        );
        assert!(
            (0.0..=1.0).contains(&self.duplicate_probability),
            "duplicate probability out of range"
        );
    }
}

/// Static configuration of the simulated network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Loss model applied to UDP messages.
    pub loss: LossModel,
    /// One-way latency model.
    pub latency: LatencyModel,
    /// Link-fault injection knobs (delay spikes, duplication); inert by
    /// default.
    pub faults: LinkFaults,
    /// Per-message header bytes added to UDP payloads (IP + UDP headers).
    pub udp_header_bytes: u64,
    /// Per-message header bytes added to TCP payloads (IP + TCP headers;
    /// connection setup cost is amortized and ignored, as in the paper).
    pub tcp_header_bytes: u64,
    /// Default capability assigned to nodes that are not given one explicitly.
    pub default_capability: NodeCapability,
    /// Which transport each traffic category travels over (Section 5.3:
    /// audits over TCP, everything else over UDP).
    pub transports: TransportPolicy,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            loss: LossModel::None,
            latency: LatencyModel::default(),
            faults: LinkFaults::default(),
            udp_header_bytes: 28,
            tcp_header_bytes: 40,
            default_capability: NodeCapability::unconstrained(),
            transports: TransportPolicy::paper(),
        }
    }
}

impl NetworkConfig {
    /// A PlanetLab-like configuration: 4 % loss, wide-area latency spread.
    pub fn planetlab(loss: f64) -> Self {
        NetworkConfig {
            loss: LossModel::bernoulli(loss),
            latency: LatencyModel::planetlab_default(),
            ..NetworkConfig::default()
        }
    }

    /// An ideal network for pure Monte-Carlo experiments: no loss, constant
    /// small latency, unconstrained uplinks.
    pub fn ideal() -> Self {
        NetworkConfig {
            loss: LossModel::None,
            latency: LatencyModel::Constant(lifting_sim::SimDuration::from_millis(10)),
            ..NetworkConfig::default()
        }
    }
}

/// Outcome of a send decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryOutcome {
    /// The message will arrive at the destination at the given instant.
    Deliver {
        /// Arrival time at the destination.
        at: SimTime,
    },
    /// The message arrives twice (duplication fault): once at `at` and a
    /// second time at `duplicate_at`. Only produced when
    /// [`LinkFaults::duplicate_probability`] is non-zero.
    Duplicated {
        /// Arrival time of the original.
        at: SimTime,
        /// Arrival time of the duplicate (independently sampled latency).
        duplicate_at: SimTime,
    },
    /// The message is lost in transit and will never arrive.
    Lost,
}

impl DeliveryOutcome {
    /// True if the message is delivered (at least once).
    pub fn is_delivered(&self) -> bool {
        !matches!(self, DeliveryOutcome::Lost)
    }
}

/// The simulated network.
///
/// The network does not own the event queue: callers ask it to adjudicate a
/// send (`send`) and then schedule the resulting delivery event themselves.
/// This keeps the network reusable from unit tests without an engine.
#[derive(Debug)]
pub struct Network {
    config: NetworkConfig,
    capabilities: Vec<NodeCapability>,
    uplinks: Vec<UplinkState>,
    expelled: Vec<bool>,
    partitioned: Vec<bool>,
    burst: BurstState,
    stats: TrafficStats,
    rng: SmallRng,
}

impl Network {
    /// Creates a network for `n` nodes with the given configuration and seed.
    pub fn new(n: usize, config: NetworkConfig, rng: SmallRng) -> Self {
        config.faults.validate();
        Network {
            capabilities: vec![config.default_capability; n],
            uplinks: vec![UplinkState::new(); n],
            expelled: vec![false; n],
            partitioned: vec![false; n],
            burst: BurstState::default(),
            config,
            stats: TrafficStats::new(),
            rng,
        }
    }

    /// Number of nodes attached to the network.
    pub fn len(&self) -> usize {
        self.capabilities.len()
    }

    /// Heap bytes held by the per-node link state (capacity walk,
    /// deterministic).
    pub fn estimated_heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.capabilities.capacity() * size_of::<NodeCapability>()
            + self.uplinks.capacity() * size_of::<UplinkState>()
            + self.expelled.capacity()
            + self.partitioned.capacity()
    }

    /// True if the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.capabilities.is_empty()
    }

    /// The network configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Overrides the capability of one node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn set_capability(&mut self, node: NodeId, capability: NodeCapability) {
        self.capabilities[node.index()] = capability;
    }

    /// The capability of one node.
    pub fn capability(&self, node: NodeId) -> NodeCapability {
        self.capabilities[node.index()]
    }

    /// Marks a node as expelled: all traffic from and to it is dropped. This
    /// is how the blaming architecture's expulsion decision takes effect.
    pub fn set_expelled(&mut self, node: NodeId, expelled: bool) {
        self.expelled[node.index()] = expelled;
    }

    /// Cuts a node off the network (or reconnects it): all traffic from and
    /// to it is dropped while cut off. Same mechanism as an expulsion, but
    /// reversible — the churn engine uses it for departed nodes, which may
    /// later rejoin.
    pub fn set_cut_off(&mut self, node: NodeId, cut_off: bool) {
        self.expelled[node.index()] = cut_off;
    }

    /// True if the node is currently cut off (departed or expelled).
    pub fn is_cut_off(&self, node: NodeId) -> bool {
        self.expelled[node.index()]
    }

    /// True if the node has been expelled from the system.
    pub fn is_expelled(&self, node: NodeId) -> bool {
        self.expelled[node.index()]
    }

    /// Number of nodes currently expelled.
    pub fn expelled_count(&self) -> usize {
        self.expelled.iter().filter(|e| **e).count()
    }

    /// Partitions a node from the rest of the network (or heals it). Unlike
    /// UDP loss, a partition is a *routing* failure: it cuts **both**
    /// transports — the audits-over-TCP plane included — and both directions.
    /// Distinct from [`set_cut_off`](Self::set_cut_off): a partitioned node
    /// is still a live member (it keeps its state and its stack keeps
    /// ticking), the network around it just fails.
    pub fn set_partitioned(&mut self, node: NodeId, partitioned: bool) {
        self.partitioned[node.index()] = partitioned;
    }

    /// True if the node is currently partitioned from the network.
    pub fn is_partitioned(&self, node: NodeId) -> bool {
        self.partitioned[node.index()]
    }

    /// Number of nodes currently partitioned.
    pub fn partitioned_count(&self) -> usize {
        self.partitioned.iter().filter(|p| **p).count()
    }

    /// Accumulated traffic statistics.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Resets the traffic statistics (e.g. after a warm-up phase).
    pub fn reset_stats(&mut self) {
        self.stats = TrafficStats::new();
    }

    /// Adjudicates the transmission of a message of `payload_bytes` from
    /// `from` to `to`, returning when (and whether) it arrives.
    ///
    /// The transport is resolved from the configured [`TransportPolicy`]:
    /// call sites only name the [`TrafficCategory`], so audits-over-TCP vs
    /// gossip-over-UDP is configuration rather than a per-call decision.
    /// The message is accounted to `category` whatever the outcome. Expelled
    /// endpoints, UDP loss and the sender's uplink serialization are all
    /// applied here.
    pub fn send(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        payload_bytes: u64,
        category: TrafficCategory,
    ) -> DeliveryOutcome {
        let transport: Transport = self.config.transports.transport_for(category);
        let header = match transport {
            Transport::Udp => self.config.udp_header_bytes,
            Transport::Tcp => self.config.tcp_header_bytes,
        };
        let wire_bytes = payload_bytes + header;
        self.stats.record_sent(category, wire_bytes);

        if self.expelled[from.index()] || self.expelled[to.index()] {
            return DeliveryOutcome::Lost;
        }

        // A partition cuts every transport (TCP included) and both
        // directions, deterministically — no RNG is consumed, so runs
        // without a fault plan are draw-for-draw unchanged.
        if self.partitioned[from.index()] || self.partitioned[to.index()] {
            return DeliveryOutcome::Lost;
        }

        // Uplink serialization at the sender.
        let capability = self.capabilities[from.index()];
        let leaves_at = self.uplinks[from.index()].enqueue(now, wire_bytes, &capability);

        // Loss: network-wide plus sender/receiver access-link loss, UDP only.
        if transport.is_lossy() {
            let sender_extra = capability.extra_loss;
            let receiver_extra = self.capabilities[to.index()].extra_loss;
            if self
                .config
                .loss
                .is_lost_with(&mut self.burst, &mut self.rng)
                || (sender_extra > 0.0 && self.rng.gen_bool(sender_extra.clamp(0.0, 1.0)))
                || (receiver_extra > 0.0 && self.rng.gen_bool(receiver_extra.clamp(0.0, 1.0)))
            {
                return DeliveryOutcome::Lost;
            }
        }

        let mut latency = self.config.latency.sample(from, to, &mut self.rng);
        // Per-node latency classes: the endpoints' scales stretch the sampled
        // propagation delay. Applied only when a scale differs from 1.0, so
        // class-free deployments perform no float work here and stay
        // bit-identical.
        let latency_scale = capability.latency_scale * self.capabilities[to.index()].latency_scale;
        if latency_scale != 1.0 {
            latency = SimDuration::from_secs_f64(latency.as_secs_f64() * latency_scale);
        }
        // Fault knobs consume RNG only when enabled: inert configurations
        // stay bit-identical.
        let faults = self.config.faults;
        if faults.delay_spike_probability > 0.0 && self.rng.gen_bool(faults.delay_spike_probability)
        {
            latency += faults.delay_spike;
        }
        let at = leaves_at + latency;
        self.stats.record_delivered(category, wire_bytes);
        if faults.duplicate_probability > 0.0 && self.rng.gen_bool(faults.duplicate_probability) {
            // The copy rides the same uplink transmission (no second enqueue)
            // but takes an independently sampled network path; it is
            // accounted as an extra delivery of the same sent message.
            let mut copy_latency = self.config.latency.sample(from, to, &mut self.rng);
            if latency_scale != 1.0 {
                copy_latency =
                    SimDuration::from_secs_f64(copy_latency.as_secs_f64() * latency_scale);
            }
            let duplicate_at = leaves_at + copy_latency;
            self.stats.record_delivered(category, wire_bytes);
            return DeliveryOutcome::Duplicated { at, duplicate_at };
        }
        DeliveryOutcome::Deliver { at }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifting_sim::{derive_rng, SimDuration};

    fn net(n: usize, config: NetworkConfig) -> Network {
        Network::new(n, config, derive_rng(1234, 0))
    }

    #[test]
    fn ideal_network_delivers_everything() {
        let mut net = net(4, NetworkConfig::ideal());
        let mut delivered = 0;
        for i in 0..100 {
            let out = net.send(
                SimTime::ZERO,
                NodeId::new(i % 4),
                NodeId::new((i + 1) % 4),
                100,
                TrafficCategory::GossipControl,
            );
            if out.is_delivered() {
                delivered += 1;
            }
        }
        assert_eq!(delivered, 100);
    }

    #[test]
    fn loss_applies_to_udp_but_not_tcp() {
        let config = NetworkConfig {
            loss: LossModel::bernoulli(0.5),
            latency: LatencyModel::Constant(SimDuration::from_millis(10)),
            ..NetworkConfig::default()
        };
        let mut net = net(2, config);
        let udp_delivered = (0..2000)
            .filter(|_| {
                net.send(
                    SimTime::ZERO,
                    NodeId::new(0),
                    NodeId::new(1),
                    100,
                    TrafficCategory::Verification,
                )
                .is_delivered()
            })
            .count();
        let tcp_delivered = (0..2000)
            .filter(|_| {
                net.send(
                    SimTime::ZERO,
                    NodeId::new(0),
                    NodeId::new(1),
                    100,
                    TrafficCategory::Audit,
                )
                .is_delivered()
            })
            .count();
        assert!(
            udp_delivered > 800 && udp_delivered < 1200,
            "{udp_delivered}"
        );
        assert_eq!(tcp_delivered, 2000);
    }

    #[test]
    fn expelled_nodes_are_cut_off() {
        let mut net = net(3, NetworkConfig::ideal());
        net.set_expelled(NodeId::new(1), true);
        assert!(net.is_expelled(NodeId::new(1)));
        assert_eq!(net.expelled_count(), 1);
        let to_expelled = net.send(
            SimTime::ZERO,
            NodeId::new(0),
            NodeId::new(1),
            10,
            TrafficCategory::GossipControl,
        );
        let from_expelled = net.send(
            SimTime::ZERO,
            NodeId::new(1),
            NodeId::new(2),
            10,
            TrafficCategory::GossipControl,
        );
        assert_eq!(to_expelled, DeliveryOutcome::Lost);
        assert_eq!(from_expelled, DeliveryOutcome::Lost);
    }

    #[test]
    fn uplink_capacity_delays_delivery() {
        let config = NetworkConfig {
            latency: LatencyModel::Constant(SimDuration::from_millis(5)),
            ..NetworkConfig::ideal()
        };
        let mut net = net(2, config);
        // 1 Mbit/s uplink; 1222-byte payload + 28-byte header = 1250 bytes = 10 ms.
        net.set_capability(NodeId::new(0), NodeCapability::broadband(1_000_000));
        let first = net.send(
            SimTime::ZERO,
            NodeId::new(0),
            NodeId::new(1),
            1_222,
            TrafficCategory::StreamData,
        );
        let second = net.send(
            SimTime::ZERO,
            NodeId::new(0),
            NodeId::new(1),
            1_222,
            TrafficCategory::StreamData,
        );
        assert_eq!(
            first,
            DeliveryOutcome::Deliver {
                at: SimTime::from_millis(15)
            }
        );
        assert_eq!(
            second,
            DeliveryOutcome::Deliver {
                at: SimTime::from_millis(25)
            }
        );
    }

    #[test]
    fn partition_cuts_both_transports_and_heals() {
        let mut net = net(3, NetworkConfig::ideal());
        net.set_partitioned(NodeId::new(1), true);
        assert!(net.is_partitioned(NodeId::new(1)));
        assert_eq!(net.partitioned_count(), 1);
        // Both directions, both transports (TCP audits included).
        for (from, to, category) in [
            (0, 1, TrafficCategory::GossipControl),
            (1, 2, TrafficCategory::GossipControl),
            (0, 1, TrafficCategory::Audit),
            (1, 0, TrafficCategory::Audit),
        ] {
            let out = net.send(
                SimTime::ZERO,
                NodeId::new(from),
                NodeId::new(to),
                10,
                category,
            );
            assert_eq!(out, DeliveryOutcome::Lost, "{from}->{to} {category:?}");
        }
        net.set_partitioned(NodeId::new(1), false);
        assert!(net
            .send(
                SimTime::ZERO,
                NodeId::new(0),
                NodeId::new(1),
                10,
                TrafficCategory::Audit,
            )
            .is_delivered());
    }

    #[test]
    fn delay_spike_and_duplication_knobs_apply() {
        let config = NetworkConfig {
            faults: LinkFaults {
                delay_spike_probability: 1.0,
                delay_spike: SimDuration::from_millis(500),
                duplicate_probability: 1.0,
            },
            ..NetworkConfig::ideal()
        };
        assert!(!config.faults.is_inert());
        let mut net = net(2, config);
        match net.send(
            SimTime::ZERO,
            NodeId::new(0),
            NodeId::new(1),
            100,
            TrafficCategory::GossipControl,
        ) {
            DeliveryOutcome::Duplicated { at, duplicate_at } => {
                // Ideal latency is a constant 10 ms; the original carries the
                // 500 ms spike, the duplicate does not.
                assert_eq!(at, SimTime::from_millis(510));
                assert_eq!(duplicate_at, SimTime::from_millis(10));
            }
            other => panic!("expected a duplicated delivery, got {other:?}"),
        }
        // The duplicate is an extra delivery of one sent message.
        let c = net.stats().category(TrafficCategory::GossipControl);
        assert_eq!(c.messages_sent, 1);
        assert_eq!(c.messages_delivered, 2);
    }

    #[test]
    fn inert_fault_knobs_consume_no_rng() {
        // Two networks, one with the (default, inert) fault section and one
        // constructed plainly: their delivery times must match draw for draw.
        let mut a = net(2, NetworkConfig::planetlab(0.07));
        let mut b = net(
            2,
            NetworkConfig {
                faults: LinkFaults::default(),
                ..NetworkConfig::planetlab(0.07)
            },
        );
        for _ in 0..200 {
            let oa = a.send(
                SimTime::ZERO,
                NodeId::new(0),
                NodeId::new(1),
                64,
                TrafficCategory::Verification,
            );
            let ob = b.send(
                SimTime::ZERO,
                NodeId::new(0),
                NodeId::new(1),
                64,
                TrafficCategory::Verification,
            );
            assert_eq!(oa, ob);
        }
    }

    #[test]
    fn traffic_is_accounted_with_headers() {
        let mut net = net(2, NetworkConfig::ideal());
        net.send(
            SimTime::ZERO,
            NodeId::new(0),
            NodeId::new(1),
            100,
            TrafficCategory::StreamData,
        );
        let c = net.stats().category(TrafficCategory::StreamData);
        assert_eq!(c.bytes_sent, 128);
        assert_eq!(c.messages_sent, 1);
        assert_eq!(c.bytes_delivered, 128);
    }

    #[test]
    fn lost_messages_count_as_sent_but_not_delivered() {
        let config = NetworkConfig {
            loss: LossModel::bernoulli(1.0),
            ..NetworkConfig::ideal()
        };
        let mut net = net(2, config);
        let out = net.send(
            SimTime::ZERO,
            NodeId::new(0),
            NodeId::new(1),
            100,
            TrafficCategory::Verification,
        );
        assert_eq!(out, DeliveryOutcome::Lost);
        let c = net.stats().category(TrafficCategory::Verification);
        assert_eq!(c.messages_sent, 1);
        assert_eq!(c.messages_delivered, 0);
    }
}
