//! Traffic accounting.
//!
//! Table 5 of the paper reports the *practical overhead* of LiFTinG: the
//! bandwidth consumed by cross-checking and blaming relative to the gossip
//! dissemination traffic, for several stream rates and values of `pdcc`.
//! Every byte sent through [`crate::Network`] is attributed to a
//! [`TrafficCategory`] so that this ratio (and Table 3's message counts) can
//! be measured rather than estimated.

use serde::{Deserialize, Serialize};

/// Category of a message, used for overhead accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TrafficCategory {
    /// Chunk payloads (the stream itself, carried by serve messages).
    StreamData,
    /// Gossip control traffic: propose and request messages.
    GossipControl,
    /// Direct cross-checking traffic: ack, confirm and confirm responses.
    Verification,
    /// Blame messages and score reads sent to reputation managers.
    Blame,
    /// A-posteriori audit transfers (history upload over TCP).
    Audit,
    /// Peer-sampling / membership maintenance traffic.
    Membership,
}

impl TrafficCategory {
    /// All categories, in display order.
    pub const ALL: [TrafficCategory; 6] = [
        TrafficCategory::StreamData,
        TrafficCategory::GossipControl,
        TrafficCategory::Verification,
        TrafficCategory::Blame,
        TrafficCategory::Audit,
        TrafficCategory::Membership,
    ];

    /// True if this category is part of LiFTinG (verification overhead) rather
    /// than of the underlying dissemination protocol.
    pub fn is_lifting_overhead(self) -> bool {
        matches!(
            self,
            TrafficCategory::Verification | TrafficCategory::Blame | TrafficCategory::Audit
        )
    }
}

/// Per-category counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CategoryCounters {
    /// Messages sent (attempted; includes messages later lost).
    pub messages_sent: u64,
    /// Bytes sent (attempted).
    pub bytes_sent: u64,
    /// Messages actually delivered.
    pub messages_delivered: u64,
    /// Bytes actually delivered.
    pub bytes_delivered: u64,
}

/// Aggregated traffic statistics for a run.
///
/// Flat-indexed by category discriminant: accounting happens twice per
/// message on the hot path, so it must be two array stores, not tree walks.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrafficStats {
    counters: [CategoryCounters; TrafficCategory::ALL.len()],
}

impl TrafficStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        TrafficStats::default()
    }

    /// Records an attempted send.
    pub fn record_sent(&mut self, category: TrafficCategory, bytes: u64) {
        let c = &mut self.counters[category as usize];
        c.messages_sent += 1;
        c.bytes_sent += bytes;
    }

    /// Records a successful delivery.
    pub fn record_delivered(&mut self, category: TrafficCategory, bytes: u64) {
        let c = &mut self.counters[category as usize];
        c.messages_delivered += 1;
        c.bytes_delivered += bytes;
    }

    /// Counters for one category.
    pub fn category(&self, category: TrafficCategory) -> CategoryCounters {
        self.counters[category as usize]
    }

    /// Total bytes sent across all categories.
    pub fn total_bytes_sent(&self) -> u64 {
        self.counters.iter().map(|c| c.bytes_sent).sum()
    }

    /// Total messages sent across all categories.
    pub fn total_messages_sent(&self) -> u64 {
        self.counters.iter().map(|c| c.messages_sent).sum()
    }

    /// Bytes sent by the underlying gossip protocol (stream data + control).
    pub fn gossip_bytes_sent(&self) -> u64 {
        self.category(TrafficCategory::StreamData).bytes_sent
            + self.category(TrafficCategory::GossipControl).bytes_sent
    }

    /// Bytes sent by LiFTinG itself (verification + blame + audit).
    pub fn lifting_bytes_sent(&self) -> u64 {
        TrafficCategory::ALL
            .iter()
            .filter(|c| c.is_lifting_overhead())
            .map(|c| self.category(*c).bytes_sent)
            .sum()
    }

    /// The overhead ratio reported in Table 5 of the paper: LiFTinG bytes
    /// divided by gossip bytes. Returns 0 when no gossip traffic was recorded.
    pub fn overhead_ratio(&self) -> f64 {
        let base = self.gossip_bytes_sent();
        if base == 0 {
            0.0
        } else {
            self.lifting_bytes_sent() as f64 / base as f64
        }
    }

    /// Produces a summary report.
    pub fn report(&self) -> TrafficReport {
        TrafficReport {
            per_category: TrafficCategory::ALL
                .iter()
                .map(|c| (*c, self.category(*c)))
                .collect(),
            total_bytes_sent: self.total_bytes_sent(),
            total_messages_sent: self.total_messages_sent(),
            overhead_ratio: self.overhead_ratio(),
        }
    }

    /// Merges another set of statistics into this one.
    pub fn merge(&mut self, other: &TrafficStats) {
        for (e, c) in self.counters.iter_mut().zip(&other.counters) {
            e.messages_sent += c.messages_sent;
            e.bytes_sent += c.bytes_sent;
            e.messages_delivered += c.messages_delivered;
            e.bytes_delivered += c.bytes_delivered;
        }
    }
}

/// A flattened summary of [`TrafficStats`] suitable for serialization.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrafficReport {
    /// Counters per category, in [`TrafficCategory::ALL`] order.
    pub per_category: Vec<(TrafficCategory, CategoryCounters)>,
    /// Total bytes sent.
    pub total_bytes_sent: u64,
    /// Total messages sent.
    pub total_messages_sent: u64,
    /// LiFTinG overhead relative to gossip traffic.
    pub overhead_ratio: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_ratio_matches_definition() {
        let mut s = TrafficStats::new();
        s.record_sent(TrafficCategory::StreamData, 900);
        s.record_sent(TrafficCategory::GossipControl, 100);
        s.record_sent(TrafficCategory::Verification, 50);
        s.record_sent(TrafficCategory::Blame, 30);
        s.record_sent(TrafficCategory::Audit, 20);
        assert_eq!(s.gossip_bytes_sent(), 1_000);
        assert_eq!(s.lifting_bytes_sent(), 100);
        assert!((s.overhead_ratio() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_zero_overhead() {
        assert_eq!(TrafficStats::new().overhead_ratio(), 0.0);
    }

    #[test]
    fn delivered_and_sent_are_tracked_separately() {
        let mut s = TrafficStats::new();
        s.record_sent(TrafficCategory::StreamData, 100);
        s.record_sent(TrafficCategory::StreamData, 100);
        s.record_delivered(TrafficCategory::StreamData, 100);
        let c = s.category(TrafficCategory::StreamData);
        assert_eq!(c.messages_sent, 2);
        assert_eq!(c.messages_delivered, 1);
        assert_eq!(c.bytes_sent, 200);
        assert_eq!(c.bytes_delivered, 100);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = TrafficStats::new();
        a.record_sent(TrafficCategory::Blame, 10);
        let mut b = TrafficStats::new();
        b.record_sent(TrafficCategory::Blame, 32);
        b.record_delivered(TrafficCategory::Blame, 32);
        a.merge(&b);
        let c = a.category(TrafficCategory::Blame);
        assert_eq!(c.bytes_sent, 42);
        assert_eq!(c.messages_sent, 2);
        assert_eq!(c.bytes_delivered, 32);
    }

    #[test]
    fn category_classification() {
        assert!(TrafficCategory::Verification.is_lifting_overhead());
        assert!(TrafficCategory::Blame.is_lifting_overhead());
        assert!(TrafficCategory::Audit.is_lifting_overhead());
        assert!(!TrafficCategory::StreamData.is_lifting_overhead());
        assert!(!TrafficCategory::GossipControl.is_lifting_overhead());
        assert!(!TrafficCategory::Membership.is_lifting_overhead());
    }
}
