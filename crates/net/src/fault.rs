//! Deterministic network fault plans: scheduled partition waves.
//!
//! The churn engine models nodes *leaving*; this module models the network
//! *failing around* nodes that stay up. A [`FaultSchedule`] declares waves of
//! correlated partitions — at a given instant a fraction of the population
//! loses connectivity in both directions (TCP included: a partition is a
//! routing failure, not a lossy link, so the audits-over-TCP plane is cut
//! too) and heals after a fixed outage. [`FaultPlan::generate`] expands the
//! schedule into per-node membership of each wave from a seeded RNG, exactly
//! mirroring `ChurnPlan` in `lifting-membership`: the runtime schedules one
//! begin and one heal event per wave through its time wheel and flips the
//! network's partition flags when they fire, so fault scenarios stay
//! bit-for-bit deterministic and parallel == sequential like everything else.

use lifting_sim::{NodeId, SimDuration};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One partition wave: at instant `at`, a `fraction` of the (non-source)
/// population is partitioned from everyone else; the partition heals
/// `outage` later.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultWave {
    /// When the partition begins, relative to the start of the run.
    pub at: SimDuration,
    /// How long the partition lasts before healing.
    pub outage: SimDuration,
    /// Fraction of the non-source population partitioned by this wave.
    pub fraction: f64,
}

impl FaultWave {
    /// The instant the wave heals.
    pub fn heals_at(&self) -> SimDuration {
        self.at + self.outage
    }
}

/// Declarative description of a run's network faults: a sequence of
/// partition waves (possibly overlapping — a node stays partitioned until
/// every wave holding it has healed).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// The partition waves, in any order.
    pub waves: Vec<FaultWave>,
}

impl FaultSchedule {
    /// A schedule with a single partition wave.
    pub fn single(at: SimDuration, outage: SimDuration, fraction: f64) -> Self {
        FaultSchedule {
            waves: vec![FaultWave {
                at,
                outage,
                fraction,
            }],
        }
    }

    /// True if the schedule contains no waves.
    pub fn is_empty(&self) -> bool {
        self.waves.is_empty()
    }

    /// Validates the schedule.
    ///
    /// # Panics
    ///
    /// Panics if a fraction is out of `[0, 1]`, a wave begins at instant
    /// zero, or an outage is zero.
    pub fn validate(&self) {
        for wave in &self.waves {
            assert!(
                (0.0..=1.0).contains(&wave.fraction),
                "fault wave fraction out of range"
            );
            assert!(
                !wave.at.is_zero(),
                "a fault wave cannot hit at instant zero"
            );
            assert!(
                !wave.outage.is_zero(),
                "a fault wave needs a positive outage"
            );
        }
    }
}

/// The per-node wave memberships expanded from a [`FaultSchedule`].
///
/// Generated from a seeded RNG in one fixed draw order (wave by wave, node by
/// node), so any two expansions of the same schedule from the same stream are
/// identical.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// `members[wave][node]`: node is partitioned by that wave. The broadcast
    /// source (node 0) is never selected — a partitioned source trivially
    /// kills the whole stream and measures nothing about resilience.
    pub members: Vec<Vec<bool>>,
}

impl FaultPlan {
    /// Expands `schedule` over a population of `nodes` identifiers using the
    /// given (already seeded) RNG.
    pub fn generate<R: Rng + ?Sized>(
        schedule: &FaultSchedule,
        nodes: usize,
        rng: &mut R,
    ) -> FaultPlan {
        let members = schedule
            .waves
            .iter()
            .map(|wave| {
                let mut flags = vec![false; nodes];
                for flag in flags.iter_mut().take(nodes).skip(1) {
                    *flag = wave.fraction > 0.0 && rng.gen_bool(wave.fraction);
                }
                flags
            })
            .collect();
        FaultPlan { members }
    }

    /// The nodes partitioned by wave `wave`.
    pub fn wave_members(&self, wave: usize) -> impl Iterator<Item = NodeId> + '_ {
        self.members[wave]
            .iter()
            .enumerate()
            .filter(|(_, m)| **m)
            .map(|(i, _)| NodeId::new(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifting_sim::derive_rng;

    fn schedule() -> FaultSchedule {
        FaultSchedule {
            waves: vec![
                FaultWave {
                    at: SimDuration::from_secs(10),
                    outage: SimDuration::from_secs(5),
                    fraction: 0.3,
                },
                FaultWave {
                    at: SimDuration::from_secs(25),
                    outage: SimDuration::from_secs(3),
                    fraction: 0.1,
                },
            ],
        }
    }

    #[test]
    fn plan_generation_is_deterministic_and_spares_the_source() {
        let s = schedule();
        s.validate();
        let a = FaultPlan::generate(&s, 200, &mut derive_rng(9, 9));
        let b = FaultPlan::generate(&s, 200, &mut derive_rng(9, 9));
        assert_eq!(a, b);
        assert_eq!(a.members.len(), 2);
        assert!(
            !a.members[0][0] && !a.members[1][0],
            "source never partitioned"
        );
        let wave0 = a.wave_members(0).count();
        assert!((30..=95).contains(&wave0), "got {wave0} members");
    }

    #[test]
    fn heal_instant_follows_the_outage() {
        let w = FaultWave {
            at: SimDuration::from_secs(10),
            outage: SimDuration::from_secs(5),
            fraction: 0.5,
        };
        assert_eq!(w.heals_at(), SimDuration::from_secs(15));
    }

    #[test]
    #[should_panic(expected = "instant zero")]
    fn zero_instant_wave_is_rejected() {
        FaultSchedule::single(SimDuration::ZERO, SimDuration::from_secs(1), 0.1).validate();
    }

    #[test]
    #[should_panic(expected = "positive outage")]
    fn zero_outage_wave_is_rejected() {
        FaultSchedule::single(SimDuration::from_secs(1), SimDuration::ZERO, 0.1).validate();
    }
}
