//! Message-loss models.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Probability model for losing a UDP message.
///
/// The paper's analysis (Section 6.2) assumes losses "independently drawn from
/// a Bernoulli distribution of parameter `pl`"; PlanetLab exhibited an average
/// loss of 4 % and the Monte-Carlo simulations use 7 %.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum LossModel {
    /// No losses at all.
    #[default]
    None,
    /// Each message is independently lost with probability `pl`.
    Bernoulli {
        /// Probability of losing a message, in `[0, 1]`.
        pl: f64,
    },
}

impl LossModel {
    /// Creates a Bernoulli loss model.
    ///
    /// # Panics
    ///
    /// Panics if `pl` is not within `[0, 1]`.
    pub fn bernoulli(pl: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&pl),
            "loss probability {pl} not in [0,1]"
        );
        if pl == 0.0 {
            LossModel::None
        } else {
            LossModel::Bernoulli { pl }
        }
    }

    /// The loss probability of this model.
    pub fn loss_probability(&self) -> f64 {
        match self {
            LossModel::None => 0.0,
            LossModel::Bernoulli { pl } => *pl,
        }
    }

    /// The reception probability `pr = 1 - pl`.
    pub fn reception_probability(&self) -> f64 {
        1.0 - self.loss_probability()
    }

    /// Samples whether a message is lost.
    pub fn is_lost<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        match self {
            LossModel::None => false,
            LossModel::Bernoulli { pl } => rng.gen_bool(*pl),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifting_sim::derive_rng;

    #[test]
    fn none_never_loses() {
        let mut rng = derive_rng(1, 0);
        assert!((0..1000).all(|_| !LossModel::None.is_lost(&mut rng)));
    }

    #[test]
    fn bernoulli_rate_is_close_to_parameter() {
        let model = LossModel::bernoulli(0.07);
        let mut rng = derive_rng(2, 0);
        let losses = (0..100_000).filter(|_| model.is_lost(&mut rng)).count();
        let rate = losses as f64 / 100_000.0;
        assert!((rate - 0.07).abs() < 0.005, "observed rate {rate}");
    }

    #[test]
    fn probabilities_are_consistent() {
        let m = LossModel::bernoulli(0.04);
        assert!((m.loss_probability() - 0.04).abs() < 1e-12);
        assert!((m.reception_probability() - 0.96).abs() < 1e-12);
        assert_eq!(LossModel::bernoulli(0.0), LossModel::None);
    }

    #[test]
    #[should_panic]
    fn invalid_probability_panics() {
        let _ = LossModel::bernoulli(1.5);
    }
}
