//! Message-loss models.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Probability model for losing a UDP message.
///
/// The paper's analysis (Section 6.2) assumes losses "independently drawn from
/// a Bernoulli distribution of parameter `pl`"; PlanetLab exhibited an average
/// loss of 4 % and the Monte-Carlo simulations use 7 %. Real wide-area loss is
/// *bursty*, though: outages cluster in time. The [`GilbertElliott`]
/// (`LossModel::GilbertElliott`) variant models that with the classic
/// two-state Markov chain (a low-loss "good" state and a high-loss "bad"
/// state), whose per-message state lives in [`BurstState`] on the network
/// side — the model itself stays a pure, comparable configuration value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum LossModel {
    /// No losses at all.
    #[default]
    None,
    /// Each message is independently lost with probability `pl`.
    ///
    /// `Bernoulli { pl: 0.0 }` is *behaviourally* identical to
    /// [`LossModel::None`] — no message is ever lost and no randomness is
    /// consumed — but the two values compare unequal: a config built with
    /// [`LossModel::bernoulli`]`(0.0)` round-trips as the Bernoulli variant
    /// it asked for instead of being silently rewritten to `None`.
    Bernoulli {
        /// Probability of losing a message, in `[0, 1]`.
        pl: f64,
    },
    /// Gilbert–Elliott bursty loss: a two-state Markov chain alternating
    /// between a good state (loss `loss_good`) and a bad state (loss
    /// `loss_bad`), with per-message transition probabilities `p_gb`
    /// (good → bad) and `p_bg` (bad → good). Mean burst length is `1/p_bg`
    /// messages; the stationary loss rate is
    /// `(p_bg·loss_good + p_gb·loss_bad) / (p_gb + p_bg)`.
    GilbertElliott {
        /// Probability of entering the bad state on each message while good.
        p_gb: f64,
        /// Probability of leaving the bad state on each message while bad.
        p_bg: f64,
        /// Loss probability while in the good state.
        loss_good: f64,
        /// Loss probability while in the bad state.
        loss_bad: f64,
    },
}

/// The mutable Markov-chain state of a [`LossModel::GilbertElliott`] channel.
///
/// Kept outside [`LossModel`] so the model remains a `Copy + PartialEq`
/// configuration value; the network owns one chain (bursts are modelled as a
/// network-wide condition, e.g. backbone congestion episodes shared by every
/// flow). The stateless variants ignore it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BurstState {
    /// True while the chain is in the bad (high-loss) state.
    pub bad: bool,
}

impl LossModel {
    /// Creates a Bernoulli loss model.
    ///
    /// The requested variant is preserved even for `pl = 0.0` (see the
    /// equivalence note on [`LossModel::Bernoulli`]).
    ///
    /// # Panics
    ///
    /// Panics if `pl` is not within `[0, 1]`.
    pub fn bernoulli(pl: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&pl),
            "loss probability {pl} not in [0,1]"
        );
        LossModel::Bernoulli { pl }
    }

    /// Creates a Gilbert–Elliott bursty loss model.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is outside `[0, 1]` or both transition
    /// probabilities are zero (the chain would never mix).
    pub fn gilbert_elliott(p_gb: f64, p_bg: f64, loss_good: f64, loss_bad: f64) -> Self {
        for (name, p) in [
            ("p_gb", p_gb),
            ("p_bg", p_bg),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} = {p} not in [0,1]");
        }
        assert!(
            p_gb + p_bg > 0.0,
            "degenerate Gilbert-Elliott chain: both transition probabilities are zero"
        );
        LossModel::GilbertElliott {
            p_gb,
            p_bg,
            loss_good,
            loss_bad,
        }
    }

    /// The average (stationary) loss probability of this model.
    pub fn loss_probability(&self) -> f64 {
        match self {
            LossModel::None => 0.0,
            LossModel::Bernoulli { pl } => *pl,
            LossModel::GilbertElliott {
                p_gb,
                p_bg,
                loss_good,
                loss_bad,
            } => (p_bg * loss_good + p_gb * loss_bad) / (p_gb + p_bg),
        }
    }

    /// The reception probability `pr = 1 - pl` (stationary for bursty models).
    pub fn reception_probability(&self) -> f64 {
        1.0 - self.loss_probability()
    }

    /// Samples whether a message is lost, advancing the burst chain for the
    /// stateful [`GilbertElliott`](LossModel::GilbertElliott) variant.
    ///
    /// `None` and `Bernoulli { pl: 0.0 }` consume no randomness (keeping them
    /// draw-for-draw interchangeable); `Bernoulli { pl > 0 }` consumes one
    /// draw per message exactly as it always did. Gilbert–Elliott consumes
    /// two draws per message (transition, then loss) — acceptable because the
    /// variant only ever appears in configs that opted into it.
    pub fn is_lost_with<R: Rng + ?Sized>(&self, state: &mut BurstState, rng: &mut R) -> bool {
        match self {
            LossModel::None => false,
            LossModel::Bernoulli { pl } => *pl > 0.0 && rng.gen_bool(*pl),
            LossModel::GilbertElliott {
                p_gb,
                p_bg,
                loss_good,
                loss_bad,
            } => {
                let flip = rng.gen_bool(if state.bad { *p_bg } else { *p_gb });
                if flip {
                    state.bad = !state.bad;
                }
                let pl = if state.bad { *loss_bad } else { *loss_good };
                rng.gen_bool(pl)
            }
        }
    }

    /// Samples whether a message is lost, using a throwaway burst state (the
    /// chain starts in the good state on every call). Only meaningful for the
    /// stateless variants; the network always uses
    /// [`is_lost_with`](Self::is_lost_with).
    pub fn is_lost<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        self.is_lost_with(&mut BurstState::default(), rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifting_sim::derive_rng;

    #[test]
    fn none_never_loses() {
        let mut rng = derive_rng(1, 0);
        assert!((0..1000).all(|_| !LossModel::None.is_lost(&mut rng)));
    }

    #[test]
    fn bernoulli_rate_is_close_to_parameter() {
        let model = LossModel::bernoulli(0.07);
        let mut rng = derive_rng(2, 0);
        let losses = (0..100_000).filter(|_| model.is_lost(&mut rng)).count();
        let rate = losses as f64 / 100_000.0;
        assert!((rate - 0.07).abs() < 0.005, "observed rate {rate}");
    }

    #[test]
    fn probabilities_are_consistent() {
        let m = LossModel::bernoulli(0.04);
        assert!((m.loss_probability() - 0.04).abs() < 1e-12);
        assert!((m.reception_probability() - 0.96).abs() < 1e-12);
    }

    #[test]
    fn zero_probability_bernoulli_is_preserved_and_lossless() {
        // The variant round-trips as requested instead of collapsing to
        // `None`, and stays behaviourally identical to it: never a loss,
        // never an RNG draw.
        let m = LossModel::bernoulli(0.0);
        assert_eq!(m, LossModel::Bernoulli { pl: 0.0 });
        assert_ne!(m, LossModel::None);
        assert_eq!(m.loss_probability(), 0.0);
        let mut a = derive_rng(3, 0);
        let mut b = derive_rng(3, 0);
        assert!((0..1000).all(|_| !m.is_lost(&mut a)));
        // Same draw count as None: the two RNGs stay in lockstep.
        let _ = LossModel::None.is_lost(&mut b);
        assert_eq!(a.gen_range(0..u64::MAX), b.gen_range(0..u64::MAX));
    }

    #[test]
    fn gilbert_elliott_matches_stationary_rate_and_bursts() {
        // 1 % loss in the good state, 50 % in the bad; the chain spends
        // p_gb/(p_gb+p_bg) = 1/11 of its time bad => ~5.45 % average loss.
        let model = LossModel::gilbert_elliott(0.01, 0.10, 0.01, 0.50);
        assert!((model.loss_probability() - (0.10 * 0.01 + 0.01 * 0.50) / 0.11).abs() < 1e-12);
        let mut rng = derive_rng(4, 0);
        let mut state = BurstState::default();
        let n = 200_000;
        let mut losses = 0usize;
        let mut paired = 0usize; // losses immediately following a loss
        let mut prev = false;
        for _ in 0..n {
            let lost = model.is_lost_with(&mut state, &mut rng);
            losses += lost as usize;
            paired += (lost && prev) as usize;
            prev = lost;
        }
        let rate = losses as f64 / n as f64;
        assert!(
            (rate - model.loss_probability()).abs() < 0.005,
            "observed rate {rate}"
        );
        // Burstiness: P(loss | previous lost) must exceed the marginal rate —
        // an i.i.d. Bernoulli of the same average would make them equal.
        let conditional = paired as f64 / losses as f64;
        assert!(
            conditional > 2.0 * rate,
            "loss process not bursty: P(loss|loss) = {conditional:.3} vs rate {rate:.3}"
        );
    }

    #[test]
    fn gilbert_elliott_is_deterministic_given_state_and_seed() {
        let model = LossModel::gilbert_elliott(0.05, 0.2, 0.0, 0.8);
        let run = |seed| {
            let mut rng = derive_rng(seed, 0);
            let mut state = BurstState::default();
            (0..64)
                .map(|_| model.is_lost_with(&mut state, &mut rng))
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    #[should_panic]
    fn invalid_probability_panics() {
        let _ = LossModel::bernoulli(1.5);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn frozen_gilbert_elliott_chain_is_rejected() {
        let _ = LossModel::gilbert_elliott(0.0, 0.0, 0.0, 0.5);
    }
}
