//! Simulated transport layer for the LiFTinG reproduction.
//!
//! The paper evaluates LiFTinG over PlanetLab: ~300 wide-area nodes exchanging
//! UDP datagrams with 4–7 % message loss, heterogeneous latency and limited,
//! heterogeneous upload bandwidth; audits use TCP. This crate models exactly
//! those properties as a deterministic, seedable substrate:
//!
//! * [`Transport::Udp`] messages are subject to Bernoulli loss and are never
//!   retransmitted (matching the paper's direct verification messages);
//!   [`Transport::Tcp`] messages are delivered reliably (matching the paper's
//!   audits, Section 5.3).
//! * Latency is drawn from a configurable [`LatencyModel`], including a
//!   PlanetLab-like heterogeneous model.
//! * Each node has an uplink capacity; outgoing messages are serialized on the
//!   uplink so that overloaded or poor nodes fall behind — the phenomenon the
//!   paper identifies as the main source of false positives.
//! * All traffic is accounted per [`TrafficCategory`], which is what Table 5
//!   (practical overhead) is computed from.
//! * Network faults can be injected deterministically: bursty
//!   ([`LossModel::GilbertElliott`]) loss, latency spikes and duplication
//!   ([`LinkFaults`]), and scheduled partition waves ([`FaultSchedule`] /
//!   [`FaultPlan`]) that cut both transports — the resilience plane's
//!   substrate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bandwidth;
pub mod fault;
pub mod latency;
pub mod loss;
pub mod network;
pub mod provider;
pub mod traffic;
pub mod transport;

pub use bandwidth::{NodeCapability, UplinkState};
pub use fault::{FaultPlan, FaultSchedule, FaultWave};
pub use latency::LatencyModel;
pub use loss::{BurstState, LossModel};
pub use network::{DeliveryOutcome, LinkFaults, Network, NetworkConfig};
pub use provider::{
    capability_components, loss_components, transport_components, CapabilityClassAssigner,
};
pub use traffic::{TrafficCategory, TrafficReport, TrafficStats};
pub use transport::{Transport, TransportPolicy};

pub use lifting_sim::NodeId;
